(* Perf-regression gate over the BENCH_<n>.json trajectory.

     dune exec bench/check_regress.exe               -- two newest BENCH_*.json
     dune exec bench/check_regress.exe -- --allow-missing   -- pass when < 2 files
     dune exec bench/check_regress.exe OLD.json NEW.json

   Three sections are gated, each with its own tolerance:

   - "workloads": per-workload "throughput_mb_per_s" must not drop
     more than 20%. Simulated-time numbers, fully deterministic.
   - "sim": simkit microbenchmark "ns_per_op" must not more than
     double. Host wall-clock, so noisy on a shared box — the gate
     catches kernel regressions, not jitter.
   - "scale": per-cluster-size "fs_ops_per_sec" (deterministic, 20%
     as for workloads) and "events_per_sec" (host wall-clock; runs on
     this 1-vCPU container vary several-fold, so only an
     order-of-magnitude collapse — >90% drop — fails).
   - "soak": per-scenario "invariant_checks" must not drop more than
     20% (the harness silently checking less is itself a regression)
     and "max_cutover_s" must not more than double (the drain-time
     write freeze bounds hot-chunk cutover; losing that bound shows
     up here before it shows up as a soak timeout). Simulated-time
     counters, fully deterministic.

   Metrics present in only one of the two files never fail: a section
   the older snapshot predates (e.g. "sim" and "scale" appeared with
   BENCH_6) is reported as new and skipped, which is the
   --allow-missing semantics at per-metric granularity.

   The json is the line-oriented subset bench/main.exe emits; this
   parses it with the stdlib only (no json library in the image). *)

type dir = Higher | Lower

(* section -> gated keys within its rows: (key, direction, tolerance). *)
let gates =
  [
    ("workloads", [ ("throughput_mb_per_s", Higher, 0.20) ]);
    ("sim", [ ("ns_per_op", Lower, 1.00) ]);
    ( "scale",
      [ ("fs_ops_per_sec", Higher, 0.20); ("events_per_sec", Higher, 0.90) ] );
    ( "soak",
      [ ("invariant_checks", Higher, 0.20); ("max_cutover_s", Lower, 1.00) ] );
  ]

(* Metrics a PR's tentpole specifically optimised: the new value must
   be at least the old one — any drop fails, no tolerance. Missing in
   either file is skipped (per-metric allow-missing, as above). *)
let must_improve = [ "workloads/largefile_write_16mb throughput_mb_per_s" ]

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

(* Pull the float following "<key>": out of a row line, if present. *)
let find_value line key =
  let key = "\"" ^ key ^ "\":" in
  let n = String.length line and m = String.length key in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = key then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some v0 ->
    let stop = ref v0 in
    while
      !stop < n
      && (match line.[!stop] with
         | '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true
         | _ -> false)
    do
      incr stop
    done;
    (try Some (float_of_string (String.trim (String.sub line v0 (!stop - v0))))
     with Failure _ -> None)

(* First quoted string on the line: the row (or section) name. *)
let quoted_name line =
  match String.index_opt line '"' with
  | None -> None
  | Some q0 -> (
    match String.index_from_opt line (q0 + 1) '"' with
    | None -> None
    | Some q1 -> Some (String.sub line (q0 + 1) (q1 - q0 - 1)))

(* Returns rows as (id, value, dir, tolerance); id is
   "section/row key" so the same row can carry several gated keys. *)
let parse_file path =
  let ic = open_in path in
  let rows = ref [] in
  let section = ref None in
  (try
     while true do
       let line = input_line ic in
       let starts_section =
         List.exists
           (fun (sec, _) ->
             if contains line ("\"" ^ sec ^ "\": {") then begin
               section := Some sec;
               true
             end
             else false)
           gates
       in
       if starts_section then ()
       else if contains line "\": {" && not (contains line "}") then
         (* Header of a non-gated section ("net": {, "reconf": { ...):
            only section headers open a brace without closing it on
            the same line — row lines are single-line objects. *)
         section := None
       else begin
         let t = String.trim line in
         if t = "}," || t = "}" then section := None
         else
           match !section with
           | None -> ()
           | Some sec -> (
             match quoted_name line with
             | None -> ()
             | Some name ->
               List.iter
                 (fun (key, d, tol) ->
                   match find_value line key with
                   | Some v ->
                     rows :=
                       (sec ^ "/" ^ name ^ " " ^ key, v, d, tol) :: !rows
                   | None -> ())
                 (List.assoc sec gates))
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(* BENCH_<n>.json, sorted by <n>; the two highest are (previous,
   current). *)
let autodetect ~allow_missing =
  let indexed =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter_map (fun f ->
           try Scanf.sscanf f "BENCH_%d.json%!" (fun n -> Some (n, f))
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    |> List.sort compare
  in
  match List.rev indexed with
  | (_, cur) :: (_, prev) :: _ -> (prev, cur)
  | _ when allow_missing ->
    (* First PR on a branch, or a fresh checkout: nothing to compare
       against is not a regression. *)
    print_endline
      "check_regress: fewer than two BENCH_<n>.json files, nothing to compare \
       (--allow-missing)";
    exit 0
  | _ ->
    prerr_endline
      "check_regress: need two BENCH_<n>.json files (or pass OLD NEW, or \
       --allow-missing)";
    exit 2

let () =
  let prev_file, cur_file =
    match Sys.argv with
    | [| _ |] -> autodetect ~allow_missing:false
    | [| _; "--allow-missing" |] -> autodetect ~allow_missing:true
    | [| _; a; b |] -> (a, b)
    | _ ->
      prerr_endline "usage: check_regress [--allow-missing | OLD.json NEW.json]";
      exit 2
  in
  let prev = parse_file prev_file and cur = parse_file cur_file in
  Printf.printf "check_regress: %s -> %s\n" prev_file cur_file;
  let assoc id rows =
    List.find_map (fun (i, v, _, _) -> if i = id then Some v else None) rows
  in
  let failed = ref false in
  List.iter
    (fun (id, old_v, d, tol) ->
      match assoc id cur with
      | None ->
        Printf.printf "  %-44s %10.1f -> (gone)   WARN: metric dropped\n" id
          old_v
      | Some new_v ->
        let delta =
          if old_v > 0. then (new_v -. old_v) /. old_v *. 100. else 0.
        in
        let bad =
          old_v > 0.
          &&
          match d with
          | Higher -> new_v < old_v *. (1. -. tol)
          | Lower -> new_v > old_v *. (1. +. tol)
        in
        let below_floor = List.mem id must_improve && new_v < old_v in
        if bad || below_floor then failed := true;
        Printf.printf "  %-44s %10.1f -> %10.1f  %+7.1f%% (tol %s%.0f%%)%s%s\n"
          id old_v new_v delta
          (match d with Higher -> "-" | Lower -> "+")
          (tol *. 100.)
          (if bad then "  REGRESSION" else "")
          (if below_floor then "  BELOW MUST-IMPROVE FLOOR" else ""))
    prev;
  List.iter
    (fun (id, new_v, _, _) ->
      if assoc id prev = None then
        Printf.printf "  %-44s      (new) -> %10.1f\n" id new_v)
    cur;
  if !failed then begin
    prerr_endline "check_regress: FAIL";
    exit 1
  end
  else print_endline "check_regress: OK"
