(* Perf-regression gate over the BENCH_<n>.json trajectory.

     dune exec bench/check_regress.exe               -- two newest BENCH_*.json
     dune exec bench/check_regress.exe -- --allow-missing   -- pass when < 2 files
     dune exec bench/check_regress.exe OLD.json NEW.json

   Compares per-workload "throughput_mb_per_s" between the two files
   and exits 1 if any workload present in both dropped by more than
   20% — the verify recipe runs this after regenerating the current
   PR's json so a perf PR cannot silently undo an earlier one.

   The json is the line-oriented subset bench/main.exe emits; this
   parses it with the stdlib only (no json library in the image). *)

let tolerance = 0.20

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

(* A workload row looks like:
     "name": { "throughput_mb_per_s": 13.092, ... },
   Pull the name from the first quoted string and the number after
   the throughput key. *)
let parse_row line =
  match String.index_opt line '"' with
  | None -> None
  | Some q0 -> (
    match String.index_from_opt line (q0 + 1) '"' with
    | None -> None
    | Some q1 ->
      let name = String.sub line (q0 + 1) (q1 - q0 - 1) in
      let key = "\"throughput_mb_per_s\":" in
      let rec find i =
        if i + String.length key > String.length line then None
        else if String.sub line i (String.length key) = key then
          Some (i + String.length key)
        else find (i + 1)
      in
      (match find (q1 + 1) with
      | None -> None
      | Some v0 ->
        let stop = ref v0 in
        while
          !stop < String.length line
          && (match line.[!stop] with
             | '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true
             | _ -> false)
        do
          incr stop
        done;
        (try Some (name, float_of_string (String.trim (String.sub line v0 (!stop - v0))))
         with Failure _ -> None)))

let parse_file path =
  let ic = open_in path in
  let rows = ref [] in
  (* Only rows inside the "workloads" section are performance data;
     later sections ("net", ...) hold counter-only observability
     fields that must not enter the comparison. *)
  let in_workloads = ref false in
  (try
     while true do
       let line = input_line ic in
       if contains line "\"workloads\"" then in_workloads := true
       else if !in_workloads && String.trim line = "}," then in_workloads := false
       else if !in_workloads && contains line "throughput_mb_per_s" then
         match parse_row line with
         | Some row -> rows := row :: !rows
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(* BENCH_<n>.json, sorted by <n>; the two highest are (previous,
   current). *)
let autodetect ~allow_missing =
  let indexed =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter_map (fun f ->
           try Scanf.sscanf f "BENCH_%d.json%!" (fun n -> Some (n, f))
           with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    |> List.sort compare
  in
  match List.rev indexed with
  | (_, cur) :: (_, prev) :: _ -> (prev, cur)
  | _ when allow_missing ->
    (* First PR on a branch, or a fresh checkout: nothing to compare
       against is not a regression. *)
    print_endline
      "check_regress: fewer than two BENCH_<n>.json files, nothing to compare \
       (--allow-missing)";
    exit 0
  | _ ->
    prerr_endline
      "check_regress: need two BENCH_<n>.json files (or pass OLD NEW, or \
       --allow-missing)";
    exit 2

let () =
  let prev_file, cur_file =
    match Sys.argv with
    | [| _ |] -> autodetect ~allow_missing:false
    | [| _; "--allow-missing" |] -> autodetect ~allow_missing:true
    | [| _; a; b |] -> (a, b)
    | _ ->
      prerr_endline "usage: check_regress [--allow-missing | OLD.json NEW.json]";
      exit 2
  in
  let prev = parse_file prev_file and cur = parse_file cur_file in
  Printf.printf "check_regress: %s -> %s (fail on >%.0f%% throughput drop)\n"
    prev_file cur_file (tolerance *. 100.);
  let failed = ref false in
  List.iter
    (fun (name, old_thr) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "  %-28s %8.3f -> (gone)   WARN: workload dropped\n" name old_thr
      | Some new_thr ->
        let delta =
          if old_thr > 0. then (new_thr -. old_thr) /. old_thr *. 100. else 0.
        in
        let bad = old_thr > 0. && new_thr < old_thr *. (1. -. tolerance) in
        if bad then failed := true;
        Printf.printf "  %-28s %8.3f -> %8.3f MB/s  %+7.1f%%%s\n" name old_thr
          new_thr delta
          (if bad then "  REGRESSION" else ""))
    prev;
  List.iter
    (fun (name, new_thr) ->
      if not (List.mem_assoc name prev) then
        Printf.printf "  %-28s     (new) -> %8.3f MB/s\n" name new_thr)
    cur;
  if !failed then begin
    prerr_endline "check_regress: FAIL";
    exit 1
  end
  else print_endline "check_regress: OK"
