(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§9) on the simulated testbed, plus the
   ablations called out in DESIGN.md and a Bechamel microbenchmark of
   the hot paths.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one experiment
     (targets: table1 table2 table3 fig5 fig6 fig7 fig8 fig9 ww
               ablation micro)

   Absolute numbers come from the simulator's calibrated constants
   (see EXPERIMENTS.md); what must match the paper is the SHAPE —
   who wins, by what factor, where it saturates. Paper reference
   values are printed alongside. *)

open Simkit
module T = Workloads.Testbed
module V = Workloads.Vfs

let mb = 1024 * 1024

(* The paper's testbed: 7 Petal servers x 9 RZ29s; AdvFS machine has
   8 local RZ29s. *)
let frangipani_vfs ?(nvram = false) ?config () =
  let t = T.build ~petal_servers:7 ~ndisks:9 ~nvram ~disk_capacity:(128 * mb) () in
  (t, V.of_frangipani (T.add_server t ?config ()))

let advfs_vfs ?(nvram = false) () =
  let host = Cluster.Host.create "advfs" in
  V.of_advfs
    (Advfs.create ~host ~config:{ Advfs.default_config with nvram } ())

let columns = [ "AdvFS Raw"; "AdvFS NVR"; "Frangipani Raw"; "Frangipani NVR" ]

let four_columns (run : V.t -> 'a) : 'a list =
  [
    Sim.run (fun () -> run (advfs_vfs ()));
    Sim.run (fun () -> run (advfs_vfs ~nvram:true ()));
    Sim.run (fun () -> run (snd (frangipani_vfs ())));
    Sim.run (fun () -> run (snd (frangipani_vfs ~nvram:true ())));
  ]

let hrule = String.make 78 '-'

(* --- Table 1: Modified Andrew Benchmark --------------------------------- *)

let table1 () =
  print_endline hrule;
  print_endline "Table 1: Modified Andrew Benchmark, elapsed seconds per phase";
  print_endline
    "(paper: Frangipani is comparable to AdvFS on this workload; NVRAM\n\
    \ helps the metadata-heavy phases)";
  let results = four_columns (fun v -> Workloads.Andrew.run v ~root_name:"mab") in
  Printf.printf "%-20s %14s %14s %14s %14s\n" "Phase" (List.nth columns 0)
    (List.nth columns 1) (List.nth columns 2) (List.nth columns 3);
  let phases = (List.hd results).Workloads.Andrew.phases in
  List.iteri
    (fun i p ->
      Printf.printf "%-20s %14.2f %14.2f %14.2f %14.2f\n"
        p.Workloads.Andrew.phase
        (List.nth (List.nth results 0).Workloads.Andrew.phases i).Workloads.Andrew.seconds
        (List.nth (List.nth results 1).Workloads.Andrew.phases i).Workloads.Andrew.seconds
        (List.nth (List.nth results 2).Workloads.Andrew.phases i).Workloads.Andrew.seconds
        (List.nth (List.nth results 3).Workloads.Andrew.phases i).Workloads.Andrew.seconds)
    phases;
  Printf.printf "%-20s %14.2f %14.2f %14.2f %14.2f\n" "Total"
    (List.nth results 0).Workloads.Andrew.total
    (List.nth results 1).Workloads.Andrew.total
    (List.nth results 2).Workloads.Andrew.total
    (List.nth results 3).Workloads.Andrew.total

(* --- Table 2: Connectathon-style operations ------------------------------- *)

let table2 () =
  print_endline hrule;
  print_endline "Table 2: basic file-system operations, elapsed seconds";
  print_endline
    "(paper: with write-ahead logging both systems have fast creates;\n\
    \ NVRAM removes most synchronous-write latency)";
  let results = four_columns (fun v -> Workloads.Connectathon.run v ~root_name:"cth") in
  Printf.printf "%-20s %6s %14s %14s %14s %14s\n" "Test" "ops" (List.nth columns 0)
    (List.nth columns 1) (List.nth columns 2) (List.nth columns 3);
  List.iteri
    (fun i row ->
      let cell k = (List.nth (List.nth results k) i).Workloads.Connectathon.seconds in
      Printf.printf "%-20s %6d %14.3f %14.3f %14.3f %14.3f\n"
        row.Workloads.Connectathon.test row.Workloads.Connectathon.ops (cell 0)
        (cell 1) (cell 2) (cell 3))
    (List.hd results)

(* --- Table 3: large-file throughput and CPU utilisation ------------------- *)

let table3 () =
  print_endline hrule;
  print_endline "Table 3: single-machine large-file throughput / CPU utilisation";
  print_endline
    "(paper:           Write MB/s  CPU     Read MB/s  CPU\n\
    \  Frangipani          15.3    42%        10.3    25%\n\
    \  AdvFS               13.3    80%        13.2    50%)";
  let run v =
    let w = Workloads.Largefile.write_seq v ~name:"big" ~mb:16 in
    let r = Workloads.Largefile.read_seq v ~name:"big" in
    (w, r)
  in
  let fw, fr = Sim.run (fun () -> run (snd (frangipani_vfs ()))) in
  let aw, ar = Sim.run (fun () -> run (advfs_vfs ())) in
  let open Workloads.Largefile in
  Printf.printf "%-14s %10s %6s %12s %6s\n" "measured:" "Write MB/s" "CPU" "Read MB/s" "CPU";
  Printf.printf "%-14s %10.1f %5.0f%% %12.1f %5.0f%%\n" "Frangipani" fw.mb_per_s
    (100. *. fw.cpu_utilization) fr.mb_per_s (100. *. fr.cpu_utilization);
  Printf.printf "%-14s %10.1f %5.0f%% %12.1f %5.0f%%\n" "AdvFS" aw.mb_per_s
    (100. *. aw.cpu_utilization) ar.mb_per_s (100. *. ar.cpu_utilization);
  (* The paper's small-read aside: 30 processes reading separate 8 KB
     files reach ~80% of the raw-device small-read limit. *)
  let s = Sim.run (fun () -> Workloads.Largefile.small_reads (snd (frangipani_vfs ())) ~nfiles:30) in
  Printf.printf
    "small files:   30 parallel 8 KB uncached reads: %.1f MB/s (paper: 6.3 MB/s)\n"
    s.mb_per_s

(* --- Figure 5: MAB latency vs number of servers ---------------------------- *)

let fig5 () =
  print_endline hrule;
  print_endline "Figure 5: Modified Andrew Benchmark elapsed time vs #servers";
  print_endline
    "(paper: essentially flat — only +8% from 1 to 6 servers, since the\n\
    \ benchmark exhibits almost no write sharing)";
  Printf.printf "%-8s %12s %12s\n" "servers" "avg sec" "vs 1 server";
  let one = ref 0.0 in
  List.iter
    (fun n ->
      let avg =
        Sim.run (fun () ->
            let t = T.build ~petal_servers:7 ~ndisks:9 () in
            let vfss = List.init n (fun i -> (i, V.of_frangipani (T.add_server t ()))) in
            let totals = ref [] in
            let pending = ref n in
            let all = Sim.Ivar.create () in
            List.iter
              (fun (i, v) ->
                Sim.spawn (fun () ->
                    let r =
                      Workloads.Andrew.run v ~root_name:(Printf.sprintf "mab%d" i)
                    in
                    totals := r.Workloads.Andrew.total :: !totals;
                    decr pending;
                    if !pending = 0 then Sim.Ivar.fill all ()))
              vfss;
            Sim.Ivar.read all;
            List.fold_left ( +. ) 0.0 !totals /. float_of_int n)
      in
      if n = 1 then one := avg;
      Printf.printf "%-8d %12.2f %+11.1f%%\n" n avg ((avg /. !one -. 1.0) *. 100.0))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- Figure 6: uncached read scaling ---------------------------------------- *)

let fig6 () =
  print_endline hrule;
  print_endline "Figure 6: aggregate uncached-read throughput vs #servers";
  print_endline "(paper: excellent, near-linear scaling)";
  Printf.printf "%-8s %16s %16s\n" "servers" "aggregate MB/s" "linear would be";
  let nfiles = 8 and fmb = 2 in
  let one = ref 0.0 in
  List.iter
    (fun n ->
      let agg =
        Sim.run (fun () ->
            let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(128 * mb) () in
            let vfss = List.init n (fun _ -> V.of_frangipani (T.add_server t ())) in
            (* One server creates the shared set of files. *)
            let v0 = List.hd vfss in
            let chunk = Bytes.make 65536 'r' in
            List.iter
              (fun f ->
                let inum = v0.V.create ~dir:v0.V.root (Printf.sprintf "f%d" f) in
                for k = 0 to (fmb * mb / 65536) - 1 do
                  v0.V.write inum ~off:(k * 65536) chunk
                done)
              (List.init nfiles Fun.id);
            v0.V.sync ();
            List.iter (fun v -> v.V.drop_caches ()) vfss;
            (* Everybody reads the same set of files, staggered. *)
            let t0 = Sim.now () in
            let pending = ref n in
            let all = Sim.Ivar.create () in
            List.iteri
              (fun i v ->
                Sim.spawn (fun () ->
                    for fo = 0 to nfiles - 1 do
                      let f = (fo + i) mod nfiles in
                      let inum = v.V.lookup ~dir:v.V.root (Printf.sprintf "f%d" f) in
                      for k = 0 to (fmb * mb / 65536) - 1 do
                        ignore (v.V.read inum ~off:(k * 65536) ~len:65536)
                      done
                    done;
                    decr pending;
                    if !pending = 0 then Sim.Ivar.fill all ()))
              vfss;
            Sim.Ivar.read all;
            float_of_int (n * nfiles * fmb) /. Sim.to_sec (Sim.now () - t0))
      in
      if n = 1 then one := agg;
      Printf.printf "%-8d %16.1f %16.1f\n" n agg (!one *. float_of_int n))
    [ 1; 2; 3; 4; 5; 6 ]

(* --- Figure 7: write scaling -------------------------------------------------- *)

let fig7 () =
  print_endline hrule;
  print_endline "Figure 7: aggregate write throughput vs #servers (private files)";
  print_endline
    "(paper: scales until the Petal servers' links saturate; the virtual\n\
    \ disk is replicated, so each write turns into two Petal writes)";
  Printf.printf "%-8s %16s %16s\n" "servers" "aggregate MB/s" "linear would be";
  let fmb = 8 in
  let one = ref 0.0 in
  List.iter
    (fun n ->
      let agg =
        Sim.run (fun () ->
            let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(256 * mb) () in
            let vfss = List.init n (fun _ -> V.of_frangipani (T.add_server t ())) in
            let t0 = Sim.now () in
            let pending = ref n in
            let all = Sim.Ivar.create () in
            List.iteri
              (fun i v ->
                Sim.spawn (fun () ->
                    let inum = v.V.create ~dir:v.V.root (Printf.sprintf "w%d" i) in
                    let chunk = Bytes.make 65536 'w' in
                    for k = 0 to (fmb * mb / 65536) - 1 do
                      v.V.write inum ~off:(k * 65536) chunk
                    done;
                    v.V.sync ();
                    decr pending;
                    if !pending = 0 then Sim.Ivar.fill all ()))
              vfss;
            Sim.Ivar.read all;
            float_of_int (n * fmb) /. Sim.to_sec (Sim.now () - t0))
      in
      if n = 1 then one := agg;
      Printf.printf "%-8d %16.1f %16.1f\n" n agg (!one *. float_of_int n))
    [ 1; 2; 3; 4; 5; 6 ]

(* --- Figures 8/9 and write/write sharing -------------------------------------- *)

let contention_run ~config ~readers ~write_bytes =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:7 ~ndisks:9 () in
      let writer = V.of_frangipani (T.add_server t ~config ()) in
      let rs = List.init readers (fun _ -> V.of_frangipani (T.add_server t ~config ())) in
      Workloads.Contention.readers_vs_writer ~reader_vfss:rs ~writer_vfs:writer
        ~write_bytes ~duration:(Sim.sec 60.0))

let fig8 () =
  print_endline hrule;
  print_endline "Figure 8: reader/writer contention - aggregate read MB/s vs #readers";
  print_endline
    "(paper: with read-ahead the curve flattens around 2 MB/s — revoked\n\
    \ locks waste the prefetched data; disabling read-ahead restores scaling)";
  let base = Frangipani.Ctx.default_config in
  Printf.printf "%-8s %20s %20s\n" "readers" "read-ahead ON MB/s" "read-ahead OFF MB/s";
  List.iter
    (fun n ->
      let on = contention_run ~config:base ~readers:n ~write_bytes:mb in
      let off =
        contention_run
          ~config:{ base with Frangipani.Ctx.read_ahead = 0 }
          ~readers:n ~write_bytes:mb
      in
      Printf.printf "%-8d %20.2f %20.2f\n" n on.Workloads.Contention.read_mb_per_s
        off.Workloads.Contention.read_mb_per_s)
    [ 1; 2; 3; 4; 5; 6 ]

let fig9 () =
  print_endline hrule;
  print_endline "Figure 9: shared-data size vs read throughput (read-ahead off)";
  print_endline
    "(paper: the less data the writer rewrites, the faster it yields the\n\
    \ lock, and the more the readers get through)";
  let config = { Frangipani.Ctx.default_config with Frangipani.Ctx.read_ahead = 0 } in
  Printf.printf "%-8s %14s %14s %14s\n" "readers" "8 KB MB/s" "16 KB MB/s" "64 KB MB/s";
  List.iter
    (fun n ->
      let r sz = (contention_run ~config ~readers:n ~write_bytes:sz).Workloads.Contention.read_mb_per_s in
      Printf.printf "%-8d %14.2f %14.2f %14.2f\n" n (r 8192) (r 16384) (r 65536))
    [ 1; 2; 3; 4; 5; 6 ]

let ww () =
  print_endline hrule;
  print_endline "Write/write sharing (§9.4, third experiment):";
  print_endline
    "(paper: servers writing disjoint regions of one file still serialise\n\
    \ on the whole-file lock, each write forcing a flush at the holder)";
  Printf.printf "%-8s %20s\n" "writers" "aggregate write MB/s";
  List.iter
    (fun n ->
      let thr =
        Sim.run (fun () ->
            let t = T.build ~petal_servers:7 ~ndisks:9 () in
            let ws = List.init n (fun _ -> V.of_frangipani (T.add_server t ())) in
            Workloads.Contention.writers_sharing ~writer_vfss:ws
              ~duration:(Sim.sec 60.0))
      in
      Printf.printf "%-8d %20.2f\n" n thr)
    [ 1; 2; 3; 4; 5; 6 ]

(* --- ablations ------------------------------------------------------------------ *)

let ablation () =
  print_endline hrule;
  print_endline "Ablations of the design choices called out in DESIGN.md";
  (* a) synchronous vs asynchronous logging (§4 option). *)
  let creates config =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:7 ~ndisks:9 () in
        let v = V.of_frangipani (T.add_server t ~config ()) in
        let t0 = Sim.now () in
        for i = 0 to 99 do
          ignore (v.V.create ~dir:v.V.root (Printf.sprintf "f%d" i))
        done;
        Sim.to_sec (Sim.now () - t0) *. 10.0 (* ms per create *))
  in
  let base = Frangipani.Ctx.default_config in
  Printf.printf "a) metadata logging: async %.2f ms/create, sync %.2f ms/create\n"
    (creates base)
    (creates { base with Frangipani.Ctx.synchronous_log = true });
  (* b) synchronous logging with NVRAM at the Petal servers. *)
  let creates_nvram =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:7 ~ndisks:9 ~nvram:true () in
        let v =
          V.of_frangipani
            (T.add_server t ~config:{ base with Frangipani.Ctx.synchronous_log = true } ())
        in
        let t0 = Sim.now () in
        for i = 0 to 99 do
          ignore (v.V.create ~dir:v.V.root (Printf.sprintf "f%d" i))
        done;
        Sim.to_sec (Sim.now () - t0) *. 10.0)
  in
  Printf.printf "b) sync logging + NVRAM: %.2f ms/create (NVRAM absorbs the latency)\n"
    creates_nvram;
  (* c) replication factor. *)
  let write_thr nrep =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:7 ~ndisks:9 ~nrep ~disk_capacity:(128 * mb) () in
        let v = V.of_frangipani (T.add_server t ()) in
        (Workloads.Largefile.write_seq v ~name:"big" ~mb:16).Workloads.Largefile.mb_per_s)
  in
  Printf.printf "c) replication: 1 copy %.1f MB/s, 2 copies %.1f MB/s write\n"
    (write_thr 1) (write_thr 2);
  (* d) lock granularity under read/write sharing (the paper's
     future-work experiment). *)
  let shared granularity =
    (contention_run
       ~config:{ base with Frangipani.Ctx.block_locks = granularity; read_ahead = 0 }
       ~readers:4 ~write_bytes:65536)
      .Workloads.Contention.read_mb_per_s
  in
  Printf.printf
    "d) 4 readers + writer: whole-file locks %.2f MB/s, block locks %.2f MB/s read\n"
    (shared false) (shared true);
  (* e) read-ahead depth (uncontended). *)
  Printf.printf "e) read-ahead depth vs uncached sequential read:\n";
  List.iter
    (fun depth ->
      let r =
        Sim.run (fun () ->
            let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(128 * mb) () in
            let v =
              V.of_frangipani
                (T.add_server t ~config:{ base with Frangipani.Ctx.read_ahead = depth } ())
            in
            ignore (Workloads.Largefile.write_seq v ~name:"big" ~mb:8);
            (Workloads.Largefile.read_seq v ~name:"big").Workloads.Largefile.mb_per_s)
      in
      Printf.printf "   depth %3d blocks: %6.1f MB/s\n" depth r)
    [ 0; 16; 32; 64; 128 ];
  (* f) the §2.2 client/server configuration: what the extra protocol
     hop costs a remote client versus running on the server itself. *)
  let local_t, remote_t =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:7 ~ndisks:9 () in
        let fs = T.add_server t () in
        Frangipani.Export.serve fs (T.rpc_of t fs);
        let _, crpc = T.fresh_client t "remote" in
        let c = Frangipani.Export.connect ~rpc:crpc ~server:(T.addr_of t fs) in
        let chunk = Bytes.make 8192 'x' in
        let bench_local () =
          let t0 = Sim.now () in
          for i = 0 to 49 do
            let f = Frangipani.Fs.create fs ~dir:Frangipani.Fs.root (Printf.sprintf "l%d" i) in
            Frangipani.Fs.write fs f ~off:0 chunk;
            ignore (Frangipani.Fs.read fs f ~off:0 ~len:8192)
          done;
          Sim.to_sec (Sim.now () - t0)
        in
        let bench_remote () =
          let t0 = Sim.now () in
          for i = 0 to 49 do
            let f = Frangipani.Export.create c ~dir:Frangipani.Export.root (Printf.sprintf "r%d" i) in
            Frangipani.Export.write c f ~off:0 chunk;
            ignore (Frangipani.Export.read c f ~off:0 ~len:8192)
          done;
          Sim.to_sec (Sim.now () - t0)
        in
        (bench_local (), bench_remote ()))
  in
  Printf.printf
    "f) §2.2 remote clients: 50 create+write+read cycles, local %.0f ms vs \
     remote %.0f ms (+%.0f%% protocol hop)\n"
    (local_t *. 1000.) (remote_t *. 1000.)
    ((remote_t /. local_t -. 1.0) *. 100.);
  (* g) read-ahead submission: the UFS-derived one-cluster-at-a-time
     prefetch the paper borrowed vs one batched scatter-gather
     submission of the whole window. *)
  let seq_read serial =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(128 * mb) () in
        let v =
          V.of_frangipani
            (T.add_server t
               ~config:{ base with Frangipani.Ctx.read_ahead_serial = serial }
               ())
        in
        ignore (Workloads.Largefile.write_seq v ~name:"big" ~mb:8);
        (Workloads.Largefile.read_seq v ~name:"big").Workloads.Largefile.mb_per_s)
  in
  Printf.printf
    "g) read-ahead submission: serial (UFS-style) %.1f MB/s, batched %.1f MB/s \
     sequential read\n"
    (seq_read true) (seq_read false)

(* --- BENCH_2.json: machine-readable perf trajectory -------------------------------- *)

(* Every PR appends a BENCH_<n>.json so later PRs can diff throughput
   and latency percentiles against this one (bench/check_regress.exe
   does exactly that and fails on a >20% throughput drop). Latencies
   are simulated milliseconds; throughput is MB/s of simulated
   time. *)

let percentile_ms samples p =
  match samples with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let ms_of t = Sim.to_sec t *. 1000.0

(* Per-workload Petal driver counters: what a workload cost in Petal
   round trips and simulated device time, and what the read- and
   write-side coalescers saved (plus the NVRAM destage elevator's
   batch count, a global counter snapshotted like the rest). [prev]
   is the snapshot taken before the workload. Collected into the
   json's counter-only "petal_io" section. *)
let petal_rows :
    (string * (int * int * int * int * int * int * int)) list ref =
  ref []

let print_petal_delta name ?(destage0 = 0) (prev : Petal.Client.stats)
    (s : Petal.Client.stats) =
  let rp = s.read_pieces - prev.read_pieces
  and rr = s.read_rpcs - prev.read_rpcs
  and rc = s.read_coalesced - prev.read_coalesced
  and wp = s.write_pieces - prev.write_pieces
  and wr = s.write_rpcs - prev.write_rpcs
  and wc = s.write_coalesced - prev.write_coalesced in
  let destage = Blockdev.Nvram.destage_batches () - destage0 in
  petal_rows := !petal_rows @ [ (name, (rp, rr, rc, wp, wr, wc, destage)) ];
  Printf.printf
    "  petal[%-22s] reads %5d (%6.3fs)  writes %5d (%6.3fs)  rd p/rpc/coal \
     %d/%d/%d  wr p/rpc/coal %d/%d/%d  destage %d\n"
    name (s.reads - prev.reads)
    (s.read_seconds -. prev.read_seconds)
    (s.writes - prev.writes)
    (s.write_seconds -. prev.write_seconds)
    rp rr rc wp wr wc destage

(* Per-workload log-pipeline counters (the wal section): how many
   sector groups the flush path submitted, how often formatting
   overlapped an in-flight group, how often the circular log filled
   enough to stall a writer, and how many reclaim rounds ran.
   Counter-only — check_regress ignores the section. *)
let wal_rows : (string * (int * int * int * int)) list ref = ref []

let print_wal_delta name (p : Frangipani.Wal.wal_stats)
    (s : Frangipani.Wal.wal_stats) =
  let row =
    ( s.Frangipani.Wal.flush_groups - p.Frangipani.Wal.flush_groups,
      s.Frangipani.Wal.pipeline_overlaps - p.Frangipani.Wal.pipeline_overlaps,
      s.Frangipani.Wal.log_pressure_stalls
      - p.Frangipani.Wal.log_pressure_stalls,
      s.Frangipani.Wal.reclaim_rounds - p.Frangipani.Wal.reclaim_rounds )
  in
  let groups, overlaps, stalls, reclaims = row in
  wal_rows := !wal_rows @ [ (name, row) ];
  Printf.printf
    "  wal  [%-22s] groups %5d  overlaps %5d  log-pressure stalls %3d  \
     reclaims %3d\n"
    name groups overlaps stalls reclaims

(* Per-workload network counters: what a workload cost in RPC
   attempts, timeouts and retransmissions, and how often lease
   renewal brushed the §6 hazard. Also collected into the json's
   "net" section (counter-only — check_regress reads only the
   "workloads" section). *)
let net_rows : (string * (int * int * int * int * int * int * int)) list ref =
  ref []

let print_net_delta name (p_rpc : Cluster.Rpc.stats) (p_cl : Locksvc.Clerk.stats)
    (rpc : Cluster.Rpc.stats) (cl : Locksvc.Clerk.stats) =
  let row =
    ( rpc.calls - p_rpc.calls,
      rpc.attempts - p_rpc.attempts,
      rpc.timeouts - p_rpc.timeouts,
      rpc.retries - p_rpc.retries,
      rpc.dups_suppressed - p_rpc.dups_suppressed,
      cl.renew_rounds - p_cl.renew_rounds,
      cl.renew_misses - p_cl.renew_misses )
  in
  let calls, attempts, timeouts, retries, dups, rounds, misses = row in
  net_rows := !net_rows @ [ (name, row) ];
  Printf.printf
    "  net  [%-22s] calls %6d  attempts %6d  timeouts %4d  retries %4d  \
     dups %4d  renew %d rounds / %d missed\n"
    name calls attempts timeouts retries dups rounds misses

(* The machine-readable snapshot this PR emits. The "pr" field is
   derived from the filename (BENCH_5.json shipped with a hand-typed
   "pr": 4 — wrong, and silently so); keeping one constant makes the
   two impossible to disagree. *)
let bench_out = "BENCH_10.json"
let bench_pr = Scanf.sscanf bench_out "BENCH_%d.json" (fun n -> n)

(* Row stores for the emitter: json_bench (workloads, reconf) runs
   before simbench and scale in file order, but the JSON file is
   written by [write_json] below, after all three have populated
   these. *)
let json_rows : (string * float * int * float * float) list ref = ref []
let reconf_rows : (string * float * int * int) list ref = ref []

let json_bench () =
  print_endline hrule;
  Printf.printf "%s: throughput + latency percentiles per workload\n" bench_out;
  let results = json_rows in
  let record name ~bytes ~elapsed lats =
    let thr =
      if elapsed > 0 then float_of_int bytes /. 1e6 /. Sim.to_sec elapsed else 0.0
    in
    results :=
      (name, thr, List.length lats, percentile_ms lats 0.5, percentile_ms lats 0.99)
      :: !results
  in
  (* Frangipani large-file sequential write + read, per-64KB-op latency. *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(128 * mb) () in
      let fs = T.add_server t () in
      let v = V.of_frangipani fs in
      let unit_b = 65536 in
      let units = 16 * mb / unit_b in
      let data = Bytes.make unit_b 'J' in
      let inum = v.V.create ~dir:v.V.root "jbig" in
      let lats = ref [] in
      let p0 = Frangipani.Fs.petal_stats fs in
      let w0 = Frangipani.Fs.wal_stats fs in
      let n0 = Frangipani.Fs.net_stats fs and l0 = Frangipani.Fs.lease_stats fs in
      let t0 = Sim.now () in
      for i = 0 to units - 1 do
        let s = Sim.now () in
        v.V.write inum ~off:(i * unit_b) data;
        lats := ms_of (Sim.now () - s) :: !lats
      done;
      v.V.sync ();
      record "largefile_write_16mb" ~bytes:(units * unit_b)
        ~elapsed:(Sim.now () - t0) !lats;
      print_petal_delta "largefile_write_16mb" p0 (Frangipani.Fs.petal_stats fs);
      print_wal_delta "largefile_write_16mb" w0 (Frangipani.Fs.wal_stats fs);
      print_net_delta "largefile_write_16mb" n0 l0 (Frangipani.Fs.net_stats fs)
        (Frangipani.Fs.lease_stats fs);
      v.V.drop_caches ();
      let lats = ref [] in
      let p0 = Frangipani.Fs.petal_stats fs in
      let w0 = Frangipani.Fs.wal_stats fs in
      let n0 = Frangipani.Fs.net_stats fs and l0 = Frangipani.Fs.lease_stats fs in
      let t0 = Sim.now () in
      for i = 0 to units - 1 do
        let s = Sim.now () in
        ignore (v.V.read inum ~off:(i * unit_b) ~len:unit_b);
        lats := ms_of (Sim.now () - s) :: !lats
      done;
      record "largefile_read_16mb" ~bytes:(units * unit_b)
        ~elapsed:(Sim.now () - t0) !lats;
      print_petal_delta "largefile_read_16mb" p0 (Frangipani.Fs.petal_stats fs);
      print_wal_delta "largefile_read_16mb" w0 (Frangipani.Fs.wal_stats fs);
      print_net_delta "largefile_read_16mb" n0 l0 (Frangipani.Fs.net_stats fs)
        (Frangipani.Fs.lease_stats fs));
  (* 30 parallel uncached 8 KB reads (paper §9.2 aside). *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:7 ~ndisks:9 ~disk_capacity:(128 * mb) () in
      let fs = T.add_server t () in
      let v = V.of_frangipani fs in
      let files =
        List.init 30 (fun i ->
            let inum = v.V.create ~dir:v.V.root (Printf.sprintf "js%d" i) in
            v.V.write inum ~off:0 (Bytes.make 8192 's');
            inum)
      in
      v.V.sync ();
      v.V.drop_caches ();
      let lats = ref [] in
      let p0 = Frangipani.Fs.petal_stats fs in
      let w0 = Frangipani.Fs.wal_stats fs in
      let n0 = Frangipani.Fs.net_stats fs and l0 = Frangipani.Fs.lease_stats fs in
      let t0 = Sim.now () in
      let pending = ref (List.length files) in
      let all = Sim.Ivar.create () in
      List.iter
        (fun inum ->
          Sim.spawn (fun () ->
              let s = Sim.now () in
              ignore (v.V.read inum ~off:0 ~len:8192);
              lats := ms_of (Sim.now () - s) :: !lats;
              decr pending;
              if !pending = 0 then Sim.Ivar.fill all ()))
        files;
      Sim.Ivar.read all;
      record "small_reads_30x8kb" ~bytes:(30 * 8192) ~elapsed:(Sim.now () - t0) !lats;
      print_petal_delta "small_reads_30x8kb" p0 (Frangipani.Fs.petal_stats fs);
      print_wal_delta "small_reads_30x8kb" w0 (Frangipani.Fs.wal_stats fs);
      print_net_delta "small_reads_30x8kb" n0 l0 (Frangipani.Fs.net_stats fs)
        (Frangipani.Fs.lease_stats fs));
  (* Raw Petal write latency: one chunk vs a 3-chunk scatter. The
     acceptance check for the async client is the ratio of these two —
     a multi-chunk write should cost ~1 round-trip, not N. The Petal
     servers run with NVRAM (the paper's PrestoServe boards, §9.2):
     writes are acknowledged from non-volatile buffer and the destage
     elevator retires them to disk in sorted, coalesced batches, so
     these rows measure the network/protocol path rather than raw
     platter latency. *)
  let petal_write name ~reps ~len =
    Sim.run (fun () ->
        let net = Cluster.Net.create () in
        let tb = Petal.Testbed.build ~net ~nservers:4 ~ndisks:3 ~nvram:true () in
        let ch = Cluster.Host.create "jclient" in
        let rpc = Cluster.Rpc.create (Cluster.Net.attach net ch) in
        let c = Petal.Testbed.client tb ~rpc in
        let vd = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
        let data = Bytes.make len 'p' in
        let lats = ref [] in
        let p0 = Petal.Client.op_stats vd in
        let d0 = Blockdev.Nvram.destage_batches () in
        let t0 = Sim.now () in
        for i = 0 to reps - 1 do
          let s = Sim.now () in
          Petal.Client.write vd ~off:(i * 4 * Petal.Protocol.chunk_bytes) data;
          lats := ms_of (Sim.now () - s) :: !lats
        done;
        record name ~bytes:(reps * len) ~elapsed:(Sim.now () - t0) !lats;
        print_petal_delta name ~destage0:d0 p0 (Petal.Client.op_stats vd))
  in
  petal_write "petal_write_64kb_1chunk" ~reps:20 ~len:Petal.Protocol.chunk_bytes;
  petal_write "petal_write_192kb_3chunks" ~reps:20 ~len:(3 * Petal.Protocol.chunk_bytes);
  (* Reconfiguration drain cost: how long the Paxos-agreed ownership
     handoff takes to stream a settled 8 MB store to a joining (then
     from a leaving) member, and how much data moves. Collected into
     the json's "reconf" section (counter-only observability). *)
  Sim.run (fun () ->
      let net = Cluster.Net.create () in
      let tb = Petal.Testbed.build ~net ~nservers:5 ~nactive:4 ~ndisks:3 () in
      let ch = Cluster.Host.create "rclient" in
      let rpc = Cluster.Rpc.create (Cluster.Net.attach net ch) in
      let c = Petal.Testbed.client tb ~rpc in
      let vd = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
      let data = Bytes.make Petal.Protocol.chunk_bytes 'r' in
      for i = 0 to 127 do
        Petal.Client.write vd ~off:(i * Petal.Protocol.chunk_bytes) data
      done;
      let servers = tb.Petal.Testbed.servers in
      let sum f = Array.fold_left (fun acc s -> acc + f s) 0 servers in
      let await_epoch e =
        let rec go n =
          let me, _ = Petal.Client.fetch_map c in
          if me < e && n > 0 then begin
            Sim.sleep (Sim.sec 1.0);
            go (n - 1)
          end
        in
        go 600
      in
      let measure name f =
        let p0 = sum Petal.Server.xfer_push_count in
        let b0 = sum Petal.Server.xfer_bytes_pushed in
        let t0 = Sim.now () in
        f ();
        let row =
          ( name,
            Sim.to_sec (Sim.now () - t0),
            sum Petal.Server.xfer_push_count - p0,
            sum Petal.Server.xfer_bytes_pushed - b0 )
        in
        reconf_rows := !reconf_rows @ [ row ];
        let _, secs, pushes, bytes = row in
        Printf.printf "  reconf[%-13s] drain %6.2f s  pushes %5d  bytes %9d\n"
          name secs pushes bytes
      in
      measure "join_standby" (fun () ->
          Petal.Client.add_server c ~idx:4;
          await_epoch 1);
      measure "drain_member" (fun () ->
          Petal.Client.remove_server c ~idx:0;
          await_epoch 2));
  List.iter
    (fun (name, thr, ops, p50, p99) ->
      Printf.printf "%-28s %8.1f MB/s %5d ops  p50 %8.3f ms  p99 %8.3f ms\n" name
        thr ops p50 p99)
    (List.rev !results)

(* --- simbench: simulation-kernel microbenchmarks ----------------------------------- *)

(* Events/sec of the simkit kernel itself, isolated from the file
   system: the scale experiments live or die on this number, so it is
   measured (host wall clock) and regression-gated like any I/O path.
   Each workload stresses one kernel hot path with a known op count;
   ns/op = host seconds / ops. Rows are collected for the json's
   "sim" section. *)

let simbench_rows : (string * int * float) list ref = ref []

let sim_row name ops f =
  (* Start each measurement from a compacted heap: these rows are
     regression-gated, so they must not depend on how much garbage the
     experiments that happened to run earlier in the process left
     behind. *)
  Gc.compact ();
  let t0 = Sys.time () in
  f ();
  let dt = Sys.time () -. t0 in
  let ns = dt *. 1e9 /. float_of_int ops in
  simbench_rows := !simbench_rows @ [ (name, ops, ns) ];
  Printf.printf "  %-24s %9d ops %10.1f ns/op %10.2f Mops/s\n" name ops ns
    (float_of_int ops /. dt /. 1e6)

let simbench () =
  print_endline hrule;
  print_endline
    "simbench: simulation-kernel hot paths (host wall clock, ns per op)";
  (* Timer churn: the RPC-timeout pattern — armed, then almost always
     cancelled before firing. *)
  sim_row "timer_churn" 300_000 (fun () ->
      Sim.run (fun () ->
          for i = 1 to 300_000 do
            let t = Sim.Timer.after (Sim.us 100) ignore in
            if i mod 16 <> 0 then Sim.Timer.cancel t;
            if i mod 64 = 0 then Sim.sleep (Sim.us 10)
          done;
          Sim.sleep (Sim.ms 1)));
  (* Mailbox ping-pong: two processes bouncing a token. One op = one
     send + one recv. *)
  sim_row "mailbox_pingpong" 400_000 (fun () ->
      Sim.run (fun () ->
          let a = Sim.Mailbox.create () and b = Sim.Mailbox.create () in
          Sim.spawn (fun () ->
              for _ = 1 to 200_000 do
                let v = Sim.Mailbox.recv a in
                Sim.Mailbox.send b v
              done);
          for i = 1 to 200_000 do
            Sim.Mailbox.send a i;
            ignore (Sim.Mailbox.recv b);
            if i mod 256 = 0 then Sim.sleep (Sim.us 1)
          done));
  (* Resource contention: 16 processes over a 2-server resource. *)
  sim_row "resource_contention" 160_000 (fun () ->
      Sim.run (fun () ->
          let r = Sim.Resource.create ~capacity:2 "bench" in
          let left = ref 16 in
          let all = Sim.Ivar.create () in
          for _ = 1 to 16 do
            Sim.spawn (fun () ->
                for _ = 1 to 10_000 do
                  Sim.Resource.use r (Sim.us 2)
                done;
                decr left;
                if !left = 0 then Sim.Ivar.fill all ())
          done;
          Sim.Ivar.read all));
  (* Process spawn/teardown: the per-message fiber cost. *)
  sim_row "spawn_churn" 200_000 (fun () ->
      Sim.run (fun () ->
          for i = 1 to 200_000 do
            Sim.spawn (fun () -> Sim.sleep (Sim.us 1));
            if i mod 128 = 0 then Sim.sleep (Sim.us 2)
          done;
          Sim.sleep (Sim.ms 1)));
  (* Full messaging stack: Rpc.call round trips between two hosts. *)
  sim_row "rpc_pingpong" 20_000 (fun () ->
      Sim.run (fun () ->
          let net = Cluster.Net.create () in
          let hs = Cluster.Host.create "srv" in
          let rpcs = Cluster.Rpc.create (Cluster.Net.attach net hs) in
          let hc = Cluster.Host.create "cli" in
          let rpcc = Cluster.Rpc.create (Cluster.Net.attach net hc) in
          Cluster.Rpc.add_handler rpcs (fun ~src:_ _ -> Some (Petal.Protocol.Write_ok, 32));
          let dst = Cluster.Rpc.addr rpcs in
          for _ = 1 to 20_000 do
            match Cluster.Rpc.call rpcc ~dst ~size:64 Petal.Protocol.Map_req with
            | Ok _ -> ()
            | Error `Timeout -> failwith "simbench: rpc timeout"
          done))

(* --- scale: 64/96/128-server cluster experiments ----------------------------------- *)

(* The paper's scaling curves (Figures 6-7) stop at 7 machines; these
   runs push a multi-tenant Zipf workload across 64/96/128 Frangipani
   servers over a proportionally grown Petal. Alongside the
   file-system numbers, the simulator's own capacity — events/sec of
   host time and host wall-clock per simulated second — is recorded
   as a first-class, regression-gated metric. *)

let scale_rows :
    (int * Workloads.Multitenant.result * Sim.stats * float) list ref =
  ref []

let scale_one n =
  Gc.compact () (* same rationale as [sim_row]: gated metric *);
  let host0 = Sys.time () in
  let r, st =
    Sim.run (fun () ->
        let t =
          T.build ~petal_servers:(max 4 (n / 4)) ~ndisks:4
            ~disk_capacity:(512 * mb) ()
        in
        let vfss = List.init n (fun _ -> V.of_frangipani (T.add_server t ())) in
        let r = Workloads.Multitenant.run vfss () in
        (r, Sim.stats ()))
  in
  let host_secs = Sys.time () -. host0 in
  Printf.printf "    [sim] events %d spawns %d skipped %d heap_len %d\n%!"
    st.Sim.events st.Sim.spawns st.Sim.skipped st.Sim.heap_len;
  scale_rows := !scale_rows @ [ (n, r, st, host_secs) ];
  let open Workloads.Multitenant in
  Printf.printf
    "  %3d servers: %6d ops %5d files %8.0f ops/s %7.2f MB/s | sim %6.2f s  \
     host %6.2f s  %9.0f ev/s  %6.3f host-s/sim-s\n%!"
    n r.ops r.distinct_files r.ops_per_sec r.mb_per_s r.seconds host_secs
    (float_of_int st.Sim.events /. host_secs)
    (host_secs /. r.seconds)

let scale () =
  print_endline hrule;
  print_endline
    "scale: multi-tenant Zipf workload, 64/96/128 Frangipani servers";
  print_endline
    "(beyond the paper's 7-machine testbed; near-linear aggregate scaling\n\
    \ expected while Petal capacity grows proportionally)";
  List.iter scale_one [ 64; 96; 128 ]

(* --- soak: composed-nemesis invariant scenarios ------------------------------------- *)

(* A bench-sized slice of the soak harness (the 20-seed x 1-hour run
   is test_soak_full.exe): the everything-composed scripted round plus
   one short seeded round. Counters only — the numbers that matter
   for the trajectory are how much invariant checking ran and how
   long the worst hot-chunk cutover took. *)
let soak_rows : (string * Workloads.Soak.outcome * float) list ref = ref []

let soak_bench () =
  print_endline hrule;
  print_endline
    "soak: composed-nemesis rounds with continuous invariants (counters; the\n\
    \ 20-seed x 1-simulated-hour soak is test/test_soak_full.exe)";
  let module Soak = Workloads.Soak in
  let one name ?duration ?fs_servers spec =
    let t0 = Sys.time () in
    let o = Soak.run ?duration ?fs_servers spec in
    let host = Sys.time () -. t0 in
    (match Soak.failures o with
    | [] -> ()
    | f :: _ -> Printf.printf "  %s: FAILED: %s\n" name f);
    Printf.printf
      "  %-16s %4.2f sim-h in %5.1f host-s  acked %5d  freeze rej %4d  \
       cutover %5.1f s  checks %3d  violations %d\n"
      name o.Soak.sim_hours host o.Soak.acked o.Soak.freeze_rejects
      (Sim.to_sec o.Soak.max_cutover_ns)
      o.Soak.checks_run
      (List.length o.Soak.violations);
    soak_rows := !soak_rows @ [ (name, o, host) ]
  in
  one "composed_quick" (Soak.Scripted "composed_quick");
  one "seeded_600s" ~duration:(Sim.sec 600.0) ~fs_servers:16 (Soak.Random 0)

(* --- machine-readable snapshot ------------------------------------------------------ *)

(* Writes [bench_out] from the rows the other experiments collected,
   running any producer that has not run yet (so `bench json` alone
   still emits a complete file). Sections: "workloads" (+"net",
   "reconf") from json_bench, "sim" from simbench, "scale" from the
   cluster-scaling runs, "soak" from the composed-nemesis rounds.
   check_regress gates "workloads", "sim", "scale" and "soak". *)
let write_json () =
  if !json_rows = [] then json_bench ();
  if !simbench_rows = [] then simbench ();
  if !scale_rows = [] then scale ();
  if !soak_rows = [] then soak_bench ();
  let rows = List.rev !json_rows in
  let oc = open_out bench_out in
  Printf.fprintf oc "{\n  \"pr\": %d,\n  \"workloads\": {\n" bench_pr;
  List.iteri
    (fun i (name, thr, ops, p50, p99) ->
      Printf.fprintf oc
        "    %S: { \"throughput_mb_per_s\": %.3f, \"ops\": %d, \"p50_ms\": %.3f, \
         \"p99_ms\": %.3f }%s\n"
        name thr ops p50 p99
        (if i = List.length rows - 1 then "" else ","))
    rows;
  (* Counter-only observability sections: check_regress does not gate
     the "petal_io", "wal", "net" or "reconf" rows. *)
  Printf.fprintf oc "  },\n  \"petal_io\": {\n";
  List.iteri
    (fun i (name, (rp, rr, rc, wp, wr, wc, destage)) ->
      Printf.fprintf oc
        "    %S: { \"read_pieces\": %d, \"read_rpcs\": %d, \"read_coalesced\": \
         %d, \"write_pieces\": %d, \"write_rpcs\": %d, \"write_coalesced\": \
         %d, \"destage_batches\": %d }%s\n"
        name rp rr rc wp wr wc destage
        (if i = List.length !petal_rows - 1 then "" else ","))
    !petal_rows;
  Printf.fprintf oc "  },\n  \"wal\": {\n";
  List.iteri
    (fun i (name, (groups, overlaps, stalls, reclaims)) ->
      Printf.fprintf oc
        "    %S: { \"flush_groups\": %d, \"pipeline_overlaps\": %d, \
         \"log_pressure_stalls\": %d, \"reclaim_rounds\": %d }%s\n"
        name groups overlaps stalls reclaims
        (if i = List.length !wal_rows - 1 then "" else ","))
    !wal_rows;
  Printf.fprintf oc "  },\n  \"net\": {\n";
  List.iteri
    (fun i (name, (calls, attempts, timeouts, retries, dups, rounds, misses)) ->
      Printf.fprintf oc
        "    %S: { \"rpc_calls\": %d, \"rpc_attempts\": %d, \"rpc_timeouts\": \
         %d, \"rpc_retries\": %d, \"dups_suppressed\": %d, \"renew_rounds\": \
         %d, \"renew_misses\": %d }%s\n"
        name calls attempts timeouts retries dups rounds misses
        (if i = List.length !net_rows - 1 then "" else ","))
    !net_rows;
  Printf.fprintf oc "  },\n  \"reconf\": {\n";
  List.iteri
    (fun i (name, secs, pushes, bytes) ->
      Printf.fprintf oc
        "    %S: { \"drain_seconds\": %.3f, \"chunks_pushed\": %d, \
         \"bytes_migrated\": %d }%s\n"
        name secs pushes bytes
        (if i = List.length !reconf_rows - 1 then "" else ","))
    !reconf_rows;
  (* The "soak" rows are simulated-time counters, so deterministic;
     check_regress gates invariant_checks and max_cutover_s. *)
  Printf.fprintf oc "  },\n  \"soak\": {\n";
  List.iteri
    (fun i (name, (o : Workloads.Soak.outcome), host) ->
      Printf.fprintf oc
        "    %S: { \"sim_hours\": %.2f, \"host_seconds\": %.1f, \"acked\": %d, \
         \"failed_ops\": %d, \"freeze_rejects\": %d, \"freeze_waits\": %d, \
         \"max_cutover_s\": %.3f, \"invariant_checks\": %d, \"violations\": \
         %d, \"wal_reclaims\": %d, \"log_replays\": %d }%s\n"
        name o.Workloads.Soak.sim_hours host o.Workloads.Soak.acked
        o.Workloads.Soak.failed_ops o.Workloads.Soak.freeze_rejects
        o.Workloads.Soak.freeze_waits
        (Sim.to_sec o.Workloads.Soak.max_cutover_ns)
        o.Workloads.Soak.checks_run
        (List.length o.Workloads.Soak.violations)
        o.Workloads.Soak.wal_reclaims o.Workloads.Soak.replays
        (if i = List.length !soak_rows - 1 then "" else ","))
    !soak_rows;
  Printf.fprintf oc "  },\n  \"sim\": {\n";
  List.iteri
    (fun i (name, ops, ns) ->
      Printf.fprintf oc "    %S: { \"ops\": %d, \"ns_per_op\": %.1f }%s\n" name
        ops ns
        (if i = List.length !simbench_rows - 1 then "" else ","))
    !simbench_rows;
  Printf.fprintf oc "  },\n  \"scale\": {\n";
  List.iteri
    (fun i (n, r, st, host_secs) ->
      let open Workloads.Multitenant in
      Printf.fprintf oc
        "    \"servers_%d\": { \"ops\": %d, \"distinct_files\": %d, \
         \"fs_ops_per_sec\": %.1f, \"mb_per_s\": %.3f, \"sim_seconds\": %.3f, \
         \"host_seconds\": %.3f, \"sim_events\": %d, \"events_per_sec\": %.0f, \
         \"host_sec_per_sim_sec\": %.4f }%s\n"
        n r.ops r.distinct_files r.ops_per_sec r.mb_per_s r.seconds host_secs
        st.Sim.events
        (float_of_int st.Sim.events /. host_secs)
        (host_secs /. r.seconds)
        (if i = List.length !scale_rows - 1 then "" else ","))
    !scale_rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" bench_out

(* --- Bechamel microbenchmarks ------------------------------------------------------ *)

let micro () =
  print_endline hrule;
  print_endline "Bechamel microbenchmarks of hot paths (real host time)";
  let open Bechamel in
  let sector = Bytes.make 512 'x' in
  let diffs =
    List.init 4 (fun i ->
        { Frangipani.Wal.addr = i * 512; doff = 8; data = Bytes.make 64 'd'; version = i })
  in
  let inode = { Frangipani.Ondisk.empty_inode with size = 123456; nlink = 3 } in
  let encoded = Frangipani.Ondisk.encode_inode inode in
  let inode_sector = Bytes.make 512 '\000' in
  Bytes.blit encoded 0 inode_sector 8 (Bytes.length encoded);
  let tests =
    [
      Test.make ~name:"crc32-512B" (Staged.stage (fun () -> Stdext.Crc32.bytes sector 0 512));
      Test.make ~name:"wal-serialize-record"
        (Staged.stage (fun () -> Frangipani.Wal.serialize_for_bench diffs));
      Test.make ~name:"inode-encode"
        (Staged.stage (fun () -> Frangipani.Ondisk.encode_inode inode));
      Test.make ~name:"inode-decode"
        (Staged.stage (fun () -> Frangipani.Ondisk.decode_inode inode_sector));
      Test.make ~name:"dir-slot-scan"
        (Staged.stage (fun () ->
             let found = ref 0 in
             for k = 0 to Frangipani.Layout.dir_slots_per_sector - 1 do
               match Frangipani.Ondisk.read_slot sector k with
               | Some _ -> incr found
               | None -> ()
             done;
             !found));
      Test.make ~name:"codec-cursor-roundtrip"
        (Staged.stage (fun () ->
             let w = Stdext.Codec.W.create () in
             for i = 0 to 15 do
               Stdext.Codec.W.int w i
             done;
             let r = Stdext.Codec.R.of_bytes (Stdext.Codec.W.contents w) in
             let acc = ref 0 in
             for _ = 0 to 15 do
               acc := !acc + Stdext.Codec.R.int r
             done;
             !acc));
    ]
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let res = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Printf.printf "%-28s %10.1f ns/op\n" name t
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        res)
    tests

(* --- driver -------------------------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ww", ww);
    ("ablation", ablation);
    ("simbench", simbench);
    ("scale", scale);
    ("soak", soak_bench);
    ("json", write_json);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names
