open Simkit
open Cluster

type Net.payload += Ping of int | Pong of int | Note of string

let mkpair () =
  let net = Net.create () in
  let ha = Host.create "a" and hb = Host.create "b" in
  let pa = Net.attach net ha and pb = Net.attach net hb in
  (net, ha, hb, pa, pb)

let test_send_recv () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      Net.send pa ~dst:(Net.addr pb) ~size:100 (Ping 7);
      let src, m = Net.recv pb in
      Alcotest.(check int) "src" (Net.addr pa) src;
      match m with
      | Ping 7 -> ()
      | _ -> Alcotest.fail "wrong payload")

let test_link_occupancy () =
  (* Two 1 MB messages on a 155 Mbit/s link: the second waits for the
     first, so total delivery time is >= 2 * 1MB*8/155e6 s ~ 103 ms. *)
  let t =
    Sim.run (fun () ->
        let _, _, _, pa, pb = mkpair () in
        let mb = 1_000_000 in
        Net.send pa ~dst:(Net.addr pb) ~size:mb (Ping 1);
        Net.send pa ~dst:(Net.addr pb) ~size:mb (Ping 2);
        ignore (Net.recv pb);
        ignore (Net.recv pb);
        Sim.now ())
  in
  Alcotest.(check bool) "serialised on tx link" true (t >= Sim.ms 103)

let test_crash_drops () =
  Sim.run (fun () ->
      let _, _, hb, pa, pb = mkpair () in
      Host.crash hb;
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      Sim.sleep (Sim.sec 1.0);
      (* A receiver spawned after restart must see nothing. *)
      Host.restart hb;
      let got = ref false in
      Sim.spawn (fun () ->
          ignore (Net.recv pb);
          got := true);
      Sim.sleep (Sim.sec 1.0);
      Alcotest.(check bool) "dropped while crashed" false !got)

let test_partition () =
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      Net.set_reachable net (fun _ _ -> false);
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      Sim.sleep (Sim.sec 0.5);
      Net.clear_partition net;
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 2);
      let _, m = Net.recv pb in
      match m with
      | Ping 2 -> ()
      | _ -> Alcotest.fail "partitioned message should have been dropped")

let test_rpc_roundtrip () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let ca = Rpc.create pa and cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping n -> Some (Pong (n * 2), 8)
          | _ -> None);
      match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 21) with
      | Ok (Pong 42) -> ()
      | Ok _ -> Alcotest.fail "wrong reply"
      | Error `Timeout -> Alcotest.fail "unexpected timeout")

let test_rpc_timeout_on_crash () =
  Sim.run (fun () ->
      let _, _, hb, pa, pb = mkpair () in
      let ca = Rpc.create pa in
      let cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ _ -> Some (Pong 0, 8));
      Host.crash hb;
      let t0 = Sim.now () in
      (match Rpc.call ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 200) ~size:8 (Ping 1) with
      | Error `Timeout -> ()
      | Ok _ -> Alcotest.fail "expected timeout");
      Alcotest.(check bool) "timed out at deadline" true (Sim.now () - t0 >= Sim.ms 200))

let test_rpc_concurrent_handlers () =
  (* A slow handler must not block a fast one. *)
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let ca = Rpc.create pa and cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping 1 ->
            Sim.sleep (Sim.ms 100);
            Some (Pong 1, 8)
          | Ping 2 -> Some (Pong 2, 8)
          | _ -> None);
      let done2 = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 2) with
          | Ok (Pong 2) -> Sim.Ivar.fill done2 (Sim.now ())
          | _ -> Alcotest.fail "fast call failed");
      let t0 = Sim.now () in
      (match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 1) with
      | Ok (Pong 1) -> ()
      | _ -> Alcotest.fail "slow call failed");
      let t_fast = Sim.Ivar.read done2 in
      Alcotest.(check bool) "fast finished before slow" true (t_fast - t0 < Sim.ms 100))

let test_oneway_subscribe () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let _ca = Rpc.create pa and cb = Rpc.create pb in
      let got = ref [] in
      Rpc.on_oneway cb (fun ~src:_ body ->
          match body with
          | Note s -> got := s :: !got
          | _ -> ());
      Rpc.oneway (Rpc.create pa) ~dst:(Rpc.addr cb) ~size:10 (Note "hb");
      Sim.sleep (Sim.ms 10);
      Alcotest.(check (list string)) "received" [ "hb" ] !got)

let test_host_incarnation_guard () =
  Sim.run (fun () ->
      let h = Host.create "x" in
      let inc = Host.incarnation h in
      Alcotest.(check bool) "guard alive" true (Host.guard h inc);
      Host.crash h;
      Alcotest.(check bool) "guard crashed" false (Host.guard h inc);
      Host.restart h;
      Alcotest.(check bool) "guard stale" false (Host.guard h inc);
      Alcotest.(check bool) "guard new inc" true (Host.guard h (Host.incarnation h)))

let test_crash_hooks_run () =
  Sim.run (fun () ->
      let h = Host.create "x" in
      let ran = ref 0 in
      Host.on_crash h (fun () -> incr ran);
      Host.on_crash h (fun () -> incr ran);
      Host.crash h;
      Host.crash h;
      Alcotest.(check int) "hooks run once" 2 !ran)

let test_cpu_utilization () =
  let u =
    Sim.run (fun () ->
        let h = Host.create "x" in
        Host.consume h (Sim.ms 25);
        Sim.sleep (Sim.ms 75);
        Sim.Resource.utilization (Host.cpu h))
  in
  Alcotest.(check (float 0.01)) "25%" 0.25 u

let () =
  Alcotest.run "cluster"
    [
      ( "net",
        [
          Alcotest.test_case "send/recv" `Quick test_send_recv;
          Alcotest.test_case "link occupancy" `Quick test_link_occupancy;
          Alcotest.test_case "crash drops" `Quick test_crash_drops;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "timeout on crash" `Quick test_rpc_timeout_on_crash;
          Alcotest.test_case "concurrent handlers" `Quick test_rpc_concurrent_handlers;
          Alcotest.test_case "oneway subscribe" `Quick test_oneway_subscribe;
        ] );
      ( "host",
        [
          Alcotest.test_case "incarnation guard" `Quick test_host_incarnation_guard;
          Alcotest.test_case "crash hooks" `Quick test_crash_hooks_run;
          Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization;
        ] );
    ]
