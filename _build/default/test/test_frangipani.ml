open Simkit
open Frangipani
module T = Workloads.Testbed

let small () = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 ()

let setup ?config ?(nservers = 1) () =
  let t = small () in
  let servers = List.init nservers (fun _ -> T.add_server t ?config ()) in
  (t, servers)

let one () =
  let t, servers = setup () in
  (t, List.hd servers)

let check_err e f =
  match f () with
  | _ -> Alcotest.fail ("expected " ^ Errors.to_string e)
  | exception Errors.Error e' ->
    Alcotest.(check string) "errno" (Errors.to_string e) (Errors.to_string e')

let bytes_pat n seed = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) mod 256))

(* --- basic operations ---------------------------------------------------- *)

let test_create_write_read () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "hello" in
      let data = Bytes.of_string "hello, frangipani" in
      Fs.write fs f ~off:0 data;
      let got = Fs.read fs f ~off:0 ~len:100 in
      Alcotest.(check string) "roundtrip" (Bytes.to_string data) (Bytes.to_string got);
      let st = Fs.stat fs f in
      Alcotest.(check int) "size" (Bytes.length data) st.Fs.size;
      Alcotest.(check int) "nlink" 1 st.Fs.nlink)

let test_directories () =
  Sim.run (fun () ->
      let _, fs = one () in
      let d = Fs.mkdir fs ~dir:Fs.root "dir" in
      let sub = Fs.mkdir fs ~dir:d "sub" in
      let f = Fs.create fs ~dir:d "file" in
      ignore sub;
      Alcotest.(check int) "lookup" f (Fs.lookup fs ~dir:d "file");
      let names = List.map fst (Fs.readdir fs d) |> List.sort compare in
      Alcotest.(check (list string)) "readdir" [ "file"; "sub" ] names;
      Alcotest.(check int) "root nlink" 3 (Fs.stat fs Fs.root).Fs.nlink;
      Alcotest.(check int) "dir nlink" 3 (Fs.stat fs d).Fs.nlink;
      check_err Errors.Eexist (fun () -> Fs.mkdir fs ~dir:d "sub");
      check_err Errors.Enoent (fun () -> Fs.lookup fs ~dir:d "absent");
      check_err Errors.Enotempty (fun () -> Fs.rmdir fs ~dir:Fs.root "dir");
      check_err Errors.Eisdir (fun () -> Fs.unlink fs ~dir:d "sub");
      check_err Errors.Enotdir (fun () -> Fs.rmdir fs ~dir:d "file");
      Fs.unlink fs ~dir:d "file";
      Fs.rmdir fs ~dir:d "sub";
      Fs.rmdir fs ~dir:Fs.root "dir";
      Alcotest.(check (list string)) "root empty" []
        (List.map fst (Fs.readdir fs Fs.root));
      Alcotest.(check int) "root nlink back" 2 (Fs.stat fs Fs.root).Fs.nlink)

let test_many_entries_extend_dir () =
  Sim.run (fun () ->
      let _, fs = one () in
      let d = Fs.mkdir fs ~dir:Fs.root "big" in
      (* More entries than fit in one block (56 slots). *)
      for i = 0 to 199 do
        ignore (Fs.create fs ~dir:d (Printf.sprintf "f%03d" i))
      done;
      Alcotest.(check int) "200 entries" 200 (List.length (Fs.readdir fs d));
      for i = 0 to 199 do
        ignore (Fs.lookup fs ~dir:d (Printf.sprintf "f%03d" i))
      done;
      (* Remove odd ones; slots are reused. *)
      for i = 0 to 199 do
        if i mod 2 = 1 then Fs.unlink fs ~dir:d (Printf.sprintf "f%03d" i)
      done;
      Alcotest.(check int) "100 left" 100 (List.length (Fs.readdir fs d));
      for i = 0 to 99 do
        ignore (Fs.create fs ~dir:d (Printf.sprintf "g%03d" i))
      done;
      Alcotest.(check int) "200 again" 200 (List.length (Fs.readdir fs d)))

let test_symlink () =
  Sim.run (fun () ->
      let _, fs = one () in
      let _ = Fs.mkdir fs ~dir:Fs.root "a" in
      let f = Path.write_file fs "/a/data" (Bytes.of_string "via symlink") in
      ignore f;
      ignore (Fs.symlink fs ~dir:Fs.root "lnk" ~target:"/a/data");
      ignore (Path.symlink fs "/a/rel" ~target:"data");
      Alcotest.(check string) "abs link" "via symlink"
        (Bytes.to_string (Path.read_file fs "/lnk"));
      Alcotest.(check string) "rel link" "via symlink"
        (Bytes.to_string (Path.read_file fs "/a/rel"));
      Alcotest.(check string) "readlink" "/a/data"
        (Fs.readlink fs (Path.resolve ~follow:false fs "/lnk")))

let test_hard_link () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Path.write_file fs "/orig" (Bytes.of_string "shared") in
      Fs.link fs ~dir:Fs.root "alias" ~inum:f;
      Alcotest.(check int) "nlink 2" 2 (Fs.stat fs f).Fs.nlink;
      Fs.unlink fs ~dir:Fs.root "orig";
      Alcotest.(check string) "alias still readable" "shared"
        (Bytes.to_string (Path.read_file fs "/alias"));
      Alcotest.(check int) "nlink 1" 1 (Fs.stat fs f).Fs.nlink;
      Fs.unlink fs ~dir:Fs.root "alias";
      check_err Errors.Estale (fun () -> Fs.stat fs f))

let test_rename () =
  Sim.run (fun () ->
      let _, fs = one () in
      ignore (Fs.mkdir fs ~dir:Fs.root "a");
      ignore (Fs.mkdir fs ~dir:Fs.root "b");
      ignore (Path.write_file fs "/a/x" (Bytes.of_string "one"));
      (* Same-directory rename. *)
      Path.rename fs "/a/x" "/a/y";
      Alcotest.(check bool) "x gone" false (Path.exists fs "/a/x");
      Alcotest.(check string) "y has data" "one"
        (Bytes.to_string (Path.read_file fs "/a/y"));
      (* Cross-directory rename. *)
      Path.rename fs "/a/y" "/b/z";
      Alcotest.(check string) "moved" "one" (Bytes.to_string (Path.read_file fs "/b/z"));
      (* Overwriting rename. *)
      ignore (Path.write_file fs "/b/w" (Bytes.of_string "two"));
      Path.rename fs "/b/w" "/b/z";
      Alcotest.(check string) "overwritten" "two"
        (Bytes.to_string (Path.read_file fs "/b/z"));
      (* Directory move updates parent link counts. *)
      ignore (Fs.mkdir fs ~dir:(Path.resolve fs "/a") "d");
      let a_nlink = (Path.stat fs "/a").Fs.nlink in
      Path.rename fs "/a/d" "/b/d";
      Alcotest.(check int) "src parent nlink" (a_nlink - 1) (Path.stat fs "/a").Fs.nlink;
      (* Cycle prevention at the path layer. *)
      check_err Errors.Einval (fun () -> Path.rename fs "/b" "/b/d/inside"))

let test_large_file () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "big" in
      (* 200 KB: 64 KB in small blocks + 136 KB in the large block. *)
      let data = bytes_pat 204800 3 in
      Fs.write fs f ~off:0 data;
      let got = Fs.read fs f ~off:0 ~len:204800 in
      Alcotest.(check bool) "content" true (Bytes.equal data got);
      (* Unaligned read crossing the small/large boundary. *)
      let mid = Fs.read fs f ~off:65000 ~len:2000 in
      Alcotest.(check bool) "boundary read" true
        (Bytes.equal mid (Bytes.sub data 65000 2000));
      (* Unaligned overwrite. *)
      Fs.write fs f ~off:65123 (Bytes.make 777 'Z');
      let z = Fs.read fs f ~off:65123 ~len:777 in
      Alcotest.(check string) "overwrite" (String.make 777 'Z') (Bytes.to_string z))

let test_sparse_and_truncate () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "sparse" in
      Fs.write fs f ~off:10000 (Bytes.of_string "end");
      Alcotest.(check int) "size" 10003 (Fs.stat fs f).Fs.size;
      let hole = Fs.read fs f ~off:0 ~len:100 in
      Alcotest.(check string) "hole zeros" (String.make 100 '\000')
        (Bytes.to_string hole);
      Fs.truncate fs f ~size:5;
      Alcotest.(check int) "truncated" 5 (Fs.stat fs f).Fs.size;
      Fs.write fs f ~off:0 (Bytes.of_string "abcde");
      Fs.truncate fs f ~size:3;
      (* Extending again must read zeros past the old tail. *)
      Fs.truncate fs f ~size:5;
      Alcotest.(check string) "zeros after shrink-grow" "abc\000\000"
        (Bytes.to_string (Fs.read fs f ~off:0 ~len:5)))

let test_path_helpers () =
  Sim.run (fun () ->
      let _, fs = one () in
      ignore (Path.mkdir_p fs "/x/y/z");
      ignore (Path.write_file fs "/x/y/z/f" (Bytes.of_string "deep"));
      Alcotest.(check string) "deep file" "deep"
        (Bytes.to_string (Path.read_file fs "/x/y/z/f"));
      Alcotest.(check bool) "exists" true (Path.exists fs "/x/y");
      Alcotest.(check bool) "not exists" false (Path.exists fs "/x/q");
      ignore (Path.resolve fs "/x/y/../y/./z"))

(* --- multi-server coherence ----------------------------------------------- *)

let test_coherence_two_servers () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let f = Fs.create a ~dir:Fs.root "shared" in
      Fs.write a f ~off:0 (Bytes.of_string "from A");
      (* B sees it immediately, through lock-mediated coherence. *)
      let f_b = Fs.lookup b ~dir:Fs.root "shared" in
      Alcotest.(check int) "same inum" f f_b;
      Alcotest.(check string) "B reads A's write" "from A"
        (Bytes.to_string (Fs.read b f_b ~off:0 ~len:10));
      (* And back: B overwrites, A observes. *)
      Fs.write b f_b ~off:0 (Bytes.of_string "from B");
      Alcotest.(check string) "A reads B's write" "from B"
        (Bytes.to_string (Fs.read a f ~off:0 ~len:10)))

let test_concurrent_creates_distinct_servers () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:3 () in
      let pending = ref (3 * 10) in
      let done_ = Sim.Ivar.create () in
      List.iteri
        (fun si fs ->
          for k = 0 to 9 do
            Sim.spawn (fun () ->
                let name = Printf.sprintf "s%d-f%d" si k in
                ignore (Fs.create fs ~dir:Fs.root name);
                Fs.write fs (Fs.lookup fs ~dir:Fs.root name) ~off:0
                  (Bytes.of_string name);
                decr pending;
                if !pending = 0 then Sim.Ivar.fill done_ ())
          done)
        servers;
      Sim.Ivar.read done_;
      let fs = List.hd servers in
      let entries = Fs.readdir fs Fs.root in
      Alcotest.(check int) "30 files" 30 (List.length entries);
      List.iter
        (fun (name, inum) ->
          Alcotest.(check string) ("content " ^ name) name
            (Bytes.to_string (Fs.read fs inum ~off:0 ~len:100)))
        entries)

let test_write_write_coherence () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let f = Fs.create a ~dir:Fs.root "counter" in
      (* Interleaved read-modify-write from two servers; the whole-file
         lock makes each step atomic. *)
      for i = 1 to 10 do
        let fs = if i mod 2 = 0 then a else b in
        let cur = Fs.read fs f ~off:0 ~len:8 in
        let v = if Bytes.length cur < 8 then 0 else Stdext.Codec.get_int cur 0 in
        let nb = Bytes.create 8 in
        Stdext.Codec.put_int nb 0 (v + 1);
        Fs.write fs f ~off:0 nb
      done;
      let final = Fs.read a f ~off:0 ~len:8 in
      Alcotest.(check int) "10 increments" 10 (Stdext.Codec.get_int final 0))

(* --- failure handling ------------------------------------------------------ *)

let test_crash_recovery_preserves_synced_metadata () =
  Sim.run (fun () ->
      let t, servers = setup ~nservers:2 () in
      ignore t;
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let f = Fs.create a ~dir:Fs.root "precious" in
      Fs.write a f ~off:0 (Bytes.of_string "must survive");
      Fs.fsync a f;
      (* More metadata ops that reach the log but not their home
         locations. *)
      ignore (Fs.create a ~dir:Fs.root "also-there");
      ignore (Fs.mkdir a ~dir:Fs.root "dir1");
      Fs.sync a;
      Fs.crash a;
      (* B's access to locks held by A blocks until A's lease expires
         and recovery replays A's log. *)
      let f_b = Fs.lookup b ~dir:Fs.root "precious" in
      Alcotest.(check string) "file content" "must survive"
        (Bytes.to_string (Fs.read b f_b ~off:0 ~len:100));
      ignore (Fs.lookup b ~dir:Fs.root "also-there");
      ignore (Fs.lookup b ~dir:Fs.root "dir1");
      Alcotest.(check bool) "took at least a lease period" true
        (Sim.now () > Sim.sec 30.0))

let test_crash_loses_unsynced_data_but_stays_consistent () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      ignore (Fs.create a ~dir:Fs.root "before");
      Fs.sync a;
      (* This one never reaches the log on Petal. *)
      ignore (Fs.create a ~dir:Fs.root "volatile");
      Fs.crash a;
      Sim.sleep (Sim.sec 60.0);
      let names = List.map fst (Fs.readdir b Fs.root) in
      Alcotest.(check bool) "synced file survives" true (List.mem "before" names);
      Alcotest.(check bool) "unsynced file lost" false (List.mem "volatile" names);
      (* The directory is fully usable afterwards. *)
      ignore (Fs.create b ~dir:Fs.root "after");
      Alcotest.(check int) "consistent" 2 (List.length (Fs.readdir b Fs.root)))

let test_restarted_server_rejoins () =
  Sim.run (fun () ->
      let t, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      ignore (Fs.create a ~dir:Fs.root "f1");
      Fs.sync a;
      Fs.crash a;
      Sim.sleep (Sim.sec 60.0);
      ignore (Fs.lookup b ~dir:Fs.root "f1");
      (* A new server machine joins (the paper's restart-with-empty-log). *)
      let c = T.add_server t () in
      ignore (Fs.create c ~dir:Fs.root "f2");
      Alcotest.(check int) "both files" 2 (List.length (Fs.readdir b Fs.root)))

let test_log_wrap_consistency () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let d = Fs.mkdir a ~dir:Fs.root "churn" in
      (* Thousands of metadata ops: the 128 KB log must wrap several
         times, exercising reclaim. *)
      for i = 0 to 999 do
        let name = Printf.sprintf "t%d" i in
        ignore (Fs.create a ~dir:d name);
        if i mod 3 = 0 then Fs.unlink a ~dir:d name
      done;
      Fs.sync a;
      Fs.crash a;
      Sim.sleep (Sim.sec 60.0);
      let survivors = Fs.readdir b d in
      let expect = List.length (List.filter (fun i -> i mod 3 <> 0) (List.init 1000 Fun.id)) in
      Alcotest.(check int) "all non-deleted files present" expect
        (List.length survivors))

let test_petal_server_failure_transparent () =
  Sim.run (fun () ->
      let t, servers = setup ~nservers:1 () in
      let fs = List.hd servers in
      let f = Fs.create fs ~dir:Fs.root "resilient" in
      Fs.write fs f ~off:0 (bytes_pat 8192 5);
      Fs.sync fs;
      (* Crash one Petal machine: both a Petal replica and one lock
         server die. The file system keeps working. *)
      Cluster.Host.crash t.T.petal.Petal.Testbed.hosts.(1);
      Sim.sleep (Sim.sec 15.0);
      let got = Fs.read fs f ~off:0 ~len:8192 in
      Alcotest.(check bool) "readable" true (Bytes.equal got (bytes_pat 8192 5));
      Fs.write fs f ~off:0 (Bytes.of_string "still writable");
      ignore (Fs.create fs ~dir:Fs.root "new-during-failure"))

let test_clean_removal_no_lease_wait () =
  (* §7: "Removing a Frangipani server is even easier... preferable
     for the server to flush its dirty data and release its locks
     before halting." After a clean unmount, another server proceeds
     immediately — no 30 s lease expiry, no recovery. *)
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let f = Fs.create a ~dir:Fs.root "handoff" in
      Fs.write a f ~off:0 (Bytes.of_string "flushed on unmount");
      Fs.unmount a;
      let t0 = Sim.now () in
      let f_b = Fs.lookup b ~dir:Fs.root "handoff" in
      Alcotest.(check string) "data flushed by unmount" "flushed on unmount"
        (Bytes.to_string (Fs.read b f_b ~off:0 ~len:100));
      Alcotest.(check bool) "no lease wait" true (Sim.now () - t0 < Sim.sec 5.0))

(* --- backup (§8) ------------------------------------------------------------ *)

let test_online_backup () =
  Sim.run (fun () ->
      let t, servers = setup ~nservers:2 () in
      let a = List.hd servers in
      ignore (Path.write_file a "/doc" (Bytes.of_string "version 1"));
      (* Take a consistent online snapshot through the barrier. *)
      let _, brpc = T.fresh_client t "backup" in
      let backup = Backup.connect ~rpc:brpc ~lock_servers:t.T.lock_addrs ~table:"fs0" in
      let vd_live = T.open_vdisk t ~rpc:brpc t.T.vdisk_id in
      let snap_id = Backup.snapshot backup vd_live in
      (* The live system keeps going. *)
      ignore (Path.write_file a "/doc" (Bytes.of_string "version 2"));
      ignore (Path.write_file a "/new" (Bytes.of_string "post-snap"));
      (* Mount the snapshot read-only under its own lock table. *)
      let mh, mrpc = T.fresh_client t "snapmount" in
      ignore mh;
      let vd_snap = T.open_vdisk t ~rpc:mrpc snap_id in
      let snap_fs =
        Fs.mount ~host:mh ~rpc:mrpc ~vd:vd_snap ~lock_servers:t.T.lock_addrs
          ~table:"fs0@snap" ~readonly:true ()
      in
      Alcotest.(check string) "snapshot sees version 1" "version 1"
        (Bytes.to_string (Path.read_file snap_fs "/doc"));
      Alcotest.(check bool) "post-snap file absent in snapshot" false
        (Path.exists snap_fs "/new");
      check_err Errors.Erofs (fun () -> Path.write_file snap_fs "/x" Bytes.empty);
      Alcotest.(check string) "live sees version 2" "version 2"
        (Bytes.to_string (Path.read_file a "/doc")))

(* --- lease expiry / partition ------------------------------------------------ *)

let test_partitioned_server_poisons () =
  Sim.run (fun () ->
      let t, servers = setup ~nservers:2 () in
      let a, b = (List.nth servers 0, List.nth servers 1) in
      let f = Fs.create a ~dir:Fs.root "dirtyfile" in
      Fs.write a f ~off:0 (Bytes.of_string "dirty");
      Fs.sync a;
      Fs.write a f ~off:0 (Bytes.of_string "DIRTY");
      (* Cut only A off: it cannot renew and must expire itself. *)
      let a_addr = T.addr_of t a in
      Cluster.Net.set_reachable t.T.net (fun s d -> s <> a_addr && d <> a_addr);
      Sim.sleep (Sim.sec 60.0);
      (* A had dirty data when the lease lapsed: poisoned until
         unmount (§6). *)
      Alcotest.(check bool) "poisoned" true (Fs.is_poisoned a);
      check_err Errors.Eio (fun () -> Fs.read a f ~off:0 ~len:5);
      Cluster.Net.clear_partition t.T.net;
      (* The lock service recovered A's log, so B reads the last
         synced contents; the unflushed overwrite is lost. *)
      let f_b = Fs.lookup b ~dir:Fs.root "dirtyfile" in
      Alcotest.(check string) "synced data survives" "dirty"
        (Bytes.to_string (Fs.read b f_b ~off:0 ~len:5)))

let () =
  Alcotest.run "frangipani"
    [
      ( "basic",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "big directory" `Quick test_many_entries_extend_dir;
          Alcotest.test_case "symlinks" `Quick test_symlink;
          Alcotest.test_case "hard links" `Quick test_hard_link;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "large file" `Quick test_large_file;
          Alcotest.test_case "sparse + truncate" `Quick test_sparse_and_truncate;
          Alcotest.test_case "path helpers" `Quick test_path_helpers;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "two servers" `Quick test_coherence_two_servers;
          Alcotest.test_case "concurrent creates" `Quick
            test_concurrent_creates_distinct_servers;
          Alcotest.test_case "write/write" `Quick test_write_write_coherence;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash recovery (synced)" `Quick
            test_crash_recovery_preserves_synced_metadata;
          Alcotest.test_case "crash loses unsynced only" `Quick
            test_crash_loses_unsynced_data_but_stays_consistent;
          Alcotest.test_case "restarted server rejoins" `Quick
            test_restarted_server_rejoins;
          Alcotest.test_case "log wrap" `Quick test_log_wrap_consistency;
          Alcotest.test_case "petal server failure" `Quick
            test_petal_server_failure_transparent;
          Alcotest.test_case "partition poisons" `Quick test_partitioned_server_poisons;
          Alcotest.test_case "clean removal (unmount)" `Quick
            test_clean_removal_no_lease_wait;
        ] );
      ("backup", [ Alcotest.test_case "online snapshot" `Quick test_online_backup ]);
    ]
