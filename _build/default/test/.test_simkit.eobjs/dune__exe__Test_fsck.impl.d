test/test_fsck.ml: Alcotest Bytes Frangipani Fs Fsck List Path Printf Sim Simkit Workloads
