test/test_advfs.mli:
