test/test_wal.ml: Alcotest Bytes Cluster Errors Frangipani Gen Layout List Petal Printf QCheck QCheck_alcotest Sim Simkit Wal
