test/test_layout.ml: Alcotest Array Bytes Frangipani Layout List Lockns Ondisk QCheck QCheck_alcotest String
