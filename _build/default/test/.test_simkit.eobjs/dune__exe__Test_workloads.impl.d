test/test_workloads.ml: Advfs Alcotest Cluster List Printf Sim Simkit Workloads
