test/test_export.ml: Alcotest Bytes Errors Export Frangipani Fs List Sim Simkit Workloads
