test/test_frangipani.mli:
