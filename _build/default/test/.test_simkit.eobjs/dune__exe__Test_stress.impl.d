test/test_stress.ml: Alcotest Array Bytes Cluster Ctx Errors Frangipani Fs Fsck List Locksvc Path Petal Printf Sim Simkit String Workloads
