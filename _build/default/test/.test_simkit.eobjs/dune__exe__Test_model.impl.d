test/test_model.ml: Alcotest Array Buffer Bytes Char Errors Frangipani Fs Fsck Hashtbl List Option Printf QCheck QCheck_alcotest Result Sim Simkit Workloads
