test/test_stdext.ml: Alcotest Bytes Char Codec Crc32 Gen List QCheck QCheck_alcotest Stdext
