test/test_locksvc.mli:
