test/test_locksvc.ml: Alcotest Array Clerk Cluster Format Host List Locksvc Net Paxos_group Printf QCheck QCheck_alcotest Rpc Server Sim Simkit Types
