test/test_petal.mli:
