test/test_blockdev.ml: Alcotest Blockdev Bytes Char Disk Gen Hashtbl List Nvram Printf QCheck QCheck_alcotest Sim Simkit Storage String
