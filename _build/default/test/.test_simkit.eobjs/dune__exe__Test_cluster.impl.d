test/test_cluster.ml: Alcotest Cluster Host Net Rpc Sim Simkit
