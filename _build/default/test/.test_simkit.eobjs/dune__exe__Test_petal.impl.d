test/test_petal.ml: Alcotest Array Blockdev Bytes Char Cluster Gen Host List Net Petal Printf QCheck QCheck_alcotest Rpc Sim Simkit String
