test/test_paxos.ml: Alcotest Array Cluster Host List Net Paxos Printf QCheck QCheck_alcotest Rpc Sim Simkit
