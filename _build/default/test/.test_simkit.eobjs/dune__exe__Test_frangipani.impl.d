test/test_frangipani.ml: Alcotest Array Backup Bytes Char Cluster Errors Frangipani Fs Fun List Path Petal Printf Sim Simkit Stdext String Workloads
