test/test_simkit.ml: Alcotest Gen List QCheck QCheck_alcotest Sim Simkit
