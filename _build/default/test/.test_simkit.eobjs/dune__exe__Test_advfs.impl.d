test/test_advfs.ml: Advfs Alcotest Bytes Char Cluster Frangipani Host Printf Sim Simkit
