open Simkit
open Blockdev

let mkdisk () = Disk.create ~capacity:(16 * 1024 * 1024) "d0"

let test_read_back () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let data = Bytes.make 4096 'x' in
      Disk.write d ~off:8192 data;
      let got = Disk.read d ~off:8192 ~len:4096 in
      Alcotest.(check string) "read back" (Bytes.to_string data) (Bytes.to_string got))

let test_unwritten_zero () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let got = Disk.read d ~off:0 ~len:512 in
      Alcotest.(check string) "zeros" (String.make 512 '\000') (Bytes.to_string got))

let test_cross_slab () =
  Sim.run (fun () ->
      let d = mkdisk () in
      (* 128 KB spanning two 64 KB slabs, offset so it straddles. *)
      let data = Bytes.init 131072 (fun i -> Char.chr (i mod 251)) in
      Disk.write d ~off:(32 * 1024) data;
      let got = Disk.read d ~off:(32 * 1024) ~len:131072 in
      Alcotest.(check bool) "cross-slab equal" true (Bytes.equal data got))

let test_alignment_rejected () =
  Sim.run (fun () ->
      let d = mkdisk () in
      (try
         ignore (Disk.read d ~off:10 ~len:512);
         Alcotest.fail "expected Invalid_argument"
       with Invalid_argument _ -> ());
      try
        Disk.write d ~off:0 (Bytes.create 100);
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let test_timing_model () =
  let elapsed, elapsed_seq =
    Sim.run (fun () ->
        let d = mkdisk () in
        let t0 = Sim.now () in
        ignore (Disk.read d ~off:(8 * 1024 * 1024) ~len:65536);
        let t1 = Sim.now () in
        ignore (Disk.read d ~off:(8 * 1024 * 1024 + 65536) ~len:65536);
        let t2 = Sim.now () in
        (t1 - t0, t2 - t1))
  in
  (* Random access pays a seek; sequential does not. *)
  Alcotest.(check bool) "random slower than sequential" true (elapsed > elapsed_seq);
  (* 64 KB at 6 MB/s is ~10.9 ms of transfer alone. *)
  Alcotest.(check bool) "sequential >= transfer time" true (elapsed_seq >= Sim.ms 10)

let test_fail_and_heal () =
  Sim.run (fun () ->
      let d = mkdisk () in
      Disk.fail d;
      (try
         ignore (Disk.read d ~off:0 ~len:512);
         Alcotest.fail "expected Failed"
       with Disk.Failed _ -> ());
      Disk.heal d;
      ignore (Disk.read d ~off:0 ~len:512))

let test_damaged_sector () =
  Sim.run (fun () ->
      let d = mkdisk () in
      Disk.write d ~off:0 (Bytes.make 1024 'a');
      Disk.damage_sector d 1;
      (try
         ignore (Disk.read d ~off:0 ~len:1024);
         Alcotest.fail "expected Bad_sector"
       with Disk.Bad_sector 1 -> ());
      (* Sector 0 alone is still readable. *)
      ignore (Disk.read d ~off:0 ~len:512);
      (* Overwriting the damaged sector repairs it. *)
      Disk.write d ~off:512 (Bytes.make 512 'b');
      ignore (Disk.read d ~off:0 ~len:1024))

let test_nvram_write_fast_read_back () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let s = Nvram.wrap d in
      let t0 = Sim.now () in
      s.Storage.write ~off:4096 (Bytes.make 512 'z');
      let dt = Sim.now () - t0 in
      Alcotest.(check bool) "NVRAM write well under 1ms" true (dt < Sim.ms 1);
      let got = s.Storage.read ~off:4096 ~len:512 in
      Alcotest.(check string) "read back from NVRAM" (String.make 512 'z')
        (Bytes.to_string got))

let test_nvram_flush_reaches_disk () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let s = Nvram.wrap d in
      s.Storage.write ~off:0 (Bytes.make 512 'q');
      s.Storage.flush ();
      let got = Disk.read d ~off:0 ~len:512 in
      Alcotest.(check string) "destaged" (String.make 512 'q') (Bytes.to_string got))

let test_nvram_overwrite_coalesces () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let s = Nvram.wrap d in
      for i = 0 to 9 do
        s.Storage.write ~off:0 (Bytes.make 512 (Char.chr (Char.code '0' + i)))
      done;
      s.Storage.flush ();
      let got = Disk.read d ~off:0 ~len:512 in
      Alcotest.(check string) "last write wins" (String.make 512 '9')
        (Bytes.to_string got))

let test_nvram_capacity_blocks () =
  Sim.run (fun () ->
      let d = mkdisk () in
      let s = Nvram.wrap ~capacity:(128 * 1024) d in
      (* Write 1 MB through a 128 KB NVRAM: must block on destage yet
         complete, and everything must land on disk. *)
      let block = Bytes.make 65536 'm' in
      for i = 0 to 15 do
        s.Storage.write ~off:(i * 65536) block
      done;
      s.Storage.flush ();
      for i = 0 to 15 do
        let got = Disk.read d ~off:(i * 65536) ~len:65536 in
        Alcotest.(check bool) (Printf.sprintf "block %d" i) true (Bytes.equal block got)
      done)

let prop_disk_roundtrip =
  QCheck.Test.make ~name:"disk write/read round-trips at random offsets" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 10) (pair (int_range 0 1000) (int_range 1 8)))
    (fun writes ->
      Sim.run (fun () ->
          let d = mkdisk () in
          let model = Hashtbl.create 16 in
          List.iter
            (fun (sector, nsect) ->
              let off = sector * 512 and len = nsect * 512 in
              let data =
                Bytes.init len (fun i -> Char.chr ((sector + i) mod 256))
              in
              Disk.write d ~off data;
              (* Update a byte-level model. *)
              for i = 0 to len - 1 do
                Hashtbl.replace model (off + i) (Bytes.get data i)
              done)
            writes;
          List.for_all
            (fun (sector, nsect) ->
              let off = sector * 512 and len = nsect * 512 in
              let got = Disk.read d ~off ~len in
              let ok = ref true in
              for i = 0 to len - 1 do
                let expect =
                  match Hashtbl.find_opt model (off + i) with
                  | Some c -> c
                  | None -> '\000'
                in
                if Bytes.get got i <> expect then ok := false
              done;
              !ok)
            writes))

let () =
  Alcotest.run "blockdev"
    [
      ( "disk",
        [
          Alcotest.test_case "read back" `Quick test_read_back;
          Alcotest.test_case "unwritten reads zero" `Quick test_unwritten_zero;
          Alcotest.test_case "cross-slab I/O" `Quick test_cross_slab;
          Alcotest.test_case "alignment rejected" `Quick test_alignment_rejected;
          Alcotest.test_case "timing model" `Quick test_timing_model;
          Alcotest.test_case "fail and heal" `Quick test_fail_and_heal;
          Alcotest.test_case "damaged sector" `Quick test_damaged_sector;
          QCheck_alcotest.to_alcotest prop_disk_roundtrip;
        ] );
      ( "nvram",
        [
          Alcotest.test_case "fast write, read back" `Quick test_nvram_write_fast_read_back;
          Alcotest.test_case "flush reaches disk" `Quick test_nvram_flush_reaches_disk;
          Alcotest.test_case "overwrite coalesces" `Quick test_nvram_overwrite_coalesces;
          Alcotest.test_case "capacity blocks writers" `Quick test_nvram_capacity_blocks;
        ] );
    ]
