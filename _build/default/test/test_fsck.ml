open Simkit
open Frangipani
module T = Workloads.Testbed

let setup () =
  let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
  (t, T.add_server t ())

let mk_tree fs =
  ignore (Path.mkdir_p fs "/a/b");
  for i = 0 to 4 do
    ignore (Path.write_file fs (Printf.sprintf "/a/b/f%d" i) (Bytes.make 5000 'x'))
  done;
  ignore (Path.symlink fs "/a/lnk" ~target:"b/f0");
  let f = Path.resolve fs "/a/b/f1" in
  Fs.link fs ~dir:(Path.resolve fs "/a") "hard" ~inum:f;
  Fs.sync fs

let test_clean_tree () =
  Sim.run (fun () ->
      let _, fs = setup () in
      mk_tree fs;
      Alcotest.(check int) "no findings" 0 (List.length (Fsck.check fs)))

let test_clean_after_recovery () =
  Sim.run (fun () ->
      let t, fs = setup () in
      mk_tree fs;
      (* Crash mid-life; after recovery the tree must be fsck-clean. *)
      ignore (Path.write_file fs "/a/b/extra" (Bytes.make 100 'y'));
      Fs.sync fs;
      Fs.crash fs;
      let survivor = T.add_server t () in
      Sim.sleep (Sim.sec 60.0);
      ignore (Fs.readdir survivor Fs.root);
      Alcotest.(check int) "clean after crash recovery" 0
        (List.length (Fsck.check survivor)))

let test_detects_orphan () =
  Sim.run (fun () ->
      let _, fs = setup () in
      mk_tree fs;
      let o = Fs.create fs ~dir:Fs.root "gone" in
      Fs.write fs o ~off:0 (Bytes.make 4096 'z');
      Fs.unlink_entry_only_for_test fs ~dir:Fs.root "gone";
      let findings = Fsck.check fs in
      let orphans =
        List.filter (function Fsck.Orphan_inode _ -> true | _ -> false) findings
      in
      Alcotest.(check int) "one orphan" 1 (List.length orphans);
      ignore (Fsck.repair fs findings);
      Alcotest.(check int) "clean after repair" 0 (List.length (Fsck.check fs)))

let test_detects_bad_nlink () =
  Sim.run (fun () ->
      let _, fs = setup () in
      mk_tree fs;
      Fs.corrupt_nlink_for_test fs (Path.resolve fs "/a/b/f2") 9;
      let findings = Fsck.check fs in
      (match findings with
      | [ Fsck.Bad_nlink { stored = 9; actual = 1; _ } ] -> ()
      | _ -> Alcotest.fail "expected exactly one Bad_nlink 9->1");
      ignore (Fsck.repair fs findings);
      Alcotest.(check int) "clean" 0 (List.length (Fsck.check fs)))

let test_hard_link_counts () =
  Sim.run (fun () ->
      let _, fs = setup () in
      mk_tree fs;
      (* f1 has two links (hard); fsck must consider that correct. *)
      Alcotest.(check int) "clean with hard links" 0 (List.length (Fsck.check fs)))

let () =
  Alcotest.run "fsck"
    [
      ( "fsck",
        [
          Alcotest.test_case "clean tree" `Quick test_clean_tree;
          Alcotest.test_case "clean after recovery" `Quick test_clean_after_recovery;
          Alcotest.test_case "detects orphan" `Quick test_detects_orphan;
          Alcotest.test_case "detects bad nlink" `Quick test_detects_bad_nlink;
          Alcotest.test_case "hard links counted" `Quick test_hard_link_counts;
        ] );
    ]
