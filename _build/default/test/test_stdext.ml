open Stdext

let test_flat_roundtrip () =
  let b = Bytes.create 32 in
  Codec.put_u8 b 0 0xab;
  Codec.put_u16 b 1 0xbeef;
  Codec.put_u32 b 3 0xdeadbeef;
  Codec.put_u64 b 7 0x0123456789abcdefL;
  Codec.put_int b 15 max_int;
  Alcotest.(check int) "u8" 0xab (Codec.get_u8 b 0);
  Alcotest.(check int) "u16" 0xbeef (Codec.get_u16 b 1);
  Alcotest.(check int) "u32" 0xdeadbeef (Codec.get_u32 b 3);
  Alcotest.(check int64) "u64" 0x0123456789abcdefL (Codec.get_u64 b 7);
  Alcotest.(check int) "int" max_int (Codec.get_int b 15)

let test_cursor_roundtrip () =
  let w = Codec.W.create () in
  Codec.W.u8 w 7;
  Codec.W.u16 w 65535;
  Codec.W.u32 w 123456789;
  Codec.W.u64 w (-1L);
  Codec.W.int w (-42);
  Codec.W.str w "frangipani";
  Codec.W.bytes w (Bytes.of_string "xyz");
  let r = Codec.R.of_bytes (Codec.W.contents w) in
  Alcotest.(check int) "u8" 7 (Codec.R.u8 r);
  Alcotest.(check int) "u16" 65535 (Codec.R.u16 r);
  Alcotest.(check int) "u32" 123456789 (Codec.R.u32 r);
  Alcotest.(check int64) "u64" (-1L) (Codec.R.u64 r);
  Alcotest.(check int) "int" (-42) (Codec.R.int r);
  Alcotest.(check string) "str" "frangipani" (Codec.R.str r);
  Alcotest.(check string) "bytes" "xyz" (Bytes.to_string (Codec.R.bytes r 3));
  Alcotest.(check int) "exhausted" 0 (Codec.R.remaining r)

let test_reader_underflow () =
  let r = Codec.R.of_bytes (Bytes.create 3) in
  Alcotest.check_raises "underflow" Codec.R.Underflow (fun () ->
      ignore (Codec.R.u64 r))

let test_writer_growth () =
  let w = Codec.W.create ~size:2 () in
  for i = 0 to 999 do
    Codec.W.u32 w i
  done;
  Alcotest.(check int) "length" 4000 (Codec.W.len w);
  let r = Codec.R.of_bytes (Codec.W.contents w) in
  for i = 0 to 999 do
    Alcotest.(check int) "value" i (Codec.R.u32 r)
  done

let test_crc_known () =
  (* Standard test vector: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int) "known vector" 0xcbf43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "")

let test_crc_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "slice" 0xcbf43926 (Crc32.bytes b 2 9)

let prop_cursor_roundtrip =
  QCheck.Test.make ~name:"cursor ints round-trip" ~count:200
    QCheck.(list (pair small_int int))
    (fun items ->
      let w = Codec.W.create () in
      List.iter
        (fun (a, b) ->
          Codec.W.u16 w (a land 0xffff);
          Codec.W.int w b)
        items;
      let r = Codec.R.of_bytes (Codec.W.contents w) in
      List.for_all
        (fun (a, b) -> Codec.R.u16 r = a land 0xffff && Codec.R.int r = b)
        items)

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single bit flip" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 64)) small_int)
    (fun (s, i) ->
      let b = Bytes.of_string s in
      let before = Crc32.bytes b 0 (Bytes.length b) in
      let pos = i mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      Crc32.bytes b 0 (Bytes.length b) <> before)

let () =
  Alcotest.run "stdext"
    [
      ( "codec",
        [
          Alcotest.test_case "flat roundtrip" `Quick test_flat_roundtrip;
          Alcotest.test_case "cursor roundtrip" `Quick test_cursor_roundtrip;
          Alcotest.test_case "reader underflow" `Quick test_reader_underflow;
          Alcotest.test_case "writer growth" `Quick test_writer_growth;
          QCheck_alcotest.to_alcotest prop_cursor_roundtrip;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc_known;
          Alcotest.test_case "slice" `Quick test_crc_slice;
          QCheck_alcotest.to_alcotest prop_crc_detects_flip;
        ] );
    ]
