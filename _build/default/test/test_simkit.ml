open Simkit

let check_time = Alcotest.(check int)

let test_sleep_ordering () =
  let trace = ref [] in
  let record tag = trace := (tag, Sim.now ()) :: !trace in
  let () =
    Sim.run (fun () ->
        Sim.spawn (fun () ->
            Sim.sleep (Sim.ms 5);
            record "b");
        Sim.spawn (fun () ->
            Sim.sleep (Sim.ms 2);
            record "a");
        Sim.sleep (Sim.ms 10);
        record "main")
  in
  match List.rev !trace with
  | [ ("a", ta); ("b", tb); ("main", tm) ] ->
    check_time "a at 2ms" (Sim.ms 2) ta;
    check_time "b at 5ms" (Sim.ms 5) tb;
    check_time "main at 10ms" (Sim.ms 10) tm
  | _ -> Alcotest.fail "wrong trace"

let test_run_result () =
  let v = Sim.run (fun () -> Sim.sleep 100; 42) in
  Alcotest.(check int) "result" 42 v

let test_same_instant_fifo () =
  let order = ref [] in
  Sim.run (fun () ->
      for i = 1 to 5 do
        Sim.spawn (fun () -> order := i :: !order)
      done;
      Sim.sleep 1);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_ivar () =
  let sum =
    Sim.run (fun () ->
        let iv = Sim.Ivar.create () in
        let acc = ref 0 in
        let done_ = Sim.Ivar.create () in
        for _ = 1 to 3 do
          Sim.spawn (fun () ->
              acc := !acc + Sim.Ivar.read iv;
              if !acc = 21 then Sim.Ivar.fill done_ ())
        done;
        Sim.spawn (fun () ->
            Sim.sleep (Sim.us 7);
            Sim.Ivar.fill iv 7);
        Sim.Ivar.read done_;
        !acc)
  in
  Alcotest.(check int) "three readers woken" 21 sum

let test_ivar_double_fill () =
  Sim.run (fun () ->
      let iv = Sim.Ivar.create () in
      Sim.Ivar.fill iv 1;
      Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
        (fun () -> Sim.Ivar.fill iv 2))

let test_mailbox_fifo () =
  let got =
    Sim.run (fun () ->
        let mb = Sim.Mailbox.create () in
        Sim.spawn (fun () ->
            for i = 1 to 4 do
              Sim.sleep (Sim.us 1);
              Sim.Mailbox.send mb i
            done);
        List.init 4 (fun _ -> Sim.Mailbox.recv mb))
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4 ] got

let test_mailbox_blocked_receivers () =
  let got =
    Sim.run (fun () ->
        let mb = Sim.Mailbox.create () in
        let out = ref [] in
        for i = 1 to 3 do
          Sim.spawn (fun () ->
              let v = Sim.Mailbox.recv mb in
              out := (i, v) :: !out)
        done;
        Sim.sleep (Sim.us 1);
        List.iter (Sim.Mailbox.send mb) [ 10; 20; 30 ];
        Sim.sleep (Sim.us 1);
        List.rev !out)
  in
  Alcotest.(check (list (pair int int)))
    "receivers served in fifo order"
    [ (1, 10); (2, 20); (3, 30) ]
    got

let test_resource_serialises () =
  let finish =
    Sim.run (fun () ->
        let r = Sim.Resource.create "disk" in
        let finished = ref [] in
        let done_ = Sim.Ivar.create () in
        for i = 1 to 3 do
          Sim.spawn (fun () ->
              Sim.Resource.use r (Sim.ms 10);
              finished := (i, Sim.now ()) :: !finished;
              if List.length !finished = 3 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        List.rev !finished)
  in
  Alcotest.(check (list (pair int int)))
    "fifo, 10ms apart"
    [ (1, Sim.ms 10); (2, Sim.ms 20); (3, Sim.ms 30) ]
    finish

let test_resource_capacity2 () =
  let t_end =
    Sim.run (fun () ->
        let r = Sim.Resource.create ~capacity:2 "cpu" in
        let done_ = Sim.Ivar.create () in
        let left = ref 4 in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              Sim.Resource.use r (Sim.ms 10);
              decr left;
              if !left = 0 then Sim.Ivar.fill done_ (Sim.now ()))
        done;
        Sim.Ivar.read done_)
  in
  check_time "4 jobs on 2 servers" (Sim.ms 20) t_end

let test_resource_utilization () =
  let u =
    Sim.run (fun () ->
        let r = Sim.Resource.create "link" in
        Sim.Resource.use r (Sim.ms 30);
        Sim.sleep (Sim.ms 30);
        Sim.Resource.utilization r)
  in
  Alcotest.(check (float 0.001)) "50% busy" 0.5 u

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock"
    (Sim.Deadlock "Sim.run: main process blocked forever")
    (fun () -> Sim.run (fun () -> ignore (Sim.Ivar.read (Sim.Ivar.create ()))))

let test_until () =
  Alcotest.check_raises "timed out" Sim.Timed_out (fun () ->
      Sim.run ~until:(Sim.ms 1) (fun () -> Sim.sleep (Sim.ms 2)))

let test_timer_cancel () =
  let fired =
    Sim.run (fun () ->
        let fired = ref false in
        let t = Sim.Timer.after (Sim.ms 5) (fun () -> fired := true) in
        Sim.sleep (Sim.ms 1);
        Sim.Timer.cancel t;
        Sim.sleep (Sim.ms 10);
        !fired)
  in
  Alcotest.(check bool) "cancelled timer must not fire" false fired

let test_timer_fires () =
  let at =
    Sim.run (fun () ->
        let at = ref 0 in
        let iv = Sim.Ivar.create () in
        ignore (Sim.Timer.after (Sim.ms 5) (fun () -> at := Sim.now (); Sim.Ivar.fill iv ()));
        Sim.Ivar.read iv;
        !at)
  in
  check_time "fires at 5ms" (Sim.ms 5) at

let test_condition_broadcast () =
  let n =
    Sim.run (fun () ->
        let c = Sim.Condition.create () in
        let woken = ref 0 in
        for _ = 1 to 5 do
          Sim.spawn (fun () ->
              Sim.Condition.wait c;
              incr woken)
        done;
        Sim.sleep (Sim.us 1);
        Sim.Condition.broadcast c;
        Sim.sleep (Sim.us 1);
        !woken)
  in
  Alcotest.(check int) "all woken" 5 n

let test_determinism () =
  let observe () =
    Sim.run ~seed:7 (fun () ->
        let xs = ref [] in
        for _ = 1 to 5 do
          xs := Sim.random_int 1000 :: !xs;
          Sim.sleep (Sim.random_int 100)
        done;
        (!xs, Sim.now ()))
  in
  let a = observe () and b = observe () in
  Alcotest.(check (pair (list int) int)) "same seed, same run" a b

let prop_resource_never_over_capacity =
  QCheck.Test.make ~name:"resource never exceeds capacity" ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 30) (int_range 0 1000)))
    (fun (cap, durations) ->
      let max_seen = ref 0 in
      Sim.run (fun () ->
          let r = Sim.Resource.create ~capacity:cap "r" in
          let active = ref 0 in
          let pending = ref (List.length durations) in
          let done_ = Sim.Ivar.create () in
          List.iter
            (fun d ->
              Sim.spawn (fun () ->
                  Sim.sleep (Sim.random_int 50);
                  Sim.Resource.acquire r;
                  incr active;
                  if !active > !max_seen then max_seen := !active;
                  Sim.sleep d;
                  decr active;
                  Sim.Resource.release r;
                  decr pending;
                  if !pending = 0 then Sim.Ivar.fill done_ ()))
            durations;
          if !pending = 0 then () else Sim.Ivar.read done_);
      !max_seen <= cap)

let () =
  Alcotest.run "simkit"
    [
      ( "engine",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "run result" `Quick test_run_result;
          Alcotest.test_case "same-instant fifo" `Quick test_same_instant_fifo;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "until horizon" `Quick test_until;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "broadcast read" `Quick test_ivar;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo messages" `Quick test_mailbox_fifo;
          Alcotest.test_case "fifo receivers" `Quick test_mailbox_blocked_receivers;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serialises" `Quick test_resource_serialises;
          Alcotest.test_case "capacity 2" `Quick test_resource_capacity2;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          QCheck_alcotest.to_alcotest prop_resource_never_over_capacity;
        ] );
      ( "timer",
        [
          Alcotest.test_case "cancel" `Quick test_timer_cancel;
          Alcotest.test_case "fires" `Quick test_timer_fires;
        ] );
      ( "condition",
        [ Alcotest.test_case "broadcast" `Quick test_condition_broadcast ] );
    ]
