open Simkit
open Frangipani

(* A private vdisk for log experiments. *)
let mkvd () =
  let net = Cluster.Net.create () in
  let tb = Petal.Testbed.build ~net ~nservers:3 ~ndisks:2 () in
  let h = Cluster.Host.create "walclient" in
  let rpc = Cluster.Rpc.create (Cluster.Net.attach net h) in
  let c = Petal.Testbed.client tb ~rpc in
  Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2)

let diff addr doff data version = { Wal.addr; doff; data; version }

let d i =
  diff
    (Layout.inode_addr i)
    8
    (Bytes.of_string (Printf.sprintf "record-%04d" i))
    (i + 1)

let test_roundtrip () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:3 ~synchronous:false ~lease_ok:(fun () -> true) in
      for i = 0 to 9 do
        ignore (Wal.append w [ d i ])
      done;
      Wal.flush w;
      let diffs = Wal.scan vd ~slot:3 in
      Alcotest.(check int) "all diffs recovered" 10 (List.length diffs);
      List.iteri
        (fun i (x : Wal.diff) ->
          Alcotest.(check int) "order" (Layout.inode_addr i) x.Wal.addr;
          Alcotest.(check string) "payload"
            (Printf.sprintf "record-%04d" i)
            (Bytes.to_string x.Wal.data))
        diffs)

let test_unflushed_not_durable () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:0 ~synchronous:false ~lease_ok:(fun () -> true) in
      ignore (Wal.append w [ d 1 ]);
      Alcotest.(check int) "nothing on disk yet" 0 (List.length (Wal.scan vd ~slot:0));
      Wal.discard_volatile w;
      Wal.flush w;
      Alcotest.(check int) "discarded tail lost" 0 (List.length (Wal.scan vd ~slot:0)))

let test_synchronous_mode () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:1 ~synchronous:true ~lease_ok:(fun () -> true) in
      ignore (Wal.append w [ d 7 ]);
      (* Durable immediately, no explicit flush. *)
      Alcotest.(check int) "already durable" 1 (List.length (Wal.scan vd ~slot:1)))

let test_ensure_flushed_barrier () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:2 ~synchronous:false ~lease_ok:(fun () -> true) in
      let r1 = Wal.append w [ d 1 ] in
      let r2 = Wal.append w [ d 2 ] in
      Wal.ensure_flushed w r1;
      (* r2 was grouped into the same flush (group commit). *)
      Alcotest.(check bool) "group commit" true (r2 <= Wal.last_rid w);
      Alcotest.(check int) "both durable" 2 (List.length (Wal.scan vd ~slot:2)))

let test_wraparound_keeps_window () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:4 ~synchronous:false ~lease_ok:(fun () -> true) in
      (* Push far more than 128 KB of records through: the log wraps
         several times; scan must return a consistent recent window,
         newest record always included. *)
      let n = 3000 in
      for i = 0 to n - 1 do
        ignore (Wal.append w [ d i ]);
        if i mod 50 = 0 then Wal.flush w
      done;
      Wal.flush w;
      let diffs = Wal.scan vd ~slot:4 in
      Alcotest.(check bool) "non-empty window" true (List.length diffs > 100);
      (* Monotone order, ending at the newest record. *)
      let versions = List.map (fun (x : Wal.diff) -> x.Wal.version) diffs in
      let sorted = List.sort compare versions in
      Alcotest.(check bool) "in order" true (versions = sorted);
      Alcotest.(check int) "newest present" n (List.nth versions (List.length versions - 1)))

let test_isolated_slots () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w5 = Wal.create ~vd ~slot:5 ~synchronous:true ~lease_ok:(fun () -> true) in
      let w6 = Wal.create ~vd ~slot:6 ~synchronous:true ~lease_ok:(fun () -> true) in
      ignore (Wal.append w5 [ d 100 ]);
      ignore (Wal.append w6 [ d 200 ]);
      Alcotest.(check int) "slot5" 1 (List.length (Wal.scan vd ~slot:5));
      Alcotest.(check int) "slot6" 1 (List.length (Wal.scan vd ~slot:6));
      Alcotest.(check int) "slot7 empty" 0 (List.length (Wal.scan vd ~slot:7)))

let test_lease_check_blocks_writes () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let ok = ref true in
      let w = Wal.create ~vd ~slot:8 ~synchronous:false ~lease_ok:(fun () -> !ok) in
      ignore (Wal.append w [ d 1 ]);
      ok := false;
      (try
         Wal.flush w;
         Alcotest.fail "expected EIO"
       with Errors.Error Errors.Eio -> ()))

let prop_scan_returns_complete_prefix_records =
  QCheck.Test.make ~name:"random record sizes survive the sector packer" ~count:25
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 400))
    (fun sizes ->
      Sim.run (fun () ->
          let vd = mkvd () in
          let w = Wal.create ~vd ~slot:9 ~synchronous:false ~lease_ok:(fun () -> true) in
          List.iteri
            (fun i sz ->
              ignore
                (Wal.append w
                   [ diff (Layout.inode_addr i) 8 (Bytes.make (min sz 500) 'p') (i + 1) ]))
            sizes;
          Wal.flush w;
          let diffs = Wal.scan vd ~slot:9 in
          List.length diffs = List.length sizes
          && List.for_all2
               (fun (x : Wal.diff) sz -> Bytes.length x.Wal.data = min sz 500)
               diffs sizes))

let () =
  Alcotest.run "wal"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "unflushed not durable" `Quick test_unflushed_not_durable;
          Alcotest.test_case "synchronous mode" `Quick test_synchronous_mode;
          Alcotest.test_case "ensure_flushed barrier" `Quick test_ensure_flushed_barrier;
          Alcotest.test_case "wraparound window" `Quick test_wraparound_keeps_window;
          Alcotest.test_case "isolated slots" `Quick test_isolated_slots;
          Alcotest.test_case "lease check blocks writes" `Quick
            test_lease_check_blocks_writes;
          QCheck_alcotest.to_alcotest prop_scan_returns_complete_prefix_records;
        ] );
    ]
