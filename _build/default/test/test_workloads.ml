open Simkit
module T = Workloads.Testbed
module V = Workloads.Vfs

let frangipani_vfs ?config () =
  let t = T.build ~petal_servers:3 ~ndisks:3 ~ngroups:16 () in
  (t, V.of_frangipani (T.add_server t ?config ()))

let advfs_vfs () =
  let host = Cluster.Host.create "advfs" in
  V.of_advfs (Advfs.create ~host ())

let test_andrew_on_both () =
  let check v =
    let r = Workloads.Andrew.run v ~root_name:"mab" in
    Alcotest.(check int) (v.V.name ^ " has 5 phases") 5 (List.length r.Workloads.Andrew.phases);
    List.iter
      (fun p ->
        Alcotest.(check bool)
          (Printf.sprintf "%s %s > 0" v.V.name p.Workloads.Andrew.phase)
          true
          (p.Workloads.Andrew.seconds > 0.0))
      r.Workloads.Andrew.phases;
    r.Workloads.Andrew.total
  in
  let tf = Sim.run (fun () -> check (snd (frangipani_vfs ()))) in
  let ta = Sim.run (fun () -> check (advfs_vfs ())) in
  (* Both complete in plausible single-digit-to-tens-of-seconds time,
     with the compile phase dominating. *)
  Alcotest.(check bool) "frangipani total sane" true (tf > 10.0 && tf < 120.0);
  Alcotest.(check bool) "advfs total sane" true (ta > 10.0 && ta < 120.0)

let test_andrew_files_actually_exist () =
  Sim.run (fun () ->
      let _, v = frangipani_vfs () in
      ignore (Workloads.Andrew.run v ~root_name:"mab");
      let base = v.V.lookup ~dir:v.V.root "mab" in
      let src = v.V.lookup ~dir:base "src" in
      let d0 = v.V.lookup ~dir:src "dir0" in
      (* 14 sources + 14 objects per directory. *)
      Alcotest.(check int) "entries" 28 (List.length (v.V.readdir d0)))

let test_connectathon_rows () =
  Sim.run (fun () ->
      let _, v = frangipani_vfs () in
      let rows = Workloads.Connectathon.run v ~root_name:"cth" in
      Alcotest.(check int) "9 rows" 9 (List.length rows);
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (r.Workloads.Connectathon.test ^ " positive")
            true
            (r.Workloads.Connectathon.seconds >= 0.0 && r.Workloads.Connectathon.ops > 0))
        rows)

let test_largefile_throughput_sane () =
  Sim.run (fun () ->
      let _, v = frangipani_vfs () in
      let w = Workloads.Largefile.write_seq v ~name:"big" ~mb:4 in
      let r = Workloads.Largefile.read_seq v ~name:"big" in
      let open Workloads.Largefile in
      Alcotest.(check bool)
        (Printf.sprintf "write %.1f MB/s in [2,20]" w.mb_per_s)
        true
        (w.mb_per_s > 2.0 && w.mb_per_s < 20.0);
      Alcotest.(check bool)
        (Printf.sprintf "read %.1f MB/s in [2.5,20]" r.mb_per_s)
        true
        (r.mb_per_s > 2.5 && r.mb_per_s < 20.0);
      Alcotest.(check bool) "cpu util < 1" true (w.cpu_utilization < 1.0))

let test_contention_runs () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:3 ~ngroups:16 () in
      let writer = V.of_frangipani (T.add_server t ()) in
      let readers = List.init 2 (fun _ -> V.of_frangipani (T.add_server t ())) in
      let r =
        Workloads.Contention.readers_vs_writer ~reader_vfss:readers
          ~writer_vfs:writer ~write_bytes:65536 ~duration:(Sim.sec 10.0)
      in
      Alcotest.(check int) "readers" 2 r.Workloads.Contention.readers;
      Alcotest.(check bool) "some reads happened" true
        (r.Workloads.Contention.read_mb_per_s > 0.0);
      Alcotest.(check bool) "some writes happened" true
        (r.Workloads.Contention.write_mb_per_s > 0.0))

let test_write_write_sharing_runs () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:3 ~ngroups:16 () in
      let writers = List.init 3 (fun _ -> V.of_frangipani (T.add_server t ())) in
      let thr =
        Workloads.Contention.writers_sharing ~writer_vfss:writers
          ~duration:(Sim.sec 5.0)
      in
      Alcotest.(check bool) "progress under write sharing" true (thr > 0.0))

let () =
  Alcotest.run "workloads"
    [
      ( "andrew",
        [
          Alcotest.test_case "runs on both systems" `Quick test_andrew_on_both;
          Alcotest.test_case "files exist" `Quick test_andrew_files_actually_exist;
        ] );
      ("connectathon", [ Alcotest.test_case "rows" `Quick test_connectathon_rows ]);
      ("largefile", [ Alcotest.test_case "throughput sane" `Quick test_largefile_throughput_sane ]);
      ( "contention",
        [
          Alcotest.test_case "readers vs writer" `Quick test_contention_runs;
          Alcotest.test_case "write/write sharing" `Quick test_write_write_sharing_runs;
        ] );
    ]
