open Simkit
open Cluster

let mkfs ?config () =
  let host = Host.create "advfs-host" in
  (host, Advfs.create ~host ?config ())

let test_roundtrip () =
  Sim.run (fun () ->
      let _, fs = mkfs () in
      let f = Advfs.create_file fs ~dir:Advfs.root "f" in
      let data = Bytes.init 100000 (fun i -> Char.chr (i mod 251)) in
      Advfs.write fs f ~off:0 data;
      let got = Advfs.read fs f ~off:0 ~len:100000 in
      Alcotest.(check bool) "roundtrip" true (Bytes.equal data got);
      Advfs.sync fs;
      Advfs.drop_caches fs;
      let got2 = Advfs.read fs f ~off:0 ~len:100000 in
      Alcotest.(check bool) "uncached roundtrip" true (Bytes.equal data got2))

let test_namespace () =
  Sim.run (fun () ->
      let _, fs = mkfs () in
      let d = Advfs.mkdir fs ~dir:Advfs.root "d" in
      let f = Advfs.create_file fs ~dir:d "x" in
      ignore (Advfs.symlink fs ~dir:d "lnk" ~target:"/d/x");
      Alcotest.(check int) "lookup" f (Advfs.lookup fs ~dir:d "x");
      Alcotest.(check string) "readlink" "/d/x"
        (Advfs.readlink fs (Advfs.lookup fs ~dir:d "lnk"));
      Advfs.rename fs ~sdir:d "x" ~ddir:Advfs.root "y";
      Alcotest.(check int) "renamed" f (Advfs.lookup fs ~dir:Advfs.root "y");
      Advfs.link fs ~dir:Advfs.root "y2" ~inum:f;
      Advfs.unlink fs ~dir:Advfs.root "y";
      Alcotest.(check int) "link survives" f (Advfs.lookup fs ~dir:Advfs.root "y2");
      (try
         ignore (Advfs.lookup fs ~dir:Advfs.root "y");
         Alcotest.fail "expected ENOENT"
       with Frangipani.Errors.Error Frangipani.Errors.Enoent -> ()))

let test_truncate () =
  Sim.run (fun () ->
      let _, fs = mkfs () in
      let f = Advfs.create_file fs ~dir:Advfs.root "t" in
      Advfs.write fs f ~off:0 (Bytes.make 10000 'a');
      Advfs.truncate fs f ~size:100;
      Alcotest.(check int) "size" 100 (Advfs.size fs f))

let test_nvram_speeds_fsync () =
  let run nvram =
    Sim.run (fun () ->
        let _, fs = mkfs ~config:{ Advfs.default_config with nvram } () in
        let t0 = Sim.now () in
        for i = 0 to 20 do
          let f = Advfs.create_file fs ~dir:Advfs.root (Printf.sprintf "f%d" i) in
          Advfs.write fs f ~off:0 (Bytes.make 4096 'z');
          Advfs.fsync fs f
        done;
        Sim.now () - t0)
  in
  let raw = run false and nvr = run true in
  Alcotest.(check bool)
    (Printf.sprintf "NVRAM (%d ns) much faster than raw (%d ns)" nvr raw)
    true
    (nvr * 2 < raw)

let test_striping_parallelism () =
  (* Uncached sequential read should beat a single disk's 6 MB/s
     thanks to striped read-ahead. *)
  Sim.run (fun () ->
      let _, fs = mkfs () in
      let f = Advfs.create_file fs ~dir:Advfs.root "big" in
      let mb = 4 in
      let chunk = Bytes.make 65536 'd' in
      for i = 0 to (mb * 16) - 1 do
        Advfs.write fs f ~off:(i * 65536) chunk
      done;
      Advfs.sync fs;
      Advfs.drop_caches fs;
      let t0 = Sim.now () in
      for i = 0 to (mb * 16) - 1 do
        ignore (Advfs.read fs f ~off:(i * 65536) ~len:65536)
      done;
      let dt = Sim.to_sec (Sim.now () - t0) in
      let mbps = float_of_int mb /. dt in
      Alcotest.(check bool)
        (Printf.sprintf "striped read %.1f MB/s > 6" mbps)
        true (mbps > 6.0))

let () =
  Alcotest.run "advfs"
    [
      ( "advfs",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "namespace" `Quick test_namespace;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "nvram speeds fsync" `Quick test_nvram_speeds_fsync;
          Alcotest.test_case "striping parallelism" `Quick test_striping_parallelism;
        ] );
    ]
