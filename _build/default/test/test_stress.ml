(* Stress and rare-path tests: crash during recovery (§6's nested
   recovery), concurrent namespace races across servers (the §5
   two-phase retry), lock-server addition, synchronous-log mode, and
   block-granularity locking correctness. *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let test_crash_during_recovery () =
  (* §6: "This lock is itself covered by a lease so that the lock
     service will start another recovery process should this one
     fail." Kill the first recoverer mid-replay; a third server must
     eventually complete recovery. *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let a = T.add_server t () in
      let b = T.add_server t () in
      let c = T.add_server t () in
      for i = 0 to 30 do
        ignore (Fs.create a ~dir:Fs.root (Printf.sprintf "f%d" i))
      done;
      Fs.sync a;
      (* Rig B to die the instant the lock service asks it to run
         recovery: the recovery lock's lease then expires and the
         service re-initiates with another clerk. *)
      Locksvc.Clerk.set_callbacks b.Ctx.clerk
        ~on_revoke:(fun ~lock:_ ~to_read:_ -> ())
        ~on_do_recovery:(fun ~dead_lease:_ -> Fs.crash b)
        ~on_expired:(fun () -> ());
      Fs.crash a;
      (* C eventually recovers both logs and can use everything. *)
      let entries = Fs.readdir c Fs.root in
      Alcotest.(check int) "all files recovered" 31 (List.length entries);
      Alcotest.(check bool) "took multiple lease periods" true
        (Sim.now () > Sim.sec 60.0);
      Alcotest.(check int) "fsck clean" 0 (List.length (Fsck.check c)))

let test_concurrent_namespace_races () =
  (* Many servers hammering the same directory with creates, renames
     and unlinks of the same names: the sorted-lock two-phase retry
     protocol must neither deadlock nor corrupt the tree. *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let servers = Array.init 4 (fun _ -> T.add_server t ()) in
      let d = Fs.mkdir servers.(0) ~dir:Fs.root "arena" in
      let pending = ref (4 * 25) in
      let all = Sim.Ivar.create () in
      Array.iteri
        (fun si fs ->
          for k = 0 to 24 do
            Sim.spawn (fun () ->
                let name = Printf.sprintf "n%d" (k mod 6) in
                (try
                   match k mod 4 with
                   | 0 -> ignore (Fs.create fs ~dir:d name)
                   | 1 -> Fs.unlink fs ~dir:d name
                   | 2 -> Fs.rename fs ~sdir:d name ~ddir:d (name ^ "-r")
                   | _ -> ignore (Fs.lookup fs ~dir:d name)
                 with Errors.Error _ -> () (* races legitimately fail *));
                ignore si;
                decr pending;
                if !pending = 0 then Sim.Ivar.fill all ())
          done)
        servers;
      Sim.Ivar.read all;
      (* Whatever happened, the tree must be consistent. *)
      Fs.sync servers.(0);
      Alcotest.(check int) "fsck clean after races" 0
        (List.length (Fsck.check servers.(0)));
      (* Entries must be readable from every server identically. *)
      let views =
        Array.to_list servers
        |> List.map (fun fs -> List.sort compare (List.map fst (Fs.readdir fs d)))
      in
      List.iter
        (fun v -> Alcotest.(check (list string)) "identical views" (List.hd views) v)
        views)

let test_lock_server_addition () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let fs = T.add_server t () in
      for i = 0 to 9 do
        ignore (Fs.create fs ~dir:Fs.root (Printf.sprintf "f%d" i))
      done;
      (* Bring up a brand-new lock server machine and add it to the
         service; groups are reassigned, state recovered from clerks. *)
      let h = Cluster.Host.create "ls-new" in
      let rpc = Cluster.Rpc.create (Cluster.Net.attach t.T.net h) in
      let peers = t.T.lock_addrs in
      ignore
        (Locksvc.Server.create ~host:h ~rpc
           ~peers:(Array.append peers [| Cluster.Rpc.addr rpc |])
           ~index:(Array.length peers) ~ngroups:16
           ~stable:(Locksvc.Paxos_group.stable ()) ());
      Locksvc.Server.propose_add_server t.T.lock_servers.(0) (Cluster.Rpc.addr rpc);
      Sim.sleep (Sim.sec 10.0);
      (* The file system keeps working through the reassignment. *)
      for i = 10 to 19 do
        ignore (Fs.create fs ~dir:Fs.root (Printf.sprintf "f%d" i))
      done;
      Alcotest.(check int) "20 files" 20 (List.length (Fs.readdir fs Fs.root)))

let test_synchronous_log_durability () =
  (* §4's synchronous-log option: metadata is durable when the call
     returns, even without sync — at a latency cost. *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let config = { Ctx.default_config with Ctx.synchronous_log = true } in
      let a = T.add_server t ~config () in
      let b = T.add_server t () in
      ignore (Fs.create a ~dir:Fs.root "durable-no-sync");
      (* Crash WITHOUT any sync: the create must survive. *)
      Fs.crash a;
      let names = List.map fst (Fs.readdir b Fs.root) in
      Alcotest.(check bool) "create survived crash without sync" true
        (List.mem "durable-no-sync" names))

let test_block_locks_correctness () =
  (* The finer-granularity ablation must still be coherent: two
     servers writing disjoint blocks of one file concurrently. *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let config = { Ctx.default_config with Ctx.block_locks = true } in
      let a = T.add_server t ~config () in
      let b = T.add_server t ~config () in
      let f = Fs.create a ~dir:Fs.root "striped" in
      Fs.truncate a f ~size:(64 * 4096);
      let pending = ref 2 in
      let all = Sim.Ivar.create () in
      let writer fs base ch =
        Sim.spawn (fun () ->
            for k = 0 to 31 do
              Fs.write fs f ~off:((base + (k * 2)) * 4096) (Bytes.make 4096 ch)
            done;
            decr pending;
            if !pending = 0 then Sim.Ivar.fill all ())
      in
      writer a 0 'A';
      writer b 1 'B';
      Sim.Ivar.read all;
      (* Every even block is A's, every odd block is B's, from both
         servers' viewpoints. *)
      List.iter
        (fun fs ->
          let data = Fs.read fs f ~off:0 ~len:(64 * 4096) in
          for blk = 0 to 63 do
            let expect = if blk mod 2 = 0 then 'A' else 'B' in
            Alcotest.(check char)
              (Printf.sprintf "block %d" blk)
              expect
              (Bytes.get data (blk * 4096))
          done)
        [ a; b ])

let test_multiple_filesystems_one_server () =
  (* §3: "a single Frangipani server can support multiple Frangipani
     file systems on multiple virtual disks". Mount two independent
     file systems from one machine (two lock tables, two vdisks). *)
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let fs0 = T.add_server t ~name:"multi" () in
      (* Second virtual disk, formatted and mounted on the SAME host
         through the same endpoint, under its own lock table. *)
      let rpc = T.rpc_of t fs0 in
      let pc = Petal.Testbed.client t.T.petal ~rpc in
      let vid2 = Petal.Client.create_vdisk pc ~nrep:2 in
      let vd2 = Petal.Client.open_vdisk pc vid2 in
      Fs.format vd2;
      let fs1 =
        Fs.mount ~host:(Fs.host fs0) ~rpc ~vd:vd2 ~lock_servers:t.T.lock_addrs
          ~table:"fs1" ()
      in
      ignore (Path.write_file fs0 "/same-name" (Bytes.of_string "on fs0"));
      ignore (Path.write_file fs1 "/same-name" (Bytes.of_string "on fs1"));
      Alcotest.(check string) "fs0 isolated" "on fs0"
        (Bytes.to_string (Path.read_file fs0 "/same-name"));
      Alcotest.(check string) "fs1 isolated" "on fs1"
        (Bytes.to_string (Path.read_file fs1 "/same-name"));
      (* Lock-group reassignment must recover BOTH tables' locks from
         the shared machine (the per-endpoint clerk registry). *)
      Cluster.Host.crash t.T.petal.Petal.Testbed.hosts.(2);
      Sim.sleep (Sim.sec 20.0);
      ignore (Path.write_file fs0 "/after" (Bytes.of_string "a"));
      ignore (Path.write_file fs1 "/after" (Bytes.of_string "b"));
      Alcotest.(check int) "fs0 clean" 0 (List.length (Fsck.check fs0));
      Alcotest.(check int) "fs1 clean" 0 (List.length (Fsck.check fs1)))

let test_deep_tree_and_many_dirs () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let fs = T.add_server t () in
      (* A 30-deep path and a directory with 500 entries. *)
      let deep = String.concat "/" (List.init 30 (fun i -> Printf.sprintf "d%d" i)) in
      ignore (Path.mkdir_p fs ("/" ^ deep));
      ignore (Path.write_file fs ("/" ^ deep ^ "/leaf") (Bytes.of_string "deep"));
      Alcotest.(check string) "deep leaf" "deep"
        (Bytes.to_string (Path.read_file fs ("/" ^ deep ^ "/leaf")));
      let wide = Fs.mkdir fs ~dir:Fs.root "wide" in
      for i = 0 to 499 do
        ignore (Fs.create fs ~dir:wide (Printf.sprintf "e%03d" i))
      done;
      Alcotest.(check int) "500 entries" 500 (List.length (Fs.readdir fs wide));
      Fs.sync fs;
      Alcotest.(check int) "fsck clean" 0 (List.length (Fsck.check fs)))

let () =
  Alcotest.run "stress"
    [
      ( "stress",
        [
          Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
          Alcotest.test_case "concurrent namespace races" `Quick
            test_concurrent_namespace_races;
          Alcotest.test_case "lock server addition" `Quick test_lock_server_addition;
          Alcotest.test_case "synchronous log durability" `Quick
            test_synchronous_log_durability;
          Alcotest.test_case "block locks correctness" `Quick
            test_block_locks_correctness;
          Alcotest.test_case "deep tree, wide dir" `Quick test_deep_tree_and_many_dirs;
          Alcotest.test_case "multiple filesystems, one server" `Quick
            test_multiple_filesystems_one_server;
        ] );
    ]
