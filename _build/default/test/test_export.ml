(* The §2.2 client/server configuration: remote untrusted clients
   access the shared file system through a Frangipani server over an
   NFS-like protocol, never touching Petal or the lock service. *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let setup () =
  let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
  let fs1 = T.add_server t () in
  let fs2 = T.add_server t () in
  (* Export both servers on their own machines; attach one remote
     (untrusted) client machine to each. *)
  Export.serve fs1 (T.rpc_of t fs1);
  Export.serve fs2 (T.rpc_of t fs2);
  let _, crpc1 = T.fresh_client t "client1" in
  let _, crpc2 = T.fresh_client t "client2" in
  let c1 = Export.connect ~rpc:crpc1 ~server:(T.addr_of t fs1) in
  let c2 = Export.connect ~rpc:crpc2 ~server:(T.addr_of t fs2) in
  (t, fs1, fs2, c1, c2)

let test_remote_basic () =
  Sim.run (fun () ->
      let _, _, _, c1, _ = setup () in
      let d = Export.mkdir c1 ~dir:Export.root "remote" in
      let f = Export.create c1 ~dir:d "file" in
      Export.write c1 f ~off:0 (Bytes.of_string "over the wire");
      Alcotest.(check string) "read back" "over the wire"
        (Bytes.to_string (Export.read c1 f ~off:0 ~len:100));
      let st = Export.getattr c1 f in
      Alcotest.(check int) "size" 13 st.Fs.size;
      Export.fsync c1 f;
      let names = List.map fst (Export.readdir c1 d) in
      Alcotest.(check (list string)) "readdir" [ "file" ] names)

let test_remote_errors_transported () =
  Sim.run (fun () ->
      let _, _, _, c1, _ = setup () in
      (try
         ignore (Export.lookup c1 ~dir:Export.root "ghost");
         Alcotest.fail "expected ENOENT"
       with Errors.Error Errors.Enoent -> ());
      ignore (Export.mkdir c1 ~dir:Export.root "d");
      try
        Export.unlink c1 ~dir:Export.root "d";
        Alcotest.fail "expected EISDIR"
      with Errors.Error Errors.Eisdir -> ())

let test_cross_server_coherence_via_protocol () =
  Sim.run (fun () ->
      let _, _, _, c1, c2 = setup () in
      (* Client 1 writes through server 1; client 2, attached to a
         DIFFERENT Frangipani server, observes it — §2.2's point that
         Frangipani-level coherence survives the protocol layer. *)
      let f = Export.create c1 ~dir:Export.root "shared" in
      Export.write c1 f ~off:0 (Bytes.of_string "via server 1");
      let f2 = Export.lookup c2 ~dir:Export.root "shared" in
      Alcotest.(check int) "same inum" f f2;
      Alcotest.(check string) "coherent across servers" "via server 1"
        (Bytes.to_string (Export.read c2 f2 ~off:0 ~len:100));
      Export.write c2 f2 ~off:0 (Bytes.of_string "via server 2");
      Alcotest.(check string) "and back" "via server 2"
        (Bytes.to_string (Export.read c1 f ~off:0 ~len:100));
      Export.rename c2 ~sdir:Export.root "shared" ~ddir:Export.root "renamed";
      Alcotest.(check int) "rename visible" f
        (Export.lookup c1 ~dir:Export.root "renamed"))

let test_server_failover_for_clients () =
  Sim.run (fun () ->
      let _, fs1, _, c1, c2 = setup () in
      let f = Export.create c1 ~dir:Export.root "persistent" in
      Export.write c1 f ~off:0 (Bytes.of_string "keep me");
      Export.fsync c1 f;
      (* Client 1's Frangipani server dies. The client re-attaches to
         the surviving server (the paper suggests IP takeover; we model
         the re-attach directly) and finds its data after recovery. *)
      Fs.crash fs1;
      let f2 = Export.lookup c2 ~dir:Export.root "persistent" in
      Alcotest.(check string) "data after server failover" "keep me"
        (Bytes.to_string (Export.read c2 f2 ~off:0 ~len:100)))

let () =
  Alcotest.run "export"
    [
      ( "export",
        [
          Alcotest.test_case "remote basics" `Quick test_remote_basic;
          Alcotest.test_case "errors transported" `Quick test_remote_errors_transported;
          Alcotest.test_case "cross-server coherence" `Quick
            test_cross_server_coherence_via_protocol;
          Alcotest.test_case "server failover" `Quick test_server_failover_for_clients;
        ] );
    ]
