(* Online backup (paper §8): quiesce the cluster through the global
   barrier lock, snapshot the Petal virtual disk, and mount the
   snapshot read-only — while the live file system keeps running.

   Run with: dune exec examples/backup.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:4 ~ndisks:4 () in
      let fs = T.add_server t ~name:"server" () in

      ignore (Path.mkdir_p fs "/mail");
      for i = 0 to 9 do
        ignore
          (Path.write_file fs
             (Printf.sprintf "/mail/msg%d" i)
             (Bytes.of_string (Printf.sprintf "message %d, version 1" i)))
      done;

      (* A writer keeps modifying the mailbox while the backup runs. *)
      let writing = ref true in
      Sim.spawn (fun () ->
          let rec loop v =
            if !writing then begin
              for i = 0 to 9 do
                ignore
                  (Path.write_file fs
                     (Printf.sprintf "/mail/msg%d" i)
                     (Bytes.of_string (Printf.sprintf "message %d, version %d" i v)))
              done;
              Sim.sleep (Sim.ms 500);
              loop (v + 1)
            end
          in
          loop 2);
      Sim.sleep (Sim.sec 2.0);

      (* The backup program is just another lock-service client. *)
      let _, brpc = T.fresh_client t "backup-host" in
      let backup = Backup.connect ~rpc:brpc ~lock_servers:t.T.lock_addrs ~table:"fs0" in
      let vd = T.open_vdisk t ~rpc:brpc t.T.vdisk_id in
      let t0 = Sim.now () in
      let snap_id = Backup.snapshot backup vd in
      Printf.printf "snapshot %d taken in %.0f ms (barrier + Petal COW)\n" snap_id
        (Sim.to_sec (Sim.now () - t0) *. 1000.0);
      Sim.sleep (Sim.sec 2.0);
      writing := false;

      (* Mount the snapshot read-only under its own lock table: it is
         file-system consistent, so no recovery is needed. *)
      let mh, mrpc = T.fresh_client t "restore-host" in
      let vd_snap = T.open_vdisk t ~rpc:mrpc snap_id in
      let snap_fs =
        Fs.mount ~host:mh ~rpc:mrpc ~vd:vd_snap ~lock_servers:t.T.lock_addrs
          ~table:"fs0@backup" ~readonly:true ()
      in
      (* Every message in the snapshot is from one consistent version
         cut, even though writes were racing the backup. *)
      let versions =
        List.init 10 (fun i ->
            let data = Path.read_file snap_fs (Printf.sprintf "/mail/msg%d" i) in
            String.sub (Bytes.to_string data)
              (String.length "message 0, version ")
              (Bytes.length data - String.length "message 0, version "))
      in
      Printf.printf "snapshot versions: %s\n" (String.concat "," versions);
      Printf.printf "live version now:  %s\n"
        (Bytes.to_string (Path.read_file fs "/mail/msg0"));
      (* "Users get quick access to accidentally deleted files" (§1):
         restore one message from the online backup. *)
      Path.unlink fs "/mail/msg3";
      let saved = Path.read_file snap_fs "/mail/msg3" in
      ignore (Path.write_file fs "/mail/msg3" saved);
      Printf.printf "restored /mail/msg3 from the online snapshot: %s\n"
        (Bytes.to_string saved);
      print_endline "backup example finished.")
