examples/contention.mli:
