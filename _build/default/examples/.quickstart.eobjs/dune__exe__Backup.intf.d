examples/backup.mli:
