examples/backup.ml: Backup Bytes Frangipani Fs List Path Printf Sim Simkit String Workloads
