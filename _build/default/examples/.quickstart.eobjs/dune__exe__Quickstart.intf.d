examples/quickstart.mli:
