examples/failover.ml: Array Bytes Cluster Frangipani Fs Fun List Logs Path Petal Printf Sim Simkit Workloads
