examples/scaling.ml: Bytes Frangipani Fs List Printf Sim Simkit Workloads
