examples/remote_clients.mli:
