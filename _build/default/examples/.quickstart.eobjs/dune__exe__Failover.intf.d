examples/failover.mli:
