examples/scaling.mli:
