examples/contention.ml: Frangipani List Printf Sim Simkit Workloads
