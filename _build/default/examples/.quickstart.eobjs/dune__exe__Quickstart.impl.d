examples/quickstart.ml: Array Bytes Frangipani Fs List Path Petal Printf Sim Simkit Workloads
