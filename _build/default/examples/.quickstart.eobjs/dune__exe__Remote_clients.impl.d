examples/remote_clients.ml: Bytes Export Frangipani Fs Printf Sim Simkit Workloads
