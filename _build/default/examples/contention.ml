(* Contention: what whole-file locks cost under write sharing
   (paper §9.4).

   One server keeps rewriting a file while readers stream it; the
   whole-file lock ping-pongs, and with read-ahead enabled the
   readers throw away prefetched data on every revoke — the anomaly
   of Figure 8. Run the same workload with read-ahead off and with
   the (future-work) block-granularity locks to see both remedies.

   Run with: dune exec examples/contention.exe *)

open Simkit
module T = Workloads.Testbed
module V = Workloads.Vfs
module C = Workloads.Contention

let experiment ~label ~config ~readers:n =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:5 ~ndisks:6 () in
      let writer = V.of_frangipani (T.add_server t ~config ()) in
      let readers = List.init n (fun _ -> V.of_frangipani (T.add_server t ~config ())) in
      let r =
        C.readers_vs_writer ~reader_vfss:readers ~writer_vfs:writer
          ~write_bytes:(1024 * 1024) ~duration:(Sim.sec 30.0)
      in
      Printf.printf "%-24s readers=%d  read %6.2f MB/s  write %6.2f MB/s\n" label n
        r.C.read_mb_per_s r.C.write_mb_per_s)

let () =
  let base = Frangipani.Ctx.default_config in
  print_endline "-- whole-file locks, read-ahead on (Figure 8 anomaly) --";
  List.iter
    (fun n -> experiment ~label:"read-ahead on" ~config:base ~readers:n)
    [ 1; 3; 5 ];
  print_endline "-- whole-file locks, read-ahead off (Figure 8 fix) --";
  List.iter
    (fun n ->
      experiment ~label:"read-ahead off"
        ~config:{ base with Frangipani.Ctx.read_ahead = 0 }
        ~readers:n)
    [ 1; 3; 5 ];
  print_endline "-- block-granularity locks (the paper's future work) --";
  List.iter
    (fun n ->
      experiment ~label:"block locks"
        ~config:{ base with Frangipani.Ctx.block_locks = true; read_ahead = 0 }
        ~readers:n)
    [ 1; 3; 5 ];
  print_endline "contention example finished."
