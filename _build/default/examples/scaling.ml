(* Scaling: servers as stackable bricks (paper §1 property 2).

   Adds Frangipani servers one at a time to a running cluster —
   without touching the existing ones — and measures the aggregate
   write throughput as each joins. Throughput grows until the Petal
   servers' links saturate, the behaviour behind Figure 7.

   Run with: dune exec examples/scaling.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let mb = 1024 * 1024

let () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:7 ~ndisks:9 () in
      Printf.printf "%-8s %-18s %s\n" "servers" "aggregate MB/s" "per-server MB/s";
      let servers = ref [] in
      for n = 1 to 6 do
        (* Add one more brick; nobody else is reconfigured. *)
        servers := T.add_server t ~name:(Printf.sprintf "brick%d" n) () :: !servers;
        let t0 = Sim.now () in
        let pending = ref n in
        let all = Sim.Ivar.create () in
        List.iteri
          (fun i fs ->
            Sim.spawn (fun () ->
                let name = Printf.sprintf "file-%d-%d" n i in
                let inum = Fs.create fs ~dir:Fs.root name in
                let chunk = Bytes.make 65536 'w' in
                for k = 0 to (4 * mb / 65536) - 1 do
                  Fs.write fs inum ~off:(k * 65536) chunk
                done;
                Fs.sync fs;
                decr pending;
                if !pending = 0 then Sim.Ivar.fill all ()))
          !servers;
        Sim.Ivar.read all;
        let secs = Sim.to_sec (Sim.now () - t0) in
        let total_mb = float_of_int (4 * n) in
        Printf.printf "%-8d %-18.1f %.1f\n" n (total_mb /. secs)
          (total_mb /. secs /. float_of_int n)
      done;
      print_endline "scaling example finished.")
