(* Failover: a Frangipani server crashes mid-workload; the lock
   service detects the dead lease, a surviving server replays the
   victim's log, and the shared file system stays consistent —
   entirely without operator intervention (paper §1 property 5, §4,
   §6).

   Run with: dune exec examples/failover.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  Sim.run (fun () ->
      let t = T.build ~petal_servers:4 ~ndisks:4 () in
      let victim = T.add_server t ~name:"victim" () in
      let survivor = T.add_server t ~name:"survivor" () in

      (* The victim does a burst of work and makes part of it durable. *)
      ignore (Path.mkdir_p victim "/data");
      for i = 0 to 19 do
        ignore
          (Path.write_file victim
             (Printf.sprintf "/data/record-%02d" i)
             (Bytes.of_string (Printf.sprintf "payload %d" i)))
      done;
      Fs.sync victim;
      Printf.printf "[%.1fs] victim wrote 20 files and synced its log\n"
        (Sim.to_sec (Sim.now ()));
      (* ... and some work that never reaches Petal. *)
      ignore (Path.write_file victim "/data/unsynced" (Bytes.of_string "doomed"));

      (* Power failure. Volatile state (cache, log tail, lease) is
         gone; the on-Petal log holds the durable operations. *)
      Fs.crash victim;
      Printf.printf "[%.1fs] victim crashed\n" (Sim.to_sec (Sim.now ()));

      (* The survivor touches a lock the victim held; it blocks until
         the lease expires (30 s) and recovery replays the log, then
         proceeds. No administrator involved. *)
      let t0 = Sim.now () in
      let entries = Fs.readdir survivor (Path.resolve survivor "/data") in
      Printf.printf "[%.1fs] survivor listed /data after %.1fs of recovery wait\n"
        (Sim.to_sec (Sim.now ()))
        (Sim.to_sec (Sim.now () - t0));
      Printf.printf "         %d files survived (unsynced one lost: %b)\n"
        (List.length entries)
        (not (List.mem_assoc "unsynced" entries));
      List.iter
        (fun i ->
          let data =
            Path.read_file survivor (Printf.sprintf "/data/record-%02d" i)
          in
          assert (Bytes.to_string data = Printf.sprintf "payload %d" i))
        (List.init 20 Fun.id);
      print_endline "all synced data intact after failover.";

      (* A replacement server joins with a clean log (§7: adding a
         server takes no administrative work). *)
      let fresh = T.add_server t ~name:"replacement" () in
      ignore (Path.write_file fresh "/data/after-failover" (Bytes.of_string "ok"));
      Printf.printf "replacement server wrote /data/after-failover\n";

      (* Also survive a Petal machine failure: data is replicated. *)
      Cluster.Host.crash t.T.petal.Petal.Testbed.hosts.(2);
      Printf.printf "[%.1fs] petal2 crashed; reads fail over to replicas\n"
        (Sim.to_sec (Sim.now ()));
      let check = Path.read_file survivor "/data/record-07" in
      Printf.printf "read through failover: %s\n" (Bytes.to_string check);
      print_endline "failover example finished.")
