(* Quickstart: bring up a Frangipani cluster and use it like a local
   file system.

   Builds the paper's Figure 2 configuration inside the simulator —
   Petal storage servers (with the lock service co-located), a shared
   virtual disk, and two Frangipani server machines — then shows that
   both machines see one coherent file tree.

   Run with: dune exec examples/quickstart.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  Sim.run (fun () ->
      (* A cluster: 4 Petal machines x 4 disks, 2-way replicated
         virtual disk, formatted with an empty Frangipani file
         system. *)
      let t = T.build ~petal_servers:4 ~ndisks:4 () in
      Printf.printf "cluster up: %d Petal servers, vdisk %d\n"
        (Array.length t.T.petal.Petal.Testbed.hosts)
        t.T.vdisk_id;

      (* Two workstations mount the shared file system. Adding a
         server needs nothing but the virtual disk and the lock
         service (paper §7). *)
      let ws1 = T.add_server t ~name:"ws1" () in
      let ws2 = T.add_server t ~name:"ws2" () in

      (* ws1 builds a small project tree through the path helpers. *)
      ignore (Path.mkdir_p ws1 "/home/alice/project");
      ignore
        (Path.write_file ws1 "/home/alice/project/main.ml"
           (Bytes.of_string "let () = print_endline \"hello\"\n"));
      ignore (Path.symlink ws1 "/home/alice/latest" ~target:"project/main.ml");
      Printf.printf "[ws1] wrote /home/alice/project/main.ml\n";

      (* ws2 sees it immediately — coherent shared access (§2.1). *)
      let text = Path.read_file ws2 "/home/alice/project/main.ml" in
      Printf.printf "[ws2] read  %d bytes: %s" (Bytes.length text)
        (Bytes.to_string text);
      let via_link = Path.read_file ws2 "/home/alice/latest" in
      assert (Bytes.equal text via_link);

      (* ws2 edits; ws1 sees the change. *)
      ignore
        (Path.write_file ws2 "/home/alice/project/main.ml"
           (Bytes.of_string "let () = print_endline \"edited on ws2\"\n"));
      Printf.printf "[ws1] sees  %s"
        (Bytes.to_string (Path.read_file ws1 "/home/alice/project/main.ml"));

      (* Directory listing, stat, rename. *)
      let dir = Path.resolve ws1 "/home/alice/project" in
      List.iter
        (fun (name, inum) ->
          let st = Fs.stat ws1 inum in
          Printf.printf "[ws1] ls: %-10s inum=%d size=%d\n" name inum st.Fs.size)
        (Fs.readdir ws1 dir);
      Path.rename ws2 "/home/alice/project" "/home/alice/project-v2";
      Printf.printf "[ws1] after ws2's rename, project-v2 exists: %b\n"
        (Path.exists ws1 "/home/alice/project-v2");

      (* Durability: fsync forces the log and data to Petal. *)
      let inum = Path.resolve ws1 "/home/alice/project-v2/main.ml" in
      Fs.fsync ws1 inum;
      Printf.printf "fsync done at simulated t=%.3fs\n" (Sim.to_sec (Sim.now ()));
      Fs.unmount ws1;
      Fs.unmount ws2;
      print_endline "quickstart finished.")
