(* The client/server configuration of §2.2 (Figure 3): untrusted
   client machines outside the administrative domain access the file
   system through Frangipani server machines over an NFS-like
   protocol — they never touch Petal or the lock service, yet still
   see one coherent tree because coherence lives in the Frangipani
   layer below the protocol.

   Run with: dune exec examples/remote_clients.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:4 ~ndisks:4 () in
      (* Two trusted Frangipani server machines, each exporting. *)
      let fs1 = T.add_server t ~name:"trusted1" () in
      let fs2 = T.add_server t ~name:"trusted2" () in
      Export.serve fs1 (T.rpc_of t fs1);
      Export.serve fs2 (T.rpc_of t fs2);
      (* Two untrusted client workstations, one per server. *)
      let _, crpc1 = T.fresh_client t "laptop-alice" in
      let _, crpc2 = T.fresh_client t "laptop-bob" in
      let alice = Export.connect ~rpc:crpc1 ~server:(T.addr_of t fs1) in
      let bob = Export.connect ~rpc:crpc2 ~server:(T.addr_of t fs2) in

      let home = Export.mkdir alice ~dir:Export.root "home" in
      let f = Export.create alice ~dir:home "notes.txt" in
      Export.write alice f ~off:0 (Bytes.of_string "draft by alice\n");
      Printf.printf "[alice->trusted1] wrote /home/notes.txt\n";

      (* Bob reads through a DIFFERENT server: still coherent. *)
      let home_b = Export.lookup bob ~dir:Export.root "home" in
      let f_b = Export.lookup bob ~dir:home_b "notes.txt" in
      Printf.printf "[bob  ->trusted2] read: %s"
        (Bytes.to_string (Export.read bob f_b ~off:0 ~len:100));
      Export.write bob f_b ~off:15 (Bytes.of_string "edits by bob\n");
      Printf.printf "[alice->trusted1] sees: %S\n"
        (Bytes.to_string (Export.read alice f ~off:0 ~len:100));

      let st = Export.getattr bob f_b in
      Printf.printf "stat over the wire: size=%d nlink=%d\n" st.Fs.size st.Fs.nlink;
      print_endline "remote-clients example finished.")
