(* End-to-end smoke test: brings up the full stack (Petal + lock
   service + two Frangipani servers), writes durable data, crashes a
   server, waits out lease expiry and recovery, and verifies the
   survivor sees consistent state. Exits 0 on success.

   Run with: dune exec bin/smoke/smoke.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  let ok =
    Sim.run (fun () ->
        let t = T.build ~petal_servers:4 ~ndisks:4 () in
        let a = T.add_server t () in
        let b = T.add_server t () in
        ignore (Path.mkdir_p a "/smoke");
        for i = 0 to 9 do
          ignore
            (Path.write_file a
               (Printf.sprintf "/smoke/f%d" i)
               (Bytes.make 4096 (Char.chr (48 + i))))
        done;
        Fs.sync a;
        Fs.crash a;
        let entries = Fs.readdir b (Path.resolve b "/smoke") in
        let intact =
          List.for_all
            (fun i ->
              Bytes.get (Path.read_file b (Printf.sprintf "/smoke/f%d" i)) 0
              = Char.chr (48 + i))
            (List.init 10 Fun.id)
        in
        List.length entries = 10 && intact && Fsck.check b = [])
  in
  if ok then print_endline "SMOKE OK"
  else begin
    print_endline "SMOKE FAILED";
    exit 1
  end
