(* frangipani-fsck: demonstrate the metadata consistency checker the
   paper lists as future work (§4).

   Builds a cluster, creates a file tree, injects three kinds of
   damage directly into the on-disk structures (simulating the
   software bugs / double sector loss the paper worries about), then
   runs the checker and repairs the damage.

   Run with: dune exec bin/fsck/fsck.exe *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let () =
  Sim.run (fun () ->
      let t = T.build ~petal_servers:4 ~ndisks:4 () in
      let fs = T.add_server t ~name:"server" () in
      ignore (Path.mkdir_p fs "/proj/src");
      for i = 0 to 9 do
        ignore
          (Path.write_file fs
             (Printf.sprintf "/proj/src/f%d.ml" i)
             (Bytes.make (2048 + (i * 512)) 'c'))
      done;
      ignore (Path.symlink fs "/proj/latest" ~target:"src/f9.ml");
      Fs.sync fs;

      Printf.printf "clean tree: %d findings\n"
        (List.length (Fsck.check fs));

      (* Damage 1: orphan an inode by allocating it without linking. *)
      let orphan = Fs.create fs ~dir:Fs.root "to-be-orphaned" in
      Fs.write fs orphan ~off:0 (Bytes.make 4096 'o');
      Fs.unlink_entry_only_for_test fs ~dir:Fs.root "to-be-orphaned";

      (* Damage 2: break a link count. *)
      let victim = Path.resolve fs "/proj/src/f3.ml" in
      Fs.corrupt_nlink_for_test fs victim 7;
      Fs.sync fs;

      let findings = Fsck.check fs in
      Printf.printf "after damage: %d findings\n" (List.length findings);
      List.iter
        (fun f -> Format.printf "  - %a@." Fsck.pp_finding f)
        findings;

      let fixed = Fsck.repair fs findings in
      Printf.printf "repaired %d findings\n" fixed;
      let remaining = Fsck.check fs in
      Printf.printf "after repair: %d findings\n" (List.length remaining);
      assert (remaining = []);
      (* The tree still works. *)
      assert (Bytes.length (Path.read_file fs "/proj/src/f3.ml") > 0);
      print_endline "fsck demo finished.")
