(** Metadata consistency check and repair — the fsck-like tool the
    paper lists as unimplemented ("If both copies of a sector were
    lost, or if Frangipani's data structures were corrupted by a
    software bug, a metadata consistency check and repair tool (like
    Unix fsck) would be needed", §4).

    Walks the directory tree from the root over a (typically
    read-only snapshot) mount and cross-checks it against the
    allocation bitmaps:

    - every directory entry points at an allocated, live inode;
    - no data block or inode is referenced twice;
    - link counts match the directory structure;
    - every block pointer's allocation bit is set;
    - allocated bits in the scanned bitmap segments correspond to
      reachable objects (leak detection).

    With [repair] (on a writable mount) it clears leaked bits,
    fixes link counts and removes entries pointing at free inodes. *)

type finding =
  | Dangling_entry of { dir : int; name : string; target : int }
      (** directory entry whose target inode is free *)
  | Bad_nlink of { inum : int; stored : int; actual : int }
  | Unallocated_ref of { inum : int; pool : Layout.pool; bit : int }
      (** block pointer whose allocation bit is clear *)
  | Double_ref of { pool : Layout.pool; bit : int; inums : int * int }
  | Leaked_bit of { pool : Layout.pool; bit : int }
      (** allocated bit not referenced by any reachable object *)
  | Orphan_inode of { inum : int }
      (** allocated inode not reachable from the root *)

val pp_finding : Format.formatter -> finding -> unit

val check : Fs.t -> finding list
(** Full scan; pure (no writes). Run it on a quiesced or snapshot
    mount — a live, concurrently-modified tree will show spurious
    findings. *)

val repair : Fs.t -> finding list -> int
(** Apply fixes for the findings that have a safe local repair;
    returns how many were repaired. *)
