(** File-system error conditions, in the spirit of Unix errnos. *)

type error =
  | Enoent  (** no such file or directory *)
  | Eexist
  | Enotdir
  | Eisdir
  | Enotempty
  | Enametoolong
  | Einval
  | Efbig  (** beyond the 64 KB + 1 TB per-file limit *)
  | Enospc
  | Estale  (** inode freed or reused under the caller *)
  | Erofs  (** write to a mounted snapshot *)
  | Eio
      (** catch-all for lost storage, including operation attempted
          after the server's lease expired (paper §6: all requests
          return an error until the file system is unmounted) *)

exception Error of error

let to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Enotempty -> "ENOTEMPTY"
  | Enametoolong -> "ENAMETOOLONG"
  | Einval -> "EINVAL"
  | Efbig -> "EFBIG"
  | Enospc -> "ENOSPC"
  | Estale -> "ESTALE"
  | Erofs -> "EROFS"
  | Eio -> "EIO"

let fail e = raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Frangipani.Error " ^ to_string e)
    | _ -> None)
