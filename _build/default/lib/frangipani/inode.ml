(** Inode access through the cache; the caller holds the file's lock
    in the appropriate mode. *)

let addr = Layout.inode_addr
let lock = Lockns.inode_lock

let read ctx inum =
  let sector =
    Cache.read ctx.Ctx.cache ~lock:(lock inum) ~addr:(addr inum) ~len:Layout.inode_size
  in
  Ondisk.decode_inode sector

(** Logged full-inode update (one diff; version bumped). *)
let write ctx txn inum ino =
  Cache.update ctx.Ctx.cache txn ~lock:(lock inum) ~addr:(addr inum)
    ~off:Ondisk.off_itype ~bytes:(Ondisk.encode_inode ino)

(** Approximate atime (§2.1): cached, unlogged, flushed lazily. *)
let touch_atime ctx inum =
  let b = Bytes.create 8 in
  Stdext.Codec.put_int b 0 (Simkit.Sim.now ());
  Cache.update_nolog ctx.Ctx.cache ~lock:(lock inum) ~addr:(addr inum)
    ~off:Ondisk.off_atime ~bytes:b
