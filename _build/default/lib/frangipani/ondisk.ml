(** Codecs for the fixed on-disk structures. Every metadata sector
    carries its version number (paper §4) in its first 8 bytes; these
    helpers never touch that field — versions are managed by the
    transaction layer ({!Meta}). *)

open Stdext

type itype = Free | Reg | Dir | Symlink

let itype_code = function Free -> 0 | Reg -> 1 | Dir -> 2 | Symlink -> 3

let itype_of_code = function
  | 0 -> Free
  | 1 -> Reg
  | 2 -> Dir
  | 3 -> Symlink
  | n -> failwith (Printf.sprintf "frangipani: corrupt inode type %d" n)

(** Decoded view of one 512-byte inode. *)
type inode = {
  itype : itype;
  nlink : int;
  size : int;
  mtime : int;
  ctime : int;
  atime : int;
  small : int array; (* 16 entries; block index + 1, 0 = hole *)
  large : int; (* large block index + 1, 0 = none *)
  target : string; (* symlink target, inline (paper §3) *)
}

let empty_inode =
  {
    itype = Free;
    nlink = 0;
    size = 0;
    mtime = 0;
    ctime = 0;
    atime = 0;
    small = Array.make 16 0;
    large = 0;
    target = "";
  }

(* Field offsets within the inode sector. *)
let off_itype = 8
let off_nlink = 10
let off_size = 16
let off_mtime = 24
let off_ctime = 32
let off_atime = 40
let off_small = 48 (* 16 * 8 bytes *)
let off_large = 176
let off_target = 184 (* u16 len + bytes, <= 255 *)

let decode_inode (b : bytes) =
  let small = Array.init 16 (fun i -> Codec.get_int b (off_small + (8 * i))) in
  let tlen = Codec.get_u16 b off_target in
  {
    itype = itype_of_code (Codec.get_u8 b off_itype);
    nlink = Codec.get_u16 b off_nlink;
    size = Codec.get_int b off_size;
    mtime = Codec.get_int b off_mtime;
    ctime = Codec.get_int b off_ctime;
    atime = Codec.get_int b off_atime;
    small;
    large = Codec.get_int b off_large;
    target = Bytes.sub_string b (off_target + 2) tlen;
  }

(* Encode the whole inode (minus version) as a single diff payload
   starting at [off_itype]. *)
let encode_inode ino =
  let b = Bytes.make (Layout.inode_size - off_itype) '\000' in
  let put off v = Codec.put_int b (off - off_itype) v in
  Codec.put_u8 b (off_itype - off_itype) (itype_code ino.itype);
  Codec.put_u16 b (off_nlink - off_itype) ino.nlink;
  put off_size ino.size;
  put off_mtime ino.mtime;
  put off_ctime ino.ctime;
  put off_atime ino.atime;
  Array.iteri (fun i v -> put (off_small + (8 * i)) v) ino.small;
  put off_large ino.large;
  Codec.put_u16 b (off_target - off_itype) (String.length ino.target);
  Bytes.blit_string ino.target 0 b (off_target + 2 - off_itype)
    (String.length ino.target);
  b

(* --- directory slots ----------------------------------------------------- *)

let dir_slot_off k = 8 + (k * Layout.dir_slot_size)

(** [read_slot sector k] is [Some (name, inum)] if slot [k] is live. *)
let read_slot (b : bytes) k =
  let off = dir_slot_off k in
  let v = Codec.get_int b off in
  if v = 0 then None
  else begin
    let len = Codec.get_u8 b (off + 8) in
    (* A name longer than the format allows means the slot is
       corrupt; treat it as empty rather than crash (fsck territory). *)
    if len > Layout.max_name then None
    else Some (Bytes.sub_string b (off + 9) len, v - 1)
  end

(** Diff payload for writing slot [k]: [(offset_in_sector, bytes)]. *)
let encode_slot name inum =
  let b = Bytes.make Layout.dir_slot_size '\000' in
  Codec.put_int b 0 (inum + 1);
  Codec.put_u8 b 8 (String.length name);
  Bytes.blit_string name 0 b 9 (String.length name);
  b

let empty_slot = Bytes.make Layout.dir_slot_size '\000'

(* --- allocation bitmaps --------------------------------------------------- *)

(* Bit [i] of a bitmap sector lives in byte [8 + i/8]. *)
let test_bit (b : bytes) i =
  Char.code (Bytes.get b (8 + (i / 8))) land (1 lsl (i mod 8)) <> 0

(** Diff payload to flip bit [i]: the new value of its byte. *)
let bit_byte_off i = 8 + (i / 8)

let set_bit_byte (b : bytes) i value =
  let off = bit_byte_off i in
  let old = Char.code (Bytes.get b off) in
  let nb = if value then old lor (1 lsl (i mod 8)) else old land lnot (1 lsl (i mod 8)) in
  Bytes.make 1 (Char.chr nb)

(* --- superblock ------------------------------------------------------------ *)

let encode_superblock () =
  let b = Bytes.make Layout.sector '\000' in
  Codec.put_u32 b 8 Layout.magic;
  b

let check_superblock (b : bytes) = Codec.get_u32 b 8 = Layout.magic
