(** Online consistent backup (§8).

    The backup program is just another lock-service client: it
    acquires the global barrier lock exclusively, which revokes every
    server's shared hold — each server flushes its log and all dirty
    data before complying — then takes a Petal snapshot and releases
    the barrier. The snapshot is consistent at the file-system level
    (no recovery needed) and can be mounted read-only with
    {!Fs.mount} [~readonly:true] under a fresh lock table. *)

open Locksvc

type t = { clerk : Clerk.t }

let connect ~rpc ~lock_servers ~table =
  { clerk = Clerk.create ~rpc ~servers:lock_servers ~table () }

(** Quiesce the file system, snapshot its virtual disk, resume.
    Returns the snapshot's virtual-disk id. *)
let snapshot t vd =
  Clerk.acquire t.clerk ~lock:Lockns.barrier_lock Types.W;
  Fun.protect
    ~finally:(fun () -> Clerk.release t.clerk ~lock:Lockns.barrier_lock Types.W)
    (fun () -> Petal.Client.snapshot vd)
