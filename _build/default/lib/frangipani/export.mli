(** The client/server configuration of §2.2 (Figure 3).

    A Frangipani server machine can export the file system to remote,
    untrusted clients over an ordinary network file protocol — the
    clients never talk to Petal or the lock service, so they need not
    be trusted with raw access to the shared virtual disk. Frangipani
    "looks just like a local file system" to the protocol server, so
    this module is a thin NFS-like RPC shim over {!Fs}.

    Coherence between clients attached to {e different} Frangipani
    servers still holds: it is provided by the Frangipani layer
    underneath, exactly the property §2.2 says a coherent
    access protocol would preserve. *)

val serve : Fs.t -> Cluster.Rpc.t -> unit
(** Export this mount on the server's RPC endpoint. *)

type client

val connect : rpc:Cluster.Rpc.t -> server:Cluster.Net.addr -> client
(** Attach a remote client machine to an exporting server. *)

val root : int

(** The remote operations mirror {!Fs}; failures raise
    {!Errors.Error} (transported over the wire), and an unreachable
    server raises [Errors.Error Eio]. *)

val lookup : client -> dir:int -> string -> int
val create : client -> dir:int -> string -> int
val mkdir : client -> dir:int -> string -> int
val unlink : client -> dir:int -> string -> unit
val rmdir : client -> dir:int -> string -> unit
val rename : client -> sdir:int -> string -> ddir:int -> string -> unit
val readdir : client -> int -> (string * int) list
val read : client -> int -> off:int -> len:int -> bytes
val write : client -> int -> off:int -> bytes -> unit
val getattr : client -> int -> Fs.stats
val fsync : client -> int -> unit
