open Cluster
open Simkit

type call =
  | C_lookup of int * string
  | C_create of int * string
  | C_mkdir of int * string
  | C_unlink of int * string
  | C_rmdir of int * string
  | C_rename of int * string * int * string
  | C_readdir of int
  | C_read of int * int * int
  | C_write of int * int * bytes
  | C_getattr of int
  | C_fsync of int

type reply =
  | R_unit
  | R_inum of int
  | R_data of bytes
  | R_entries of (string * int) list
  | R_attr of Fs.stats
  | R_err of Errors.error

type Net.payload += NFS_call of call | NFS_reply of reply

let root = Fs.root

let reply_size = function
  | R_data b -> 64 + Bytes.length b
  | R_entries es -> 64 + (64 * List.length es)
  | _ -> 64

let serve fs rpc =
  Rpc.add_handler rpc (fun ~src:_ body ->
      match body with
      | NFS_call c ->
        let r =
          try
            match c with
            | C_lookup (dir, name) -> R_inum (Fs.lookup fs ~dir name)
            | C_create (dir, name) -> R_inum (Fs.create fs ~dir name)
            | C_mkdir (dir, name) -> R_inum (Fs.mkdir fs ~dir name)
            | C_unlink (dir, name) ->
              Fs.unlink fs ~dir name;
              R_unit
            | C_rmdir (dir, name) ->
              Fs.rmdir fs ~dir name;
              R_unit
            | C_rename (sdir, sname, ddir, dname) ->
              Fs.rename fs ~sdir sname ~ddir dname;
              R_unit
            | C_readdir dir -> R_entries (Fs.readdir fs dir)
            | C_read (inum, off, len) -> R_data (Fs.read fs inum ~off ~len)
            | C_write (inum, off, data) ->
              Fs.write fs inum ~off data;
              R_unit
            | C_getattr inum -> R_attr (Fs.stat fs inum)
            | C_fsync inum ->
              Fs.fsync fs inum;
              R_unit
          with Errors.Error e -> R_err e
        in
        Some (NFS_reply r, reply_size r)
      | _ -> None)

type client = { rpc : Rpc.t; server : Net.addr }

let connect ~rpc ~server = { rpc; server }

let call t ~size c =
  match Rpc.call t.rpc ~dst:t.server ~timeout:(Sim.sec 120.0) ~size (NFS_call c) with
  | Ok (NFS_reply (R_err e)) -> Errors.fail e
  | Ok (NFS_reply r) -> r
  | Ok _ | Error `Timeout -> Errors.fail Errors.Eio

let inum_of = function R_inum i -> i | _ -> Errors.fail Errors.Eio
let unit_of = function R_unit -> () | _ -> Errors.fail Errors.Eio

let lookup t ~dir name = inum_of (call t ~size:96 (C_lookup (dir, name)))
let create t ~dir name = inum_of (call t ~size:96 (C_create (dir, name)))
let mkdir t ~dir name = inum_of (call t ~size:96 (C_mkdir (dir, name)))
let unlink t ~dir name = unit_of (call t ~size:96 (C_unlink (dir, name)))
let rmdir t ~dir name = unit_of (call t ~size:96 (C_rmdir (dir, name)))

let rename t ~sdir sname ~ddir dname =
  unit_of (call t ~size:128 (C_rename (sdir, sname, ddir, dname)))

let readdir t dir =
  match call t ~size:64 (C_readdir dir) with
  | R_entries es -> es
  | _ -> Errors.fail Errors.Eio

let read t inum ~off ~len =
  match call t ~size:64 (C_read (inum, off, len)) with
  | R_data d -> d
  | _ -> Errors.fail Errors.Eio

let write t inum ~off data =
  unit_of (call t ~size:(64 + Bytes.length data) (C_write (inum, off, data)))

let getattr t inum =
  match call t ~size:64 (C_getattr inum) with
  | R_attr a -> a
  | _ -> Errors.fail Errors.Eio

let fsync t inum = unit_of (call t ~size:64 (C_fsync inum))
