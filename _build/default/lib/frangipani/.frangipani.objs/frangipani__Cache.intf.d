lib/frangipani/cache.mli: Petal Wal
