lib/frangipani/file.ml: Alloc Array Bytes Cache Ctx Errors Inode Layout List Locksvc Ondisk Simkit
