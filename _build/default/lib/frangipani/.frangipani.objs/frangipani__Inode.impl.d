lib/frangipani/inode.ml: Bytes Cache Ctx Layout Lockns Ondisk Simkit Stdext
