lib/frangipani/cache.ml: Bytes Codec Errors Fun Hashtbl Layout List Petal Sim Simkit Stdext Wal
