lib/frangipani/wal.mli: Petal
