lib/frangipani/lockns.ml: Clerk Fun Layout List Locksvc
