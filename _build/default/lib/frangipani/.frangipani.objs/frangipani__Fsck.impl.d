lib/frangipani/fsck.ml: Alloc Cache Ctx Dir File Format Fs Hashtbl Inode Layout List Lockns Locksvc Ondisk Option Types Wal
