lib/frangipani/dir.ml: Bytes Cache Ctx Errors File Fun Inode Layout List Lockns Ondisk String
