lib/frangipani/export.ml: Bytes Cluster Errors Fs List Net Rpc Sim Simkit
