lib/frangipani/path.ml: Errors Fs List Ondisk String
