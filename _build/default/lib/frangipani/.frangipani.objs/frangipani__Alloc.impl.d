lib/frangipani/alloc.ml: Alloc_state Cache Clerk Ctx Errors Hashtbl Layout List Lockns Locksvc Ondisk Types
