lib/frangipani/backup.mli: Cluster Petal
