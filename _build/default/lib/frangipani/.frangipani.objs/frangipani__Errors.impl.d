lib/frangipani/errors.ml: Printexc
