lib/frangipani/ondisk.ml: Array Bytes Char Codec Layout Printf Stdext String
