lib/frangipani/fs.ml: Alloc Alloc_state Bytes Cache Clerk Cluster Codec Ctx Dir Errors File Fun Hashtbl Inode Layout List Lockns Locksvc Ondisk Petal Recovery Sim Simkit Stdext String Types Wal
