lib/frangipani/export.mli: Cluster Fs
