lib/frangipani/fsck.mli: Format Fs Layout
