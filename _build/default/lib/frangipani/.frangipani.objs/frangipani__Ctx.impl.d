lib/frangipani/ctx.ml: Alloc_state Cache Cluster Errors Hashtbl Lockns Locksvc Petal Sim Simkit Wal
