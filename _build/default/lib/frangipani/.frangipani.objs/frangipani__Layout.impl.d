lib/frangipani/layout.ml:
