lib/frangipani/backup.ml: Clerk Fun Lockns Locksvc Petal Types
