lib/frangipani/path.mli: Fs
