lib/frangipani/fs.mli: Cluster Ctx Ondisk Petal
