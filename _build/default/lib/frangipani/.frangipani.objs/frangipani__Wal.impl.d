lib/frangipani/wal.ml: Bytes Codec Crc32 Errors Layout List Petal Sim Simkit Stdext
