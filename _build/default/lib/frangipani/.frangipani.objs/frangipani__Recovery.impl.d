lib/frangipani/recovery.ml: Bytes Cluster Codec Ctx Errors Fun Layout List Lockns Locksvc Logs Petal Stdext Wal
