lib/frangipani/alloc_state.ml: Array Layout
