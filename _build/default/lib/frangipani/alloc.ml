(** Bitmap allocator (§3, §5).

    Each server allocates from a bitmap segment it holds the
    exclusive segment lock for; when that segment fills it locks
    another (picked by a lease-salted rotor, so servers spread out).
    Freeing a bit may touch a segment currently owned by another
    server — the lock service revokes it transparently.

    Locking discipline: segment locks are acquired after all inode
    locks of the operation, in (pool, segment)-sorted order for
    multi-free transactions, and held until the transaction commits
    (via {!Cache.on_commit}), so the logged bitmap change can never
    reach Petal before its record. *)

open Locksvc
open Errors

let seg_lock pool seg = Lockns.bitmap_lock (Layout.global_segment pool seg)

(* Find and claim a clear bit in [seg]; the caller holds the segment
   lock. Returns the absolute bit number. *)
let scan_segment ctx pool seg ~hint =
  let lock = seg_lock pool seg in
  let first = Layout.segment_first_bit seg in
  let limit = min Layout.bits_per_segment (Layout.pool_size pool - first) in
  if limit <= 0 then None
  else begin
    let rec probe i tried =
      if tried >= limit then None
      else begin
        let bit = (i + hint) mod limit in
        let abs_bit = first + bit in
        let sector_addr = Layout.bit_sector pool abs_bit in
        let sector =
          Cache.read ctx.Ctx.cache ~lock ~addr:sector_addr ~len:Layout.sector
        in
        let within = Layout.bit_in_sector abs_bit in
        if not (Ondisk.test_bit sector within) then Some (abs_bit, sector_addr, within)
        else probe (i + 1) (tried + 1)
      end
    in
    probe 0 0
  end

(** Allocate one object from [pool]; the bit is set within [txn] and
    the segment lock is released when [txn] commits. *)
let alloc ctx txn pool =
  let ps = Alloc_state.pool ctx.Ctx.alloc pool in
  let nsegs = Layout.pool_segments pool in
  let salt = Clerk.lease ctx.Ctx.clerk * 7919 in
  let rec attempt tries =
    if tries > nsegs then fail Enospc
    else begin
      let seg =
        match ps.Alloc_state.seg with
        | Some s -> s
        | None ->
          let s = (salt + tries) mod nsegs in
          ps.Alloc_state.seg <- Some s;
          ps.Alloc_state.hint <- 0;
          s
      in
      let lock = seg_lock pool seg in
      Clerk.acquire ctx.Ctx.clerk ~lock Types.W;
      match scan_segment ctx pool seg ~hint:ps.Alloc_state.hint with
      | Some (bit, sector_addr, within) ->
        Cache.update ctx.Ctx.cache txn ~lock ~addr:sector_addr
          ~off:(Ondisk.bit_byte_off within)
          ~bytes:
            (Ondisk.set_bit_byte
               (Cache.read ctx.Ctx.cache ~lock ~addr:sector_addr ~len:Layout.sector)
               within true);
        ps.Alloc_state.hint <- bit - Layout.segment_first_bit seg + 1;
        Cache.on_commit txn (fun () -> Clerk.release ctx.Ctx.clerk ~lock Types.W);
        bit
      | None ->
        Clerk.release ctx.Ctx.clerk ~lock Types.W;
        ps.Alloc_state.seg <- None;
        attempt (tries + 1)
    end
  in
  attempt 0

(** Free a set of bits; segment locks are taken in (pool, segment)
    order and held to commit (deadlock-avoidance discipline). *)
let free_many ctx txn bits =
  let keyed =
    List.map (fun (pool, bit) -> ((Layout.pool_index pool, Layout.segment_of_bit bit), (pool, bit))) bits
    |> List.sort compare
  in
  let locked = Hashtbl.create 4 in
  List.iter
    (fun ((_, _), (pool, bit)) ->
      let seg = Layout.segment_of_bit bit in
      let lock = seg_lock pool seg in
      if not (Hashtbl.mem locked lock) then begin
        Clerk.acquire ctx.Ctx.clerk ~lock Types.W;
        Hashtbl.replace locked lock ();
        Cache.on_commit txn (fun () -> Clerk.release ctx.Ctx.clerk ~lock Types.W)
      end;
      let sector_addr = Layout.bit_sector pool bit in
      let within = Layout.bit_in_sector bit in
      let sector = Cache.read ctx.Ctx.cache ~lock ~addr:sector_addr ~len:Layout.sector in
      if Ondisk.test_bit sector within then
        Cache.update ctx.Ctx.cache txn ~lock ~addr:sector_addr
          ~off:(Ondisk.bit_byte_off within)
          ~bytes:(Ondisk.set_bit_byte sector within false))
    keyed

let free ctx txn pool bit = free_many ctx txn [ (pool, bit) ]
