(** Directory content: fixed 64-byte slots, seven per 512-byte
    versioned sector, stored in the directory's blocks (allocated
    from the metadata pools). No "." or ".." entries are stored;
    path helpers resolve them lexically. The caller holds the
    directory's lock. *)

open Errors

let slots_per_block = Layout.dir_slots_per_sector * (Layout.block / Layout.sector)

(* Iterate the directory's sectors as (sector_addr) in order. *)
let sectors (ino : Ondisk.inode) =
  let nblocks = ino.size / Layout.block in
  let rec block_list i acc =
    if i >= nblocks then List.rev acc
    else
      match File.block_addr ino ~boff:(i * Layout.block) with
      | Some a -> block_list (i + 1) (a :: acc)
      | None -> block_list (i + 1) acc
  in
  List.concat_map
    (fun base ->
      List.init (Layout.block / Layout.sector) (fun s -> base + (s * Layout.sector)))
    (block_list 0 [])

let lock_of inum = Lockns.inode_lock inum

(* Find [name]; returns (target inum, sector addr, slot index). *)
let find ctx inum ino name =
  let lock = lock_of inum in
  let rec scan = function
    | [] -> None
    | saddr :: rest ->
      let sector = Cache.read ctx.Ctx.cache ~lock ~addr:saddr ~len:Layout.sector in
      let rec slots k =
        if k >= Layout.dir_slots_per_sector then None
        else
          match Ondisk.read_slot sector k with
          | Some (n, target) when n = name -> Some (target, saddr, k)
          | Some _ | None -> slots (k + 1)
      in
      (match slots 0 with Some r -> Some r | None -> scan rest)
  in
  scan (sectors ino)

let lookup ctx inum ino name =
  match find ctx inum ino name with Some (t, _, _) -> Some t | None -> None

let entries ctx inum ino =
  let lock = lock_of inum in
  List.concat_map
    (fun saddr ->
      let sector = Cache.read ctx.Ctx.cache ~lock ~addr:saddr ~len:Layout.sector in
      List.filter_map (Ondisk.read_slot sector)
        (List.init Layout.dir_slots_per_sector Fun.id))
    (sectors ino)

let is_empty ctx inum ino = entries ctx inum ino = []

(* Find a free slot, or extend the directory by one zeroed block.
   Returns the (possibly grown) inode and the slot position. *)
let free_slot ctx txn inum (ino : Ondisk.inode) =
  let lock = lock_of inum in
  let existing =
    List.find_map
      (fun saddr ->
        let sector = Cache.read ctx.Ctx.cache ~lock ~addr:saddr ~len:Layout.sector in
        let rec slots k =
          if k >= Layout.dir_slots_per_sector then None
          else if Ondisk.read_slot sector k = None then Some (saddr, k)
          else slots (k + 1)
        in
        slots 0)
      (sectors ino)
  in
  match existing with
  | Some (saddr, k) -> (ino, saddr, k)
  | None ->
    (* Extend: allocate a block from the metadata pool and zero all
       its slots (a reused metadata block may hold stale entries). *)
    let boff = ino.size in
    if boff >= 64 * slots_per_block * Layout.dir_slot_size * 1024 then fail Enospc;
    let ino, base = File.ensure_block ctx inum ino ~boff ~meta:true in
    for s = 0 to (Layout.block / Layout.sector) - 1 do
      Cache.update ctx.Ctx.cache txn ~lock ~addr:(base + (s * Layout.sector)) ~off:8
        ~bytes:(Bytes.make (Layout.sector - 8) '\000')
    done;
    let ino = { ino with size = ino.size + Layout.block } in
    Inode.write ctx txn inum ino;
    (ino, base, 0)

(** Insert [name -> target]; the caller has checked absence. Returns
    the updated directory inode. *)
let insert ctx txn inum ino name target =
  if String.length name > Layout.max_name then fail Enametoolong;
  if name = "" || String.contains name '/' then fail Einval;
  let ino, saddr, k = free_slot ctx txn inum ino in
  Cache.update ctx.Ctx.cache txn ~lock:(lock_of inum) ~addr:saddr
    ~off:(Ondisk.dir_slot_off k) ~bytes:(Ondisk.encode_slot name target);
  ino

(** Remove [name]; returns the removed target's inum. *)
let remove ctx txn inum ino name =
  match find ctx inum ino name with
  | None -> fail Enoent
  | Some (target, saddr, k) ->
    Cache.update ctx.Ctx.cache txn ~lock:(lock_of inum) ~addr:saddr
      ~off:(Ondisk.dir_slot_off k) ~bytes:Ondisk.empty_slot;
    target

(** Point an existing entry at a new target (rename overwrite). *)
let replace ctx txn inum ino name target =
  match find ctx inum ino name with
  | None -> fail Enoent
  | Some (_, saddr, k) ->
    Cache.update ctx.Ctx.cache txn ~lock:(lock_of inum) ~addr:saddr
      ~off:(Ondisk.dir_slot_off k) ~bytes:(Ondisk.encode_slot name target)
