(** The recovery demon (§4, §6).

    Invoked by the lock service on a live server when another
    server's lease expires. It seizes the dead server's log lock,
    replays the log from Petal, and applies each diff only where the
    on-disk sector's version number is older than the record's — so
    updates that already reached Petal (or were superseded) are never
    redone, and replaying a log twice is harmless. *)

open Stdext

let apply_diff ctx (d : Wal.diff) =
  let sector = Petal.Client.read ctx.Ctx.vd ~off:d.addr ~len:Layout.sector in
  if Codec.get_int sector 0 < d.version then begin
    Bytes.blit d.data 0 sector d.doff (Bytes.length d.data);
    Codec.put_int sector 0 d.version;
    if not (Locksvc.Clerk.check_lease_margin ctx.Ctx.clerk) then
      Errors.fail Errors.Eio;
    Petal.Client.write ctx.Ctx.vd ~off:d.addr sector
  end

let run ctx ~dead_lease =
  let slot = dead_lease mod Layout.max_servers in
  Logs.info (fun m ->
      m "%s: recovering log slot %d (lease %d)"
        (Cluster.Host.name ctx.Ctx.host) slot dead_lease);
  let lock = Lockns.log_lock slot in
  Locksvc.Clerk.acquire_for_recovery ctx.Ctx.clerk ~lock;
  Fun.protect
    ~finally:(fun () -> Locksvc.Clerk.release ctx.Ctx.clerk ~lock Locksvc.Types.W)
    (fun () ->
      let diffs = Wal.scan ctx.Ctx.vd ~slot in
      List.iter (apply_diff ctx) diffs;
      Logs.info (fun m ->
          m "%s: replayed %d diffs from slot %d"
            (Cluster.Host.name ctx.Ctx.host) (List.length diffs) slot))
