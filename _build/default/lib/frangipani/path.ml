(** Convenience path layer over the inode-based {!Fs} API.

    Resolves absolute, slash-separated paths with lexical handling of
    ["."] and [".."] and bounded symlink following. This is the layer
    that would live in the kernel's namei; it also enforces the
    directory-rename cycle check that {!Fs.rename} leaves to its
    caller. *)

open Errors

let split path =
  if path = "" || path.[0] <> '/' then fail Einval;
  let parts = String.split_on_char '/' path in
  List.filter (fun s -> s <> "" && s <> ".") parts

(* Lexically normalise ".." away. *)
let normalise parts =
  List.fold_left
    (fun acc p -> match (p, acc) with ("..", _ :: tl) -> tl | ("..", []) -> [] | _ -> p :: acc)
    [] parts
  |> List.rev

let max_symlink_depth = 8

(* Resolve [path] to an inum, following symlinks. *)
let resolve ?(follow = true) ctx path =
  let rec walk depth parts =
    if depth > max_symlink_depth then fail Einval;
    let rec step dir trail = function
      | [] -> dir
      | name :: rest -> (
        let inum = Fs.lookup ctx ~dir name in
        let st = Fs.stat ctx inum in
        match st.Fs.itype with
        | Ondisk.Symlink when follow || rest <> [] ->
          let target = Fs.readlink ctx inum in
          let tparts = String.split_on_char '/' target |> List.filter (fun s -> s <> "" && s <> ".") in
          let base = if String.length target > 0 && target.[0] = '/' then [] else List.rev trail in
          walk (depth + 1) (normalise (base @ tparts @ rest))
        | _ -> step inum (name :: trail) rest)
    in
    step Fs.root [] parts
  in
  walk 0 (normalise (split path))

let parent_and_leaf ctx path =
  match List.rev (normalise (split path)) with
  | [] -> fail Einval
  | leaf :: rparents ->
    let parent_path = "/" ^ String.concat "/" (List.rev rparents) in
    (resolve ctx parent_path, leaf)

let create ctx path =
  let dir, leaf = parent_and_leaf ctx path in
  Fs.create ctx ~dir leaf

let mkdir ctx path =
  let dir, leaf = parent_and_leaf ctx path in
  Fs.mkdir ctx ~dir leaf

let rec mkdir_p ctx path =
  match resolve ctx path with
  | inum -> inum
  | exception Error Enoent ->
    let dir_path =
      match List.rev (normalise (split path)) with
      | _ :: rparents -> "/" ^ String.concat "/" (List.rev rparents)
      | [] -> "/"
    in
    ignore (mkdir_p ctx dir_path);
    mkdir ctx path

let symlink ctx path ~target =
  let dir, leaf = parent_and_leaf ctx path in
  Fs.symlink ctx ~dir leaf ~target

let unlink ctx path =
  let dir, leaf = parent_and_leaf ctx path in
  Fs.unlink ctx ~dir leaf

let rmdir ctx path =
  let dir, leaf = parent_and_leaf ctx path in
  Fs.rmdir ctx ~dir leaf

let rename ctx src dst =
  let s = normalise (split src) and d = normalise (split dst) in
  (* Cycle check: a directory may not move into its own subtree. *)
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _, [] -> false
  in
  if is_prefix s d then fail Einval;
  let sdir, sname = parent_and_leaf ctx src in
  let ddir, dname = parent_and_leaf ctx dst in
  Fs.rename ctx ~sdir sname ~ddir dname

let stat ctx path = Fs.stat ctx (resolve ctx path)

let read_file ctx path =
  let inum = resolve ctx path in
  let st = Fs.stat ctx inum in
  Fs.read ctx inum ~off:0 ~len:st.Fs.size

let write_file ctx path data =
  let inum =
    match resolve ctx path with
    | inum -> Fs.truncate ctx inum ~size:0; inum
    | exception Error Enoent -> create ctx path
  in
  Fs.write ctx inum ~off:0 data;
  inum

let exists ctx path =
  match resolve ctx path with _ -> true | exception Error Enoent -> false
