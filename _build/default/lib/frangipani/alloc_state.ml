(** Per-server allocator state: which bitmap segment of each pool the
    server currently allocates from, and a rotor within it. *)

type pool_state = { mutable seg : int option; mutable hint : int }

type t = { pools : pool_state array }

let create () = { pools = Array.init 5 (fun _ -> { seg = None; hint = 0 }) }

let pool t p = t.pools.(Layout.pool_index p)
