(** Online consistent backup (§8).

    The backup program is just another lock-service client: it takes
    the global barrier lock in exclusive mode — every Frangipani
    server flushes its log and dirty data before yielding its shared
    hold — snapshots the Petal virtual disk, and releases the
    barrier. The snapshot is consistent at the file-system level, so
    it mounts read-only with {!Fs.mount} [~readonly:true] (under a
    fresh lock table) without any recovery. *)

type t

val connect :
  rpc:Cluster.Rpc.t ->
  lock_servers:Cluster.Net.addr array ->
  table:string ->
  t
(** Attach the backup program to the file system's lock table. *)

val snapshot : t -> Petal.Client.vdisk -> int
(** Quiesce, snapshot, resume; returns the read-only snapshot
    virtual-disk id. *)
