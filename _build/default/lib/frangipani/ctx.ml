(** The state of one Frangipani server (one mount of one file
    system), threaded through every operation. *)

open Simkit

type config = {
  sync_interval : Sim.time;  (** the Unix update-demon period (§4) *)
  synchronous_log : bool;  (** flush the log on every metadata op (§4 option) *)
  read_ahead : int;  (** prefetch depth in 4 KB blocks; 0 disables *)
  cpu_ns_per_byte : int;  (** FS-layer copy cost, calibrated to Table 3 *)
  cpu_per_op : Sim.time;  (** fixed per-call overhead *)
  block_locks : bool;  (** finer-granularity locking ablation (§2.3) *)
}

let default_config =
  {
    sync_interval = Sim.sec 30.0;
    synchronous_log = false;
    (* A 256 KB window of sequential prefetch, issued one 64 KB
       cluster at a time: the UFS-derived read-ahead the paper says
       Frangipani borrowed (§9.2) — less effective than AdvFS's. *)
    read_ahead = 64;
    cpu_ns_per_byte = 22;
    cpu_per_op = Sim.us 40;
    block_locks = false;
  }

type t = {
  host : Cluster.Host.t;
  config : config;
  vd : Petal.Client.vdisk;
  clerk : Locksvc.Clerk.t;
  cache : Cache.t;
  wal : Wal.t;
  slot : int;  (** private log slot, [lease mod 256] (§7) *)
  alloc : Alloc_state.t;
  readonly : bool;
  mutable poisoned : bool;
      (** lease expired with dirty data: all operations fail until
          unmount (§6) *)
  mutable unmounted : bool;
  read_ahead_next : (int, int) Hashtbl.t;  (** inum -> predicted next offset *)
}

let check_usable t =
  if t.poisoned || t.unmounted then Errors.fail Errors.Eio

let charge_op t = Cluster.Host.consume t.host t.config.cpu_per_op

let charge_bytes t n =
  if n > 0 then Cluster.Host.consume t.host (n * t.config.cpu_ns_per_byte)

(** The data lock covering a given data block of a file: the whole
    file's lock normally, a per-block lock in the ablation mode. *)
let data_lock t ~inum ~addr =
  if t.config.block_locks then Lockns.block_lock addr else Lockns.inode_lock inum
