(** Lock-id namespace over the file system's lockable segments (§5):
    one lock per file/directory/symlink (covering the inode and all
    data it points to), one per allocation-bitmap segment, one per
    private log, one global barrier lock for backup (§8), and — in
    the finer-granularity ablation mode — one per 4 KB data block. *)

open Locksvc

let barrier_lock = 1
let inode_lock inum = 0x1_0000_0000 + inum
let bitmap_lock gseg = 0x8_0000_0000 + gseg
let log_lock slot = 0x1_0_0000_0000 + slot
let block_lock addr = (1 lsl 53) + (addr / Layout.block)

(* Deadlock avoidance (§5): multi-lock operations acquire in global
   order. Inode locks sort before bitmap locks by construction of the
   id space, which matches the acquisition discipline of the
   operations (inodes first, then at most pool-ordered bitmap
   segments). *)
let with_locks clerk locks f =
  let locks = List.sort_uniq compare locks in
  List.iter (fun (l, m) -> Clerk.acquire clerk ~lock:l m) locks;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (l, m) -> Clerk.release clerk ~lock:l m) (List.rev locks))
    f
