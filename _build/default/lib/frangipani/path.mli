(** Convenience path layer over the inode-based {!Fs} API: absolute
    slash-separated paths, lexical ["."]/[".."] handling, bounded
    symlink following, and the directory-rename cycle check. This is
    the namei role the kernel plays above a real Frangipani. *)

val resolve : ?follow:bool -> Fs.t -> string -> int
(** Resolve an absolute path to an inode number. [follow] (default
    true) follows a trailing symlink; intermediate symlinks are
    always followed, up to 8 deep. *)

val create : Fs.t -> string -> int
val mkdir : Fs.t -> string -> int

val mkdir_p : Fs.t -> string -> int
(** Create all missing ancestors; returns the leaf directory. *)

val symlink : Fs.t -> string -> target:string -> int
val unlink : Fs.t -> string -> unit
val rmdir : Fs.t -> string -> unit

val rename : Fs.t -> string -> string -> unit
(** Rename by path; rejects moving a directory into its own subtree
    (the cycle check {!Fs.rename} delegates to this layer). *)

val stat : Fs.t -> string -> Fs.stats

val read_file : Fs.t -> string -> bytes
(** The whole content of a regular file. *)

val write_file : Fs.t -> string -> bytes -> int
(** Create-or-truncate, then write; returns the inum. *)

val exists : Fs.t -> string -> bool
