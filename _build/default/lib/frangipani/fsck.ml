open Locksvc

type finding =
  | Dangling_entry of { dir : int; name : string; target : int }
  | Bad_nlink of { inum : int; stored : int; actual : int }
  | Unallocated_ref of { inum : int; pool : Layout.pool; bit : int }
  | Double_ref of { pool : Layout.pool; bit : int; inums : int * int }
  | Leaked_bit of { pool : Layout.pool; bit : int }
  | Orphan_inode of { inum : int }

let pool_name = function
  | Layout.Inode_pool -> "inode"
  | Layout.Small_meta -> "small-meta"
  | Layout.Small_data -> "small-data"
  | Layout.Large_meta -> "large-meta"
  | Layout.Large_data -> "large-data"

let pp_finding fmt = function
  | Dangling_entry { dir; name; target } ->
    Format.fprintf fmt "dangling entry %S in dir %d -> free inode %d" name dir target
  | Bad_nlink { inum; stored; actual } ->
    Format.fprintf fmt "inode %d has nlink %d, tree says %d" inum stored actual
  | Unallocated_ref { inum; pool; bit } ->
    Format.fprintf fmt "inode %d references unallocated %s bit %d" inum
      (pool_name pool) bit
  | Double_ref { pool; bit; inums = a, b } ->
    Format.fprintf fmt "%s bit %d referenced by inodes %d and %d" (pool_name pool)
      bit a b
  | Leaked_bit { pool; bit } ->
    Format.fprintf fmt "leaked %s bit %d (allocated, unreferenced)" (pool_name pool)
      bit
  | Orphan_inode { inum } ->
    Format.fprintf fmt "orphan inode %d (allocated, unreachable)" inum

let with_inode_r ctx inum f =
  Lockns.with_locks ctx.Ctx.clerk [ (Lockns.inode_lock inum, Types.R) ] (fun () -> f ())

let bitmap_sector ctx pool bit =
  let seg = Layout.segment_of_bit bit in
  let lock = Lockns.bitmap_lock (Layout.global_segment pool seg) in
  Lockns.with_locks ctx.Ctx.clerk [ (lock, Types.R) ] (fun () ->
      Cache.read ctx.Ctx.cache ~lock ~addr:(Layout.bit_sector pool bit)
        ~len:Layout.sector)

let bit_set ctx pool bit =
  Ondisk.test_bit (bitmap_sector ctx pool bit) (Layout.bit_in_sector bit)

let check ctx =
  let findings = ref [] in
  let note f = findings := f :: !findings in
  (* Phase 1: walk the tree. *)
  let visited = Hashtbl.create 256 in (* inum -> inode *)
  let refs = Hashtbl.create 256 in (* inum -> # of directory entries *)
  let subdirs = Hashtbl.create 64 in (* dir inum -> # of child dirs *)
  let bit_owner = Hashtbl.create 1024 in (* (pool, bit) -> inum *)
  let claim inum pool bit =
    match Hashtbl.find_opt bit_owner (Layout.pool_index pool, bit) with
    | Some prev -> note (Double_ref { pool; bit; inums = (prev, inum) })
    | None -> Hashtbl.replace bit_owner (Layout.pool_index pool, bit) inum
  in
  let rec walk inum =
    if not (Hashtbl.mem visited inum) then begin
      let ino = with_inode_r ctx inum (fun () -> Inode.read ctx inum) in
      Hashtbl.replace visited inum ino;
      claim inum Layout.Inode_pool inum;
      let meta = ino.Ondisk.itype = Ondisk.Dir in
      List.iter (fun (pool, bit) -> claim inum pool bit) (File.content_bits ino ~meta);
      if ino.Ondisk.itype = Ondisk.Dir then begin
        let entries = with_inode_r ctx inum (fun () -> Dir.entries ctx inum ino) in
        List.iter
          (fun (name, target) ->
            let tino = with_inode_r ctx target (fun () -> Inode.read ctx target) in
            if tino.Ondisk.itype = Ondisk.Free then
              note (Dangling_entry { dir = inum; name; target })
            else begin
              Hashtbl.replace refs target
                (1 + Option.value ~default:0 (Hashtbl.find_opt refs target));
              if tino.Ondisk.itype = Ondisk.Dir then begin
                Hashtbl.replace subdirs inum
                  (1 + Option.value ~default:0 (Hashtbl.find_opt subdirs inum));
                walk target
              end
              else walk target
            end)
          entries
      end
    end
  in
  walk Fs.root;
  (* Phase 2: link counts. *)
  Hashtbl.iter
    (fun inum (ino : Ondisk.inode) ->
      let actual =
        match ino.Ondisk.itype with
        | Ondisk.Dir -> 2 + Option.value ~default:0 (Hashtbl.find_opt subdirs inum)
        | _ -> Option.value ~default:0 (Hashtbl.find_opt refs inum)
      in
      let actual = if inum = Fs.root then max actual 2 else actual in
      if ino.Ondisk.itype <> Ondisk.Free && actual <> ino.Ondisk.nlink then
        note (Bad_nlink { inum; stored = ino.Ondisk.nlink; actual }))
    visited;
  (* Phase 3: every referenced bit must be set. *)
  Hashtbl.iter
    (fun (pidx, bit) inum ->
      let pool =
        List.find
          (fun p -> Layout.pool_index p = pidx)
          [ Layout.Inode_pool; Small_meta; Small_data; Large_meta; Large_data ]
      in
      if not (bit_set ctx pool bit) then note (Unallocated_ref { inum; pool; bit }))
    bit_owner;
  (* Phase 4: leak scan over every bitmap segment that holds at least
     one reachable bit (bounded: untouched segments cannot hold
     reachable data). *)
  let segs = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (pidx, bit) _ -> Hashtbl.replace segs (pidx, Layout.segment_of_bit bit) ())
    bit_owner;
  Hashtbl.iter
    (fun (pidx, seg) () ->
      let pool =
        List.find
          (fun p -> Layout.pool_index p = pidx)
          [ Layout.Inode_pool; Small_meta; Small_data; Large_meta; Large_data ]
      in
      let first = Layout.segment_first_bit seg in
      let limit = min Layout.bits_per_segment (Layout.pool_size pool - first) in
      for i = 0 to limit - 1 do
        let bit = first + i in
        if bit_set ctx pool bit && not (Hashtbl.mem bit_owner (pidx, bit)) then
          if pool = Layout.Inode_pool then begin
            let ino = with_inode_r ctx bit (fun () -> Inode.read ctx bit) in
            if ino.Ondisk.itype = Ondisk.Free then note (Leaked_bit { pool; bit })
            else note (Orphan_inode { inum = bit })
          end
          else note (Leaked_bit { pool; bit })
      done)
    segs;
  List.rev !findings

let repair ctx findings =
  let fixed = ref 0 in
  let fix () = incr fixed in
  List.iter
    (fun finding ->
      match finding with
      | Dangling_entry { dir; name; _ } ->
        Lockns.with_locks ctx.Ctx.clerk
          [ (Lockns.inode_lock dir, Types.W) ]
          (fun () ->
            let dino = Inode.read ctx dir in
            Cache.with_txn ctx.Ctx.cache (fun txn ->
                ignore (Dir.remove ctx txn dir dino name)));
        fix ()
      | Bad_nlink { inum; actual; _ } ->
        Lockns.with_locks ctx.Ctx.clerk
          [ (Lockns.inode_lock inum, Types.W) ]
          (fun () ->
            let ino = Inode.read ctx inum in
            Cache.with_txn ctx.Ctx.cache (fun txn ->
                Inode.write ctx txn inum { ino with nlink = actual }));
        fix ()
      | Leaked_bit { pool; bit } ->
        Cache.with_txn ctx.Ctx.cache (fun txn -> Alloc.free ctx txn pool bit);
        fix ()
      | Unallocated_ref _ | Double_ref _ ->
        (* No safe local repair: needs operator judgement. *)
        ()
      | Orphan_inode { inum } ->
        (* Free the unreachable inode and everything it points to. *)
        Lockns.with_locks ctx.Ctx.clerk
          [ (Lockns.inode_lock inum, Types.W) ]
          (fun () ->
            let ino = Inode.read ctx inum in
            if ino.Ondisk.itype <> Ondisk.Free then
              Cache.with_txn ctx.Ctx.cache (fun txn ->
                  let meta = ino.Ondisk.itype = Ondisk.Dir in
                  Alloc.free_many ctx txn
                    ((Layout.Inode_pool, inum) :: File.content_bits ino ~meta);
                  Inode.write ctx txn inum { Ondisk.empty_inode with itype = Free }));
        fix ())
    findings;
  Wal.flush ctx.Ctx.wal;
  !fixed
