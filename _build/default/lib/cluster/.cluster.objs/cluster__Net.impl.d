lib/cluster/net.ml: Host List Sim Simkit
