lib/cluster/net.mli: Host Simkit
