lib/cluster/rpc.mli: Format Host Net Simkit
