lib/cluster/host.mli: Simkit
