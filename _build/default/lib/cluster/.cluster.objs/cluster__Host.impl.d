lib/cluster/host.ml: List Sim Simkit
