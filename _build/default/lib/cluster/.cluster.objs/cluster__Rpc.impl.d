lib/cluster/rpc.ml: Format Hashtbl Host List Logs Net Sim Simkit
