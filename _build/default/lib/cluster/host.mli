(** A machine in the cluster: a CPU resource, liveness state and an
    incarnation number bumped on every restart.

    Crashing a host discards its volatile state: registered crash
    hooks run so that components (caches, in-memory log tails, lock
    clerks) can drop theirs, and every service loop is expected to
    compare its saved incarnation against the current one and exit
    when stale. *)

type t

exception Crashed of string
(** Raised by operations attempted on a crashed host. *)

val create : ?cpu_cores:int -> string -> t
val name : t -> string
val is_alive : t -> bool

val incarnation : t -> int
(** Bumped by {!restart}; service loops use it to detect staleness. *)

val check : t -> unit
(** Raise {!Crashed} if the host is down. *)

val consume : t -> Simkit.Sim.time -> unit
(** Occupy one CPU core for the given duration (queueing FIFO with
    other work on this host). Raises {!Crashed} if the host is down
    when the work would start. *)

val cpu : t -> Simkit.Sim.Resource.t
(** The CPU resource, for utilisation measurements (Table 3). *)

val on_crash : t -> (unit -> unit) -> unit
(** Register a hook run at crash time (volatile-state teardown). *)

val crash : t -> unit
val restart : t -> unit

val guard : t -> int -> bool
(** [guard h inc] is true while the host is alive and still in
    incarnation [inc] — the condition under which a service loop
    started in incarnation [inc] may keep running. *)
