(** Cluster network: a single switch with a dedicated full-duplex
    point-to-point link per host, like the paper's 24-port ATM switch
    with 155 Mbit/s links.

    A message occupies the sender's transmit link for
    [bits / bandwidth] (so links saturate realistically — Figure 7
    depends on this), then arrives after the propagation latency.
    Delivery is dropped silently if either end is crashed or the pair
    is partitioned; reliability is the business of upper layers.

    Payloads are an extensible variant: each protocol adds its own
    constructors. *)

type payload = ..

type addr = int

type t
(** The switch. *)

type port
(** One host's network attachment. *)

val create : unit -> t

val attach :
  t ->
  ?bandwidth_bits_per_sec:float ->
  ?latency:Simkit.Sim.time ->
  ?cpu_ns_per_byte:int ->
  ?cpu_ns_per_msg:int ->
  Host.t ->
  port
(** Attach a host. Defaults: 155 Mbit/s, 120 µs switch latency, and a
    UDP/IP-stack CPU cost of 2 ns/byte + 30 µs/message charged to the
    host on both send and receive (calibrated to the paper's "16 MB/s
    at 4% CPU" raw Petal measurement). *)

val addr : port -> addr
val host : port -> Host.t
val net : port -> t

val send : port -> dst:addr -> size:int -> payload -> unit
(** Fire-and-forget datagram of [size] bytes. Charges CPU, queues on
    the TX link, delivers asynchronously. Raises [Host.Crashed] if
    the sending host is down. *)

val recv : port -> addr * payload
(** Block until a datagram arrives; returns the source address. *)

val tx_link : port -> Simkit.Sim.Resource.t
(** Transmit-link resource, for utilisation/saturation stats. *)

val rx_link : port -> Simkit.Sim.Resource.t
(** Receive-link resource; inbound messages occupy it for their
    transfer time, so a host's incoming bandwidth also saturates. *)

val set_reachable : t -> (addr -> addr -> bool) -> unit
(** Install a reachability predicate (network partitions). The
    default is full connectivity. *)

val clear_partition : t -> unit
