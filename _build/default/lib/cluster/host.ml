open Simkit

exception Crashed of string

type t = {
  hname : string;
  cpu : Sim.Resource.t;
  mutable alive : bool;
  mutable incarnation : int;
  mutable hooks : (unit -> unit) list;
}

let create ?(cpu_cores = 1) hname =
  {
    hname;
    cpu = Sim.Resource.create ~capacity:cpu_cores (hname ^ ".cpu");
    alive = true;
    incarnation = 0;
    hooks = [];
  }

let name t = t.hname
let is_alive t = t.alive
let incarnation t = t.incarnation
let check t = if not t.alive then raise (Crashed t.hname)
let cpu t = t.cpu

let consume t d =
  check t;
  Sim.Resource.use t.cpu d

let on_crash t f = t.hooks <- f :: t.hooks

let crash t =
  if t.alive then begin
    t.alive <- false;
    List.iter (fun f -> f ()) t.hooks
  end

let restart t =
  if not t.alive then begin
    t.incarnation <- t.incarnation + 1;
    t.alive <- true
  end

let guard t inc = t.alive && t.incarnation = inc
