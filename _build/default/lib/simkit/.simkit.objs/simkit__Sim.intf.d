lib/simkit/sim.mli: Random
