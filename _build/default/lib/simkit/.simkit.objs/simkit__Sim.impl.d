lib/simkit/sim.ml: Array Effect List Queue Random
