type time = int

let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let sec s = int_of_float (s *. 1e9 +. 0.5)
let to_sec t = float_of_int t /. 1e9

exception Deadlock of string
exception Timed_out

type event = {
  at : time;
  seq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

(* Binary min-heap of events ordered by (at, seq); seq breaks ties so
   same-instant events run in schedule order. *)
module Heap = struct
  type t = { mutable arr : event array; mutable len : int }

  let dummy = { at = 0; seq = 0; cancelled = true; run = ignore }
  let create () = { arr = Array.make 256 dummy; len = 0 }

  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h ev =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- ev;
    h.len <- h.len + 1;
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if less h.arr.(i) h.arr.(p) then begin
          let t = h.arr.(i) in
          h.arr.(i) <- h.arr.(p);
          h.arr.(p) <- t;
          up p
        end
      end
    in
    up (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = if l < h.len && less h.arr.(l) h.arr.(i) then l else i in
        let m = if r < h.len && less h.arr.(r) h.arr.(m) then r else m in
        if m <> i then begin
          let t = h.arr.(i) in
          h.arr.(i) <- h.arr.(m);
          h.arr.(m) <- t;
          down m
        end
      in
      down 0;
      Some top
    end
end

type engine = {
  mutable now : time;
  mutable seq : int;
  heap : Heap.t;
  rng : Random.State.t;
}

(* The engine currently executing; set only inside [run]. *)
let current : engine option ref = ref None

let engine () =
  match !current with
  | Some e -> e
  | None -> invalid_arg "Sim: blocking operation performed outside Sim.run"

let schedule eng at run =
  eng.seq <- eng.seq + 1;
  let ev = { at; seq = eng.seq; cancelled = false; run } in
  Heap.push eng.heap ev;
  ev

type _ Effect.t +=
  | E_sleep : time -> unit Effect.t
  | E_spawn : (unit -> unit) -> unit Effect.t
  | E_suspend : (('v -> unit) -> unit) -> 'v Effect.t

let now () = (engine ()).now
let rng () = (engine ()).rng
let random_float x = Random.State.float (rng ()) x
let random_int n =
  (* Random.State.int is limited to bounds < 2^30, too small for
     nanosecond durations. *)
  if n <= 0 then 0 else Random.State.full_int (rng ()) n
let sleep d = Effect.perform (E_sleep d)
let spawn ?name:_ f = Effect.perform (E_spawn f)
let suspend f = Effect.perform (E_suspend f)

let run ?(seed = 42) ?until main =
  let eng =
    { now = 0; seq = 0; heap = Heap.create (); rng = Random.State.make [| seed |] }
  in
  let open Effect.Deep in
  let rec exec f = match_with f () handler
  and handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | E_sleep d ->
            Some
              (fun (k : (c, unit) continuation) ->
                ignore (schedule eng (eng.now + max 0 d) (fun () -> continue k ())))
          | E_spawn f ->
            Some
              (fun (k : (c, unit) continuation) ->
                ignore (schedule eng eng.now (fun () -> exec f));
                continue k ())
          | E_suspend f ->
            Some
              (fun (k : (c, unit) continuation) ->
                let resumed = ref false in
                f (fun v ->
                    if !resumed then invalid_arg "Sim.suspend: resumed twice";
                    resumed := true;
                    ignore (schedule eng eng.now (fun () -> continue k v))))
          | _ -> None);
    }
  in
  let result = ref None in
  ignore (schedule eng 0 (fun () -> exec (fun () -> result := Some (main ()))));
  let saved = !current in
  current := Some eng;
  let finish v =
    current := saved;
    v
  in
  let bail e =
    current := saved;
    raise e
  in
  let rec loop () =
    match !result with
    | Some v -> finish v
    | None -> (
      match Heap.pop eng.heap with
      | None -> bail (Deadlock "Sim.run: main process blocked forever")
      | Some ev ->
        if ev.cancelled then loop ()
        else begin
          (match until with
          | Some u when ev.at > u -> bail Timed_out
          | _ -> ());
          eng.now <- ev.at;
          (try ev.run () with e -> bail e);
          loop ()
        end)
  in
  loop ()

module Ivar = struct
  type 'a t = { mutable value : 'a option; mutable waiters : ('a -> unit) list }

  let create () = { value = None; waiters = [] }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun w -> w v) ws

  let read t =
    match t.value with
    | Some v -> v
    | None -> suspend (fun resume -> t.waiters <- resume :: t.waiters)

  let peek t = t.value
  let is_filled t = t.value <> None
end

module Mailbox = struct
  type 'a t = { msgs : 'a Queue.t; readers : ('a -> unit) Queue.t }

  let create () = { msgs = Queue.create (); readers = Queue.create () }

  let send t m =
    match Queue.take_opt t.readers with
    | Some r -> r m
    | None -> Queue.push m t.msgs

  let recv t =
    match Queue.take_opt t.msgs with
    | Some m -> m
    | None -> suspend (fun resume -> Queue.push resume t.readers)

  let try_recv t = Queue.take_opt t.msgs
  let length t = Queue.length t.msgs
end

module Resource = struct
  type t = {
    rname : string;
    capacity : int;
    mutable in_use : int;
    waiters : (unit -> unit) Queue.t;
    mutable busy : int; (* integral of in_use over time since reset *)
    mutable last_change : time;
    mutable reset_at : time;
  }

  let create ?(capacity = 1) rname =
    if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
    { rname; capacity; in_use = 0; waiters = Queue.create (); busy = 0;
      last_change = 0; reset_at = 0 }

  let name t = t.rname

  let account t =
    let n = now () in
    t.busy <- t.busy + (t.in_use * (n - t.last_change));
    t.last_change <- n

  let acquire t =
    if t.in_use < t.capacity then begin
      account t;
      t.in_use <- t.in_use + 1
    end
    else suspend (fun resume -> Queue.push (fun () -> resume ()) t.waiters)

  let release t =
    if t.in_use <= 0 then invalid_arg "Resource.release: not acquired";
    match Queue.take_opt t.waiters with
    | Some w -> w () (* hand the server over; in_use unchanged *)
    | None ->
      account t;
      t.in_use <- t.in_use - 1

  let use t d =
    acquire t;
    sleep d;
    release t

  let reset_stats t =
    t.busy <- 0;
    t.last_change <- now ();
    t.reset_at <- now ()

  let busy_time t =
    account t;
    t.busy

  let utilization t =
    account t;
    let span = now () - t.reset_at in
    if span <= 0 then 0.0
    else float_of_int t.busy /. float_of_int (t.capacity * span)
end

module Condition = struct
  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }
  let wait t = suspend (fun resume -> t.waiters <- (fun () -> resume ()) :: t.waiters)

  let broadcast t =
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun w -> w ()) ws
end

module Timer = struct
  type t = { mutable fired : bool; mutable cancelled : bool }

  let after d f =
    let t = { fired = false; cancelled = false } in
    spawn (fun () ->
        sleep d;
        if not t.cancelled then begin
          t.fired <- true;
          f ()
        end);
    t

  let cancel t = t.cancelled <- true
  let is_pending t = (not t.fired) && not t.cancelled
end
