lib/stdext/codec.mli:
