lib/stdext/crc32.ml: Array Bytes Char Lazy String
