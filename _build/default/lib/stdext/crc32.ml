let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let bytes b off len =
  let tbl = Lazy.force table in
  let c = ref 0xffffffff in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s =
  bytes (Bytes.unsafe_of_string s) 0 (String.length s)
