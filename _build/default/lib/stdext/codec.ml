let get_u8 b off = Char.code (Bytes.get b off)
let put_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let put_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u64 b off = Bytes.get_int64_le b off
let put_u64 b off v = Bytes.set_int64_le b off v
let get_int b off = Int64.to_int (get_u64 b off)
let put_int b off v = put_u64 b off (Int64.of_int v)

module W = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(size = 64) () = { buf = Bytes.create (max 8 size); len = 0 }

  let ensure t n =
    let need = t.len + n in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let u8 t v =
    ensure t 1;
    put_u8 t.buf t.len v;
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    put_u16 t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    put_u32 t.buf t.len v;
    t.len <- t.len + 4

  let u64 t v =
    ensure t 8;
    put_u64 t.buf t.len v;
    t.len <- t.len + 8

  let int t v = u64 t (Int64.of_int v)

  let bytes t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let str t s =
    u16 t (String.length s);
    bytes t (Bytes.of_string s)

  let len t = t.len
  let contents t = Bytes.sub t.buf 0 t.len
end

module R = struct
  type t = { buf : bytes; mutable pos : int }

  exception Underflow

  let of_bytes ?(pos = 0) buf = { buf; pos }

  let need t n = if t.pos + n > Bytes.length t.buf then raise Underflow

  let u8 t =
    need t 1;
    let v = get_u8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = get_u16 t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = get_u32 t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let v = get_u64 t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let int t = Int64.to_int (u64 t)

  let bytes t n =
    need t n;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let str t =
    let n = u16 t in
    Bytes.to_string (bytes t n)

  let pos t = t.pos
  let remaining t = Bytes.length t.buf - t.pos
end
