(** Little-endian binary encoding helpers for on-disk structures.

    Two styles are provided: flat accessors addressing a fixed offset
    in an existing buffer (used for fixed-layout blocks such as inodes
    and log sectors), and cursor-based writer/reader for variable-
    length records (log records, directory entries). *)

val get_u8 : bytes -> int -> int
val put_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val put_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val put_u32 : bytes -> int -> int -> unit

val get_u64 : bytes -> int -> int64
val put_u64 : bytes -> int -> int64 -> unit

val get_int : bytes -> int -> int
(** 63-bit OCaml int stored as a little-endian 64-bit word. *)

val put_int : bytes -> int -> int -> unit

(** Append-only growable writer. *)
module W : sig
  type t

  val create : ?size:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val int : t -> int -> unit
  val bytes : t -> bytes -> unit

  val str : t -> string -> unit
  (** Length-prefixed (u16) string. *)

  val len : t -> int

  val contents : t -> bytes
  (** Copy of everything written so far. *)
end

(** Sequential reader over a buffer. *)
module R : sig
  type t

  exception Underflow

  val of_bytes : ?pos:int -> bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val int : t -> int

  val bytes : t -> int -> bytes
  (** Read exactly [n] bytes. *)

  val str : t -> string
  val pos : t -> int
  val remaining : t -> int
end
