(** CRC-32 (IEEE 802.3 polynomial), used to detect damaged sectors. *)

val bytes : bytes -> int -> int -> int
(** [bytes b off len] is the CRC of the given slice, as a non-negative
    31-bit-safe int. *)

val string : string -> int
