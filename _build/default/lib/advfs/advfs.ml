open Simkit
open Frangipani.Errors

let block = 4096
let root = 0

type config = {
  nvram : bool;
  read_ahead : int;
  cpu_ns_per_byte_read : int;
  cpu_ns_per_byte_write : int;
  cpu_per_op : Sim.time;
  sync_interval : Sim.time;
}

let default_config =
  {
    nvram = false;
    read_ahead = 16;
    cpu_ns_per_byte_read = 36;
    cpu_ns_per_byte_write = 58;
    cpu_per_op = Sim.us 40;
    sync_interval = Sim.sec 30.0;
  }

type itype = Reg | Dir | Symlink

type inode = {
  mutable itype : itype;
  mutable size : int;
  mutable nlink : int;
  mutable mtime : Sim.time;
  blocks : (int, int * int) Hashtbl.t; (* file block index -> disk, offset *)
  entries : (string, int) Hashtbl.t; (* directories *)
  mutable target : string;
}

type centry = { cdata : bytes; mutable cdirty : bool }

type t = {
  host : Cluster.Host.t;
  config : config;
  disks : Blockdev.Storage.t array;
  inodes : (int, inode) Hashtbl.t;
  mutable next_inum : int;
  frontier : int array; (* per-disk allocation offset *)
  mutable rotor : int;
  cache : (int * int, centry) Hashtbl.t; (* (disk, off) -> entry *)
  inflight : (int * int, unit Sim.Ivar.t) Hashtbl.t;
  (* The paper's machine attaches its 8 disks through two 10 MB/s
     fast-SCSI strings; each transfer also occupies its string. *)
  strings : Sim.Resource.t array;
  (* Metadata log: a rotor over a 128 KB region of disk 0; only its
     I/O timing matters (metadata content is in memory). *)
  mutable ndirty : int;
  mutable wb_running : bool;
  mutable log_pending : int; (* bytes of unflushed records *)
  mutable log_sector : int;
  mutable log_flushing : bool;
  log_flushed : Sim.Condition.t;
}

let host t = t.host

let new_inode t itype =
  let inum = t.next_inum in
  t.next_inum <- inum + 1;
  Hashtbl.replace t.inodes inum
    {
      itype;
      size = 0;
      nlink = (if itype = Dir then 2 else 1);
      mtime = Sim.now ();
      blocks = Hashtbl.create 8;
      entries = Hashtbl.create 8;
      target = "";
    };
  inum

let rec create ~host ?(ndisks = 8) ?(config = default_config) () =
  let disks =
    Array.init ndisks (fun d ->
        let disk =
          Blockdev.Disk.create ~capacity:(256 * 1024 * 1024)
            (Printf.sprintf "%s.rz29-%d" (Cluster.Host.name host) d)
        in
        if config.nvram then Blockdev.Nvram.wrap disk else Blockdev.Storage.of_disk disk)
  in
  let t =
    {
      host;
      config;
      disks;
      inodes = Hashtbl.create 1024;
      next_inum = 0;
      frontier = Array.make ndisks (256 * 1024) (* leave room for the log *);
      rotor = 0;
      cache = Hashtbl.create 4096;
      inflight = Hashtbl.create 64;
      strings =
        Array.init 2 (fun i ->
            Sim.Resource.create (Cluster.Host.name host ^ Printf.sprintf ".scsi%d" i));
      ndirty = 0;
      wb_running = false;
      log_pending = 0;
      log_sector = 0;
      log_flushing = false;
      log_flushed = Sim.Condition.create ();
    }
  in
  ignore (new_inode t Dir) (* the root *);
  (* The update demon. *)
  Sim.spawn ~name:(Cluster.Host.name host ^ ".advfs-update") (fun () ->
      let rec loop () =
        Sim.sleep config.sync_interval;
        if Cluster.Host.is_alive host then begin
          (try sync_internal t with Blockdev.Disk.Failed _ | Cluster.Host.Crashed _ -> ());
          loop ()
        end
      in
      loop ())
  |> ignore;
  t

(* --- metadata log (timing model) ------------------------------------------ *)

and log_flush t =
  if t.log_flushing then begin
    Sim.Condition.wait t.log_flushed;
    if t.log_pending > 0 then log_flush t
  end
  else if t.log_pending > 0 then begin
    t.log_flushing <- true;
    let nsectors = (t.log_pending + 511) / 512 in
    t.log_pending <- 0;
    for _ = 1 to nsectors do
      let off = t.log_sector mod 256 * 512 in
      t.log_sector <- t.log_sector + 1;
      string_transfer t 0 512;
      t.disks.(0).Blockdev.Storage.write ~off (Bytes.make 512 '\000')
    done;
    t.log_flushing <- false;
    Sim.Condition.broadcast t.log_flushed
  end

and log_append t nbytes =
  t.log_pending <- t.log_pending + nbytes;
  if t.log_pending >= 32 * 1024 then log_flush t

(* --- data cache ------------------------------------------------------------ *)

and string_transfer t d len =
  (* 10 MB/s = 100 ns per byte on the string. *)
  Sim.Resource.use t.strings.(d mod 2) (len * 100)

and flush_entry t (d, off) e =
  if e.cdirty then begin
    e.cdirty <- false;
    t.ndirty <- t.ndirty - 1;
    string_transfer t d (Bytes.length e.cdata);
    t.disks.(d).Blockdev.Storage.write ~off e.cdata
  end

and mark_dirty t e =
  if not e.cdirty then begin
    e.cdirty <- true;
    t.ndirty <- t.ndirty + 1;
    (* Write-behind: drain in the background once enough is dirty. *)
    if (not t.wb_running) && t.ndirty >= 256 then begin
      t.wb_running <- true;
      Sim.spawn (fun () ->
          (try sync_internal t
           with Blockdev.Disk.Failed _ | Cluster.Host.Crashed _ -> ());
          t.wb_running <- false)
    end
  end

and sync_internal t =
  log_flush t;
  let dirty = Hashtbl.fold (fun k e acc -> if e.cdirty then (k, e) :: acc else acc) t.cache [] in
  (* One writer per disk, each streaming its blocks in order: all the
     striped spindles work in parallel. *)
  let by_disk = Hashtbl.create 8 in
  List.iter
    (fun ((d, _), _ as it) ->
      let l = try Hashtbl.find by_disk d with Not_found -> [] in
      Hashtbl.replace by_disk d (it :: l))
    dirty;
  let pending = ref (Hashtbl.length by_disk) in
  if !pending > 0 then begin
    let all = Sim.Ivar.create () in
    Hashtbl.iter
      (fun _ items ->
        Sim.spawn (fun () ->
            List.iter (fun (k, e) -> flush_entry t k e) (List.sort compare items);
            decr pending;
            if !pending = 0 then Sim.Ivar.fill all ()))
      by_disk;
    Sim.Ivar.read all
  end

let rec cache_block t key =
  match Hashtbl.find_opt t.cache key with
  | Some e -> e
  | None -> (
    match Hashtbl.find_opt t.inflight key with
    | Some iv ->
      Sim.Ivar.read iv;
      cache_block t key
    | None ->
      let iv = Sim.Ivar.create () in
      Hashtbl.replace t.inflight key iv;
      let d, off = key in
      let cdata =
        try
          string_transfer t d block;
          t.disks.(d).Blockdev.Storage.read ~off ~len:block
        with ex ->
          Hashtbl.remove t.inflight key;
          Sim.Ivar.fill iv ();
          raise ex
      in
      let e = { cdata; cdirty = false } in
      Hashtbl.replace t.cache key e;
      Hashtbl.remove t.inflight key;
      Sim.Ivar.fill iv ();
      e)

let alloc_block t =
  let d = t.rotor mod Array.length t.disks in
  t.rotor <- t.rotor + 1;
  let off = t.frontier.(d) in
  if off + block > t.disks.(d).Blockdev.Storage.capacity then fail Enospc;
  t.frontier.(d) <- off + block;
  (d, off)

(* --- inode helpers ----------------------------------------------------------- *)

let inode t inum =
  match Hashtbl.find_opt t.inodes inum with
  | Some i -> i
  | None -> fail Estale

let dir_inode t inum =
  let i = inode t inum in
  if i.itype <> Dir then fail Enotdir;
  i

let charge_op t = Cluster.Host.consume t.host t.config.cpu_per_op

(* --- namespace --------------------------------------------------------------- *)

let add_entry t ~dir name inum ~meta_bytes =
  let d = dir_inode t dir in
  if Hashtbl.mem d.entries name then fail Eexist;
  Hashtbl.replace d.entries name inum;
  d.mtime <- Sim.now ();
  log_append t meta_bytes

let create_file t ~dir name =
  charge_op t;
  let inum = new_inode t Reg in
  add_entry t ~dir name inum ~meta_bytes:128;
  inum

let mkdir t ~dir name =
  charge_op t;
  let inum = new_inode t Dir in
  add_entry t ~dir name inum ~meta_bytes:128;
  (dir_inode t dir).nlink <- (dir_inode t dir).nlink + 1;
  inum

let symlink t ~dir name ~target =
  charge_op t;
  let inum = new_inode t Symlink in
  (inode t inum).target <- target;
  add_entry t ~dir name inum ~meta_bytes:(128 + String.length target);
  inum

let lookup t ~dir name =
  charge_op t;
  if name = "." then dir
  else
    match Hashtbl.find_opt (dir_inode t dir).entries name with
    | Some i -> i
    | None -> fail Enoent

let readdir t dir =
  charge_op t;
  Hashtbl.fold (fun n i acc -> (n, i) :: acc) (dir_inode t dir).entries []

let readlink t inum =
  charge_op t;
  let i = inode t inum in
  if i.itype <> Symlink then fail Einval;
  i.target

let link t ~dir name ~inum =
  charge_op t;
  let i = inode t inum in
  if i.itype = Dir then fail Eisdir;
  add_entry t ~dir name inum ~meta_bytes:96;
  i.nlink <- i.nlink + 1

let drop_inode t inum =
  let i = inode t inum in
  i.nlink <- i.nlink - (if i.itype = Dir then 2 else 1);
  if i.nlink <= 0 then begin
    Hashtbl.iter (fun _ key -> Hashtbl.remove t.cache key) i.blocks;
    Hashtbl.remove t.inodes inum
  end

let unlink t ~dir name =
  charge_op t;
  let d = dir_inode t dir in
  match Hashtbl.find_opt d.entries name with
  | None -> fail Enoent
  | Some target ->
    if (inode t target).itype = Dir then fail Eisdir;
    Hashtbl.remove d.entries name;
    log_append t 96;
    drop_inode t target

let rmdir t ~dir name =
  charge_op t;
  let d = dir_inode t dir in
  match Hashtbl.find_opt d.entries name with
  | None -> fail Enoent
  | Some target ->
    let ti = inode t target in
    if ti.itype <> Dir then fail Enotdir;
    if Hashtbl.length ti.entries > 0 then fail Enotempty;
    Hashtbl.remove d.entries name;
    d.nlink <- d.nlink - 1;
    log_append t 96;
    drop_inode t target

let rename t ~sdir sname ~ddir dname =
  charge_op t;
  let sd = dir_inode t sdir and dd = dir_inode t ddir in
  match Hashtbl.find_opt sd.entries sname with
  | None -> fail Enoent
  | Some src ->
    (match Hashtbl.find_opt dd.entries dname with
    | Some old when old <> src ->
      let oi = inode t old in
      if oi.itype = Dir && Hashtbl.length oi.entries > 0 then fail Enotempty;
      Hashtbl.remove dd.entries dname;
      drop_inode t old
    | _ -> ());
    Hashtbl.remove sd.entries sname;
    Hashtbl.replace dd.entries dname src;
    log_append t 160

(* --- data I/O ------------------------------------------------------------------ *)

let pieces ~off ~len =
  let rec go off len acc =
    if len <= 0 then List.rev acc
    else begin
      let b = off / block in
      let within = off mod block in
      let n = min len (block - within) in
      go (off + n) (len - n) ((b, within, n) :: acc)
    end
  in
  go off len []

(* AdvFS's deeper read-ahead: prefetches fan out in parallel, so the
   striped disks all work at once (the paper credits AdvFS with a
   more effective read-ahead than Frangipani's, §9.2). *)
let read_ahead t inum ~from n =
  for k = 0 to n - 1 do
    Sim.spawn (fun () ->
        try
          let i = inode t inum in
          let b = from + k in
          if b * block < i.size then
            match Hashtbl.find_opt i.blocks b with
            | Some key -> ignore (cache_block t key)
            | None -> ()
        with Error _ | Blockdev.Disk.Failed _ | Cluster.Host.Crashed _ -> ())
  done

let read t inum ~off ~len =
  charge_op t;
  let i = inode t inum in
  if i.itype = Dir then fail Eisdir;
  let len = max 0 (min len (i.size - off)) in
  Cluster.Host.consume t.host (len * t.config.cpu_ns_per_byte_read);
  let buf = Bytes.make len '\000' in
  List.iter
    (fun (b, within, n) ->
      match Hashtbl.find_opt i.blocks b with
      | None -> ()
      | Some key ->
        let e = cache_block t key in
        Bytes.blit e.cdata within buf ((b * block) + within - off) n)
    (pieces ~off ~len);
  read_ahead t inum ~from:((off + len) / block) t.config.read_ahead;
  buf

let write t inum ~off data =
  charge_op t;
  let len = Bytes.length data in
  Cluster.Host.consume t.host (len * t.config.cpu_ns_per_byte_write);
  let i = inode t inum in
  if i.itype = Dir then fail Eisdir;
  List.iter
    (fun (b, within, n) ->
      let key =
        match Hashtbl.find_opt i.blocks b with
        | Some key -> key
        | None ->
          let key = alloc_block t in
          Hashtbl.replace i.blocks b key;
          log_append t 32 (* extent-map update *);
          key
      in
      let e =
        if within = 0 && n = block then begin
          match Hashtbl.find_opt t.cache key with
          | Some e -> e
          | None ->
            let e = { cdata = Bytes.create block; cdirty = false } in
            Hashtbl.replace t.cache key e;
            e
        end
        else cache_block t key
      in
      Bytes.blit data ((b * block) + within - off) e.cdata within n;
      mark_dirty t e)
    (pieces ~off ~len);
  if off + len > i.size then begin
    i.size <- off + len;
    log_append t 48
  end;
  i.mtime <- Sim.now ()

let truncate t inum ~size =
  charge_op t;
  let i = inode t inum in
  if size < i.size then begin
    let keep = (size + block - 1) / block in
    let doomed =
      Hashtbl.fold (fun b key acc -> if b >= keep then (b, key) :: acc else acc) i.blocks []
    in
    List.iter
      (fun (b, key) ->
        Hashtbl.remove i.blocks b;
        Hashtbl.remove t.cache key)
      doomed
  end;
  i.size <- size;
  log_append t 48

let size t inum = (inode t inum).size

let fsync t inum =
  charge_op t;
  log_flush t;
  let i = inode t inum in
  Hashtbl.iter
    (fun _ key ->
      match Hashtbl.find_opt t.cache key with
      | Some e -> flush_entry t key e
      | None -> ())
    i.blocks;
  Array.iter (fun (s : Blockdev.Storage.t) -> s.flush ()) [| t.disks.(0) |]

let sync t = sync_internal t

let drop_caches t =
  let clean = Hashtbl.fold (fun k e acc -> if e.cdirty then acc else k :: acc) t.cache [] in
  List.iter (Hashtbl.remove t.cache) clean
