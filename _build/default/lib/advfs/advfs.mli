(** A model of DIGITAL's Advanced File System (AdvFS) — the
    comparison system of the paper's Tables 1–3.

    A single-machine file system over locally attached disks, with
    the properties the paper credits it with: file data striped
    across all disks (nearly double UFS throughput), write-ahead
    logging of metadata (low-latency creates, unlike UFS's
    synchronous updates), a deeper/more effective read-ahead than the
    UFS-derived one Frangipani uses, and an optional PrestoServe
    NVRAM in front of the disks (the "NVR" columns).

    Timing and data movement are modelled faithfully (real bytes on
    the simulated disks, real cache, real log-write traffic); since
    AdvFS is only a performance baseline here, its metadata lives in
    memory and crash recovery is not implemented. *)

type t

type config = {
  nvram : bool;
  read_ahead : int;  (** blocks of sequential prefetch (default 8) *)
  cpu_ns_per_byte_read : int;
  cpu_ns_per_byte_write : int;
  cpu_per_op : Simkit.Sim.time;
  sync_interval : Simkit.Sim.time;
}

val default_config : config

val create :
  host:Cluster.Host.t -> ?ndisks:int -> ?config:config -> unit -> t
(** Default 8 RZ29-class disks, as in the paper's test machine. *)

val root : int
val host : t -> Cluster.Host.t

val create_file : t -> dir:int -> string -> int
val mkdir : t -> dir:int -> string -> int
val symlink : t -> dir:int -> string -> target:string -> int
val lookup : t -> dir:int -> string -> int
val readdir : t -> int -> (string * int) list
val readlink : t -> int -> string
val link : t -> dir:int -> string -> inum:int -> unit
val unlink : t -> dir:int -> string -> unit
val rmdir : t -> dir:int -> string -> unit
val rename : t -> sdir:int -> string -> ddir:int -> string -> unit
val read : t -> int -> off:int -> len:int -> bytes
val write : t -> int -> off:int -> bytes -> unit
val truncate : t -> int -> size:int -> unit
val size : t -> int -> int
val fsync : t -> int -> unit
val sync : t -> unit
val drop_caches : t -> unit
(** Evict clean cached blocks (for uncached-read experiments). *)
