(** Uniform byte-addressed storage interface.

    Petal servers and the AdvFS baseline are written against this
    record type so a raw disk and an NVRAM-fronted disk (the paper's
    "Raw" and "NVR" configurations) are interchangeable. *)

type t = {
  sname : string;
  capacity : int;
  read : off:int -> len:int -> bytes;
  write : off:int -> bytes -> unit;
  flush : unit -> unit;  (** Wait until all buffered writes are stable. *)
}

val of_disk : Disk.t -> t
