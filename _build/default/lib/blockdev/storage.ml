type t = {
  sname : string;
  capacity : int;
  read : off:int -> len:int -> bytes;
  write : off:int -> bytes -> unit;
  flush : unit -> unit;
}

let of_disk d =
  {
    sname = Disk.name d;
    capacity = Disk.capacity d;
    read = (fun ~off ~len -> Disk.read d ~off ~len);
    write = (fun ~off data -> Disk.write d ~off data);
    flush = (fun () -> ());
  }
