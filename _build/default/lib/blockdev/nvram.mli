(** PrestoServe-style NVRAM write-back cache in front of a disk.

    Writes complete at NVRAM speed and are destaged to the disk by a
    background process; contents are non-volatile, so they survive a
    host crash (the paper treats NVRAM {e card} failure as a Petal
    server failure, which we model by failing the underlying disk).

    The default capacity is the 8 MB of the paper's PrestoServe
    cards; when the buffer is full, writers block until destaging
    frees space. *)

val wrap :
  ?capacity:int ->
  ?write_latency:Simkit.Sim.time ->
  ?bytes_per_sec:int ->
  Disk.t ->
  Storage.t
