lib/blockdev/nvram.mli: Disk Simkit Storage
