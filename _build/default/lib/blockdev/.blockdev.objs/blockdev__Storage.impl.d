lib/blockdev/storage.ml: Disk
