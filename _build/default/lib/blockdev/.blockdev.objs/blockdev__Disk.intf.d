lib/blockdev/disk.mli: Simkit
