lib/blockdev/storage.mli: Disk
