lib/blockdev/disk.ml: Bytes Hashtbl Printf Sim Simkit
