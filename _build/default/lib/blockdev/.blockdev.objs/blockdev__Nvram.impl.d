lib/blockdev/nvram.ml: Bytes Disk Hashtbl List Queue Sim Simkit Storage
