(** The Paxos instance shared by all Petal servers for their
    replicated virtual-disk table. *)

module P = Paxos.Make (struct
  type t = Protocol.mgmt_cmd
end)

type stable = P.stable

let stable = P.stable
