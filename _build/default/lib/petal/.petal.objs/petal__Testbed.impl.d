lib/petal/testbed.ml: Array Blockdev Client Cluster Host Net Paxos_group Printf Rpc Server
