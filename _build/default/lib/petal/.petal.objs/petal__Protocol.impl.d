lib/petal/protocol.ml: Cluster Net
