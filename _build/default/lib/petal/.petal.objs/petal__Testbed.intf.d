lib/petal/testbed.mli: Blockdev Client Cluster Server
