lib/petal/server.mli: Blockdev Cluster Paxos_group
