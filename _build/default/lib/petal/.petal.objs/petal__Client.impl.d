lib/petal/client.ml: Array Bytes Cluster Fun List Net Protocol Rpc Sim Simkit
