lib/petal/paxos_group.ml: Paxos Protocol
