lib/petal/client.mli: Cluster
