lib/petal/server.ml: Array Blockdev Bytes Cluster Hashtbl Host Lazy List Logs Net Paxos_group Protocol Rpc Sim Simkit
