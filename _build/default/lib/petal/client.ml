open Simkit
open Cluster
open Protocol

type t = {
  rpc : Rpc.t;
  servers : Net.addr array;
  timeout : Sim.time;
  mutable write_guard : unit -> int option;
      (* expiration timestamp attached to every write (§6 fix) *)
  mutable write_ops : int;
  mutable write_ns : int;
  mutable read_ops : int;
  mutable read_ns : int;
}

type vdisk = {
  c : t;
  vid : int;
  root : int;
  nrep : int;
  frozen : int option;
}

(* The per-replica timeout must comfortably exceed a queued raw-disk
   write burst; failover latency is dominated by it, so it trades
   responsiveness against spurious degradation. *)
let connect ~rpc ~servers =
  { rpc; servers; timeout = Sim.sec 2.0; write_guard = (fun () -> None);
    write_ops = 0; write_ns = 0; read_ops = 0; read_ns = 0 }

let set_write_guard v f = v.c.write_guard <- f

let op_stats v =
  (v.c.write_ops, float_of_int v.c.write_ns /. 1e9, v.c.read_ops,
   float_of_int v.c.read_ns /. 1e9)

let primary_of t ~root ~chunk = (root + chunk) mod Array.length t.servers
let secondary_of t ~root ~chunk = (primary_of t ~root ~chunk + 1) mod Array.length t.servers

(* Try the primary, then (for replicated disks) the replica. *)
let call_replicas t ~root ~chunk ~nrep ~size req_of =
  let try_one dst req =
    match Rpc.call t.rpc ~dst:t.servers.(dst) ~timeout:t.timeout ~size req with
    | Ok reply -> Some reply
    | Error `Timeout -> None
  in
  match try_one (primary_of t ~root ~chunk) (req_of ~solo:false) with
  | Some r -> r
  | None when nrep > 1 -> (
    match try_one (secondary_of t ~root ~chunk) (req_of ~solo:true) with
    | Some r -> r
    | None -> raise (Unavailable "petal: no replica reachable"))
  | None -> raise (Unavailable "petal: server unreachable")

let mgmt t cmd =
  let n = Array.length t.servers in
  let rec go i =
    if i >= n then raise (Unavailable "petal: no server for management op")
    else
      match
        Rpc.call t.rpc ~dst:t.servers.(i) ~timeout:(Sim.sec 2.0) ~size:small
          (Mgmt_req cmd)
      with
      | Ok (Mgmt_ok id) -> id
      | Ok (Perr e) -> failwith ("petal: " ^ e)
      | Ok _ | Error `Timeout -> go (i + 1)
  in
  go 0

let create_vdisk t ~nrep = mgmt t (Create_vdisk { nrep })

let open_vdisk t vid =
  let n = Array.length t.servers in
  let rec go i =
    if i >= n then raise (Unavailable "petal: no server for open")
    else
      match
        Rpc.call t.rpc ~dst:t.servers.(i) ~timeout:(Sim.ms 500) ~size:small
          (Vdisk_info_req vid)
      with
      | Ok (Vdisk_info { root; nrep; frozen }) -> { c = t; vid; root; nrep; frozen }
      | Ok (Perr e) -> failwith ("petal: " ^ e)
      | Ok _ | Error `Timeout -> go (i + 1)
  in
  go 0

let id v = v.vid
let is_snapshot v = v.frozen <> None

let check_aligned ~off ~len =
  if off < 0 || len < 0 || off mod sector_bytes <> 0 || len mod sector_bytes <> 0
  then invalid_arg "petal: unaligned I/O"

(* Split [off, off+len) into (chunk, within, n) pieces. *)
let pieces ~off ~len =
  let rec go off len acc =
    if len = 0 then List.rev acc
    else begin
      let chunk = off / chunk_bytes in
      let within = off mod chunk_bytes in
      let n = min len (chunk_bytes - within) in
      go (off + n) (len - n) ((chunk, within, n) :: acc)
    end
  in
  go off len []

let sel v = match v.frozen with Some e -> At e | None -> Current

let read v ~off ~len =
  check_aligned ~off ~len;
  let t0 = Sim.now () in
  v.c.read_ops <- v.c.read_ops + 1;
  Fun.protect ~finally:(fun () -> v.c.read_ns <- v.c.read_ns + (Sim.now () - t0))
  @@ fun () ->
  let buf = Bytes.create len in
  let pos = ref 0 in
  List.iter
    (fun (chunk, within, n) ->
      let reply =
        call_replicas v.c ~root:v.root ~chunk ~nrep:v.nrep ~size:read_req_size
          (fun ~solo:_ ->
            Read_req { root = v.root; chunk; within; len = n; sel = sel v })
      in
      (match reply with
      | Read_ok data -> Bytes.blit data 0 buf !pos n
      | _ -> failwith "petal: bad read reply");
      pos := !pos + n)
    (pieces ~off ~len);
  buf

let write v ~off data =
  if is_snapshot v then raise Read_only;
  let len = Bytes.length data in
  check_aligned ~off ~len;
  let t0 = Sim.now () in
  v.c.write_ops <- v.c.write_ops + 1;
  Fun.protect ~finally:(fun () -> v.c.write_ns <- v.c.write_ns + (Sim.now () - t0))
  @@ fun () ->
  let pos = ref 0 in
  List.iter
    (fun (chunk, within, n) ->
      let piece = Bytes.sub data !pos n in
      let expires = v.c.write_guard () in
      let reply =
        call_replicas v.c ~root:v.root ~chunk ~nrep:v.nrep
          ~size:(write_req_size n) (fun ~solo ->
            Write_req { root = v.root; chunk; within; data = piece; solo; expires })
      in
      (match reply with
      | Write_ok -> ()
      | Perr "expired lease timestamp" -> raise (Stale_write "expired lease timestamp")
      | Perr e -> failwith ("petal: " ^ e)
      | _ -> failwith "petal: bad write reply");
      pos := !pos + n)
    (pieces ~off ~len)

let decommit v ~off ~len =
  if is_snapshot v then raise Read_only;
  check_aligned ~off ~len;
  if off mod chunk_bytes <> 0 || len mod chunk_bytes <> 0 then
    invalid_arg "petal: decommit must be chunk-aligned";
  List.iter
    (fun (chunk, _, _) ->
      let reply =
        call_replicas v.c ~root:v.root ~chunk ~nrep:v.nrep ~size:small
          (fun ~solo ->
            Decommit_req { root = v.root; chunk; forward = not solo })
      in
      match reply with
      | Decommit_ok -> ()
      | _ -> failwith "petal: bad decommit reply")
    (pieces ~off ~len)

let snapshot v =
  if is_snapshot v then raise Read_only;
  mgmt v.c (Snapshot { src = v.vid })
