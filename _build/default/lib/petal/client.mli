(** The Petal "device driver": makes the distributed virtual disk
    look like an ordinary local disk to its host (paper §2.1).

    It routes each chunk request to the responsible server, fails
    over to the replica on timeout, and hides striping entirely.
    All offsets and lengths must be 512-byte aligned; requests may
    span chunk boundaries and are split internally. *)

type t
(** A driver instance (one per client host). *)

type vdisk
(** An open virtual disk. *)

val connect : rpc:Cluster.Rpc.t -> servers:Cluster.Net.addr array -> t

val create_vdisk : t -> nrep:int -> int
(** Ask the Petal cluster to create a virtual disk with [nrep] (1 or
    2) replicas; returns its id. *)

val open_vdisk : t -> int -> vdisk
(** Fetch the disk's metadata from the cluster and return a handle.
    Raises {!Protocol.Unavailable} if no server answers. *)

val id : vdisk -> int
val is_snapshot : vdisk -> bool

val read : vdisk -> off:int -> len:int -> bytes
(** Read [len] bytes at virtual offset [off]; uncommitted space reads
    as zeros. *)

val write : vdisk -> off:int -> bytes -> unit
(** Durable when it returns (both replicas for 2-way disks, modulo
    degraded mode when a replica is down). Raises
    {!Protocol.Read_only} on snapshots. *)

val decommit : vdisk -> off:int -> len:int -> unit
(** Free the physical space backing a chunk-aligned range. *)

val snapshot : vdisk -> int
(** Create a crash-consistent copy-on-write snapshot; returns the
    read-only snapshot disk's id. *)

val set_write_guard : vdisk -> (unit -> int option) -> unit
(** Install the §6 lease guard: the function is called on every write
    and its result travels with the request as an expiration
    timestamp; a Petal server ignores writes that arrive after it
    (raising {!Protocol.Stale_write} back at the client). Frangipani
    sets it to [lease_valid_until - margin] at mount. *)

val op_stats : vdisk -> int * float * int * float
(** [(write_ops, write_seconds, read_ops, read_seconds)] accumulated
    by this driver instance — simulated time spent inside Petal
    operations, for performance debugging. *)
