(** The Paxos instance shared by the lock servers for their
    replicated global state (server list, clerk list, leases). *)

module P = Paxos.Make (struct
  type t = Types.cmd
end)

type stable = P.stable

let stable = P.stable
