lib/locksvc/server.ml: Array Cluster Hashtbl Host List Logs Net Paxos_group Queue Rpc Sim Simkit Types
