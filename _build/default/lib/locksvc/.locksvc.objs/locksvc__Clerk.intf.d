lib/locksvc/clerk.mli: Cluster Simkit Types
