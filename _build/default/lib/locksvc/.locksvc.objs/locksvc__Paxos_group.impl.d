lib/locksvc/paxos_group.ml: Paxos Types
