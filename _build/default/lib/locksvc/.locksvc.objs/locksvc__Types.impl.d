lib/locksvc/types.ml: Cluster Hashtbl List Net Simkit
