lib/locksvc/server.mli: Cluster Paxos_group Types
