lib/locksvc/clerk.ml: Array Cluster Hashtbl Host List Net Queue Rpc Sim Simkit Types
