(** A lock server.

    Serves the lock groups assigned to it by the deterministic rule
    over the Paxos-replicated server list; tracks clerk leases (30 s,
    renewed every 10 s); initiates Frangipani-server recovery when a
    lease expires; recovers lock-group state from the clerks when
    groups are reassigned to it after a membership change. *)

type t

val create :
  host:Cluster.Host.t ->
  rpc:Cluster.Rpc.t ->
  peers:Cluster.Net.addr array ->
  index:int ->
  ?ngroups:int ->
  stable:Paxos_group.stable ->
  unit ->
  t

val host : t -> Cluster.Host.t

val held_locks : t -> (string * int * Types.mode * int) list
(** [(table, lock, mode, lease)] for every holder this server knows,
    in the groups it currently serves. For tests. *)

val lease_count : t -> int
(** Number of live leases this server tracks. For tests. *)

val propose_remove_server : t -> Cluster.Net.addr -> unit
(** Administratively remove a lock server from the service (also
    triggered automatically when heartbeats stop). *)

val propose_add_server : t -> Cluster.Net.addr -> unit
