(** The Modified Andrew Benchmark (Table 1, Figure 5): five phases
    over a small program-development source tree — create the
    directory tree, copy the sources in, walk the tree statting
    everything, read every file, then "compile" (CPU work plus object
    files written back). Phase names follow the paper's figure.

    The source tree models the classic MAB: 70 C files of a few KB
    across a handful of directories, with a compile phase that
    dominates elapsed time. *)

open Simkit

type phase = {
  phase : string;
  seconds : float;
}

type result = { phases : phase list; total : float }

let ndirs = 5
let files_per_dir = 14
let file_size i = 2048 + (i * 997 mod 12288) (* 2–14 KB, deterministic *)
let compile_cpu = Sim.ms 300 (* per source file on the modelled CPU *)

let file_data i =
  let n = file_size i in
  Bytes.init n (fun k -> Char.chr (((k * 31) + i) mod 251))

let timed f =
  let t0 = Sim.now () in
  f ();
  Sim.to_sec (Sim.now () - t0)

(** Run the benchmark under [root_name] (distinct per server in the
    scaling experiment, Figure 5: "independent data sets"). *)
let run (v : Vfs.t) ~root_name =
  let base = v.Vfs.mkdir ~dir:v.Vfs.root root_name in
  let dirs = ref [] in
  let files = ref [] in
  (* Phase 1: create directories. *)
  let t1 =
    timed (fun () ->
        let src = v.Vfs.mkdir ~dir:base "src" in
        for d = 0 to ndirs - 1 do
          dirs := v.Vfs.mkdir ~dir:src (Printf.sprintf "dir%d" d) :: !dirs
        done)
  in
  let dirs = List.rev !dirs in
  (* Phase 2: copy files. *)
  let t2 =
    timed (fun () ->
        List.iteri
          (fun d dir ->
            for f = 0 to files_per_dir - 1 do
              let i = (d * files_per_dir) + f in
              let inum = v.Vfs.create ~dir (Printf.sprintf "f%d.c" f) in
              v.Vfs.write inum ~off:0 (file_data i);
              files := (dir, inum, i) :: !files
            done)
          dirs)
  in
  let files = List.rev !files in
  (* Phase 3: directory status (recursive stat). *)
  let t3 =
    timed (fun () ->
        List.iter
          (fun dir ->
            List.iter (fun (_, inum) -> ignore (v.Vfs.size inum)) (v.Vfs.readdir dir))
          dirs)
  in
  (* Phase 4: scan files (read every byte). *)
  let t4 =
    timed (fun () ->
        List.iter
          (fun (_, inum, _) ->
            let n = v.Vfs.size inum in
            ignore (v.Vfs.read inum ~off:0 ~len:n))
          files)
  in
  (* Phase 5: compile — CPU work per source file plus a .o written. *)
  let t5 =
    timed (fun () ->
        List.iter
          (fun (dir, inum, i) ->
            let n = v.Vfs.size inum in
            ignore (v.Vfs.read inum ~off:0 ~len:n);
            Cluster.Host.consume v.Vfs.host compile_cpu;
            let o = v.Vfs.create ~dir (Printf.sprintf "o%d.o" i) in
            v.Vfs.write o ~off:0 (Bytes.make (n * 3 / 2) 'O'))
          files)
  in
  {
    phases =
      [
        { phase = "Create Directories"; seconds = t1 };
        { phase = "Copy Files"; seconds = t2 };
        { phase = "Directory Status"; seconds = t3 };
        { phase = "Scan Files"; seconds = t4 };
        { phase = "Compile"; seconds = t5 };
      ];
    total = t1 +. t2 +. t3 +. t4 +. t5;
  }
