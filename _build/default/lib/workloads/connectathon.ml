(** A Connectathon-style basic operations suite (the paper's Table 2
    benchmark): each row exercises one class of file-system call many
    times and reports its elapsed time. *)

open Simkit

type row = { test : string; ops : int; seconds : float }

let nfiles = 50
let tree_depth = 4

let timed f =
  let t0 = Sim.now () in
  let ops = f () in
  (ops, Sim.to_sec (Sim.now () - t0))

let run (v : Vfs.t) ~root_name =
  let base = v.Vfs.mkdir ~dir:v.Vfs.root root_name in
  let rows = ref [] in
  let record test (ops, seconds) = rows := { test; ops; seconds } :: !rows in

  (* 1: file and directory creation. *)
  let dirs = ref [ base ] in
  record "create"
    (timed (fun () ->
         let d = ref base in
         for lvl = 0 to tree_depth - 1 do
           d := v.Vfs.mkdir ~dir:!d (Printf.sprintf "d%d" lvl);
           dirs := !d :: !dirs
         done;
         for i = 0 to nfiles - 1 do
           ignore (v.Vfs.create ~dir:base (Printf.sprintf "c%d" i))
         done;
         nfiles + tree_depth));
  (* 2: removal. *)
  record "remove"
    (timed (fun () ->
         for i = 0 to nfiles - 1 do
           v.Vfs.unlink ~dir:base (Printf.sprintf "c%d" i)
         done;
         nfiles));
  (* 3: lookups across the tree. *)
  let f0 = v.Vfs.create ~dir:base "target" in
  record "lookup"
    (timed (fun () ->
         for _ = 1 to 100 do
           ignore (v.Vfs.lookup ~dir:base "target")
         done;
         100));
  (* 4: getattr/setattr. *)
  record "getattr/setattr"
    (timed (fun () ->
         for i = 1 to 50 do
           ignore (v.Vfs.size f0);
           v.Vfs.truncate f0 ~size:(i * 16)
         done;
         100));
  (* 5: write a 1 MB file durably. *)
  let big = v.Vfs.create ~dir:base "big" in
  let chunk = Bytes.make 8192 'w' in
  record "write 1MB + fsync"
    (timed (fun () ->
         for i = 0 to 127 do
           v.Vfs.write big ~off:(i * 8192) chunk
         done;
         v.Vfs.fsync big;
         128));
  (* 6: read it back, uncached. *)
  record "read 1MB uncached"
    (timed (fun () ->
         v.Vfs.drop_caches ();
         for i = 0 to 127 do
           ignore (v.Vfs.read big ~off:(i * 8192) ~len:8192)
         done;
         128));
  (* 7: readdir. *)
  record "readdir"
    (timed (fun () ->
         for _ = 1 to 50 do
           ignore (v.Vfs.readdir base)
         done;
         50));
  (* 8: rename and link. *)
  record "rename+link"
    (timed (fun () ->
         for i = 0 to 24 do
           let n = Printf.sprintf "r%d" i in
           ignore (v.Vfs.create ~dir:base n);
           v.Vfs.rename ~sdir:base n ~ddir:base (n ^ ".renamed");
           v.Vfs.link ~dir:base (n ^ ".lnk")
             ~inum:(v.Vfs.lookup ~dir:base (n ^ ".renamed"))
         done;
         75));
  (* 9: symlink and readlink. *)
  record "symlink+readlink"
    (timed (fun () ->
         for i = 0 to 24 do
           let n = Printf.sprintf "s%d" i in
           ignore (v.Vfs.symlink ~dir:base n ~target:"/some/where/else");
           ignore (v.Vfs.readlink (v.Vfs.lookup ~dir:base n))
         done;
         50));
  List.rev !rows
