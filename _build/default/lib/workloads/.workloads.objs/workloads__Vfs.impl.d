lib/workloads/vfs.ml: Advfs Cluster Frangipani Fs
