lib/workloads/largefile.ml: Bytes Cluster List Printf Sim Simkit Vfs
