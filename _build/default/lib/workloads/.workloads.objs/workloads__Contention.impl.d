lib/workloads/contention.ml: Bytes Char List Sim Simkit Vfs
