lib/workloads/testbed.mli: Cluster Frangipani Locksvc Petal
