lib/workloads/andrew.ml: Bytes Char Cluster List Printf Sim Simkit Vfs
