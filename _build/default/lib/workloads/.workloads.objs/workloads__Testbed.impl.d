lib/workloads/testbed.ml: Array Cluster Frangipani Host List Locksvc Net Petal Printf Rpc
