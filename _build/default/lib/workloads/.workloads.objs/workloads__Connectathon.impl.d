lib/workloads/connectathon.ml: Bytes List Printf Sim Simkit Vfs
