(** Lock-contention experiments (§9.4, Figures 8 and 9, and the
    write/write sharing experiment).

    One or more readers stream a shared file while a writer keeps
    rewriting some amount of it; every rewrite forces a write-lock
    upgrade at the writer and a cache invalidation at the readers, so
    the whole-file lock ping-pongs. Read-ahead makes it worse: data
    prefetched but not yet delivered is discarded on revoke, and the
    wasted disk work slows the readers' lock re-requests —
    reproducing Figure 8's flattening. *)

open Simkit

type result = {
  readers : int;
  read_mb_per_s : float;  (** aggregate across readers *)
  write_mb_per_s : float;
}

let file_mb = 1

(** [readers_vs_writer] runs [nreaders] servers reading the shared
    file sequentially while one server rewrites [write_bytes] of it,
    for [duration] of simulated time. [vfss] supplies one mount per
    participant (readers first, then the writer). *)
let readers_vs_writer ~(reader_vfss : Vfs.t list) ~(writer_vfs : Vfs.t)
    ~write_bytes ~duration =
  let setup = writer_vfs in
  let inum = setup.Vfs.create ~dir:setup.Vfs.root "shared" in
  let unit = 65536 in
  let units = file_mb * 1024 * 1024 / unit in
  let data = Bytes.make unit 'x' in
  for i = 0 to units - 1 do
    setup.Vfs.write inum ~off:(i * unit) data
  done;
  setup.Vfs.sync ();
  let stop = ref false in
  let read_bytes = ref 0 and written_bytes = ref 0 in
  (* The writer rewrites the first [write_bytes] over and over. *)
  Sim.spawn (fun () ->
      let wdata = Bytes.make (min write_bytes (1 lsl 20)) 'w' in
      let rec loop () =
        if not !stop then begin
          let rec put off =
            if off < write_bytes then begin
              let n = min (Bytes.length wdata) (write_bytes - off) in
              writer_vfs.Vfs.write inum ~off (Bytes.sub wdata 0 n);
              put (off + n)
            end
          in
          put 0;
          written_bytes := !written_bytes + write_bytes;
          loop ()
        end
      in
      try loop () with _ -> ());
  (* Readers stream the file in 64 KB units, forever. *)
  List.iter
    (fun (rv : Vfs.t) ->
      Sim.spawn (fun () ->
          let rinum = rv.Vfs.lookup ~dir:rv.Vfs.root "shared" in
          let rec loop i =
            if not !stop then begin
              let off = i mod units * unit in
              let got = rv.Vfs.read rinum ~off ~len:unit in
              read_bytes := !read_bytes + Bytes.length got;
              loop (i + 1)
            end
          in
          try loop 0 with _ -> ()))
    reader_vfss;
  Sim.sleep duration;
  stop := true;
  let secs = Sim.to_sec duration in
  {
    readers = List.length reader_vfss;
    read_mb_per_s = float_of_int !read_bytes /. 1e6 /. secs;
    write_mb_per_s = float_of_int !written_bytes /. 1e6 /. secs;
  }

(** Write/write sharing (§9.4's third experiment): [n] servers all
    rewriting disjoint 64 KB regions of one file — every write still
    fights for the single whole-file lock. *)
let writers_sharing ~(writer_vfss : Vfs.t list) ~duration =
  let setup = List.hd writer_vfss in
  let inum = setup.Vfs.create ~dir:setup.Vfs.root "wshared" in
  let unit = 65536 in
  setup.Vfs.write inum ~off:0 (Bytes.make (unit * List.length writer_vfss) 'i');
  setup.Vfs.sync ();
  let stop = ref false in
  let written = ref 0 in
  List.iteri
    (fun k (wv : Vfs.t) ->
      Sim.spawn (fun () ->
          let winum = wv.Vfs.lookup ~dir:wv.Vfs.root "wshared" in
          let data = Bytes.make unit (Char.chr (65 + k)) in
          let rec loop () =
            if not !stop then begin
              wv.Vfs.write winum ~off:(k * unit) data;
              written := !written + unit;
              loop ()
            end
          in
          try loop () with _ -> ()))
    writer_vfss;
  Sim.sleep duration;
  stop := true;
  float_of_int !written /. 1e6 /. Sim.to_sec duration
