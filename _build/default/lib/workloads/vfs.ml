(** A file-system-neutral operations record, so every workload runs
    unchanged against Frangipani and the AdvFS baseline (the paper's
    Tables 1–3 compare exactly these two). *)

type t = {
  name : string;
  host : Cluster.Host.t;
  root : int;
  create : dir:int -> string -> int;
  mkdir : dir:int -> string -> int;
  symlink : dir:int -> string -> target:string -> int;
  lookup : dir:int -> string -> int;
  readdir : int -> (string * int) list;
  readlink : int -> string;
  link : dir:int -> string -> inum:int -> unit;
  unlink : dir:int -> string -> unit;
  rmdir : dir:int -> string -> unit;
  rename : sdir:int -> string -> ddir:int -> string -> unit;
  read : int -> off:int -> len:int -> bytes;
  write : int -> off:int -> bytes -> unit;
  truncate : int -> size:int -> unit;
  size : int -> int;
  fsync : int -> unit;
  sync : unit -> unit;
  drop_caches : unit -> unit;
}

let of_frangipani (fs : Frangipani.Fs.t) =
  let open Frangipani in
  {
    name = "frangipani";
    host = Fs.host fs;
    root = Fs.root;
    create = (fun ~dir name -> Fs.create fs ~dir name);
    mkdir = (fun ~dir name -> Fs.mkdir fs ~dir name);
    symlink = (fun ~dir name ~target -> Fs.symlink fs ~dir name ~target);
    lookup = (fun ~dir name -> Fs.lookup fs ~dir name);
    readdir = (fun d -> Fs.readdir fs d);
    readlink = (fun i -> Fs.readlink fs i);
    link = (fun ~dir name ~inum -> Fs.link fs ~dir name ~inum);
    unlink = (fun ~dir name -> Fs.unlink fs ~dir name);
    rmdir = (fun ~dir name -> Fs.rmdir fs ~dir name);
    rename = (fun ~sdir sname ~ddir dname -> Fs.rename fs ~sdir sname ~ddir dname);
    read = (fun i ~off ~len -> Fs.read fs i ~off ~len);
    write = (fun i ~off data -> Fs.write fs i ~off data);
    truncate = (fun i ~size -> Fs.truncate fs i ~size);
    size = (fun i -> (Fs.stat fs i).Fs.size);
    fsync = (fun i -> Fs.fsync fs i);
    sync = (fun () -> Fs.sync fs);
    drop_caches = (fun () -> Fs.drop_caches fs);
  }

let of_advfs (fs : Advfs.t) =
  {
    name = "advfs";
    host = Advfs.host fs;
    root = Advfs.root;
    create = (fun ~dir name -> Advfs.create_file fs ~dir name);
    mkdir = (fun ~dir name -> Advfs.mkdir fs ~dir name);
    symlink = (fun ~dir name ~target -> Advfs.symlink fs ~dir name ~target);
    lookup = (fun ~dir name -> Advfs.lookup fs ~dir name);
    readdir = (fun d -> Advfs.readdir fs d);
    readlink = (fun i -> Advfs.readlink fs i);
    link = (fun ~dir name ~inum -> Advfs.link fs ~dir name ~inum);
    unlink = (fun ~dir name -> Advfs.unlink fs ~dir name);
    rmdir = (fun ~dir name -> Advfs.rmdir fs ~dir name);
    rename = (fun ~sdir sname ~ddir dname -> Advfs.rename fs ~sdir sname ~ddir dname);
    read = (fun i ~off ~len -> Advfs.read fs i ~off ~len);
    write = (fun i ~off data -> Advfs.write fs i ~off data);
    truncate = (fun i ~size -> Advfs.truncate fs i ~size);
    size = (fun i -> Advfs.size fs i);
    fsync = (fun i -> Advfs.fsync fs i);
    sync = (fun () -> Advfs.sync fs);
    drop_caches = (fun () -> Advfs.drop_caches fs);
  }
