(** Large-file sequential I/O (Table 3, Figures 6 and 7): stream a
    big file in 64 KB units and report throughput and the host CPU
    utilisation over the transfer. *)

open Simkit

type result = { mb_per_s : float; cpu_utilization : float; seconds : float }

let unit_bytes = 65536

let measure host f =
  Sim.Resource.reset_stats (Cluster.Host.cpu host);
  let t0 = Sim.now () in
  let bytes = f () in
  let dt = Sim.to_sec (Sim.now () - t0) in
  {
    mb_per_s = (if dt > 0.0 then float_of_int bytes /. 1e6 /. dt else 0.0);
    cpu_utilization = Sim.Resource.utilization (Cluster.Host.cpu host);
    seconds = dt;
  }

(** Sequentially write an [mb]-megabyte file named [name] (syncing at
    the end, so the cache drains into the measurement). *)
let write_seq (v : Vfs.t) ~name ~mb =
  let inum = v.Vfs.create ~dir:v.Vfs.root name in
  let data = Bytes.make unit_bytes 'D' in
  measure v.Vfs.host (fun () ->
      let units = mb * 1024 * 1024 / unit_bytes in
      for i = 0 to units - 1 do
        v.Vfs.write inum ~off:(i * unit_bytes) data
      done;
      v.Vfs.sync ();
      units * unit_bytes)

(** Sequentially read the file back after dropping caches. *)
let read_seq (v : Vfs.t) ~name =
  let inum = v.Vfs.lookup ~dir:v.Vfs.root name in
  let total = v.Vfs.size inum in
  v.Vfs.drop_caches ();
  measure v.Vfs.host (fun () ->
      let units = total / unit_bytes in
      for i = 0 to units - 1 do
        ignore (v.Vfs.read inum ~off:(i * unit_bytes) ~len:unit_bytes)
      done;
      units * unit_bytes)

(** Many small uncached reads from one machine (the paper's 30
    processes reading separate 8 KB files). *)
let small_reads (v : Vfs.t) ~nfiles =
  let files =
    List.init nfiles (fun i ->
        let inum = v.Vfs.create ~dir:v.Vfs.root (Printf.sprintf "small%d" i) in
        v.Vfs.write inum ~off:0 (Bytes.make 8192 's');
        inum)
  in
  v.Vfs.sync ();
  v.Vfs.drop_caches ();
  measure v.Vfs.host (fun () ->
      let pending = ref (List.length files) in
      let all = Sim.Ivar.create () in
      List.iter
        (fun inum ->
          Sim.spawn (fun () ->
              ignore (v.Vfs.read inum ~off:0 ~len:8192);
              decr pending;
              if !pending = 0 then Sim.Ivar.fill all ()))
        files;
      Sim.Ivar.read all;
      nfiles * 8192)
