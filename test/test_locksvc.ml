open Simkit
open Cluster
open Locksvc

let mode = Alcotest.testable (fun fmt (m : Types.mode) ->
    Format.pp_print_string fmt (match m with Types.R -> "R" | Types.W -> "W"))
    ( = )

type bed = {
  net : Net.t;
  shosts : Host.t array;
  lsrv : Server.t array;
  saddrs : Net.addr array;
}

let mkservice ?(nservers = 3) ?(ngroups = 16) () =
  let net = Net.create () in
  let shosts = Array.init nservers (fun i -> Host.create (Printf.sprintf "ls%d" i)) in
  let rpcs = Array.map (fun h -> Rpc.create (Net.attach net h)) shosts in
  let saddrs = Array.map Rpc.addr rpcs in
  let lsrv =
    Array.init nservers (fun i ->
        Server.create ~host:shosts.(i) ~rpc:rpcs.(i) ~peers:saddrs ~index:i ~ngroups
          ~stable:(Paxos_group.stable ()) ())
  in
  { net; shosts; lsrv; saddrs }

let mkclerk bed name =
  let h = Host.create name in
  let rpc = Rpc.create (Net.attach bed.net h) in
  let c = Clerk.create ~rpc ~servers:bed.saddrs ~table:"fs0" () in
  (h, c)

let test_acquire_release_sticky () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, c = mkclerk bed "f0" in
      Clerk.acquire c ~lock:7 Types.W;
      Alcotest.(check (option mode)) "held W" (Some Types.W) (Clerk.holds c ~lock:7);
      Clerk.release c ~lock:7 Types.W;
      (* Sticky: still cached after release. *)
      Alcotest.(check (option mode)) "sticky" (Some Types.W) (Clerk.holds c ~lock:7);
      (* Re-acquire must be instantaneous (no server round trip). *)
      let t0 = Sim.now () in
      Clerk.acquire c ~lock:7 Types.W;
      Alcotest.(check int) "local re-acquire" t0 (Sim.now ());
      Clerk.release c ~lock:7 Types.W)

let test_conflict_revokes () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, c1 = mkclerk bed "f1" in
      let _, c2 = mkclerk bed "f2" in
      let flushed = ref false in
      Clerk.set_callbacks c1
        ~on_revoke:(fun ~lock ~to_read ->
          if lock = 9 && not to_read then flushed := true)
        ~on_do_recovery:(fun ~dead_lease:_ -> ())
        ~on_expired:(fun () -> ());
      Clerk.acquire c1 ~lock:9 Types.W;
      Clerk.release c1 ~lock:9 Types.W;
      (* c2 wants the same lock: c1 must be revoked (flush ran), then
         c2 granted. *)
      Clerk.acquire c2 ~lock:9 Types.W;
      Alcotest.(check bool) "flush callback ran" true !flushed;
      Alcotest.(check (option mode)) "c1 dropped" None (Clerk.holds c1 ~lock:9);
      Alcotest.(check (option mode)) "c2 holds" (Some Types.W) (Clerk.holds c2 ~lock:9))

let test_read_sharing () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, c1 = mkclerk bed "f1" in
      let _, c2 = mkclerk bed "f2" in
      Clerk.acquire c1 ~lock:3 Types.R;
      Clerk.acquire c2 ~lock:3 Types.R;
      Alcotest.(check (option mode)) "c1 R" (Some Types.R) (Clerk.holds c1 ~lock:3);
      Alcotest.(check (option mode)) "c2 R" (Some Types.R) (Clerk.holds c2 ~lock:3))

let test_downgrade () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, cw = mkclerk bed "w" in
      let _, cr = mkclerk bed "r" in
      let downgraded = ref false in
      Clerk.set_callbacks cw
        ~on_revoke:(fun ~lock:_ ~to_read -> if to_read then downgraded := true)
        ~on_do_recovery:(fun ~dead_lease:_ -> ())
        ~on_expired:(fun () -> ());
      Clerk.acquire cw ~lock:5 Types.W;
      Clerk.release cw ~lock:5 Types.W;
      (* A reader forces only a downgrade: writer keeps R. *)
      Clerk.acquire cr ~lock:5 Types.R;
      Alcotest.(check bool) "downgrade callback" true !downgraded;
      Alcotest.(check (option mode)) "writer downgraded" (Some Types.R)
        (Clerk.holds cw ~lock:5);
      Alcotest.(check (option mode)) "reader holds" (Some Types.R)
        (Clerk.holds cr ~lock:5))

let test_local_mrsw () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, c = mkclerk bed "f" in
      Clerk.acquire c ~lock:1 Types.W;
      (* A second local writer must wait for the first. *)
      let second_done = ref (-1) in
      Sim.spawn (fun () ->
          Clerk.acquire c ~lock:1 Types.W;
          second_done := Sim.now ();
          Clerk.release c ~lock:1 Types.W);
      Sim.sleep (Sim.ms 50);
      Alcotest.(check int) "second writer blocked" (-1) !second_done;
      Clerk.release c ~lock:1 Types.W;
      Sim.sleep (Sim.ms 1);
      Alcotest.(check bool) "second writer ran" true (!second_done >= 0))

let test_upgrade_via_release () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, c = mkclerk bed "f" in
      Clerk.acquire c ~lock:2 Types.R;
      Clerk.release c ~lock:2 Types.R;
      (* W after cached R: clerk must release and re-request. *)
      Clerk.acquire c ~lock:2 Types.W;
      Alcotest.(check (option mode)) "upgraded" (Some Types.W) (Clerk.holds c ~lock:2);
      Clerk.release c ~lock:2 Types.W)

let test_lease_expiry_triggers_recovery () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let h1, c1 = mkclerk bed "victim" in
      let _, c2 = mkclerk bed "survivor" in
      let recovered = Sim.Ivar.create () in
      Clerk.set_callbacks c2
        ~on_revoke:(fun ~lock:_ ~to_read:_ -> ())
        ~on_do_recovery:(fun ~dead_lease ->
          (* The recovery demon seizes the victim's lock (its "log"). *)
          Clerk.acquire_for_recovery c2 ~lock:100;
          Clerk.release c2 ~lock:100 Types.W;
          if not (Sim.Ivar.is_filled recovered) then Sim.Ivar.fill recovered dead_lease)
        ~on_expired:(fun () -> ());
      Clerk.acquire c1 ~lock:100 Types.W;
      let victim_lease = Clerk.lease c1 in
      Host.crash h1;
      let dead = Sim.Ivar.read recovered in
      Alcotest.(check int) "recovered the victim's lease" victim_lease dead;
      (* After recovery the victim's locks are released: c2 can take
         lock 100 normally. *)
      Clerk.acquire c2 ~lock:100 Types.W;
      Alcotest.(check (option mode)) "survivor holds" (Some Types.W)
        (Clerk.holds c2 ~lock:100))

let test_partitioned_clerk_expires () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let h, c = mkclerk bed "isolated" in
      let expired = ref false in
      Clerk.set_callbacks c
        ~on_revoke:(fun ~lock:_ ~to_read:_ -> ())
        ~on_do_recovery:(fun ~dead_lease:_ -> ())
        ~on_expired:(fun () -> expired := true);
      Clerk.acquire c ~lock:4 Types.W;
      Clerk.release c ~lock:4 Types.W;
      (* Cut the clerk's host off from everything. *)
      let addr_of h = h in
      ignore addr_of;
      let isolated = ref true in
      let my = Host.name h in
      ignore my;
      Net.set_reachable bed.net (fun s d ->
          not (!isolated && (s = 3 || d = 3)));
      (* clerk host was attached 4th (after 3 servers) => addr 3 *)
      Sim.sleep (Sim.sec 45.0);
      Alcotest.(check bool) "clerk expired itself" true !expired;
      Alcotest.(check bool) "locks discarded" true (Clerk.holds c ~lock:4 = None);
      (try
         Clerk.acquire c ~lock:4 Types.W;
         Alcotest.fail "expected Lease_expired"
       with Types.Lease_expired -> ()))

let test_renewal_drops_until_expiry () =
  (* Nemesis flavour of the partition test: every renewal is dropped
     by the fault layer until the lease lapses; the clerk must notice
     the misses, expire, and after a heal a fresh clerk proceeds. *)
  Sim.run (fun () ->
      let bed = mkservice () in
      let nf = Netfault.create bed.net in
      let h, c = mkclerk bed "nemesed" in
      ignore h;
      let expired = ref false in
      Clerk.set_callbacks c
        ~on_revoke:(fun ~lock:_ ~to_read:_ -> ())
        ~on_do_recovery:(fun ~dead_lease:_ -> ())
        ~on_expired:(fun () -> expired := true);
      Clerk.acquire c ~lock:11 Types.W;
      Clerk.release c ~lock:11 Types.W;
      Netfault.isolate nf 3 (* the clerk: attached after the 3 servers *);
      Sim.sleep (Sim.sec 45.0);
      Alcotest.(check bool) "expired under sustained drops" true !expired;
      let s = Clerk.stats c in
      Alcotest.(check bool) "renewal misses counted" true
        (s.Clerk.renew_misses > 0);
      Netfault.heal_all nf;
      let _, c2 = mkclerk bed "fresh" in
      Clerk.acquire c2 ~lock:11 Types.W;
      Alcotest.(check (option mode)) "fresh clerk acquires after heal"
        (Some Types.W) (Clerk.holds c2 ~lock:11))

let test_lock_server_crash_reassignment () =
  Sim.run (fun () ->
      let bed = mkservice ~nservers:3 () in
      let _, c1 = mkclerk bed "f1" in
      let _, c2 = mkclerk bed "f2" in
      (* Hold a bunch of locks so some live on the server we crash. *)
      for l = 0 to 19 do
        Clerk.acquire c1 ~lock:l Types.W;
        Clerk.release c1 ~lock:l Types.W
      done;
      Host.crash bed.shosts.(2);
      (* Membership change + group reassignment takes a few heartbeats. *)
      Sim.sleep (Sim.sec 20.0);
      (* All locks must still be revocable and transferable. *)
      for l = 0 to 19 do
        Clerk.acquire c2 ~lock:l Types.W;
        Alcotest.(check (option mode))
          (Printf.sprintf "lock %d transferred" l)
          (Some Types.W) (Clerk.holds c2 ~lock:l);
        Clerk.release c2 ~lock:l Types.W
      done)

let test_fairness_batched_readers () =
  Sim.run (fun () ->
      let bed = mkservice () in
      let _, cw = mkclerk bed "w" in
      let _, cr1 = mkclerk bed "r1" in
      let _, cr2 = mkclerk bed "r2" in
      Clerk.acquire cw ~lock:6 Types.W;
      let granted = ref [] in
      let reader name c =
        Sim.spawn (fun () ->
            Clerk.acquire c ~lock:6 Types.R;
            granted := (name, Sim.now ()) :: !granted)
      in
      reader "r1" cr1;
      reader "r2" cr2;
      Sim.sleep (Sim.sec 1.0);
      Alcotest.(check (list string)) "no grant while writer active" []
        (List.map fst !granted);
      Clerk.release cw ~lock:6 Types.W;
      Sim.sleep (Sim.sec 5.0);
      (* Both readers granted, and both in the same revoke round. *)
      match List.sort compare !granted with
      | [ ("r1", t1); ("r2", t2) ] ->
        Alcotest.(check bool) "batched" true (abs (t1 - t2) < Sim.ms 200)
      | g -> Alcotest.fail (Printf.sprintf "got %d grants" (List.length g)))

let prop_no_conflicting_holders =
  QCheck.Test.make ~name:"never two conflicting global holders" ~count:10
    QCheck.(int_range 0 10000)
    (fun seed ->
      Sim.run ~seed (fun () ->
          let bed = mkservice () in
          let clerks =
            Array.init 4 (fun i -> snd (mkclerk bed (Printf.sprintf "f%d" i)))
          in
          let violation = ref false in
          let check_invariant lock =
            let holders =
              Array.to_list clerks
              |> List.filter_map (fun c -> Clerk.holds c ~lock)
            in
            let writers = List.length (List.filter (( = ) Types.W) holders) in
            if writers > 1 || (writers = 1 && List.length holders > 1) then
              violation := true
          in
          let pending = ref 12 in
          let all = Sim.Ivar.create () in
          for k = 0 to 11 do
            Sim.spawn (fun () ->
                Sim.sleep (Sim.random_int (Sim.sec 2.0));
                let c = clerks.(k mod 4) in
                let lock = Sim.random_int 3 in
                let m = if Sim.random_int 2 = 0 then Types.R else Types.W in
                Clerk.acquire c ~lock m;
                check_invariant lock;
                Sim.sleep (Sim.random_int (Sim.ms 100));
                check_invariant lock;
                Clerk.release c ~lock m;
                decr pending;
                if !pending = 0 then Sim.Ivar.fill all ())
          done;
          Sim.Ivar.read all;
          not !violation))

let () =
  Alcotest.run "locksvc"
    [
      ( "basic",
        [
          Alcotest.test_case "acquire/release sticky" `Quick test_acquire_release_sticky;
          Alcotest.test_case "conflict revokes" `Quick test_conflict_revokes;
          Alcotest.test_case "read sharing" `Quick test_read_sharing;
          Alcotest.test_case "downgrade" `Quick test_downgrade;
          Alcotest.test_case "local MRSW" `Quick test_local_mrsw;
          Alcotest.test_case "upgrade via release" `Quick test_upgrade_via_release;
          Alcotest.test_case "fair batched readers" `Quick test_fairness_batched_readers;
        ] );
      ( "failures",
        [
          Alcotest.test_case "lease expiry -> recovery" `Quick
            test_lease_expiry_triggers_recovery;
          Alcotest.test_case "partitioned clerk expires" `Quick
            test_partitioned_clerk_expires;
          Alcotest.test_case "renewals dropped until expiry" `Quick
            test_renewal_drops_until_expiry;
          Alcotest.test_case "lock server crash reassigns" `Quick
            test_lock_server_crash_reassignment;
        ] );
      ("safety", [ QCheck_alcotest.to_alcotest prop_no_conflicting_holders ]);
    ]
