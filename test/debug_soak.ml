(* Replay driver for the soak harness: re-runs any schedule
   bit-identically from its label or seed and dumps the orchestrator
   timeline, the first violated invariant and the full failure list.

     dune exec test/debug_soak.exe -- hot_cutover
     dune exec test/debug_soak.exe -- 17 --duration 1200 --servers 16
     dune exec test/debug_soak.exe -- 3 --timeline *)

module Soak = Workloads.Soak
module Sim = Simkit.Sim

let () =
  let duration = ref 0.0 and servers = ref 0 and show_timeline = ref false in
  let spec = ref None in
  Arg.parse
    [
      ("--duration", Arg.Set_float duration, "S  simulated seconds (random specs; default 3600)");
      ("--servers", Arg.Set_int servers, "N  Frangipani server count override");
      ("--timeline", Arg.Set show_timeline, "  dump the full orchestrator timeline");
    ]
    (fun a ->
      spec :=
        Some
          (if String.length a > 0 && a.[0] >= '0' && a.[0] <= '9' then
             Soak.Random (int_of_string a)
           else Soak.Scripted a))
    "debug_soak (label | seed) [--duration S] [--servers N] [--timeline]";
  let spec =
    match !spec with
    | Some sp -> sp
    | None ->
      prerr_endline "usage: debug_soak (label | seed)";
      exit 2
  in
  let o =
    Soak.run
      ?duration:(if !duration > 0.0 then Some (Sim.sec !duration) else None)
      ?fs_servers:(if !servers > 0 then Some !servers else None)
      spec
  in
  Printf.printf
    "label=%s sim_hours=%.2f acked=%d failed=%d expired=%d crashed=%d\n"
    o.Soak.label o.Soak.sim_hours o.Soak.acked o.Soak.failed_ops
    o.Soak.expired_servers o.Soak.crashed_fs;
  Printf.printf
    "reconf: req=%d com=%d rejected=%d  cutover max=%.1fs (bound %.1fs)\n"
    o.Soak.requested o.Soak.committed o.Soak.reconf_rejected
    (Sim.to_sec o.Soak.max_cutover_ns)
    (Sim.to_sec o.Soak.cutover_bound_ns);
  Printf.printf
    "freeze: rejects=%d waits=%d  raw: errors=%d ok=%b waits=%d hot_writes=%d\n"
    o.Soak.freeze_rejects o.Soak.freeze_waits o.Soak.raw_errors o.Soak.raw_ok
    o.Soak.raw_freeze_waits o.Soak.hot_writes;
  Printf.printf
    "snapshots: ok=%d rejected=%d deleted=%d  pressure_stalls=%d replays=%d\n"
    o.Soak.snapshots_ok o.Soak.snap_rejected o.Soak.snapshots_deleted
    o.Soak.log_pressure_stalls o.Soak.replays;
  Printf.printf
    "ambient: ops=%d failed=%d  checks=%d degraded=%d leftover=%d pending=%b end=%d\n"
    o.Soak.ambient_ops o.Soak.ambient_failed o.Soak.checks_run
    o.Soak.degraded_left o.Soak.leftover_chunks o.Soak.pending_left
    o.Soak.end_ns;
  if !show_timeline then begin
    print_endline "timeline:";
    List.iter
      (fun (at, m) -> Printf.printf "  %8.1fs  %s\n" (Sim.to_sec at) m)
      o.Soak.timeline
  end;
  (match o.Soak.violations with
  | [] -> ()
  | (at, m) :: _ as vs ->
    Printf.printf "first violated invariant (t=%.1fs): %s\n" (Sim.to_sec at) m;
    Printf.printf "violations (%d):\n" (List.length vs);
    List.iter
      (fun (at, m) -> Printf.printf "  %8.1fs  %s\n" (Sim.to_sec at) m)
      vs);
  match Soak.failures o with
  | [] -> print_endline "CLEAN"
  | fs ->
    List.iter (Printf.printf "FAIL: %s\n") fs;
    exit 1
