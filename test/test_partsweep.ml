(* The network-nemesis partition sweep: a bounded subset of the
   scripted + seeded schedules (the full 200-schedule sweep is
   test_partsweep_full.exe), plus the determinism contract — the same
   spec must replay bit-identically, or a seed in a failure report
   would be unreproducible. *)

module Sweep = Workloads.Partsweep

let check_clean what (o : Sweep.outcome) =
  Alcotest.(check (list string)) what [] (Sweep.failures o)

(* The scripted scenarios most likely to regress: a full isolation
   that forces the §6 expiry path, a brief one that must NOT, the
   asymmetric cut that makes request retransmission dangerous
   (requests execute, replies vanish), and a replica-set split that
   leaves a resync backlog. *)
let test_scripted_subset () =
  let o = Sweep.run (Sweep.Scripted "isolate_server") in
  check_clean "isolate_server" o;
  Alcotest.(check bool) "45 s isolation expires the lease" true
    o.Sweep.expired;
  Alcotest.(check bool)
    (Printf.sprintf "renewals were missed (got %d)" o.Sweep.renew_misses)
    true
    (o.Sweep.renew_misses > 0);
  let o = Sweep.run (Sweep.Scripted "isolate_brief") in
  check_clean "isolate_brief" o;
  Alcotest.(check bool) "10 s outage stays inside the lease" false
    o.Sweep.expired;
  let o = Sweep.run (Sweep.Scripted "oneway_from_petal0") in
  check_clean "oneway_from_petal0" o;
  let o = Sweep.run (Sweep.Scripted "split_petal") in
  check_clean "split_petal" o

(* A lossy network exercises the retry path end to end: drops must
   show up in the nemesis counters and retries in the RPC counters,
   and everything still lands. *)
let test_lossy () =
  let o = Sweep.run (Sweep.Scripted "lossy") in
  check_clean "lossy" o;
  Alcotest.(check bool)
    (Printf.sprintf "nemesis dropped messages (got %d)" o.Sweep.nf.Cluster.Netfault.loss_drops)
    true
    (o.Sweep.nf.Cluster.Netfault.loss_drops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "rpc layer retried (got %d)" o.Sweep.rpc_retries)
    true
    (o.Sweep.rpc_retries > 0)

(* Same spec, twice: every field of the outcome — including the
   simulated end time and the nemesis counters — must match. *)
let test_deterministic_replay () =
  let o = Sweep.run (Sweep.Scripted "flap") in
  check_clean "flap" o;
  let o' = Sweep.run (Sweep.Scripted "flap") in
  Alcotest.(check bool) "scripted replay is bit-identical" true (o = o');
  let r = Sweep.run (Sweep.Random 7) in
  let r' = Sweep.run (Sweep.Random 7) in
  Alcotest.(check bool) "seeded replay is bit-identical" true (r = r')

let test_random_seeds () =
  List.iter
    (fun n ->
      check_clean (Printf.sprintf "random_%d" n) (Sweep.run (Sweep.Random n)))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "partsweep"
    [
      ( "sweep",
        [
          Alcotest.test_case "scripted subset" `Quick test_scripted_subset;
          Alcotest.test_case "lossy network, retries" `Quick test_lossy;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "seeded schedules" `Quick test_random_seeds;
        ] );
    ]
