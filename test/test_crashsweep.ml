(* The deterministic crash-point fault-injection harness: a bounded
   subset of the recovery sweep (the exhaustive sweep over every
   registered crash point is test_crashsweep_full.exe), plus directed
   tests for racing recoveries and a replay that aborts mid-way. *)

open Simkit
open Frangipani
module T = Workloads.Testbed
module Sweep = Workloads.Crashsweep

let check_clean what (o : Sweep.outcome) =
  Alcotest.(check (list string)) what [] (Sweep.failures o)

let test_counting_run_deterministic () =
  let o = Sweep.run () in
  check_clean "no-crash run is clean" o;
  Alcotest.(check bool)
    (Printf.sprintf "sweep has >= 50 crash points (got %d)" o.Sweep.total_hits)
    true
    (o.Sweep.total_hits >= 50);
  (* The whole point of the harness: the same seed must produce the
     same faultpoint schedule, or "crash at hit k" means nothing. *)
  let o' = Sweep.run () in
  Alcotest.(check int) "hit total is deterministic" o.Sweep.total_hits
    o'.Sweep.total_hits;
  Alcotest.(check bool) "per-site counts are deterministic" true
    (o.Sweep.sites = o'.Sweep.sites)

(* Replay-drift guard for the zero-copy data path: RPC payloads are
   now shared slices and ownership-transfer writes may alias the
   sender's buffer, so any accidental mutation-after-send would show
   up as schedule divergence between two runs of the same seed. The
   guard demands not just an equal outcome record but a bit-identical
   event trace, proxied by the engine's exact event/spawn/skip
   counters — one stray event and they differ. *)
let test_replay_drift_guard () =
  let n = (Sweep.run ()).Sweep.total_hits in
  let observe () =
    let o = Sweep.run ~crash_at:(n / 2) () in
    (o, Sim.stats ())
  in
  let o1, s1 = observe () in
  let o2, s2 = observe () in
  Alcotest.(check bool) "outcome record identical" true (o1 = o2);
  Alcotest.(check bool) "event trace identical (events/spawns/skips)" true
    (s1 = s2);
  check_clean "mid-schedule crash case is clean" o1

let test_quick_sweep () =
  let n = (Sweep.run ()).Sweep.total_hits in
  (* Eight crash points spread across the whole schedule; the full
     sweep covers every k in [1, n]. *)
  let ks = List.init 8 (fun i -> 1 + (i * (n - 1) / 7)) |> List.sort_uniq compare in
  List.iter
    (fun k ->
      check_clean (Printf.sprintf "crash at hit %d/%d" k n) (Sweep.run ~crash_at:k ()))
    ks

(* The same sweep against NVRAM-fronted Petal servers: the write path
   gains the nvram.write / nvram.destage boundaries. *)
let test_quick_sweep_nvram () =
  let o = Sweep.run ~nvram:true () in
  check_clean "no-crash nvram run is clean" o;
  Alcotest.(check bool) "nvram faultpoints fire" true
    (List.mem_assoc "nvram.write" o.Sweep.sites);
  let n = o.Sweep.total_hits in
  List.iter
    (fun k ->
      check_clean
        (Printf.sprintf "nvram crash at hit %d/%d" k n)
        (Sweep.run ~crash_at:k ~nvram:true ()))
    (List.sort_uniq compare [ 1; n / 3; (2 * n) / 3; n ])

(* Two peers racing Recovery.run over the same dead log: the log lock
   serializes them, and the version checks make the loser's replay a
   no-op — the disk image must come out byte-identical. *)
let test_racing_recoveries () =
  Sim.run ~until:(Sim.sec 3600.0) (fun () ->
      Faultpoint.reset ();
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let cfg = { Ctx.default_config with synchronous_log = true } in
      let a = T.add_server t ~config:cfg () in
      let b = T.add_server t () in
      let c = T.add_server t () in
      let dir = Fs.mkdir a ~dir:Fs.root "race" in
      for i = 0 to 9 do
        let f = Fs.create a ~dir (Printf.sprintf "f%d" i) in
        Fs.write a f ~off:0 (Bytes.make 600 (Char.chr (65 + i)))
      done;
      Fs.crash a;
      (* Let the lease expire and the automatic recovery finish. *)
      Sim.sleep (Sim.sec 90.0);
      let slot = Fs.log_slot a in
      let vd = b.Ctx.vd in
      let diffs = Wal.scan vd ~slot in
      let addrs =
        List.sort_uniq compare (List.map (fun (d : Wal.diff) -> d.addr) diffs)
      in
      Alcotest.(check bool) "dead log is non-trivial" true (addrs <> []);
      let snap () =
        List.map (fun addr -> Petal.Client.read vd ~off:addr ~len:Layout.sector) addrs
      in
      let before = snap () in
      (* The automatic recovery already ran on one of the peers; the
         race below adds exactly one more replay to each. *)
      let b0 = (Fs.recovery_stats b).Fs.replays in
      let c0 = (Fs.recovery_stats c).Fs.replays in
      let done_b = Sim.Ivar.create () and done_c = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          Recovery.run b ~dead_lease:slot;
          Sim.Ivar.fill done_b ());
      Sim.spawn (fun () ->
          Recovery.run c ~dead_lease:slot;
          Sim.Ivar.fill done_c ());
      Sim.Ivar.read done_b;
      Sim.Ivar.read done_c;
      Alcotest.(check int) "b replayed once more" (b0 + 1)
        (Fs.recovery_stats b).Fs.replays;
      Alcotest.(check int) "c replayed once more" (c0 + 1)
        (Fs.recovery_stats c).Fs.replays;
      Alcotest.(check bool) "disk image byte-identical" true
        (List.for_all2 Bytes.equal before (snap ()));
      Alcotest.(check (list string)) "fsck clean" []
        (List.map (Format.asprintf "%a" Fsck.pp_finding) (Fsck.check b));
      (* The racing replays really were no-ops on disk. *)
      for i = 0 to 9 do
        let f = Fs.lookup b ~dir:(Fs.lookup b ~dir:Fs.root "race") (Printf.sprintf "f%d" i) in
        ignore (Fs.stat b f)
      done)

(* A replay that aborts mid-way (the check_lease_margin Eio path in
   apply_diff): the clerk must stay silent (no L_recovered), release
   the log lock, and the lock service's nag must get a second, clean
   attempt through. *)
let test_recovery_abort_then_retry () =
  Sim.run ~until:(Sim.sec 3600.0) (fun () ->
      Faultpoint.reset ();
      let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let cfg = { Ctx.default_config with synchronous_log = true } in
      let a = T.add_server t ~config:cfg () in
      let b = T.add_server t () in
      let dir = Fs.mkdir a ~dir:Fs.root "abort" in
      for i = 0 to 9 do
        let f = Fs.create a ~dir (Printf.sprintf "f%d" i) in
        Fs.write a f ~off:0 (Bytes.make 600 'y')
      done;
      (* Fail the first replay attempt at its third applied diff —
         the same exception check_lease_margin produces. *)
      Faultpoint.arm_site "recovery.apply" ~at:3
        (Faultpoint.Raise (Errors.Error Errors.Eio));
      Faultpoint.enable ();
      Fs.crash a;
      Sim.sleep (Sim.sec 120.0);
      let st = Fs.recovery_stats b in
      Alcotest.(check bool)
        (Printf.sprintf "aborted attempt was retried (replays=%d)" st.Fs.replays)
        true (st.Fs.replays >= 2);
      Alcotest.(check bool) "retry skipped the already-applied diffs" true
        (st.Fs.diffs_skipped >= 2);
      Alcotest.(check (list string)) "fsck clean" []
        (List.map (Format.asprintf "%a" Fsck.pp_finding) (Fsck.check b));
      let dir = Fs.lookup b ~dir:Fs.root "abort" in
      Alcotest.(check int) "all files recovered" 10
        (List.length (Fs.readdir b dir)))

let () =
  Alcotest.run "crashsweep"
    [
      ( "sweep",
        [
          Alcotest.test_case "counting run, determinism" `Quick
            test_counting_run_deterministic;
          Alcotest.test_case "replay-drift guard" `Quick
            test_replay_drift_guard;
          Alcotest.test_case "strided crash sweep" `Quick test_quick_sweep;
          Alcotest.test_case "strided crash sweep, nvram" `Quick
            test_quick_sweep_nvram;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "racing recoveries are idempotent" `Quick
            test_racing_recoveries;
          Alcotest.test_case "aborted replay is retried" `Quick
            test_recovery_abort_then_retry;
        ] );
    ]
