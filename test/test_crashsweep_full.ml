(* The exhaustive recovery sweep: crash the server at EVERY
   faultpoint hit the standard workload crosses, one simulation per
   crash point, and verify each one recovers fsck-clean with synced
   data intact and an idempotent replay.

   Too slow for tier-1 `dune runtest`; run it from the verify
   workflow with:  dune exec test/test_crashsweep_full.exe
   (optionally `-- --stride S` to thin the sweep). *)

module Sweep = Workloads.Crashsweep

let () =
  let stride = ref 1 in
  let () =
    Arg.parse
      [ ("--stride", Arg.Set_int stride, "N  crash at every Nth hit (default 1)") ]
      (fun a -> raise (Arg.Bad a))
      "test_crashsweep_full [--stride N]"
  in
  let sweep ~nvram label =
    let counting = Sweep.run ~nvram () in
    (match Sweep.failures counting with
    | [] -> ()
    | fs ->
      List.iter (Printf.eprintf "%s counting run: %s\n" label) fs;
      exit 1);
    let n = counting.Sweep.total_hits in
    Printf.printf "%s sweep: %d crash points, stride %d\n%!" label n !stride;
    List.iter
      (fun (site, c) -> Printf.printf "  %-22s %d\n" site c)
      counting.Sweep.sites;
    let failed = ref 0 and ran = ref 0 in
    let k = ref 1 in
    while !k <= n do
      let o = Sweep.run ~crash_at:!k ~nvram () in
      incr ran;
      (match Sweep.failures o with
      | [] -> ()
      | fs ->
        incr failed;
        List.iter (Printf.printf "FAIL (%s) at hit %d: %s\n%!" label !k) fs);
      if !ran mod 25 = 0 then Printf.printf "  ... %d/%d\n%!" !k n;
      k := !k + !stride
    done;
    Printf.printf "%s sweep: %d runs, %d failures\n%!" label !ran !failed;
    !failed
  in
  let failed = sweep ~nvram:false "disk" + sweep ~nvram:true "nvram" in
  if failed > 0 then exit 1
