open Simkit

let check_time = Alcotest.(check int)

let test_sleep_ordering () =
  let trace = ref [] in
  let record tag = trace := (tag, Sim.now ()) :: !trace in
  let () =
    Sim.run (fun () ->
        Sim.spawn (fun () ->
            Sim.sleep (Sim.ms 5);
            record "b");
        Sim.spawn (fun () ->
            Sim.sleep (Sim.ms 2);
            record "a");
        Sim.sleep (Sim.ms 10);
        record "main")
  in
  match List.rev !trace with
  | [ ("a", ta); ("b", tb); ("main", tm) ] ->
    check_time "a at 2ms" (Sim.ms 2) ta;
    check_time "b at 5ms" (Sim.ms 5) tb;
    check_time "main at 10ms" (Sim.ms 10) tm
  | _ -> Alcotest.fail "wrong trace"

let test_run_result () =
  let v = Sim.run (fun () -> Sim.sleep 100; 42) in
  Alcotest.(check int) "result" 42 v

let test_same_instant_fifo () =
  let order = ref [] in
  Sim.run (fun () ->
      for i = 1 to 5 do
        Sim.spawn (fun () -> order := i :: !order)
      done;
      Sim.sleep 1);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_ivar () =
  let sum =
    Sim.run (fun () ->
        let iv = Sim.Ivar.create () in
        let acc = ref 0 in
        let done_ = Sim.Ivar.create () in
        for _ = 1 to 3 do
          Sim.spawn (fun () ->
              acc := !acc + Sim.Ivar.read iv;
              if !acc = 21 then Sim.Ivar.fill done_ ())
        done;
        Sim.spawn (fun () ->
            Sim.sleep (Sim.us 7);
            Sim.Ivar.fill iv 7);
        Sim.Ivar.read done_;
        !acc)
  in
  Alcotest.(check int) "three readers woken" 21 sum

let test_ivar_double_fill () =
  Sim.run (fun () ->
      let iv = Sim.Ivar.create () in
      Sim.Ivar.fill iv 1;
      Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
        (fun () -> Sim.Ivar.fill iv 2))

let test_mailbox_fifo () =
  let got =
    Sim.run (fun () ->
        let mb = Sim.Mailbox.create () in
        Sim.spawn (fun () ->
            for i = 1 to 4 do
              Sim.sleep (Sim.us 1);
              Sim.Mailbox.send mb i
            done);
        List.init 4 (fun _ -> Sim.Mailbox.recv mb))
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4 ] got

let test_mailbox_blocked_receivers () =
  let got =
    Sim.run (fun () ->
        let mb = Sim.Mailbox.create () in
        let out = ref [] in
        for i = 1 to 3 do
          Sim.spawn (fun () ->
              let v = Sim.Mailbox.recv mb in
              out := (i, v) :: !out)
        done;
        Sim.sleep (Sim.us 1);
        List.iter (Sim.Mailbox.send mb) [ 10; 20; 30 ];
        Sim.sleep (Sim.us 1);
        List.rev !out)
  in
  Alcotest.(check (list (pair int int)))
    "receivers served in fifo order"
    [ (1, 10); (2, 20); (3, 30) ]
    got

let test_resource_serialises () =
  let finish =
    Sim.run (fun () ->
        let r = Sim.Resource.create "disk" in
        let finished = ref [] in
        let done_ = Sim.Ivar.create () in
        for i = 1 to 3 do
          Sim.spawn (fun () ->
              Sim.Resource.use r (Sim.ms 10);
              finished := (i, Sim.now ()) :: !finished;
              if List.length !finished = 3 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        List.rev !finished)
  in
  Alcotest.(check (list (pair int int)))
    "fifo, 10ms apart"
    [ (1, Sim.ms 10); (2, Sim.ms 20); (3, Sim.ms 30) ]
    finish

let test_resource_capacity2 () =
  let t_end =
    Sim.run (fun () ->
        let r = Sim.Resource.create ~capacity:2 "cpu" in
        let done_ = Sim.Ivar.create () in
        let left = ref 4 in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              Sim.Resource.use r (Sim.ms 10);
              decr left;
              if !left = 0 then Sim.Ivar.fill done_ (Sim.now ()))
        done;
        Sim.Ivar.read done_)
  in
  check_time "4 jobs on 2 servers" (Sim.ms 20) t_end

let test_resource_utilization () =
  let u =
    Sim.run (fun () ->
        let r = Sim.Resource.create "link" in
        Sim.Resource.use r (Sim.ms 30);
        Sim.sleep (Sim.ms 30);
        Sim.Resource.utilization r)
  in
  Alcotest.(check (float 0.001)) "50% busy" 0.5 u

let test_deadlock_detected () =
  Alcotest.check_raises "deadlock"
    (Sim.Deadlock "Sim.run: main process blocked forever")
    (fun () -> Sim.run (fun () -> ignore (Sim.Ivar.read (Sim.Ivar.create ()))))

let test_until () =
  Alcotest.check_raises "timed out" Sim.Timed_out (fun () ->
      Sim.run ~until:(Sim.ms 1) (fun () -> Sim.sleep (Sim.ms 2)))

let test_timer_cancel () =
  let fired =
    Sim.run (fun () ->
        let fired = ref false in
        let t = Sim.Timer.after (Sim.ms 5) (fun () -> fired := true) in
        Sim.sleep (Sim.ms 1);
        Sim.Timer.cancel t;
        Sim.sleep (Sim.ms 10);
        !fired)
  in
  Alcotest.(check bool) "cancelled timer must not fire" false fired

let test_timer_fires () =
  let at =
    Sim.run (fun () ->
        let at = ref 0 in
        let iv = Sim.Ivar.create () in
        ignore (Sim.Timer.after (Sim.ms 5) (fun () -> at := Sim.now (); Sim.Ivar.fill iv ()));
        Sim.Ivar.read iv;
        !at)
  in
  check_time "fires at 5ms" (Sim.ms 5) at

let test_condition_broadcast () =
  let n =
    Sim.run (fun () ->
        let c = Sim.Condition.create () in
        let woken = ref 0 in
        for _ = 1 to 5 do
          Sim.spawn (fun () ->
              Sim.Condition.wait c;
              incr woken)
        done;
        Sim.sleep (Sim.us 1);
        Sim.Condition.broadcast c;
        Sim.sleep (Sim.us 1);
        !woken)
  in
  Alcotest.(check int) "all woken" 5 n

let test_determinism () =
  let observe () =
    Sim.run ~seed:7 (fun () ->
        let xs = ref [] in
        for _ = 1 to 5 do
          xs := Sim.random_int 1000 :: !xs;
          Sim.sleep (Sim.random_int 100)
        done;
        (!xs, Sim.now ()))
  in
  let a = observe () and b = observe () in
  Alcotest.(check (pair (list int) int)) "same seed, same run" a b

(* Heap (at, seq) tie-break: events landing on the same instant —
   whatever mix of primitives scheduled them — run in scheduling
   order, and events at different instants run in time order even
   when inserted shuffled. The expected order is an independent
   stable sort of the insertion list by time. *)
let test_heap_tiebreak () =
  let times =
    (* Deliberately adversarial insertion order with many duplicates. *)
    [ 5; 1; 5; 0; 9; 1; 5; 0; 3; 9; 0; 1; 2; 7; 3; 5; 2; 0; 9; 4 ]
  in
  let expected =
    List.stable_sort
      (fun (a, _) (b, _) -> compare a b)
      (List.mapi (fun i t -> (t, i)) times)
  in
  let got = ref [] in
  Sim.run (fun () ->
      List.iteri (fun i t -> Sim.at (Sim.ms t) (fun () -> got := (t, i) :: !got)) times;
      Sim.sleep (Sim.ms 20));
  Alcotest.(check (list (pair int int)))
    "stable (at, seq) order" expected (List.rev !got)

let test_at_clamps_past () =
  let fired_at =
    Sim.run (fun () ->
        Sim.sleep (Sim.ms 5);
        let fired_at = ref (-1) in
        Sim.at (Sim.ms 1) (fun () -> fired_at := Sim.now ());
        Sim.sleep (Sim.ms 1);
        !fired_at)
  in
  check_time "past deadline fires now, not in the past" (Sim.ms 5) fired_at

let test_stats_counters () =
  let st =
    Sim.run (fun () ->
        for _ = 1 to 10 do
          Sim.spawn (fun () -> Sim.sleep (Sim.ms 1))
        done;
        (* Cancelled timers are discarded lazily: they must show up in
           [skipped], not [events], and must drain from the heap. *)
        let ts = List.init 7 (fun _ -> Sim.Timer.after (Sim.ms 2) ignore) in
        List.iter Sim.Timer.cancel ts;
        Sim.sleep (Sim.ms 5);
        Sim.stats ())
  in
  Alcotest.(check bool) "events counted" true (st.Sim.events > 0);
  Alcotest.(check int) "spawns counted" 10 st.Sim.spawns;
  Alcotest.(check int) "cancelled timers skipped" 7 st.Sim.skipped;
  Alcotest.(check int) "heap drained" 0 st.Sim.heap_len;
  (* After the run, stats must still be readable (the final snapshot). *)
  let post = Sim.stats () in
  Alcotest.(check int) "post-run snapshot" st.Sim.events post.Sim.events

(* The timer fire path must be a real process: a callback that blocks
   (sleeps, waits on an ivar) must not wedge the engine. *)
let test_timer_fire_can_block () =
  let v =
    Sim.run (fun () ->
        let iv = Sim.Ivar.create () in
        ignore
          (Sim.Timer.after (Sim.ms 1) (fun () ->
               Sim.sleep (Sim.ms 3);
               Sim.Ivar.fill iv (Sim.now ())));
        Sim.Ivar.read iv)
  in
  check_time "timer body slept" (Sim.ms 4) v

let test_timer_is_pending () =
  Sim.run (fun () ->
      let t = Sim.Timer.after (Sim.ms 5) ignore in
      Alcotest.(check bool) "armed" true (Sim.Timer.is_pending t);
      Sim.Timer.cancel t;
      Alcotest.(check bool) "cancelled" false (Sim.Timer.is_pending t);
      let t2 = Sim.Timer.after (Sim.ms 1) ignore in
      Sim.sleep (Sim.ms 2);
      Alcotest.(check bool) "fired" false (Sim.Timer.is_pending t2))

(* acquire_cb: synchronous grant on a free resource; FIFO handover on
   a contended one — and it composes with blocking acquirers. *)
let test_acquire_cb () =
  let order =
    Sim.run (fun () ->
        let r = Sim.Resource.create "r" in
        let order = ref [] in
        let sync = ref false in
        Sim.Resource.acquire_cb r (fun () -> sync := true);
        Alcotest.(check bool) "free resource grants synchronously" true !sync;
        (* Holder releases at 3ms; two callback waiters and one
           blocking waiter queue up behind it in that order. *)
        Sim.spawn (fun () ->
            Sim.sleep (Sim.ms 3);
            Sim.Resource.release r);
        Sim.Resource.acquire_cb r (fun () ->
            order := ("cb1", Sim.now ()) :: !order;
            Sim.Resource.release r);
        Sim.Resource.acquire_cb r (fun () ->
            order := ("cb2", Sim.now ()) :: !order;
            Sim.Resource.release r);
        Sim.Resource.acquire r;
        order := ("blk", Sim.now ()) :: !order;
        Sim.Resource.release r;
        List.rev !order)
  in
  Alcotest.(check (list (pair string int)))
    "fifo handover at release instant"
    [ ("cb1", Sim.ms 3); ("cb2", Sim.ms 3); ("blk", Sim.ms 3) ]
    order

(* reserve: FIFO pipe timing — each reservation starts when the
   previous one finishes, and busy time accrues for utilization. *)
let test_reserve_fifo () =
  Sim.run (fun () ->
      let r = Sim.Resource.create "link" in
      let f1 = Sim.Resource.reserve r (Sim.ms 10) in
      let f2 = Sim.Resource.reserve r (Sim.ms 5) in
      check_time "first from now" (Sim.ms 10) f1;
      check_time "second queued behind first" (Sim.ms 15) f2;
      Sim.sleep (Sim.ms 20);
      let f3 = Sim.Resource.reserve r (Sim.ms 1) in
      check_time "idle gap skipped: third from now" (Sim.ms 21) f3;
      Sim.sleep (Sim.ms 11);
      Alcotest.(check (float 0.01))
        "16ms busy of 31ms elapsed"
        (16. /. 31.)
        (Sim.Resource.utilization r))

(* Fairness under sustained contention: three loopers re-acquiring a
   unit resource are granted strictly round-robin — nobody starves,
   nobody barges. *)
let test_resource_fairness () =
  let grants =
    Sim.run (fun () ->
        let r = Sim.Resource.create "r" in
        let grants = ref [] in
        let left = ref 3 in
        let done_ = Sim.Ivar.create () in
        for i = 1 to 3 do
          Sim.spawn (fun () ->
              for _ = 1 to 3 do
                Sim.Resource.acquire r;
                grants := i :: !grants;
                Sim.sleep (Sim.ms 1);
                Sim.Resource.release r
              done;
              decr left;
              if !left = 0 then Sim.Ivar.fill done_ ())
        done;
        Sim.Ivar.read done_;
        List.rev !grants)
  in
  Alcotest.(check (list int))
    "strict round-robin" [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ] grants

(* Mailbox FIFO across several same-instant senders: delivery order
   is exactly send-call order, interleaved with queued receivers. *)
let test_mailbox_multi_sender_fifo () =
  let got =
    Sim.run (fun () ->
        let mb = Sim.Mailbox.create () in
        for s = 1 to 3 do
          Sim.spawn (fun () ->
              for k = 1 to 2 do
                Sim.Mailbox.send mb ((10 * s) + k)
              done)
        done;
        List.init 6 (fun _ -> Sim.Mailbox.recv mb))
  in
  Alcotest.(check (list int))
    "send-call order" [ 11; 12; 21; 22; 31; 32 ] got

let prop_resource_never_over_capacity =
  QCheck.Test.make ~name:"resource never exceeds capacity" ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 30) (int_range 0 1000)))
    (fun (cap, durations) ->
      let max_seen = ref 0 in
      Sim.run (fun () ->
          let r = Sim.Resource.create ~capacity:cap "r" in
          let active = ref 0 in
          let pending = ref (List.length durations) in
          let done_ = Sim.Ivar.create () in
          List.iter
            (fun d ->
              Sim.spawn (fun () ->
                  Sim.sleep (Sim.random_int 50);
                  Sim.Resource.acquire r;
                  incr active;
                  if !active > !max_seen then max_seen := !active;
                  Sim.sleep d;
                  decr active;
                  Sim.Resource.release r;
                  decr pending;
                  if !pending = 0 then Sim.Ivar.fill done_ ()))
            durations;
          if !pending = 0 then () else Sim.Ivar.read done_);
      !max_seen <= cap)

let () =
  Alcotest.run "simkit"
    [
      ( "engine",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "run result" `Quick test_run_result;
          Alcotest.test_case "same-instant fifo" `Quick test_same_instant_fifo;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "until horizon" `Quick test_until;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "heap tie-break" `Quick test_heap_tiebreak;
          Alcotest.test_case "at clamps past" `Quick test_at_clamps_past;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "broadcast read" `Quick test_ivar;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo messages" `Quick test_mailbox_fifo;
          Alcotest.test_case "fifo receivers" `Quick test_mailbox_blocked_receivers;
          Alcotest.test_case "multi-sender fifo" `Quick test_mailbox_multi_sender_fifo;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serialises" `Quick test_resource_serialises;
          Alcotest.test_case "capacity 2" `Quick test_resource_capacity2;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "acquire_cb" `Quick test_acquire_cb;
          Alcotest.test_case "reserve fifo" `Quick test_reserve_fifo;
          Alcotest.test_case "fairness" `Quick test_resource_fairness;
          QCheck_alcotest.to_alcotest prop_resource_never_over_capacity;
        ] );
      ( "timer",
        [
          Alcotest.test_case "cancel" `Quick test_timer_cancel;
          Alcotest.test_case "fires" `Quick test_timer_fires;
          Alcotest.test_case "fire can block" `Quick test_timer_fire_can_block;
          Alcotest.test_case "is_pending" `Quick test_timer_is_pending;
        ] );
      ( "condition",
        [ Alcotest.test_case "broadcast" `Quick test_condition_broadcast ] );
    ]
