(* The exhaustive partition sweep: every scripted nemesis schedule
   plus enough seeded ones for 200 total runs, each checking the full
   invariant set (no lapsed-stamp write applied, acked data survives,
   resync backlog drains, fsck clean), with a determinism spot-check
   every 20th run.

   Too slow for tier-1 `dune runtest`; run it from the verify
   workflow with:  dune exec test/test_partsweep_full.exe
   (optionally `-- --stride S` to thin the seeded portion). *)

module Sweep = Workloads.Partsweep

let () =
  let stride = ref 1 in
  let () =
    Arg.parse
      [ ("--stride", Arg.Set_int stride, "N  run every Nth seeded schedule (default 1)") ]
      (fun a -> raise (Arg.Bad a))
      "test_partsweep_full [--stride N]"
  in
  let nscripted = List.length Sweep.scripted_labels in
  let nrandom = 200 - nscripted in
  let failed = ref 0 and ran = ref 0 in
  let check spec (o : Sweep.outcome) =
    incr ran;
    (match Sweep.failures o with
    | [] -> ()
    | fs ->
      incr failed;
      List.iter (Printf.printf "FAIL (%s): %s\n%!" o.Sweep.label) fs);
    (* Replay every 20th run: a sweep whose failures cannot be
       reproduced from the printed label is worthless. *)
    if !ran mod 20 = 0 then begin
      let o' = Sweep.run spec in
      if o <> o' then begin
        incr failed;
        Printf.printf "FAIL (%s): replay not bit-identical\n%!" o.Sweep.label
      end
    end
  in
  Printf.printf "partition sweep: %d scripted + %d seeded schedules, stride %d\n%!"
    nscripted nrandom !stride;
  List.iter
    (fun name ->
      let o = Sweep.run (Sweep.Scripted name) in
      Printf.printf "  %-18s acked %2d failed %2d%s cuts %3d drops %4d retries %4d\n%!"
        name o.Sweep.acked o.Sweep.failed_ops
        (if o.Sweep.expired then " EXPIRED" else "        ")
        o.Sweep.nf.Cluster.Netfault.cut_drops
        o.Sweep.nf.Cluster.Netfault.loss_drops o.Sweep.rpc_retries;
      check (Sweep.Scripted name) o)
    Sweep.scripted_labels;
  let n = ref 1 in
  while !n <= nrandom do
    let o = Sweep.run (Sweep.Random !n) in
    check (Sweep.Random !n) o;
    if !ran mod 25 = 0 then Printf.printf "  ... %d runs\n%!" !ran;
    n := !n + !stride
  done;
  Printf.printf "partition sweep: %d runs, %d failures\n%!" !ran !failed;
  if !failed > 0 then exit 1
