(* Invariants of the on-disk layout (§3, Figure 4), the lock-id
   namespace, and the fixed-structure codecs. *)

open Frangipani

let tb = 1 lsl 40

let test_regions_ordered_and_disjoint () =
  let regions =
    [
      ("params", Layout.params_base, Layout.logs_base);
      ("logs", Layout.logs_base, Layout.bitmap_base);
      ("bitmaps", Layout.bitmap_base, Layout.inode_base);
      ("inodes", Layout.inode_base, Layout.small_base);
      ("small", Layout.small_base, Layout.large_base);
    ]
  in
  List.iter
    (fun (name, lo, hi) ->
      Alcotest.(check bool) (name ^ " non-empty") true (lo < hi))
    regions;
  (* Figure 4's sizes. *)
  Alcotest.(check int) "logs at 1T" tb Layout.logs_base;
  Alcotest.(check int) "bitmaps at 2T" (2 * tb) Layout.bitmap_base;
  Alcotest.(check int) "inodes at 5T" (5 * tb) Layout.inode_base;
  Alcotest.(check int) "small at 6T" (6 * tb) Layout.small_base;
  Alcotest.(check int) "large at 134T" (134 * tb) Layout.large_base

let test_log_slots_disjoint () =
  for s = 0 to Layout.max_servers - 1 do
    let a = Layout.log_addr ~slot:s in
    Alcotest.(check bool) "in region" true
      (a >= Layout.logs_base && a + Layout.log_bytes <= Layout.bitmap_base);
    if s > 0 then
      Alcotest.(check bool) "disjoint from predecessor" true
        (a >= Layout.log_addr ~slot:(s - 1) + Layout.log_bytes)
  done

let test_extremes_in_bounds () =
  (* The largest inode, small block and large block stay inside their
     regions. *)
  let last_inode = Layout.inode_addr (Layout.max_inodes - 1) in
  Alcotest.(check bool) "last inode" true
    (last_inode + Layout.inode_size <= Layout.small_base);
  let last_small =
    Layout.small_addr Layout.Small_data (Layout.small_data_count - 1)
  in
  Alcotest.(check bool) "last small block" true
    (last_small + Layout.small_block <= Layout.large_base);
  let last_large =
    Layout.large_addr Layout.Large_data (Layout.large_data_count - 1)
  in
  Alcotest.(check bool) "last large block" true
    (last_large + Layout.large_block <= 1 lsl 62)

let test_pools_disjoint () =
  (* §4's reuse rule, structurally: across the FULL index space of
     each pool pair, a metadata block number and a data block number
     can never map to the same Petal address. The pools are
     contiguous and ordered, so disjointness of the whole index space
     reduces to the boundary blocks. *)
  let last_meta = Layout.small_addr Layout.Small_meta (Layout.small_meta_count - 1) in
  let first_data = Layout.small_addr Layout.Small_data 0 in
  Alcotest.(check bool) "small pools ordered" true
    (last_meta + Layout.small_block <= first_data);
  Alcotest.(check int) "small pools adjacent (no wasted range)"
    (last_meta + Layout.small_block) first_data;
  Alcotest.(check int) "small meta starts the region" Layout.small_base
    (Layout.small_addr Layout.Small_meta 0);
  let last_lmeta = Layout.large_addr Layout.Large_meta (Layout.large_meta_count - 1) in
  let first_ldata = Layout.large_addr Layout.Large_data 0 in
  Alcotest.(check bool) "large pools ordered" true
    (last_lmeta + Layout.large_block <= first_ldata);
  Alcotest.(check int) "large pools adjacent" (last_lmeta + Layout.large_block)
    first_ldata;
  (* Exhaustive over the (small) metadata pool: every metadata
     address precedes every data address. *)
  for b = 0 to Layout.small_meta_count - 1 do
    assert (Layout.small_addr Layout.Small_meta b < first_data)
  done

let prop_pools_disjoint =
  QCheck.Test.make ~name:"small meta/data addresses never collide" ~count:1000
    QCheck.(pair (int_bound (Layout.small_meta_count - 1))
              (int_bound (1 lsl 30)))
    (fun (m, d) ->
      let d = d mod Layout.small_data_count in
      Layout.small_addr Layout.Small_meta m
      <> Layout.small_addr Layout.Small_data d)

let prop_bitmap_math =
  QCheck.Test.make ~name:"bitmap sector/segment math is consistent" ~count:500
    QCheck.(pair (int_bound 4) (int_bound 10_000_000))
    (fun (pidx, n) ->
      let pool =
        List.nth
          [ Layout.Inode_pool; Small_meta; Small_data; Large_meta; Large_data ]
          pidx
      in
      let n = n mod Layout.pool_size pool in
      let sector = Layout.bit_sector pool n in
      let within = Layout.bit_in_sector n in
      let seg = Layout.segment_of_bit n in
      sector mod Layout.sector = 0
      && within >= 0
      && within < Layout.bits_per_sector
      && seg * Layout.bits_per_segment <= n
      && n < (seg + 1) * Layout.bits_per_segment
      && sector >= Layout.pool_bitmap_base pool
      && sector < Layout.pool_bitmap_base pool + (tb / 2))

let prop_lock_ids_unique =
  (* Lock ids from different namespaces must never collide. *)
  QCheck.Test.make ~name:"lock-id namespaces are disjoint" ~count:500
    QCheck.(quad (int_bound (Layout.max_inodes - 1)) (int_bound 255)
              (int_bound 4) (int_bound 100_000))
    (fun (inum, slot, pidx, seg) ->
      let pool =
        List.nth
          [ Layout.Inode_pool; Small_meta; Small_data; Large_meta; Large_data ]
          pidx
      in
      let seg = seg mod max 1 (Layout.pool_segments pool) in
      let ids =
        [
          Lockns.barrier_lock;
          Lockns.inode_lock inum;
          Lockns.bitmap_lock (Layout.global_segment pool seg);
          Lockns.log_lock slot;
          Lockns.block_lock (Layout.small_addr Layout.Small_data 12345);
        ]
      in
      List.length (List.sort_uniq compare ids) = 5)

let prop_inode_codec_roundtrip =
  QCheck.Test.make ~name:"inode encode/decode round-trips" ~count:300
    QCheck.(
      pair
        (pair (int_bound 3) (int_bound 1_000_000))
        (pair (string_of_size QCheck.Gen.(int_bound 100)) (int_bound 15)))
    (fun ((ty, size), (target, holes)) ->
      let itype =
        List.nth [ Ondisk.Free; Ondisk.Reg; Ondisk.Dir; Ondisk.Symlink ] ty
      in
      let small = Array.init 16 (fun i -> if i < holes then 0 else i * 7) in
      let ino =
        { Ondisk.itype; nlink = size mod 100; size; mtime = size * 3;
          ctime = size * 5; atime = size * 7; small; large = size mod 17;
          target = (if itype = Ondisk.Symlink then target else "") }
      in
      let sector = Bytes.make Layout.inode_size '\000' in
      let enc = Ondisk.encode_inode ino in
      Bytes.blit enc 0 sector Ondisk.off_itype (Bytes.length enc);
      Ondisk.decode_inode sector = ino)

let prop_dir_slot_roundtrip =
  QCheck.Test.make ~name:"directory slot encode/decode round-trips" ~count:300
    QCheck.(pair (string_of_size QCheck.Gen.(int_range 1 55)) (int_bound 1_000_000))
    (fun (name, inum) ->
      QCheck.assume (not (String.contains name '\000'));
      let sector = Bytes.make Layout.sector '\000' in
      let slot = Ondisk.encode_slot name inum in
      Bytes.blit slot 0 sector (Ondisk.dir_slot_off 3) (Bytes.length slot);
      Ondisk.read_slot sector 3 = Some (name, inum)
      && Ondisk.read_slot sector 2 = None)

let () =
  Alcotest.run "layout"
    [
      ( "layout",
        [
          Alcotest.test_case "regions ordered" `Quick test_regions_ordered_and_disjoint;
          Alcotest.test_case "log slots disjoint" `Quick test_log_slots_disjoint;
          Alcotest.test_case "extremes in bounds" `Quick test_extremes_in_bounds;
          Alcotest.test_case "meta/data pools disjoint" `Quick test_pools_disjoint;
          QCheck_alcotest.to_alcotest prop_pools_disjoint;
          QCheck_alcotest.to_alcotest prop_bitmap_math;
        ] );
      ("lockns", [ QCheck_alcotest.to_alcotest prop_lock_ids_unique ]);
      ( "ondisk",
        [
          QCheck_alcotest.to_alcotest prop_inode_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_dir_slot_roundtrip;
        ] );
    ]
