(* The batched scatter-gather read path: foreground miss coalescing,
   parallel read-ahead, and its interaction with holes, the 64 KB
   small/large boundary, lock revocation, and replica failure. *)

open Simkit
open Frangipani
module T = Workloads.Testbed

let small () = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 ()

let setup ?config ?(nservers = 1) () =
  let t = small ()
  in
  let servers = List.init nservers (fun _ -> T.add_server t ?config ()) in
  (t, servers)

let one ?config () =
  let t, servers = setup ?config () in
  (t, List.hd servers)

let bytes_pat n seed = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) mod 256))

(* Write [data] through [fs] in 64 KB pieces and push it to Petal so
   a later drop_caches gives a truly cold read. *)
let write_out fs f data =
  let len = Bytes.length data in
  let piece = 65536 in
  let rec go off =
    if off < len then begin
      Fs.write fs f ~off (Bytes.sub data off (min piece (len - off)));
      go (off + piece)
    end
  in
  go 0;
  Fs.sync fs;
  Fs.drop_caches fs

(* --- O(chunks) round trips ------------------------------------------------ *)

let test_cold_read_rpc_count () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "big" in
      let size = 512 * 1024 in
      let data = bytes_pat size 1 in
      write_out fs f data;
      let s0 = Fs.petal_stats fs in
      for i = 0 to (size / 65536) - 1 do
        let got = Fs.read fs f ~off:(i * 65536) ~len:65536 in
        Alcotest.(check bool)
          (Printf.sprintf "data @%dK" (i * 64))
          true
          (Bytes.equal got (Bytes.sub data (i * 65536) 65536))
      done;
      let s1 = Fs.petal_stats fs in
      let open Petal.Client in
      let rpcs = s1.read_rpcs - s0.read_rpcs in
      (* 512 KB spans ~9 chunks (16 small blocks + 7 large-area
         chunks); batching must keep the whole cold sweep at O(chunks)
         RPCs — the inode sector and boundary splits add a handful —
         not O(blocks) = 128. *)
      Alcotest.(check bool)
        (Printf.sprintf "O(chunks) rpcs, got %d" rpcs)
        true
        (rpcs >= size / 65536 && rpcs <= 14))

let test_misaligned_read_coalesces () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "mis" in
      let size = 1024 * 1024 in
      let data = bytes_pat size 3 in
      write_out fs f data;
      (* A block-aligned but chunk-misaligned cold read in the large
         area: the 64 KB miss runs split mid-chunk, so the tail piece
         of one run and the head piece of the next hit the same chunk
         and must ride one RPC. *)
      let off = Layout.small_area_per_file + (3 * Layout.block) in
      let len = 256 * 1024 in
      let s0 = Fs.petal_stats fs in
      let got = Fs.read fs f ~off ~len in
      let s1 = Fs.petal_stats fs in
      Alcotest.(check bool) "data" true (Bytes.equal got (Bytes.sub data off len));
      let open Petal.Client in
      Alcotest.(check bool) "adjacent pieces coalesced" true
        (s1.read_coalesced - s0.read_coalesced > 0);
      Alcotest.(check bool) "coalescing saved rpcs" true
        (s1.read_rpcs - s0.read_rpcs < s1.read_pieces - s0.read_pieces))

(* --- holes and the small/large boundary ----------------------------------- *)

let test_sparse_holes () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "sparse" in
      (* Blocks 0 and 3 of the small area, plus a write in the large
         area: blocks 1-2 stay unmapped and must read as zeros without
         breaking the batched miss runs around them. *)
      let p0 = bytes_pat 4096 5 and p3 = bytes_pat 4096 6 and pl = bytes_pat 4096 7 in
      Fs.write fs f ~off:0 p0;
      Fs.write fs f ~off:(3 * Layout.block) p3;
      Fs.write fs f ~off:(Layout.small_area_per_file + 65536) pl;
      Fs.sync fs;
      Fs.drop_caches fs;
      let size = Layout.small_area_per_file + 65536 + 4096 in
      let expect = Bytes.make size '\000' in
      Bytes.blit p0 0 expect 0 4096;
      Bytes.blit p3 0 expect (3 * Layout.block) 4096;
      Bytes.blit pl 0 expect (Layout.small_area_per_file + 65536) 4096;
      let got = Fs.read fs f ~off:0 ~len:size in
      Alcotest.(check bool) "holes read as zeros, data intact" true
        (Bytes.equal got expect))

let test_small_large_boundary () =
  Sim.run (fun () ->
      let _, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "boundary" in
      let size = 128 * 1024 in
      let data = bytes_pat size 9 in
      write_out fs f data;
      (* One cold read spanning the 64 KB small/large switch: the
         address discontinuity splits the miss runs, both go down in
         one batched submission. *)
      let s0 = Fs.petal_stats fs in
      let got = Fs.read fs f ~off:0 ~len:size in
      let s1 = Fs.petal_stats fs in
      Alcotest.(check bool) "data across boundary" true (Bytes.equal got data);
      let open Petal.Client in
      Alcotest.(check bool) "one submission, few rpcs" true
        (s1.reads - s0.reads <= 3 && s1.read_rpcs - s0.read_rpcs <= 7))

(* --- revoke during a batched prefetch -------------------------------------- *)

let test_revoke_mid_prefetch () =
  Sim.run (fun () ->
      let _, servers = setup ~nservers:2 () in
      let a = List.nth servers 0 and b = List.nth servers 1 in
      let f = Fs.create a ~dir:Fs.root "contested" in
      let size = 1024 * 1024 in
      write_out a f (bytes_pat size 11);
      (* a's sequential read spawns a batched prefetch that keeps
         holding the file's R lock. *)
      ignore (Fs.read a f ~off:0 ~len:65536);
      (* b's write W-locks the file: the revoke must wait for a's
         in-flight batch, then a discards the prefetched data and
         releases. If the prefetch leaked the hold this would
         deadlock; if invalidation were skipped, a would read stale
         bytes below. *)
      let fresh = Bytes.make 4096 'B' in
      Fs.write b f ~off:0 fresh;
      Fs.sync b;
      let got = Fs.read a f ~off:0 ~len:4096 in
      Alcotest.(check bool) "a sees b's write after revoke" true
        (Bytes.equal got fresh);
      (* The prefetched window really was discarded: re-reading it
         costs new Petal reads. *)
      let s0 = Fs.petal_stats a in
      ignore (Fs.read a f ~off:65536 ~len:65536);
      let s1 = Fs.petal_stats a in
      Alcotest.(check bool) "prefetched data was discarded" true
        Petal.Client.(s1.reads - s0.reads > 0))

(* --- replica failure during a batched read ---------------------------------- *)

let test_dead_replica_batched_read () =
  Sim.run (fun () ->
      let t, fs = one () in
      let f = Fs.create fs ~dir:Fs.root "degraded" in
      let size = 512 * 1024 in
      let data = bytes_pat size 13 in
      write_out fs f data;
      (* Kill one Petal machine (a lock server dies with it; give
         Paxos a beat), then sweep the file cold: every piece routed
         to the dead primary fails over to its replica on its own 2 s
         timeout, and pieces of one batch overlap their timeouts
         instead of paying them in series. *)
      Cluster.Host.crash t.T.petal.Petal.Testbed.hosts.(1);
      Sim.sleep (Sim.sec 15.0);
      Fs.drop_caches fs;
      let t0 = Sim.now () in
      for i = 0 to (size / 65536) - 1 do
        let got = Fs.read fs f ~off:(i * 65536) ~len:65536 in
        Alcotest.(check bool)
          (Printf.sprintf "degraded data @%dK" (i * 64))
          true
          (Bytes.equal got (Bytes.sub data (i * 65536) 65536))
      done;
      (* ~9 chunks; serial per-piece failover would cost ~9 x 2 s on
         top of the transfer. *)
      Alcotest.(check bool) "failovers overlap within batches" true
        (Sim.now () - t0 < Sim.sec 10.0))

(* --- batched vs serial (UFS ablation) submission ----------------------------- *)

let test_batched_beats_serial () =
  let sweep serial =
    Sim.run (fun () ->
        let _, fs =
          one
            ~config:
              { Ctx.default_config with Ctx.read_ahead_serial = serial }
            ()
        in
        let f = Fs.create fs ~dir:Fs.root "race" in
        let size = 2 * 1024 * 1024 in
        write_out fs f (bytes_pat size 17);
        let t0 = Sim.now () in
        for i = 0 to (size / 65536) - 1 do
          ignore (Fs.read fs f ~off:(i * 65536) ~len:65536)
        done;
        Sim.now () - t0)
  in
  let serial = sweep true and batched = sweep false in
  Alcotest.(check bool)
    (Printf.sprintf "batched (%dns) < serial (%dns)" batched serial)
    true (batched < serial)

(* --- predictor table bounds --------------------------------------------------- *)

let test_read_ahead_table_bounded () =
  Sim.run (fun () ->
      let _, fs = one () in
      let n = Ctx.read_ahead_table_cap + 40 in
      let files =
        List.init n (fun i ->
            let f = Fs.create fs ~dir:Fs.root (Printf.sprintf "t%d" i) in
            Fs.write fs f ~off:0 (bytes_pat 512 i);
            f)
      in
      List.iter (fun f -> ignore (Fs.read fs f ~off:0 ~len:512)) files;
      Alcotest.(check bool) "predictor table capped" true
        (Hashtbl.length fs.Ctx.read_ahead_next <= Ctx.read_ahead_table_cap);
      let victim = List.nth files (n - 1) in
      Alcotest.(check bool) "entry live before unlink" true
        (Hashtbl.mem fs.Ctx.read_ahead_next victim);
      Fs.unlink fs ~dir:Fs.root (Printf.sprintf "t%d" (n - 1));
      Alcotest.(check bool) "unlink drops predictor entry" false
        (Hashtbl.mem fs.Ctx.read_ahead_next victim);
      let v2 = List.nth files (n - 2) in
      Fs.truncate fs v2 ~size:0;
      Alcotest.(check bool) "truncate-to-zero drops predictor entry" false
        (Hashtbl.mem fs.Ctx.read_ahead_next v2))

let () =
  Alcotest.run "readpath"
    [
      ( "batched",
        [
          Alcotest.test_case "cold read is O(chunks) rpcs" `Quick
            test_cold_read_rpc_count;
          Alcotest.test_case "misaligned read coalesces" `Quick
            test_misaligned_read_coalesces;
          Alcotest.test_case "sparse holes in miss run" `Quick test_sparse_holes;
          Alcotest.test_case "small/large boundary" `Quick
            test_small_large_boundary;
        ] );
      ( "interaction",
        [
          Alcotest.test_case "revoke mid-batched-prefetch" `Quick
            test_revoke_mid_prefetch;
          Alcotest.test_case "dead replica during batched read" `Quick
            test_dead_replica_batched_read;
          Alcotest.test_case "batched beats serial read-ahead" `Quick
            test_batched_beats_serial;
          Alcotest.test_case "read-ahead table bounded" `Quick
            test_read_ahead_table_bounded;
        ] );
    ]
