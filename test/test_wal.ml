open Simkit
open Frangipani

(* A private vdisk for log experiments. *)
let mkvd () =
  let net = Cluster.Net.create () in
  let tb = Petal.Testbed.build ~net ~nservers:3 ~ndisks:2 () in
  let h = Cluster.Host.create "walclient" in
  let rpc = Cluster.Rpc.create (Cluster.Net.attach net h) in
  let c = Petal.Testbed.client tb ~rpc in
  Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2)

let diff addr doff data version = { Wal.addr; doff; data; version }

let d i =
  diff
    (Layout.inode_addr i)
    8
    (Bytes.of_string (Printf.sprintf "record-%04d" i))
    (i + 1)

let test_roundtrip () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:3 ~synchronous:false ~lease_ok:(fun () -> true) () in
      for i = 0 to 9 do
        ignore (Wal.append w [ d i ])
      done;
      Wal.flush w;
      let diffs = Wal.scan vd ~slot:3 in
      Alcotest.(check int) "all diffs recovered" 10 (List.length diffs);
      List.iteri
        (fun i (x : Wal.diff) ->
          Alcotest.(check int) "order" (Layout.inode_addr i) x.Wal.addr;
          Alcotest.(check string) "payload"
            (Printf.sprintf "record-%04d" i)
            (Bytes.to_string x.Wal.data))
        diffs)

let test_unflushed_not_durable () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:0 ~synchronous:false ~lease_ok:(fun () -> true) () in
      ignore (Wal.append w [ d 1 ]);
      Alcotest.(check int) "nothing on disk yet" 0 (List.length (Wal.scan vd ~slot:0));
      Wal.discard_volatile w;
      Wal.flush w;
      Alcotest.(check int) "discarded tail lost" 0 (List.length (Wal.scan vd ~slot:0)))

let test_synchronous_mode () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:1 ~synchronous:true ~lease_ok:(fun () -> true) () in
      ignore (Wal.append w [ d 7 ]);
      (* Durable immediately, no explicit flush. *)
      Alcotest.(check int) "already durable" 1 (List.length (Wal.scan vd ~slot:1)))

let test_ensure_flushed_barrier () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:2 ~synchronous:false ~lease_ok:(fun () -> true) () in
      let r1 = Wal.append w [ d 1 ] in
      let r2 = Wal.append w [ d 2 ] in
      Wal.ensure_flushed w r1;
      (* r2 was grouped into the same flush (group commit). *)
      Alcotest.(check bool) "group commit" true (r2 <= Wal.last_rid w);
      Alcotest.(check int) "both durable" 2 (List.length (Wal.scan vd ~slot:2)))

let test_wraparound_keeps_window () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:4 ~synchronous:false ~lease_ok:(fun () -> true) () in
      (* Push far more than 128 KB of records through: the log wraps
         several times; scan must return a consistent recent window,
         newest record always included. *)
      let n = 3000 in
      for i = 0 to n - 1 do
        ignore (Wal.append w [ d i ]);
        if i mod 50 = 0 then Wal.flush w
      done;
      Wal.flush w;
      let diffs = Wal.scan vd ~slot:4 in
      Alcotest.(check bool) "non-empty window" true (List.length diffs > 100);
      (* Monotone order, ending at the newest record. *)
      let versions = List.map (fun (x : Wal.diff) -> x.Wal.version) diffs in
      let sorted = List.sort compare versions in
      Alcotest.(check bool) "in order" true (versions = sorted);
      Alcotest.(check int) "newest present" n (List.nth versions (List.length versions - 1)))

let test_isolated_slots () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w5 = Wal.create ~vd ~slot:5 ~synchronous:true ~lease_ok:(fun () -> true) () in
      let w6 = Wal.create ~vd ~slot:6 ~synchronous:true ~lease_ok:(fun () -> true) () in
      ignore (Wal.append w5 [ d 100 ]);
      ignore (Wal.append w6 [ d 200 ]);
      Alcotest.(check int) "slot5" 1 (List.length (Wal.scan vd ~slot:5));
      Alcotest.(check int) "slot6" 1 (List.length (Wal.scan vd ~slot:6));
      Alcotest.(check int) "slot7 empty" 0 (List.length (Wal.scan vd ~slot:7)))

let test_lease_check_blocks_writes () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let ok = ref true in
      let w = Wal.create ~vd ~slot:8 ~synchronous:false ~lease_ok:(fun () -> !ok) () in
      ignore (Wal.append w [ d 1 ]);
      ok := false;
      (try
         Wal.flush w;
         Alcotest.fail "expected EIO"
       with Errors.Error Errors.Eio -> ()))

(* A crash mid-group-commit leaves the tail of a multi-sector record
   missing: scan must report the torn tail and replay exactly the
   valid prefix rather than raise. Simulated by zeroing the last log
   sector after a flush of one small record plus one record big
   enough to span several sectors. *)
let test_torn_tail_replays_prefix () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:3 ~synchronous:false ~lease_ok:(fun () -> true) () in
      ignore (Wal.append w [ d 1 ]);
      ignore
        (Wal.append w
           [
             diff (Layout.inode_addr 10) 0 (Bytes.make 500 'a') 11;
             diff (Layout.inode_addr 11) 0 (Bytes.make 500 'b') 12;
             diff (Layout.inode_addr 12) 0 (Bytes.make 500 'c') 13;
           ]);
      Wal.flush w;
      let whole = Wal.scan_report vd ~slot:3 in
      Alcotest.(check bool) "intact log not torn" false whole.Wal.torn;
      Alcotest.(check int) "intact log has both records" 2 whole.Wal.records;
      (* Tear off the last sector of the log (the big record's tail). *)
      let last = Layout.log_addr ~slot:3 + ((whole.Wal.live_sectors - 1) * Layout.sector) in
      Petal.Client.write vd ~off:last (Bytes.make Layout.sector '\000');
      let torn = Wal.scan_report vd ~slot:3 in
      Alcotest.(check bool) "torn tail detected" true torn.Wal.torn;
      Alcotest.(check int) "only the complete record survives" 1 torn.Wal.records;
      Alcotest.(check int) "its single diff is the prefix" 1
        (List.length torn.Wal.diffs);
      Alcotest.(check int) "prefix diff is record 1" 2
        (List.hd torn.Wal.diffs).Wal.version)

(* A sector whose CRC happens to validate but whose header claims an
   impossible payload length must be excluded from the live window,
   not crash the scanner (it used to raise Invalid_argument from
   Bytes.sub). *)
let test_garbage_sector_with_valid_crc () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let b = Bytes.make Layout.sector '\000' in
      Stdext.Codec.put_int b 0 1 (* lsn 1 *);
      Stdext.Codec.put_u16 b 8 0 (* first_rec 0 *);
      Stdext.Codec.put_u16 b 10 5000 (* payload "length" way past the cap *);
      Stdext.Codec.put_u32 b 508 (Stdext.Crc32.bytes b 0 508);
      Petal.Client.write vd ~off:(Layout.log_addr ~slot:0) b;
      let r = Wal.scan_report vd ~slot:0 in
      Alcotest.(check int) "garbage sector not live" 0 r.Wal.live_sectors;
      Alcotest.(check (list string)) "no diffs" []
        (List.map (fun (x : Wal.diff) -> Bytes.to_string x.Wal.data) r.Wal.diffs))

(* A failed flush (host died mid-commit) must release the
   group-commit latch and put the batch back: a second flush attempt
   fails the same way instead of wedging forever, and ensure_flushed
   does not spin. *)
let test_flush_failure_releases_group_commit () =
  Sim.run (fun () ->
      let net = Cluster.Net.create () in
      let tb = Petal.Testbed.build ~net ~nservers:3 ~ndisks:2 () in
      let h = Cluster.Host.create "walclient" in
      let rpc = Cluster.Rpc.create (Cluster.Net.attach net h) in
      let c = Petal.Testbed.client tb ~rpc in
      let vd = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
      let w = Wal.create ~vd ~slot:0 ~synchronous:false ~lease_ok:(fun () -> true) () in
      let r = Wal.append w [ d 1 ] in
      Cluster.Host.crash h;
      (match Wal.flush w with
      | () -> Alcotest.fail "flush from a dead host should fail"
      | exception Cluster.Host.Crashed _ -> ());
      (match Wal.ensure_flushed w r with
      | () -> Alcotest.fail "ensure_flushed should propagate the failure"
      | exception Cluster.Host.Crashed _ -> ());
      (match Wal.flush w with
      | () -> Alcotest.fail "flush should fail again, not wedge"
      | exception Cluster.Host.Crashed _ -> ()))

(* The flush pipeline: while one group of sectors is in flight to
   Petal, the next batch of appends is formatted and queued behind it.
   Even though the second batch finishes formatting while the first is
   still on the wire, the single submitter must land everything in
   strict LSN (= rid) order. *)
let test_pipelined_groups_land_in_order () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let w = Wal.create ~vd ~slot:3 ~synchronous:false ~lease_ok:(fun () -> true) () in
      (* Batch 1: ~127 sectors, several pipeline groups. *)
      for i = 0 to 149 do
        ignore
          (Wal.append w [ diff (Layout.inode_addr i) 0 (Bytes.make 400 'x') (i + 1) ])
      done;
      let done1 = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          Wal.flush w;
          Sim.Ivar.fill done1 ());
      (* Let the submitter put group 1 on the wire, then format batch
         2 while it is still in flight. *)
      Sim.sleep (Sim.us 100);
      for i = 150 to 199 do
        ignore
          (Wal.append w [ diff (Layout.inode_addr i) 0 (Bytes.make 400 'y') (i + 1) ])
      done;
      Wal.flush w;
      Sim.Ivar.read done1;
      Alcotest.(check bool) "formatting overlapped an in-flight group" true
        ((Wal.stats w).Wal.pipeline_overlaps > 0);
      Alcotest.(check bool) "several groups were submitted" true
        ((Wal.stats w).Wal.flush_groups > 1);
      let diffs = Wal.scan vd ~slot:3 in
      Alcotest.(check (list int)) "every record present, in rid order"
        (List.init 200 (fun i -> i + 1))
        (List.map (fun (x : Wal.diff) -> x.Wal.version) diffs))

(* A larger-than-default log retains a wider replay window: ~1000
   records of ~1 sector each overflow the 128 KB default several
   times over, but stay almost entirely live in a 512 KB log. *)
let test_larger_log_widens_window () =
  Sim.run (fun () ->
      let vd = mkvd () in
      let log_bytes = 512 * 1024 in
      let w =
        Wal.create ~log_bytes ~vd ~slot:4 ~synchronous:false
          ~lease_ok:(fun () -> true) ()
      in
      for i = 0 to 999 do
        ignore
          (Wal.append w [ diff (Layout.inode_addr i) 0 (Bytes.make 500 'z') (i + 1) ]);
        if i mod 100 = 0 then Wal.flush w
      done;
      Wal.flush w;
      let r = Wal.scan_report ~log_bytes vd ~slot:4 in
      Alcotest.(check bool) "not torn" false r.Wal.torn;
      Alcotest.(check bool)
        (Printf.sprintf "window wider than a 128 KB log allows (got %d records)"
           r.Wal.records)
        true (r.Wal.records > 400);
      (* The log wrapped, so reclaim must have run. *)
      Alcotest.(check bool) "reclaim ran" true ((Wal.stats w).Wal.reclaim_rounds > 0))

let prop_scan_returns_complete_prefix_records =
  QCheck.Test.make ~name:"random record sizes survive the sector packer" ~count:25
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 400))
    (fun sizes ->
      Sim.run (fun () ->
          let vd = mkvd () in
          let w = Wal.create ~vd ~slot:9 ~synchronous:false ~lease_ok:(fun () -> true) () in
          List.iteri
            (fun i sz ->
              ignore
                (Wal.append w
                   [ diff (Layout.inode_addr i) 8 (Bytes.make (min sz 500) 'p') (i + 1) ]))
            sizes;
          Wal.flush w;
          let diffs = Wal.scan vd ~slot:9 in
          List.length diffs = List.length sizes
          && List.for_all2
               (fun (x : Wal.diff) sz -> Bytes.length x.Wal.data = min sz 500)
               diffs sizes))

let () =
  Alcotest.run "wal"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "unflushed not durable" `Quick test_unflushed_not_durable;
          Alcotest.test_case "synchronous mode" `Quick test_synchronous_mode;
          Alcotest.test_case "ensure_flushed barrier" `Quick test_ensure_flushed_barrier;
          Alcotest.test_case "wraparound window" `Quick test_wraparound_keeps_window;
          Alcotest.test_case "isolated slots" `Quick test_isolated_slots;
          Alcotest.test_case "lease check blocks writes" `Quick
            test_lease_check_blocks_writes;
          Alcotest.test_case "torn tail replays prefix" `Quick
            test_torn_tail_replays_prefix;
          Alcotest.test_case "garbage sector with valid crc" `Quick
            test_garbage_sector_with_valid_crc;
          Alcotest.test_case "flush failure releases group commit" `Quick
            test_flush_failure_releases_group_commit;
          Alcotest.test_case "pipelined groups land in lsn order" `Quick
            test_pipelined_groups_land_in_order;
          Alcotest.test_case "larger log widens replay window" `Quick
            test_larger_log_widens_window;
          QCheck_alcotest.to_alcotest prop_scan_returns_complete_prefix_records;
        ] );
    ]
