(* The membership-change sweep: a bounded subset of the scripted +
   seeded schedules (the full 200-schedule sweep is
   test_reconfsweep_full.exe), plus the determinism contract — the
   same spec must replay bit-identically, or a seed in a failure
   report would be unreproducible. *)

module Sweep = Workloads.Reconfsweep

let check_clean what (o : Sweep.outcome) =
  Alcotest.(check (list string)) what [] (Sweep.failures o)

(* The scenarios most likely to regress: a plain join (did anything
   move at all? did clients actually re-route?), a plain drain-out,
   serialized back-to-back changes, and the partitioned joiner. *)
let test_scripted_subset () =
  let o = Sweep.run (Sweep.Scripted "add_plain") in
  check_clean "add_plain" o;
  Alcotest.(check bool)
    (Printf.sprintf "handoff streamed chunks (got %d)" o.Sweep.xfer_pushes)
    true (o.Sweep.xfer_pushes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "client hit Wrong_epoch and refreshed (got %d)"
       o.Sweep.map_refreshes)
    true
    (o.Sweep.map_refreshes > 0);
  let o = Sweep.run (Sweep.Scripted "remove_plain") in
  check_clean "remove_plain" o;
  Alcotest.(check bool)
    (Printf.sprintf "decommissioned member was emptied (gc %d)" o.Sweep.gc_chunks)
    true (o.Sweep.gc_chunks > 0);
  let o = Sweep.run (Sweep.Scripted "back_to_back") in
  check_clean "back_to_back" o;
  Alcotest.(check int) "three epochs committed" 3 o.Sweep.committed;
  let o = Sweep.run (Sweep.Scripted "add_joiner_partitioned") in
  check_clean "add_joiner_partitioned" o

(* Crash-composed schedules: a transfer source dying mid-stream and
   the proposing server dying inside the management call must both
   leave the handoff able to finish. *)
let test_crash_schedules () =
  let o = Sweep.run (Sweep.Scripted "owner_dies_mid_transfer") in
  check_clean "owner_dies_mid_transfer" o;
  let o = Sweep.run (Sweep.Scripted "proposer_dies_mid_add") in
  check_clean "proposer_dies_mid_add" o;
  let o = Sweep.run (Sweep.Scripted "cutover_proposer_dies") in
  check_clean "cutover_proposer_dies" o

(* Same spec, twice: every field of the outcome — including the
   simulated end time — must match. *)
let test_deterministic_replay () =
  let o = Sweep.run (Sweep.Scripted "add_then_remove") in
  check_clean "add_then_remove" o;
  let o' = Sweep.run (Sweep.Scripted "add_then_remove") in
  Alcotest.(check bool) "scripted replay is bit-identical" true (o = o');
  let r = Sweep.run (Sweep.Random 5) in
  let r' = Sweep.run (Sweep.Random 5) in
  Alcotest.(check bool) "seeded replay is bit-identical" true (r = r')

let test_random_seeds () =
  List.iter
    (fun n ->
      check_clean (Printf.sprintf "random_%d" n) (Sweep.run (Sweep.Random n)))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "reconfsweep"
    [
      ( "sweep",
        [
          Alcotest.test_case "scripted subset" `Quick test_scripted_subset;
          Alcotest.test_case "crash schedules" `Quick test_crash_schedules;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "seeded schedules" `Quick test_random_seeds;
        ] );
    ]
