(* Model-based random testing: drive the file system with random
   operation sequences and compare every result against a trivial
   in-memory model. Ops alternate between two Frangipani servers, so
   the comparison also exercises multi-server coherence on every
   step. *)

open Simkit
open Frangipani
module T = Workloads.Testbed

(* --- the model ------------------------------------------------------------ *)

type mnode = Mfile of Buffer.t | Mdir of (string, int) Hashtbl.t

type model = {
  nodes : (int, mnode) Hashtbl.t; (* model id -> node *)
  mutable next : int;
  mutable fs_of_model : (int * int) list; (* model id <-> fs inum *)
}

let mmodel () =
  let m = { nodes = Hashtbl.create 64; next = 1; fs_of_model = [] } in
  Hashtbl.replace m.nodes 0 (Mdir (Hashtbl.create 8));
  m

let mdir m id =
  match Hashtbl.find_opt m.nodes id with Some (Mdir d) -> Some d | _ -> None

(* --- operations ------------------------------------------------------------ *)

type op =
  | Create of int * string (* dir slot, name *)
  | Mkdir of int * string
  | Write of int * int * int (* file slot, off, len *)
  | Read of int * int * int
  | Unlink of int * string
  | Rmdir of int * string
  | Rename of int * string * int * string
  | Truncate of int * int
  | Listdir of int

let names = [| "a"; "b"; "c"; "d"; "e" |]

let show_op = function
  | Create (d, n) -> Printf.sprintf "Create (%d, %S)" d n
  | Mkdir (d, n) -> Printf.sprintf "Mkdir (%d, %S)" d n
  | Write (f, off, len) -> Printf.sprintf "Write (%d, %d, %d)" f off len
  | Read (f, off, len) -> Printf.sprintf "Read (%d, %d, %d)" f off len
  | Unlink (d, n) -> Printf.sprintf "Unlink (%d, %S)" d n
  | Rmdir (d, n) -> Printf.sprintf "Rmdir (%d, %S)" d n
  | Rename (d1, n1, d2, n2) ->
    Printf.sprintf "Rename (%d, %S, %d, %S)" d1 n1 d2 n2
  | Truncate (f, sz) -> Printf.sprintf "Truncate (%d, %d)" f sz
  | Listdir d -> Printf.sprintf "Listdir %d" d

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun d n -> Create (d, names.(n))) (int_bound 3) (int_bound 4));
        (2, map2 (fun d n -> Mkdir (d, names.(n))) (int_bound 3) (int_bound 4));
        ( 5,
          map3
            (fun f off len -> Write (f, off * 1000, len))
            (int_bound 5) (int_bound 20) (int_range 1 5000) );
        ( 4,
          map3
            (fun f off len -> Read (f, off * 1000, len))
            (int_bound 5) (int_bound 25) (int_range 1 8000) );
        (2, map2 (fun d n -> Unlink (d, names.(n))) (int_bound 3) (int_bound 4));
        (1, map2 (fun d n -> Rmdir (d, names.(n))) (int_bound 3) (int_bound 4));
        ( 2,
          map2
            (fun (d1, n1) (d2, n2) -> Rename (d1, names.(n1), d2, names.(n2)))
            (pair (int_bound 3) (int_bound 4))
            (pair (int_bound 3) (int_bound 4)) );
        (1, map2 (fun f sz -> Truncate (f, sz * 500)) (int_bound 5) (int_bound 10));
        (2, map (fun d -> Listdir d) (int_bound 3));
      ])

(* Pick the k-th directory (model id) among existing dirs, the k-th
   file among existing files. *)
let nth_of m pred k =
  let ids =
    Hashtbl.fold (fun id n acc -> if pred n then id :: acc else acc) m.nodes []
    |> List.sort compare
  in
  match ids with [] -> None | _ -> Some (List.nth ids (k mod List.length ids))

let fs_inum m id = List.assoc id m.fs_of_model
let is_dir = function Mdir _ -> true | Mfile _ -> false
let is_file = function Mfile _ -> true | Mdir _ -> false

let pattern off len = Bytes.init len (fun i -> Char.chr ((off + i) mod 251))

(* Apply one op to both the model and the fs; return false on any
   observable divergence. *)
let apply m fs op =
  let expect_same (result : ('a, Errors.error) result)
      (model_result : ('a, Errors.error) result) =
    result = model_result
  in
  let run_fs f = try Ok (f ()) with Errors.Error e -> Error e in
  match op with
  | Create (dslot, name) -> (
    match nth_of m is_dir dslot with
    | None -> true
    | Some d ->
      let fs_r = run_fs (fun () -> Fs.create fs ~dir:(fs_inum m d) name) in
      let dirtbl = Option.get (mdir m d) in
      if Hashtbl.mem dirtbl name then expect_same (Result.map ignore fs_r) (Error Errors.Eexist)
      else begin
        match fs_r with
        | Ok inum ->
          let id = m.next in
          m.next <- id + 1;
          Hashtbl.replace m.nodes id (Mfile (Buffer.create 16));
          Hashtbl.replace dirtbl name id;
          m.fs_of_model <- (id, inum) :: m.fs_of_model;
          true
        | Error _ -> false
      end)
  | Mkdir (dslot, name) -> (
    match nth_of m is_dir dslot with
    | None -> true
    | Some d ->
      let fs_r = run_fs (fun () -> Fs.mkdir fs ~dir:(fs_inum m d) name) in
      let dirtbl = Option.get (mdir m d) in
      if Hashtbl.mem dirtbl name then expect_same (Result.map ignore fs_r) (Error Errors.Eexist)
      else begin
        match fs_r with
        | Ok inum ->
          let id = m.next in
          m.next <- id + 1;
          Hashtbl.replace m.nodes id (Mdir (Hashtbl.create 8));
          Hashtbl.replace dirtbl name id;
          m.fs_of_model <- (id, inum) :: m.fs_of_model;
          true
        | Error _ -> false
      end)
  | Write (fslot, off, len) -> (
    match nth_of m is_file fslot with
    | None -> true
    | Some f -> (
      let data = pattern off len in
      match run_fs (fun () -> Fs.write fs (fs_inum m f) ~off data) with
      | Ok () -> (
        match Hashtbl.find m.nodes f with
        | Mfile buf ->
          let cur = Buffer.length buf in
          if off > cur then Buffer.add_bytes buf (Bytes.make (off - cur) '\000');
          let s = Buffer.to_bytes buf in
          let newlen = max (Bytes.length s) (off + len) in
          let s' = Bytes.make newlen '\000' in
          Bytes.blit s 0 s' 0 (Bytes.length s);
          Bytes.blit data 0 s' off len;
          Buffer.clear buf;
          Buffer.add_bytes buf s';
          true
        | Mdir _ -> false)
      | Error _ -> false))
  | Read (fslot, off, len) -> (
    match nth_of m is_file fslot with
    | None -> true
    | Some f -> (
      match run_fs (fun () -> Fs.read fs (fs_inum m f) ~off ~len) with
      | Ok got -> (
        match Hashtbl.find m.nodes f with
        | Mfile buf ->
          let s = Buffer.to_bytes buf in
          let avail = max 0 (min len (Bytes.length s - off)) in
          let expect = if avail = 0 then Bytes.empty else Bytes.sub s off avail in
          Bytes.equal got expect
        | Mdir _ -> false)
      | Error _ -> false))
  | Unlink (dslot, name) -> (
    match nth_of m is_dir dslot with
    | None -> true
    | Some d -> (
      let dirtbl = Option.get (mdir m d) in
      let fs_r = run_fs (fun () -> Fs.unlink fs ~dir:(fs_inum m d) name) in
      match Hashtbl.find_opt dirtbl name with
      | None -> fs_r = Error Errors.Enoent
      | Some target when is_dir (Hashtbl.find m.nodes target) ->
        fs_r = Error Errors.Eisdir
      | Some target ->
        Hashtbl.remove dirtbl name;
        Hashtbl.remove m.nodes target;
        fs_r = Ok ()))
  | Rmdir (dslot, name) -> (
    match nth_of m is_dir dslot with
    | None -> true
    | Some d -> (
      let dirtbl = Option.get (mdir m d) in
      let fs_r = run_fs (fun () -> Fs.rmdir fs ~dir:(fs_inum m d) name) in
      match Hashtbl.find_opt dirtbl name with
      | None -> fs_r = Error Errors.Enoent
      | Some target -> (
        match Hashtbl.find m.nodes target with
        | Mfile _ -> fs_r = Error Errors.Enotdir
        | Mdir sub when Hashtbl.length sub > 0 -> fs_r = Error Errors.Enotempty
        | Mdir _ ->
          Hashtbl.remove dirtbl name;
          Hashtbl.remove m.nodes target;
          fs_r = Ok ())))
  | Rename (d1s, n1, d2s, n2) -> (
    match (nth_of m is_dir d1s, nth_of m is_dir d2s) with
    | Some d1, Some d2 -> (
      let t1 = Option.get (mdir m d1) and t2 = Option.get (mdir m d2) in
      let fs_r =
        run_fs (fun () -> Fs.rename fs ~sdir:(fs_inum m d1) n1 ~ddir:(fs_inum m d2) n2)
      in
      match Hashtbl.find_opt t1 n1 with
      | None -> fs_r = Error Errors.Enoent
      | Some src -> (
        (* A node may not move onto its own parent slot, and a
           directory may not move into its own subtree (cycle). *)
        let rec contains id =
          id = d2
          || (match Hashtbl.find m.nodes id with
             | Mdir sub -> Hashtbl.fold (fun _ c acc -> acc || contains c) sub false
             | Mfile _ -> false)
        in
        if src = d1 then true
        else if contains src then fs_r = Error Errors.Einval
        else
          match Hashtbl.find_opt t2 n2 with
          | Some dst when dst = src ->
            (* No-op rename onto the same node. *)
            fs_r = Ok ()
          | Some dst -> (
            match (Hashtbl.find m.nodes src, Hashtbl.find m.nodes dst) with
            | Mdir _, Mfile _ -> fs_r = Error Errors.Enotdir
            | Mfile _, Mdir _ -> fs_r = Error Errors.Eisdir
            | Mdir _, Mdir sub when Hashtbl.length sub > 0 ->
              fs_r = Error Errors.Enotempty
            | _ ->
              Hashtbl.remove t1 n1;
              Hashtbl.replace t2 n2 src;
              Hashtbl.remove m.nodes dst;
              fs_r = Ok ()
          )
          | None ->
            Hashtbl.remove t1 n1;
            Hashtbl.replace t2 n2 src;
            fs_r = Ok ()))
    | _ -> true)
  | Truncate (fslot, size) -> (
    match nth_of m is_file fslot with
    | None -> true
    | Some f -> (
      match run_fs (fun () -> Fs.truncate fs (fs_inum m f) ~size) with
      | Ok () -> (
        match Hashtbl.find m.nodes f with
        | Mfile buf ->
          let s = Buffer.to_bytes buf in
          let s' =
            if size <= Bytes.length s then Bytes.sub s 0 size
            else begin
              let b = Bytes.make size '\000' in
              Bytes.blit s 0 b 0 (Bytes.length s);
              b
            end
          in
          Buffer.clear buf;
          Buffer.add_bytes buf s';
          true
        | Mdir _ -> false)
      | Error _ -> false))
  | Listdir dslot -> (
    match nth_of m is_dir dslot with
    | None -> true
    | Some d -> (
      match run_fs (fun () -> Fs.readdir fs (fs_inum m d)) with
      | Ok entries ->
        let dirtbl = Option.get (mdir m d) in
        let got = List.sort compare (List.map fst entries) in
        let expect =
          Hashtbl.fold (fun n _ acc -> n :: acc) dirtbl [] |> List.sort compare
        in
        got = expect
      | Error _ -> false))

let root_binding m = m.fs_of_model <- [ (0, Fs.root) ]

let prop_matches_model ~servers =
  QCheck.Test.make
    ~name:(Printf.sprintf "random ops match model (%d server%s)" servers
             (if servers > 1 then "s" else ""))
    ~count:15
    QCheck.(pair (int_range 0 100000) (list_of_size (QCheck.Gen.int_range 20 60) (QCheck.make ~print:show_op gen_op)))
    (fun (seed, ops) ->
      Sim.run ~seed (fun () ->
          let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
          let fss = Array.init servers (fun _ -> T.add_server t ()) in
          let m = mmodel () in
          root_binding m;
          List.for_all
            (fun op ->
              let fs = fss.(Sim.random_int servers) in
              apply m fs op)
            ops))

(* After a random workload plus sync, the on-disk state must satisfy
   fsck with zero findings. *)
let prop_fsck_clean_after_random_ops =
  QCheck.Test.make ~name:"fsck clean after random ops" ~count:10
    QCheck.(pair (int_range 0 100000) (list_of_size (QCheck.Gen.int_range 20 50) (QCheck.make ~print:show_op gen_op)))
    (fun (seed, ops) ->
      Sim.run ~seed (fun () ->
          let t = T.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
          let fs = T.add_server t () in
          let m = mmodel () in
          root_binding m;
          List.iter (fun op -> ignore (apply m fs op)) ops;
          Fs.sync fs;
          Fsck.check fs = []))

let () =
  Alcotest.run "model"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest (prop_matches_model ~servers:1);
          QCheck_alcotest.to_alcotest (prop_matches_model ~servers:2);
          QCheck_alcotest.to_alcotest prop_fsck_clean_after_random_ops;
        ] );
    ]
