(* The exhaustive reconfiguration sweep: every scripted schedule plus
   enough seeded ones for 200 total runs, each checking the full
   invariant set (every requested change commits, the final map is
   the expected member set, acked data survives, the push backlog
   drains, non-owners end up empty, fsck clean), with a determinism
   spot-check every 20th run.

   Too slow for tier-1 `dune runtest`; run it from the verify
   workflow with:  dune exec test/test_reconfsweep_full.exe
   (optionally `-- --stride S` to thin the seeded portion). *)

module Sweep = Workloads.Reconfsweep

let () =
  let stride = ref 1 in
  let () =
    Arg.parse
      [ ("--stride", Arg.Set_int stride, "N  run every Nth seeded schedule (default 1)") ]
      (fun a -> raise (Arg.Bad a))
      "test_reconfsweep_full [--stride N]"
  in
  let nscripted = List.length Sweep.scripted_labels in
  let nrandom = 200 - nscripted in
  let failed = ref 0 and ran = ref 0 in
  let check spec (o : Sweep.outcome) =
    incr ran;
    (match Sweep.failures o with
    | [] -> ()
    | fs ->
      incr failed;
      List.iter (Printf.printf "FAIL (%s): %s\n%!" o.Sweep.label) fs);
    (* Replay every 20th run: a sweep whose failures cannot be
       reproduced from the printed label is worthless. *)
    if !ran mod 20 = 0 then begin
      let o' = Sweep.run spec in
      if o <> o' then begin
        incr failed;
        Printf.printf "FAIL (%s): replay not bit-identical\n%!" o.Sweep.label
      end
    end
  in
  Printf.printf
    "reconfiguration sweep: %d scripted + %d seeded schedules, stride %d\n%!"
    nscripted nrandom !stride;
  List.iter
    (fun name ->
      let o = Sweep.run (Sweep.Scripted name) in
      Printf.printf
        "  %-22s acked %2d failed %2d%s epochs %d pushes %4d gc %3d rejects %3d\n%!"
        name o.Sweep.acked o.Sweep.failed_ops
        (if o.Sweep.expired then " EXPIRED" else "        ")
        o.Sweep.committed o.Sweep.xfer_pushes o.Sweep.gc_chunks
        o.Sweep.wrong_epoch_rejects;
      check (Sweep.Scripted name) o)
    Sweep.scripted_labels;
  let n = ref 1 in
  while !n <= nrandom do
    let o = Sweep.run (Sweep.Random !n) in
    check (Sweep.Random !n) o;
    if !ran mod 25 = 0 then Printf.printf "  ... %d runs\n%!" !ran;
    n := !n + !stride
  done;
  Printf.printf "reconfiguration sweep: %d runs, %d failures\n%!" !ran !failed;
  if !failed > 0 then exit 1
