module Sweep = Workloads.Reconfsweep
let () =
  let spec =
    match Sys.argv.(1) with
    | s when String.length s > 0 && s.[0] >= '0' && s.[0] <= '9' ->
      Sweep.Random (int_of_string s)
    | s -> Sweep.Scripted s
  in
  let o = Sweep.run spec in
  Printf.printf
    "label=%s acked=%d failed=%d expired=%b req=%d com=%d final=[%s] exp=[%s] pushes=%d rejects=%d refreshes=%d gc=%d degraded=%d leftover=%d pending=%b end=%d\n"
    o.Sweep.label o.Sweep.acked o.Sweep.failed_ops o.Sweep.expired o.Sweep.requested
    o.Sweep.committed
    (String.concat ";" (List.map string_of_int o.Sweep.final_active))
    (String.concat ";" (List.map string_of_int o.Sweep.expected_active))
    o.Sweep.xfer_pushes o.Sweep.wrong_epoch_rejects o.Sweep.map_refreshes
    o.Sweep.gc_chunks o.Sweep.degraded_left o.Sweep.leftover_chunks
    o.Sweep.pending_left o.Sweep.end_ns;
  match Sweep.failures o with
  | [] -> print_endline "CLEAN"
  | fs -> List.iter (Printf.printf "FAIL: %s\n") fs
