open Simkit
open Cluster

let setup ?(nservers = 4) ?nactive ?(nrep = 2) () =
  let net = Net.create () in
  let tb = Petal.Testbed.build ~net ~nservers ?nactive ~ndisks:3 () in
  let ch = Host.create "client" in
  let rpc = Rpc.create (Net.attach net ch) in
  let c = Petal.Testbed.client tb ~rpc in
  let vid = Petal.Client.create_vdisk c ~nrep in
  let vd = Petal.Client.open_vdisk c vid in
  (net, tb, c, vd)

let bytes_pat n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 256))

let test_roundtrip () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let data = bytes_pat 4096 1 in
      Petal.Client.write vd ~off:8192 data;
      let got = Petal.Client.read vd ~off:8192 ~len:4096 in
      Alcotest.(check bool) "roundtrip" true (Bytes.equal data got))

let test_sparse_space () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      (* Write at 100 TB: only the touched chunks commit space. *)
      let off = 100 * (1 lsl 40) in
      Petal.Client.write vd ~off (bytes_pat 512 3);
      let got = Petal.Client.read vd ~off ~len:512 in
      Alcotest.(check bool) "data at 100TB" true (Bytes.equal (bytes_pat 512 3) got);
      let total =
        Array.fold_left
          (fun acc s -> acc + Petal.Server.disk_bytes_allocated s)
          0 tb.Petal.Testbed.servers
      in
      (* one 64 KB chunk, two replicas *)
      Alcotest.(check int) "committed space" (2 * 65536) total)

let test_unwritten_zero () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let got = Petal.Client.read vd ~off:0 ~len:1024 in
      Alcotest.(check string) "zeros" (String.make 1024 '\000') (Bytes.to_string got))

let test_cross_chunk () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      (* 200 KB spanning 4 chunks, starting mid-chunk. *)
      let data = bytes_pat 204800 7 in
      Petal.Client.write vd ~off:32768 data;
      let got = Petal.Client.read vd ~off:32768 ~len:204800 in
      Alcotest.(check bool) "cross-chunk" true (Bytes.equal data got))

let test_failover_read () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      let data = bytes_pat 512 9 in
      Petal.Client.write vd ~off:0 data;
      (* With 2-way replication the data must stay readable whichever
         single server is down. *)
      let open Petal.Testbed in
      let n = Array.length tb.hosts in
      for i = 0 to n - 1 do
        Host.crash tb.hosts.(i);
        let got = Petal.Client.read vd ~off:0 ~len:512 in
        Alcotest.(check bool)
          (Printf.sprintf "readable with server %d down" i)
          true (Bytes.equal data got);
        Host.restart tb.hosts.(i)
      done)

let test_unreplicated_unavailable () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup ~nrep:1 () in
      Petal.Client.write vd ~off:0 (bytes_pat 512 1);
      (* Crash all servers: the read must fail, not hang. *)
      Array.iter Host.crash tb.Petal.Testbed.hosts;
      try
        ignore (Petal.Client.read vd ~off:0 ~len:512);
        Alcotest.fail "expected Unavailable"
      with Petal.Protocol.Unavailable _ -> ())

let test_decommit () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      Petal.Client.write vd ~off:0 (bytes_pat 65536 5);
      let allocated () =
        Array.fold_left
          (fun acc s -> acc + Petal.Server.disk_bytes_allocated s)
          0 tb.Petal.Testbed.servers
      in
      let before = allocated () in
      Alcotest.(check int) "committed" (2 * 65536) before;
      Petal.Client.decommit vd ~off:0 ~len:65536;
      Alcotest.(check int) "freed" 0 (allocated ());
      let got = Petal.Client.read vd ~off:0 ~len:512 in
      Alcotest.(check string) "decommitted reads zero" (String.make 512 '\000')
        (Bytes.to_string got);
      (* Space recommits on rewrite. *)
      Petal.Client.write vd ~off:0 (bytes_pat 512 6);
      Alcotest.(check int) "recommitted" (2 * 65536) (allocated ()))

let test_snapshot_cow () =
  Sim.run (fun () ->
      let _, _, c, vd = setup () in
      Petal.Client.write vd ~off:0 (bytes_pat 512 1);
      let snap_id = Petal.Client.snapshot vd in
      let snap = Petal.Client.open_vdisk c snap_id in
      Alcotest.(check bool) "snapshot flagged" true (Petal.Client.is_snapshot snap);
      (* Overwrite the live disk. *)
      Petal.Client.write vd ~off:0 (bytes_pat 512 2);
      let live = Petal.Client.read vd ~off:0 ~len:512 in
      let old = Petal.Client.read snap ~off:0 ~len:512 in
      Alcotest.(check bool) "live sees new" true (Bytes.equal live (bytes_pat 512 2));
      Alcotest.(check bool) "snapshot sees old" true (Bytes.equal old (bytes_pat 512 1));
      (* Snapshots are read-only. *)
      (try
         Petal.Client.write snap ~off:0 (bytes_pat 512 3);
         Alcotest.fail "expected Read_only"
       with Petal.Protocol.Read_only -> ());
      (* Data written after the snapshot is invisible to it. *)
      Petal.Client.write vd ~off:4096 (bytes_pat 512 4);
      let unseen = Petal.Client.read snap ~off:4096 ~len:512 in
      Alcotest.(check string) "post-snapshot write invisible"
        (String.make 512 '\000') (Bytes.to_string unseen))

let test_snapshot_survives_decommit () =
  Sim.run (fun () ->
      let _, _, c, vd = setup () in
      Petal.Client.write vd ~off:0 (bytes_pat 65536 1);
      let snap = Petal.Client.open_vdisk c (Petal.Client.snapshot vd) in
      Petal.Client.decommit vd ~off:0 ~len:65536;
      let live = Petal.Client.read vd ~off:0 ~len:512 in
      Alcotest.(check string) "live zeroed" (String.make 512 '\000')
        (Bytes.to_string live);
      let old = Petal.Client.read snap ~off:0 ~len:65536 in
      Alcotest.(check bool) "snapshot retains data" true
        (Bytes.equal old (bytes_pat 65536 1)))

let test_two_snapshots () =
  Sim.run (fun () ->
      let _, _, c, vd = setup () in
      Petal.Client.write vd ~off:0 (bytes_pat 512 1);
      let s1 = Petal.Client.open_vdisk c (Petal.Client.snapshot vd) in
      Petal.Client.write vd ~off:0 (bytes_pat 512 2);
      let s2 = Petal.Client.open_vdisk c (Petal.Client.snapshot vd) in
      Petal.Client.write vd ~off:0 (bytes_pat 512 3);
      let r1 = Petal.Client.read s1 ~off:0 ~len:512 in
      let r2 = Petal.Client.read s2 ~off:0 ~len:512 in
      let r3 = Petal.Client.read vd ~off:0 ~len:512 in
      Alcotest.(check bool) "s1" true (Bytes.equal r1 (bytes_pat 512 1));
      Alcotest.(check bool) "s2" true (Bytes.equal r2 (bytes_pat 512 2));
      Alcotest.(check bool) "live" true (Bytes.equal r3 (bytes_pat 512 3)))

let test_two_vdisks_isolated () =
  Sim.run (fun () ->
      let net = Net.create () in
      let tb = Petal.Testbed.build ~net ~nservers:3 ~ndisks:2 () in
      let ch = Host.create "client" in
      let rpc = Rpc.create (Net.attach net ch) in
      let c = Petal.Testbed.client tb ~rpc in
      let v1 = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
      let v2 = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
      Petal.Client.write v1 ~off:0 (bytes_pat 512 1);
      Petal.Client.write v2 ~off:0 (bytes_pat 512 2);
      Alcotest.(check bool) "v1" true
        (Bytes.equal (Petal.Client.read v1 ~off:0 ~len:512) (bytes_pat 512 1));
      Alcotest.(check bool) "v2" true
        (Bytes.equal (Petal.Client.read v2 ~off:0 ~len:512) (bytes_pat 512 2)))

let test_resync_after_degraded_writes () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      Petal.Client.write vd ~off:0 (bytes_pat 65536 1);
      (* Take each server down in turn and write through the
         degradation, so both replicas of chunk 0 go stale at some
         point. *)
      let open Petal.Testbed in
      let n = Array.length tb.hosts in
      for i = 0 to n - 1 do
        Cluster.Host.crash tb.hosts.(i);
        Petal.Client.write vd ~off:0 (bytes_pat 65536 (10 + i));
        Cluster.Host.restart tb.hosts.(i)
      done;
      let final = bytes_pat 65536 (10 + n - 1) in
      (* Let anti-entropy repair the lagging replicas. *)
      Sim.sleep (Sim.sec 30.0);
      let pending =
        Array.fold_left (fun acc s -> acc + Petal.Server.degraded_count s) 0 tb.servers
      in
      Alcotest.(check int) "resync drained" 0 pending;
      (* Now EVERY single-failure view must serve the final data. *)
      for i = 0 to n - 1 do
        Cluster.Host.crash tb.hosts.(i);
        let got = Petal.Client.read vd ~off:0 ~len:65536 in
        Alcotest.(check bool)
          (Printf.sprintf "fresh data with server %d down" i)
          true (Bytes.equal got final);
        Cluster.Host.restart tb.hosts.(i)
      done)

let test_write_guard () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      (* Valid timestamp: accepted. *)
      Petal.Client.set_write_guard vd (fun () -> Some (Sim.now () + Sim.sec 10.0));
      Petal.Client.write vd ~off:0 (bytes_pat 512 1);
      (* Expired timestamp: the server must refuse the write. *)
      Petal.Client.set_write_guard vd (fun () -> Some (Sim.now () - 1));
      (try
         Petal.Client.write vd ~off:0 (bytes_pat 512 2);
         Alcotest.fail "expected Stale_write"
       with Petal.Protocol.Stale_write _ -> ());
      Petal.Client.set_write_guard vd (fun () -> None);
      let got = Petal.Client.read vd ~off:0 ~len:512 in
      Alcotest.(check bool) "stale write was ignored" true
        (Bytes.equal got (bytes_pat 512 1)))

let test_crc_damage_repaired_from_replica () =
  (* §4: "If a sector is damaged such that reading it returns a CRC
     error, Petal's built-in replication can ordinarily recover it." *)
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      let data = bytes_pat 65536 3 in
      Petal.Client.write vd ~off:0 data;
      let open Petal.Testbed in
      (* Chunk 0's primary is server [(root + 0) mod n]; this is the
         first extent it allocated, so it sits at offset 0 of its
         first disk. Damage a sector of it (a media/CRC error). *)
      let n = Array.length tb.servers in
      let primary = Petal.Client.id vd mod n in
      Blockdev.Disk.damage_sector tb.disks.(primary).(0) 17;
      (* The read still succeeds: the primary detects the CRC error,
         pulls a clean copy from the replica and repairs its medium. *)
      let got = Petal.Client.read vd ~off:0 ~len:65536 in
      Alcotest.(check bool) "repaired read" true (Bytes.equal got data);
      (* The repair is durable: read again with the replica down. *)
      let secondary = (primary + 1) mod n in
      Cluster.Host.crash tb.hosts.(secondary);
      let again = Petal.Client.read vd ~off:0 ~len:65536 in
      Alcotest.(check bool) "primary medium repaired" true (Bytes.equal again data))

let test_trusted_addresses () =
  (* §2.2: "accept requests only from a list of network addresses
     belonging to trusted Frangipani server machines". *)
  Sim.run (fun () ->
      let net = Cluster.Net.create () in
      let tb = Petal.Testbed.build ~net ~nservers:3 ~ndisks:2 () in
      let mk name =
        let h = Host.create name in
        Rpc.create (Net.attach net h)
      in
      let trusted_rpc = mk "trusted" and rogue_rpc = mk "rogue" in
      let trusted = Petal.Testbed.client tb ~rpc:trusted_rpc in
      let rogue = Petal.Testbed.client tb ~rpc:rogue_rpc in
      let vid = Petal.Client.create_vdisk trusted ~nrep:2 in
      let vd = Petal.Client.open_vdisk trusted vid in
      Petal.Client.write vd ~off:0 (bytes_pat 512 1);
      (* Lock the cluster down to the trusted machine only. *)
      Array.iter
        (fun s -> Petal.Server.set_trusted s (Some [ Rpc.addr trusted_rpc ]))
        tb.Petal.Testbed.servers;
      (* The trusted machine still works. *)
      ignore (Petal.Client.read vd ~off:0 ~len:512);
      Petal.Client.write vd ~off:512 (bytes_pat 512 2);
      (* The rogue machine is refused everywhere. *)
      let vd_rogue = Petal.Client.open_vdisk rogue vid in
      (try
         ignore (Petal.Client.read vd_rogue ~off:0 ~len:512);
         Alcotest.fail "rogue read should fail"
       with Failure _ | Petal.Protocol.Unavailable _ -> ());
      (try
         Petal.Client.write vd_rogue ~off:0 (bytes_pat 512 9);
         Alcotest.fail "rogue write should fail"
       with Failure _ | Petal.Protocol.Unavailable _ | Petal.Protocol.Stale_write _ -> ());
      (* The data was not modified by the rogue. *)
      let got = Petal.Client.read vd ~off:0 ~len:512 in
      Alcotest.(check bool) "unmodified" true (Bytes.equal got (bytes_pat 512 1)))

let prop_snapshots_match_model =
  (* Interleave writes and snapshots; every snapshot must forever read
     exactly what the model held at its creation instant. *)
  QCheck.Test.make ~name:"snapshots freeze the model state" ~count:15
    QCheck.(
      pair (int_range 0 100000)
        (list_of_size Gen.(int_range 4 20) (pair (int_range 0 100) bool)))
    (fun (seed, script) ->
      Sim.run ~seed (fun () ->
          let _, _, c, vd = setup ~nservers:3 () in
          let model = Bytes.make (64 * 1024) '\000' in
          let snaps = ref [] in
          List.iteri
            (fun k (sector, snap) ->
              if snap then begin
                let id = Petal.Client.snapshot vd in
                snaps := (Petal.Client.open_vdisk c id, Bytes.copy model) :: !snaps
              end
              else begin
                let off = sector * 512 in
                let data = bytes_pat 512 k in
                Petal.Client.write vd ~off data;
                Bytes.blit data 0 model off 512
              end)
            script;
          List.for_all
            (fun (svd, frozen) ->
              Bytes.equal (Petal.Client.read svd ~off:0 ~len:(64 * 1024)) frozen)
            !snaps
          && Bytes.equal (Petal.Client.read vd ~off:0 ~len:(64 * 1024)) model))

let prop_random_io_matches_model =
  QCheck.Test.make ~name:"random chunk I/O matches a flat model" ~count:20
    QCheck.(
      pair (int_range 0 100000)
        (list_of_size Gen.(int_range 1 25)
           (pair (int_range 0 500) (int_range 1 16))))
    (fun (seed, ops) ->
      Sim.run ~seed (fun () ->
          let _, _, _, vd = setup ~nservers:3 () in
          let model = Bytes.make (512 * 1024) '\000' in
          List.iteri
            (fun k (sector, nsect) ->
              let off = sector * 512 and len = nsect * 512 in
              let data = bytes_pat len (k * 37) in
              Petal.Client.write vd ~off data;
              Bytes.blit data 0 model off len)
            ops;
          List.for_all
            (fun (sector, nsect) ->
              let off = sector * 512 and len = nsect * 512 in
              let got = Petal.Client.read vd ~off ~len in
              Bytes.equal got (Bytes.sub model off len))
            ops))

(* --- scatter-gather concurrency ---------------------------------------- *)

let chunk = Petal.Protocol.chunk_bytes

(* A 3-chunk operation must cost roughly one chunk's round trip, not
   three: the client submits all pieces before waiting. A serial
   client would take ~3x the single-chunk time. *)
let test_multichunk_concurrent () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let t0 = Sim.now () in
      Petal.Client.write vd ~off:0 (bytes_pat chunk 1);
      let w1 = Sim.now () - t0 in
      let data = bytes_pat (3 * chunk) 2 in
      let t0 = Sim.now () in
      Petal.Client.write vd ~off:(4 * chunk) data;
      let w3 = Sim.now () - t0 in
      Alcotest.(check bool)
        (Printf.sprintf "3-chunk write ~1 RTT (1-chunk %dns, 3-chunk %dns)" w1 w3)
        true
        (w3 < 2 * w1);
      let got = Petal.Client.read vd ~off:(4 * chunk) ~len:(3 * chunk) in
      Alcotest.(check bool) "3-chunk contents" true (Bytes.equal data got);
      let t0 = Sim.now () in
      ignore (Petal.Client.read vd ~off:0 ~len:chunk);
      let r1 = Sim.now () - t0 in
      let t0 = Sim.now () in
      ignore (Petal.Client.read vd ~off:(4 * chunk) ~len:(3 * chunk));
      let r3 = Sim.now () - t0 in
      Alcotest.(check bool)
        (Printf.sprintf "3-chunk read ~1 RTT (1-chunk %dns, 3-chunk %dns)" r1 r3)
        true
        (r3 < 2 * r1))

(* Two independently submitted writes overlap: awaiting both costs
   about one write, not two. *)
let test_async_handles_overlap () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let t0 = Sim.now () in
      Petal.Client.write vd ~off:0 (bytes_pat chunk 3);
      let w1 = Sim.now () - t0 in
      let t0 = Sim.now () in
      let h1 = Petal.Client.write_async vd ~off:(8 * chunk) (bytes_pat chunk 4) in
      let h2 = Petal.Client.write_async vd ~off:(16 * chunk) (bytes_pat chunk 5) in
      Petal.Client.await h1;
      Petal.Client.await h2;
      let w2 = Sim.now () - t0 in
      Alcotest.(check bool)
        (Printf.sprintf "two async writes overlap (one %dns, both %dns)" w1 w2)
        true
        (w2 < 2 * w1);
      Alcotest.(check bool) "first write landed" true
        (Bytes.equal (bytes_pat chunk 4) (Petal.Client.read vd ~off:(8 * chunk) ~len:chunk));
      Alcotest.(check bool) "second write landed" true
        (Bytes.equal (bytes_pat chunk 5) (Petal.Client.read vd ~off:(16 * chunk) ~len:chunk)))

(* With 2 servers and one down, a 4-chunk write has two pieces whose
   primary is dead. Each pays the 2 s failover timeout — but they must
   pay it concurrently (elapsed ~2 s); a serial client would need over
   4 s. Contents must survive the degraded writes, readable from the
   surviving replica (reads fail over concurrently too). *)
let test_failover_concurrent_pieces () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup ~nservers:2 () in
      let data = bytes_pat (4 * chunk) 11 in
      Host.crash tb.Petal.Testbed.hosts.(0);
      let t0 = Sim.now () in
      Petal.Client.write vd ~off:0 data;
      let w = Sim.now () - t0 in
      Alcotest.(check bool)
        (Printf.sprintf "degraded pieces fail over concurrently (write %dns)" w)
        true
        (w >= Sim.sec 2.0 && w < Sim.sec 3.0);
      let t0 = Sim.now () in
      let got = Petal.Client.read vd ~off:0 ~len:(4 * chunk) in
      let r = Sim.now () - t0 in
      Alcotest.(check bool) "degraded contents" true (Bytes.equal data got);
      (* The write's timeouts marked the dead server suspect, so the
         read goes straight to the replica — no second failover wait. *)
      Alcotest.(check bool)
        (Printf.sprintf "suspected primary skipped (read %dns)" r)
        true
        (r < Sim.sec 1.0);
      let s = Petal.Client.op_stats vd in
      Alcotest.(check bool) "skips counted" true (s.Petal.Client.primary_skips > 0))

let test_suspect_reprobe_heals () =
  (* A cut primary is marked suspect and skipped; once the link heals
     and the probe window opens, routing returns to the primary. *)
  Sim.run (fun () ->
      let net = Net.create () in
      let tb = Petal.Testbed.build ~net ~nservers:2 ~ndisks:3 () in
      let rpc = Rpc.create (Net.attach net (Host.create "client")) in
      let c = Petal.Testbed.client tb ~rpc in
      let vd = Petal.Client.open_vdisk c (Petal.Client.create_vdisk c ~nrep:2) in
      let nf = Netfault.create net in
      let client_addr = Rpc.addr rpc in
      (* Two chunks: with two servers their primaries alternate, so
         one piece is certain to have the cut server as primary. *)
      let data = bytes_pat (2 * chunk) 3 in
      Petal.Client.write vd ~off:0 data;
      let p0 = tb.Petal.Testbed.addrs.(0) in
      Netfault.cut nf client_addr p0;
      Petal.Client.write vd ~off:0 (bytes_pat (2 * chunk) 4);
      let s = Petal.Client.op_stats vd in
      Alcotest.(check bool) "timed out on primary" true
        (s.Petal.Client.failovers > 0);
      (* While suspected, ops skip the primary without paying timeouts. *)
      let t0 = Sim.now () in
      ignore (Petal.Client.read vd ~off:0 ~len:(2 * chunk));
      Alcotest.(check bool) "skip is fast" true (Sim.now () - t0 < Sim.sec 1.0);
      Alcotest.(check bool) "skips counted" true
        ((Petal.Client.op_stats vd).Petal.Client.primary_skips > 0);
      Netfault.heal nf client_addr p0;
      Sim.sleep (Sim.sec 6.0) (* past the probe interval *);
      ignore (Petal.Client.read vd ~off:0 ~len:(2 * chunk));
      Petal.Client.write vd ~off:0 (bytes_pat (2 * chunk) 5);
      Alcotest.(check bool) "probe healed the suspicion" true
        ((Petal.Client.op_stats vd).Petal.Client.probe_heals > 0))

(* --- scatter-gather multi-extent reads ------------------------------------- *)

let test_read_runs_coalesce () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let data = bytes_pat 65536 11 in
      Petal.Client.write vd ~off:0 data;
      let s0 = Petal.Client.op_stats vd in
      let bufs =
        Petal.Client.await
          (Petal.Client.read_runs_async vd [ (0, 32768); (32768, 32768) ])
      in
      (match bufs with
      | [ a; b ] ->
        Alcotest.(check bool) "first extent" true
          (Bytes.equal a (Bytes.sub data 0 32768));
        Alcotest.(check bool) "second extent" true
          (Bytes.equal b (Bytes.sub data 32768 32768))
      | _ -> Alcotest.fail "expected two buffers");
      let s1 = Petal.Client.op_stats vd in
      let open Petal.Client in
      (* Two adjacent extents in one chunk: two pieces, one wire RPC. *)
      Alcotest.(check int) "pieces" 2 (s1.read_pieces - s0.read_pieces);
      Alcotest.(check int) "rpcs" 1 (s1.read_rpcs - s0.read_rpcs);
      Alcotest.(check int) "coalesced" 1 (s1.read_coalesced - s0.read_coalesced))

(* The write-side mirror: two adjacent extents in one chunk go down
   as one gathered wire RPC. *)
let test_write_runs_coalesce () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let a = bytes_pat 32768 12 and b = bytes_pat 32768 13 in
      let s0 = Petal.Client.op_stats vd in
      Petal.Client.await
        (Petal.Client.write_runs_async vd [ (0, a); (32768, b) ]);
      let s1 = Petal.Client.op_stats vd in
      let open Petal.Client in
      Alcotest.(check int) "pieces" 2 (s1.write_pieces - s0.write_pieces);
      Alcotest.(check int) "rpcs" 1 (s1.write_rpcs - s0.write_rpcs);
      Alcotest.(check int) "coalesced" 1 (s1.write_coalesced - s0.write_coalesced);
      let back = Petal.Client.read vd ~off:0 ~len:65536 in
      Alcotest.(check bool) "both extents landed" true
        (Bytes.equal (Bytes.sub back 0 32768) a
        && Bytes.equal (Bytes.sub back 32768 32768) b))

let test_read_runs_overlap () =
  Sim.run (fun () ->
      let _, _, _, vd = setup () in
      let cb = Petal.Protocol.chunk_bytes in
      let nchunks = 4 in
      for i = 0 to nchunks - 1 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat cb (20 + i))
      done;
      let t0 = Sim.now () in
      ignore (Petal.Client.read vd ~off:0 ~len:cb);
      let single = Sim.now () - t0 in
      let t0 = Sim.now () in
      let bufs =
        Petal.Client.await
          (Petal.Client.read_runs_async vd
             (List.init nchunks (fun i -> (i * cb, cb))))
      in
      let batch = Sim.now () - t0 in
      List.iteri
        (fun i b ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d" i)
            true
            (Bytes.equal b (bytes_pat cb (20 + i))))
        bufs;
      (* All four distinct-chunk pieces must be in flight together:
         far cheaper than four serial single-chunk reads. *)
      Alcotest.(check bool) "pieces overlap" true (batch < 2 * single))

let test_read_runs_failover_concurrent () =
  Sim.run (fun () ->
      let _, tb, _, vd = setup () in
      let cb = Petal.Protocol.chunk_bytes in
      let nchunks = 6 in
      for i = 0 to nchunks - 1 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat cb (40 + i))
      done;
      Host.crash tb.Petal.Testbed.hosts.(0);
      let t0 = Sim.now () in
      let bufs =
        Petal.Client.await
          (Petal.Client.read_runs_async vd
             (List.init nchunks (fun i -> (i * cb, cb))))
      in
      let elapsed = Sim.now () - t0 in
      List.iteri
        (fun i b ->
          Alcotest.(check bool)
            (Printf.sprintf "degraded chunk %d" i)
            true
            (Bytes.equal b (bytes_pat cb (40 + i))))
        bufs;
      (* Pieces routed at the dead primary fail over independently;
         their 2 s timeouts overlap rather than accumulate, so one
         slow piece cannot serialise the whole batch. *)
      Alcotest.(check bool) "failovers overlap" true (elapsed < Sim.sec 3.0))

(* --- dynamic reconfiguration ----------------------------------------- *)

(* Wait (bounded) until every server has committed map epoch [e],
   finished any pending transfer, drained its push backlog and freed
   chunks it no longer owns. *)
let wait_reconfigured ?(bound = Sim.sec 120.0) tb e =
  let deadline = Sim.now () + bound in
  let settled () =
    Array.for_all
      (fun s ->
        Petal.Server.current_epoch s = e
        && (not (Petal.Server.pending_transfer s))
        && Petal.Server.degraded_count s = 0
        && Petal.Server.nonowned_chunk_count s = 0)
      tb.Petal.Testbed.servers
  in
  while (not (settled ())) && Sim.now () < deadline do
    Sim.sleep (Sim.ms 500)
  done;
  Alcotest.(check bool) "reconfiguration settled" true (settled ())

let test_add_server_migrates () =
  Sim.run (fun () ->
      let _, tb, c, vd = setup ~nservers:4 ~nactive:3 () in
      let cb = Petal.Protocol.chunk_bytes in
      let nchunks = 12 in
      for i = 0 to nchunks - 1 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 4096 (60 + i))
      done;
      Alcotest.(check int) "standby stores nothing" 0
        (Petal.Server.chunk_count tb.Petal.Testbed.servers.(3));
      Petal.Client.add_server c ~idx:3;
      wait_reconfigured tb 1;
      (* The joiner now owns (and stores) its share of the chunks. *)
      Alcotest.(check bool) "joiner holds chunks" true
        (Petal.Server.chunk_count tb.Petal.Testbed.servers.(3) > 0);
      Alcotest.(check (list int)) "map grew" [ 0; 1; 2; 3 ]
        (Petal.Server.current_active tb.Petal.Testbed.servers.(0));
      (* The client still routes under the old map: its next reads hit
         Wrong_epoch, refetch the map, and succeed transparently. *)
      for i = 0 to nchunks - 1 do
        let got = Petal.Client.read vd ~off:(i * cb) ~len:4096 in
        Alcotest.(check bool)
          (Printf.sprintf "chunk %d survives add" i)
          true
          (Bytes.equal got (bytes_pat 4096 (60 + i)))
      done;
      let st = Petal.Client.op_stats vd in
      Alcotest.(check bool) "client refetched map" true (st.map_refreshes >= 1);
      Alcotest.(check bool) "wrong-epoch retries recorded" true
        (st.wrong_epoch_retries >= 1))

let test_remove_server_drains_owner () =
  Sim.run (fun () ->
      let _, tb, c, vd = setup ~nservers:4 () in
      let cb = Petal.Protocol.chunk_bytes in
      let nchunks = 12 in
      for i = 0 to nchunks - 1 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 4096 (80 + i))
      done;
      Petal.Client.remove_server c ~idx:1;
      wait_reconfigured tb 1;
      (* The decommissioned owner holds nothing it could serve stale. *)
      Alcotest.(check int) "decommissioned server emptied" 0
        (Petal.Server.chunk_count tb.Petal.Testbed.servers.(1));
      Alcotest.(check (list int)) "map shrank" [ 0; 2; 3 ]
        (Petal.Server.current_active tb.Petal.Testbed.servers.(2));
      for i = 0 to nchunks - 1 do
        let got = Petal.Client.read vd ~off:(i * cb) ~len:4096 in
        Alcotest.(check bool)
          (Printf.sprintf "chunk %d survives remove" i)
          true
          (Bytes.equal got (bytes_pat 4096 (80 + i)))
      done)

let test_reconfig_serialized () =
  Sim.run (fun () ->
      let _, tb, c, vd = setup ~nservers:5 ~nactive:3 () in
      let cb = Petal.Protocol.chunk_bytes in
      for i = 0 to 7 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 4096 i)
      done;
      Petal.Client.add_server c ~idx:3;
      (* A different reconfiguration while the first is pending is
         refused; retrying the same one is idempotent. *)
      (match Petal.Client.add_server c ~idx:4 with
      | () -> Alcotest.fail "second reconfig accepted while pending"
      | exception Failure _ -> ());
      Petal.Client.add_server c ~idx:3;
      wait_reconfigured tb 1;
      (* After the cutover the next one goes through. *)
      Petal.Client.add_server c ~idx:4;
      wait_reconfigured tb 2;
      Alcotest.(check (list int)) "both committed in order" [ 0; 1; 2; 3; 4 ]
        (Petal.Server.current_active tb.Petal.Testbed.servers.(4)))

(* The drain-time write freeze: a writer that re-dirties a moving
   chunk on every push round would defer the cutover forever (the
   PR-5 livelock). Past a grace period the old owners refuse its
   writes with [Wrong_epoch]; the client waits and retries, the
   backlog drains, and the transfer commits — bounded, with no error
   ever surfacing to the writer. *)
let test_freeze_bounds_hot_writer () =
  Sim.run (fun () ->
      let _, tb, c, _ = setup ~nservers:4 ~nactive:3 () in
      let vid = Petal.Client.create_vdisk c ~nrep:2 in
      let vd = Petal.Client.open_vdisk c vid in
      let cb = Petal.Protocol.chunk_bytes in
      (* mirror the servers' ring placement to pick a chunk whose
         owner pair provably changes when member 3 activates *)
      let owners act chunk =
        let a = Array.of_list (List.sort compare act) in
        let n = Array.length a in
        let slot = (vid + chunk) mod n in
        List.sort compare [ a.(slot); a.((slot + 1) mod n) ]
      in
      let rec moving ch =
        if owners [ 0; 1; 2 ] ch <> owners [ 0; 1; 2; 3 ] ch then ch
        else moving (ch + 1)
      in
      let off = moving 0 * cb in
      Petal.Client.write vd ~off (bytes_pat 4096 100);
      Petal.Client.add_server c ~idx:3;
      (* Hammer the moving chunk until the cutover commits. Every
         write must succeed — the freeze is invisible to the client. *)
      let deadline = Sim.now () + Sim.sec 90.0 in
      let k = ref 0 in
      while
        Petal.Server.current_active tb.Petal.Testbed.servers.(0)
        <> [ 0; 1; 2; 3 ]
        && Sim.now () < deadline
      do
        Petal.Client.write vd ~off (bytes_pat 4096 (100 + !k));
        incr k;
        Sim.sleep (Sim.ms 50)
      done;
      wait_reconfigured tb 1;
      let sum f =
        Array.fold_left (fun a s -> a + f s) 0 tb.Petal.Testbed.servers
      in
      Alcotest.(check bool) "freeze engaged" true
        (sum Petal.Server.freeze_reject_count > 0);
      Alcotest.(check bool) "client waited through the freeze" true
        ((Petal.Client.op_stats vd).Petal.Client.freeze_waits > 0);
      let worst =
        Array.fold_left
          (fun a s -> max a (Petal.Server.max_cutover_time s))
          0 tb.Petal.Testbed.servers
      in
      Alcotest.(check bool)
        (Printf.sprintf "cutover bounded (%.1fs)" (Sim.to_sec worst))
        true
        (worst > 0 && worst <= Sim.sec 40.0);
      let got = Petal.Client.read vd ~off ~len:4096 in
      Alcotest.(check bool) "last write survived the handoff" true
        (Bytes.equal got (bytes_pat 4096 (100 + !k - 1))))

(* Deleting a snapshot GCs the chunk versions it pinned; a live disk
   is not deletable, and re-deleting is idempotent. *)
let test_delete_vdisk_gc () =
  Sim.run (fun () ->
      let _, tb, c, _ = setup () in
      let vid = Petal.Client.create_vdisk c ~nrep:2 in
      let vd = Petal.Client.open_vdisk c vid in
      let cb = Petal.Protocol.chunk_bytes in
      for i = 0 to 5 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 4096 i)
      done;
      let sid = Petal.Client.snapshot vd in
      (* Overwrites CoW fresh versions; the old ones stay pinned. *)
      for i = 0 to 5 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 4096 (50 + i))
      done;
      let sum f =
        Array.fold_left (fun a s -> a + f s) 0 tb.Petal.Testbed.servers
      in
      let before = sum Petal.Server.disk_bytes_allocated in
      (match Petal.Client.delete_vdisk c ~id:vid with
      | () -> Alcotest.fail "live vdisk deleted"
      | exception Failure _ -> ());
      Petal.Client.delete_vdisk c ~id:sid;
      Alcotest.(check bool) "pinned versions GCed" true
        (sum Petal.Server.snap_gc_chunk_count > 0);
      Alcotest.(check bool) "space reclaimed" true
        (sum Petal.Server.disk_bytes_allocated < before);
      (* idempotent: the snapshot is already gone *)
      Petal.Client.delete_vdisk c ~id:sid;
      for i = 0 to 5 do
        let got = Petal.Client.read vd ~off:(i * cb) ~len:4096 in
        Alcotest.(check bool)
          (Printf.sprintf "live chunk %d intact" i)
          true
          (Bytes.equal got (bytes_pat 4096 (50 + i)))
      done)

(* The other half of the snapshot/reconfiguration interlock: bumping
   the CoW epoch mid-transfer would pin versions the handoff stream
   never carries, so snapshot is refused while a transfer is
   pending — and goes through once the cutover commits. *)
let test_snapshot_refused_while_pending () =
  Sim.run (fun () ->
      let _, tb, c, vd = setup ~nservers:4 ~nactive:3 () in
      let cb = Petal.Protocol.chunk_bytes in
      for i = 0 to 47 do
        Petal.Client.write vd ~off:(i * cb) (bytes_pat 1024 i)
      done;
      Petal.Client.add_server c ~idx:3;
      (match Petal.Client.snapshot vd with
      | _ -> Alcotest.fail "snapshot accepted mid-transfer"
      | exception Failure _ -> ());
      wait_reconfigured tb 1;
      let sid = Petal.Client.snapshot vd in
      Alcotest.(check bool) "snapshot accepted after cutover" true (sid > 0))

let test_reconfig_refused_with_snapshot () =
  Sim.run (fun () ->
      let _, _, c, vd = setup ~nservers:4 ~nactive:3 () in
      Petal.Client.write vd ~off:0 (bytes_pat 4096 5);
      ignore (Petal.Client.snapshot vd);
      (* Snapshots pin old chunk versions the handoff stream does not
         carry; reconfiguration must refuse rather than migrate a
         disk that would lose its history. *)
      match Petal.Client.add_server c ~idx:3 with
      | () -> Alcotest.fail "reconfig accepted with a frozen snapshot"
      | exception Failure _ -> ())

let () =
  Alcotest.run "petal"
    [
      ( "data path",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "sparse 2^62 space" `Quick test_sparse_space;
          Alcotest.test_case "unwritten reads zero" `Quick test_unwritten_zero;
          Alcotest.test_case "cross-chunk I/O" `Quick test_cross_chunk;
          Alcotest.test_case "multi-chunk pieces issue concurrently" `Quick
            test_multichunk_concurrent;
          Alcotest.test_case "async handles overlap" `Quick test_async_handles_overlap;
          Alcotest.test_case "multi-extent read coalesces" `Quick
            test_read_runs_coalesce;
          Alcotest.test_case "multi-extent write coalesces" `Quick
            test_write_runs_coalesce;
          Alcotest.test_case "multi-extent pieces overlap" `Quick
            test_read_runs_overlap;
          Alcotest.test_case "multi-extent failover concurrent" `Quick
            test_read_runs_failover_concurrent;
          QCheck_alcotest.to_alcotest prop_random_io_matches_model;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "read failover" `Quick test_failover_read;
          Alcotest.test_case "failover pieces stay concurrent" `Quick
            test_failover_concurrent_pieces;
          Alcotest.test_case "unavailable raises" `Quick test_unreplicated_unavailable;
          Alcotest.test_case "lease write guard" `Quick test_write_guard;
          Alcotest.test_case "resync after degraded writes" `Quick
            test_resync_after_degraded_writes;
          Alcotest.test_case "suspected primary re-probed after heal" `Quick
            test_suspect_reprobe_heals;
          Alcotest.test_case "trusted address list" `Quick test_trusted_addresses;
          Alcotest.test_case "CRC damage repaired from replica" `Quick
            test_crc_damage_repaired_from_replica;
        ] );
      ( "space management",
        [
          Alcotest.test_case "decommit" `Quick test_decommit;
          Alcotest.test_case "two vdisks isolated" `Quick test_two_vdisks_isolated;
        ] );
      ( "reconfiguration",
        [
          Alcotest.test_case "add server migrates ownership" `Quick
            test_add_server_migrates;
          Alcotest.test_case "remove server drains old owner" `Quick
            test_remove_server_drains_owner;
          Alcotest.test_case "reconfigs serialized, retries idempotent" `Quick
            test_reconfig_serialized;
          Alcotest.test_case "refused while a snapshot exists" `Quick
            test_reconfig_refused_with_snapshot;
          Alcotest.test_case "freeze bounds a hot-chunk writer" `Quick
            test_freeze_bounds_hot_writer;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "copy-on-write" `Quick test_snapshot_cow;
          Alcotest.test_case "survives decommit" `Quick test_snapshot_survives_decommit;
          Alcotest.test_case "two snapshots" `Quick test_two_snapshots;
          Alcotest.test_case "delete GCs pinned versions" `Quick
            test_delete_vdisk_gc;
          Alcotest.test_case "refused while a transfer is pending" `Quick
            test_snapshot_refused_while_pending;
          QCheck_alcotest.to_alcotest prop_snapshots_match_model;
        ] );
    ]
