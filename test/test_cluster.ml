open Simkit
open Cluster

type Net.payload += Ping of int | Pong of int | Note of string

let mkpair () =
  let net = Net.create () in
  let ha = Host.create "a" and hb = Host.create "b" in
  let pa = Net.attach net ha and pb = Net.attach net hb in
  (net, ha, hb, pa, pb)

let test_send_recv () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      Net.send pa ~dst:(Net.addr pb) ~size:100 (Ping 7);
      let src, m = Net.recv pb in
      Alcotest.(check int) "src" (Net.addr pa) src;
      match m with
      | Ping 7 -> ()
      | _ -> Alcotest.fail "wrong payload")

let test_link_occupancy () =
  (* Two 1 MB messages on a 155 Mbit/s link: the second waits for the
     first, so total delivery time is >= 2 * 1MB*8/155e6 s ~ 103 ms. *)
  let t =
    Sim.run (fun () ->
        let _, _, _, pa, pb = mkpair () in
        let mb = 1_000_000 in
        Net.send pa ~dst:(Net.addr pb) ~size:mb (Ping 1);
        Net.send pa ~dst:(Net.addr pb) ~size:mb (Ping 2);
        ignore (Net.recv pb);
        ignore (Net.recv pb);
        Sim.now ())
  in
  Alcotest.(check bool) "serialised on tx link" true (t >= Sim.ms 103)

let test_crash_drops () =
  Sim.run (fun () ->
      let _, _, hb, pa, pb = mkpair () in
      Host.crash hb;
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      Sim.sleep (Sim.sec 1.0);
      (* A receiver spawned after restart must see nothing. *)
      Host.restart hb;
      let got = ref false in
      Sim.spawn (fun () ->
          ignore (Net.recv pb);
          got := true);
      Sim.sleep (Sim.sec 1.0);
      Alcotest.(check bool) "dropped while crashed" false !got)

let test_partition () =
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      Net.set_reachable net (fun _ _ -> false);
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      Sim.sleep (Sim.sec 0.5);
      Net.clear_partition net;
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 2);
      let _, m = Net.recv pb in
      match m with
      | Ping 2 -> ()
      | _ -> Alcotest.fail "partitioned message should have been dropped")

let test_partition_midflight () =
  (* Documented Net semantics: cuts act at the delivery instant, so a
     cut installed while a message is on the wire still drops it. *)
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      let nf = Netfault.create net in
      Net.send pa ~dst:(Net.addr pb) ~size:1_000_000 (Ping 1);
      (* The megabyte is in flight now; cut before it can land. *)
      Netfault.cut nf (Net.addr pa) (Net.addr pb);
      Sim.sleep (Sim.sec 1.0);
      Netfault.heal nf (Net.addr pa) (Net.addr pb);
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 2);
      (match Net.recv pb with
      | _, Ping 2 -> ()
      | _ -> Alcotest.fail "mid-flight message should have been dropped");
      Alcotest.(check int) "cut drop counted" 1 (Netfault.stats nf).Netfault.cut_drops)

let test_netfault_oneway () =
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      let nf = Netfault.create net in
      Netfault.cut ~oneway:true nf (Net.addr pa) (Net.addr pb);
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      Net.send pb ~dst:(Net.addr pa) ~size:10 (Ping 2);
      (match Net.recv pa with
      | _, Ping 2 -> ()
      | _ -> Alcotest.fail "reverse direction must still deliver");
      Sim.sleep (Sim.sec 0.5);
      let got = ref false in
      Sim.spawn (fun () ->
          ignore (Net.recv pb);
          got := true);
      Sim.sleep (Sim.sec 0.5);
      Alcotest.(check bool) "forward direction cut" false !got)

let test_netfault_loss_deterministic () =
  let experiment () =
    Sim.run ~seed:5 (fun () ->
        let net, _, _, pa, pb = mkpair () in
        let nf = Netfault.create ~seed:9 net in
        Netfault.shape ~drop:0.5 nf;
        let got = ref [] in
        Sim.spawn (fun () ->
            while true do
              match Net.recv pb with
              | _, Ping n -> got := n :: !got
              | _ -> ()
            done);
        for i = 1 to 100 do
          Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping i);
          Sim.sleep (Sim.ms 5)
        done;
        Sim.sleep (Sim.sec 1.0);
        (!got, (Netfault.stats nf).Netfault.loss_drops))
  in
  let got, drops = experiment () in
  let got', drops' = experiment () in
  Alcotest.(check bool) "some loss" true (drops > 0 && drops < 100);
  Alcotest.(check (list int)) "same survivors" got got';
  Alcotest.(check int) "same drops" drops drops'

let test_netfault_delay () =
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      let nf = Netfault.create net in
      Netfault.shape ~delay:(Sim.ms 50) nf;
      let t0 = Sim.now () in
      Net.send pa ~dst:(Net.addr pb) ~size:10 (Ping 1);
      ignore (Net.recv pb);
      Alcotest.(check bool) "delayed >= 50 ms" true (Sim.now () - t0 >= Sim.ms 50);
      Alcotest.(check bool) "delay counted" true
        ((Netfault.stats nf).Netfault.delayed >= 1))

let test_rpc_roundtrip () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let ca = Rpc.create pa and cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping n -> Some (Pong (n * 2), 8)
          | _ -> None);
      match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 21) with
      | Ok (Pong 42) -> ()
      | Ok _ -> Alcotest.fail "wrong reply"
      | Error `Timeout -> Alcotest.fail "unexpected timeout")

let test_rpc_timeout_on_crash () =
  Sim.run (fun () ->
      let _, _, hb, pa, pb = mkpair () in
      let ca = Rpc.create pa in
      let cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ _ -> Some (Pong 0, 8));
      Host.crash hb;
      let t0 = Sim.now () in
      (match Rpc.call ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 200) ~size:8 (Ping 1) with
      | Error `Timeout -> ()
      | Ok _ -> Alcotest.fail "expected timeout");
      Alcotest.(check bool) "timed out at deadline" true (Sim.now () - t0 >= Sim.ms 200))

let test_rpc_concurrent_handlers () =
  (* A slow handler must not block a fast one. *)
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let ca = Rpc.create pa and cb = Rpc.create pb in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping 1 ->
            Sim.sleep (Sim.ms 100);
            Some (Pong 1, 8)
          | Ping 2 -> Some (Pong 2, 8)
          | _ -> None);
      let done2 = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 2) with
          | Ok (Pong 2) -> Sim.Ivar.fill done2 (Sim.now ())
          | _ -> Alcotest.fail "fast call failed");
      let t0 = Sim.now () in
      (match Rpc.call ca ~dst:(Rpc.addr cb) ~size:8 (Ping 1) with
      | Ok (Pong 1) -> ()
      | _ -> Alcotest.fail "slow call failed");
      let t_fast = Sim.Ivar.read done2 in
      Alcotest.(check bool) "fast finished before slow" true (t_fast - t0 < Sim.ms 100))

let test_oneway_subscribe () =
  Sim.run (fun () ->
      let _, _, _, pa, pb = mkpair () in
      let _ca = Rpc.create pa and cb = Rpc.create pb in
      let got = ref [] in
      Rpc.on_oneway cb (fun ~src:_ body ->
          match body with
          | Note s -> got := s :: !got
          | _ -> ());
      Rpc.oneway (Rpc.create pa) ~dst:(Rpc.addr cb) ~size:10 (Note "hb");
      Sim.sleep (Sim.ms 10);
      Alcotest.(check (list string)) "received" [ "hb" ] !got)

let test_call_retry_through_fault () =
  (* Replies are cut one-way for a while: the handler must run exactly
     once, retransmissions are absorbed by the dedup cache, and the
     call still succeeds once the cut heals. *)
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      let nf = Netfault.create net in
      let ca = Rpc.create pa and cb = Rpc.create pb in
      let executed = ref 0 in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping n ->
            incr executed;
            Some (Pong (n + 1), 8)
          | _ -> None);
      (* Lose the replies (b -> a) for the first three attempts. *)
      Netfault.cut ~oneway:true nf (Net.addr pb) (Net.addr pa);
      Sim.spawn (fun () ->
          Sim.sleep (Sim.ms 700);
          Netfault.heal nf (Net.addr pb) (Net.addr pa));
      (match
         Rpc.call_retry ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 200)
           ~attempts:8 ~backoff:(Sim.ms 50) ~size:8 (Ping 1)
       with
      | Ok (Pong 2) -> ()
      | Ok _ -> Alcotest.fail "wrong reply"
      | Error `Timeout -> Alcotest.fail "retry should recover after heal");
      Alcotest.(check int) "handler ran once" 1 !executed;
      let sa = Rpc.stats ca and sb = Rpc.stats cb in
      Alcotest.(check bool) "retried" true (sa.Rpc.retries >= 2);
      Alcotest.(check bool) "dups suppressed" true (sb.Rpc.dups_suppressed >= 1))

let test_dedup_eviction_reexecutes () =
  (* The reply cache is bounded: once enough newer dedup requests push
     an entry out, a late retransmission of it re-executes the handler
     instead of hanging or answering from thin air. Cap the cache at 2,
     cut the replies so the client keeps retransmitting, and squeeze
     the first request out with two fillers. *)
  Sim.run (fun () ->
      let net, _, _, pa, pb = mkpair () in
      let nf = Netfault.create net in
      let ca = Rpc.create pa and cb = Rpc.create ~dedup_cap:2 pb in
      let executed = ref 0 in
      Rpc.add_handler cb (fun ~src:_ body ->
          match body with
          | Ping n ->
            if n = 1 then incr executed;
            Some (Pong (n + 1), 8)
          | _ -> None);
      Netfault.cut ~oneway:true nf (Net.addr pb) (Net.addr pa);
      Sim.spawn (fun () ->
          (* Two other dedup requests while the main one retries: their
             cache entries evict it (cap 2). Their replies are cut too;
             we only care about the server-side cache churn. *)
          Sim.sleep (Sim.ms 80);
          ignore
            (Rpc.call_retry ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 100)
               ~attempts:1 ~size:8 (Ping 100));
          ignore
            (Rpc.call_retry ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 100)
               ~attempts:1 ~size:8 (Ping 101)));
      Sim.spawn (fun () ->
          Sim.sleep (Sim.ms 700);
          Netfault.heal nf (Net.addr pb) (Net.addr pa));
      (match
         Rpc.call_retry ca ~dst:(Rpc.addr cb) ~timeout:(Sim.ms 200)
           ~attempts:8 ~backoff:(Sim.ms 50) ~size:8 (Ping 1)
       with
      | Ok (Pong 2) -> ()
      | Ok _ -> Alcotest.fail "wrong reply"
      | Error `Timeout -> Alcotest.fail "evicted entry must not hang the call");
      (* The eviction forced exactly one safe re-execution. *)
      Alcotest.(check int) "handler re-ran once after eviction" 2 !executed;
      let sb = Rpc.stats cb in
      Alcotest.(check bool) "evictions counted" true (sb.Rpc.dedup_evictions >= 1);
      Alcotest.(check bool) "later copies still suppressed" true
        (sb.Rpc.dups_suppressed >= 1))

let test_host_incarnation_guard () =
  Sim.run (fun () ->
      let h = Host.create "x" in
      let inc = Host.incarnation h in
      Alcotest.(check bool) "guard alive" true (Host.guard h inc);
      Host.crash h;
      Alcotest.(check bool) "guard crashed" false (Host.guard h inc);
      Host.restart h;
      Alcotest.(check bool) "guard stale" false (Host.guard h inc);
      Alcotest.(check bool) "guard new inc" true (Host.guard h (Host.incarnation h)))

let test_crash_hooks_run () =
  Sim.run (fun () ->
      let h = Host.create "x" in
      let ran = ref 0 in
      Host.on_crash h (fun () -> incr ran);
      Host.on_crash h (fun () -> incr ran);
      Host.crash h;
      Host.crash h;
      Alcotest.(check int) "hooks run once" 2 !ran)

let test_cpu_utilization () =
  let u =
    Sim.run (fun () ->
        let h = Host.create "x" in
        Host.consume h (Sim.ms 25);
        Sim.sleep (Sim.ms 75);
        Sim.Resource.utilization (Host.cpu h))
  in
  Alcotest.(check (float 0.01)) "25%" 0.25 u

let () =
  Alcotest.run "cluster"
    [
      ( "net",
        [
          Alcotest.test_case "send/recv" `Quick test_send_recv;
          Alcotest.test_case "link occupancy" `Quick test_link_occupancy;
          Alcotest.test_case "crash drops" `Quick test_crash_drops;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "netfault",
        [
          Alcotest.test_case "mid-flight cut drops" `Quick test_partition_midflight;
          Alcotest.test_case "one-way cut" `Quick test_netfault_oneway;
          Alcotest.test_case "seeded loss replays" `Quick
            test_netfault_loss_deterministic;
          Alcotest.test_case "delay shaping" `Quick test_netfault_delay;
          Alcotest.test_case "call_retry through fault" `Quick
            test_call_retry_through_fault;
          Alcotest.test_case "dedup eviction re-executes safely" `Quick
            test_dedup_eviction_reexecutes;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "timeout on crash" `Quick test_rpc_timeout_on_crash;
          Alcotest.test_case "concurrent handlers" `Quick test_rpc_concurrent_handlers;
          Alcotest.test_case "oneway subscribe" `Quick test_oneway_subscribe;
        ] );
      ( "host",
        [
          Alcotest.test_case "incarnation guard" `Quick test_host_incarnation_guard;
          Alcotest.test_case "crash hooks" `Quick test_crash_hooks_run;
          Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization;
        ] );
    ]
