(* The exhaustive soak: every scripted schedule plus seeded schedules
   — by default 20 seeds x 1 simulated hour each — of composed-nemesis
   traffic on a 32-server cluster with continuous invariant checks.
   An hour of simulated time is minutes of host time, so this is not
   part of `dune runtest`; the verify workflow runs it with:

     dune exec test/test_soak_full.exe
     (optionally `-- --seeds N --hours H` to scale the seeded part)

   Any failing seed replays bit-identically under
   `dune exec test/debug_soak.exe -- <seed> --timeline`. *)

module Soak = Workloads.Soak
module Sim = Simkit.Sim

let () =
  let seeds = ref 20 and hours = ref 1.0 in
  let () =
    Arg.parse
      [
        ("--seeds", Arg.Set_int seeds, "N  seeded schedules to run (default 20)");
        ("--hours", Arg.Set_float hours, "H  simulated hours per seed (default 1)");
      ]
      (fun a -> raise (Arg.Bad a))
      "test_soak_full [--seeds N] [--hours H]"
  in
  let failed = ref 0 and ran = ref 0 in
  let t0 = Sys.time () in
  let report spec (o : Soak.outcome) =
    incr ran;
    (match Soak.failures o with
    | [] -> ()
    | fs ->
      incr failed;
      List.iter (Printf.printf "FAIL (%s): %s\n%!" o.Soak.label) fs);
    (* Replay every 7th run: a soak whose failing seeds cannot be
       reproduced from the printed label is worthless. *)
    if !ran mod 7 = 0 then begin
      let o' =
        match spec with
        | Soak.Scripted _ -> Soak.run spec
        | Soak.Random _ ->
          Soak.run ~duration:(Sim.sec (3600.0 *. !hours)) spec
      in
      if o <> o' then begin
        incr failed;
        Printf.printf "FAIL (%s): replay not bit-identical\n%!" o.Soak.label
      end
    end
  in
  Printf.printf "soak: %d scripted + %d seeded x %.1f simulated hour(s)\n%!"
    (List.length Soak.scripted_labels)
    !seeds !hours;
  List.iter
    (fun name ->
      let o = Soak.run (Soak.Scripted name) in
      Printf.printf
        "  %-20s acked %4d failed %3d freeze(rej %3d wait %3d) cutover %5.1fs checks %3d viol %d\n%!"
        name o.Soak.acked o.Soak.failed_ops o.Soak.freeze_rejects
        o.Soak.freeze_waits
        (Sim.to_sec o.Soak.max_cutover_ns)
        o.Soak.checks_run
        (List.length o.Soak.violations);
      report (Soak.Scripted name) o)
    Soak.scripted_labels;
  for n = 0 to !seeds - 1 do
    let spec = Soak.Random n in
    let o = Soak.run ~duration:(Sim.sec (3600.0 *. !hours)) spec in
    Printf.printf
      "  random_%-13d %4.1fh acked %5d failed %4d crash %d reconf %d/%d snap %d/%d cutover %5.1fs checks %4d viol %d\n%!"
      n o.Soak.sim_hours o.Soak.acked o.Soak.failed_ops o.Soak.crashed_fs
      o.Soak.committed o.Soak.requested o.Soak.snapshots_ok
      o.Soak.snapshots_deleted
      (Sim.to_sec o.Soak.max_cutover_ns)
      o.Soak.checks_run
      (List.length o.Soak.violations);
    report spec o
  done;
  Printf.printf "soak: %d runs, %d failed, %.0f s host cpu\n%!" !ran !failed
    (Sys.time () -. t0);
  if !failed > 0 then exit 1
