open Simkit
open Cluster

module P = Paxos.Make (struct
  type t = string
end)

type cluster = {
  net : Net.t;
  hosts : Host.t array;
  rpcs : Rpc.t array;
  replicas : P.t array;
  logs : string list ref array; (* applied commands per replica, reversed *)
}

let mkcluster ?(n = 3) () =
  let net = Net.create () in
  let hosts = Array.init n (fun i -> Host.create (Printf.sprintf "ls%d" i)) in
  let rpcs = Array.map (fun h -> Rpc.create (Net.attach net h)) hosts in
  let peers = Array.to_list (Array.map Rpc.addr rpcs) in
  let logs = Array.init n (fun _ -> ref []) in
  let replicas =
    Array.init n (fun i ->
        P.create ~rpc:rpcs.(i) ~group:1 ~peers ~id:i ~stable:(P.stable ())
          ~apply:(fun _slot cmd -> logs.(i) := cmd :: !(logs.(i))))
  in
  { net; hosts; rpcs; replicas; logs }

let applied c i = List.rev !(c.logs.(i))

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  go a b

let consistent c =
  let n = Array.length c.replicas in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = applied c i and b = applied c j in
      if not (is_prefix a b || is_prefix b a) then ok := false
    done
  done;
  !ok

let test_single_proposer () =
  Sim.run (fun () ->
      let c = mkcluster () in
      let s1 = P.propose c.replicas.(0) "alpha" in
      let s2 = P.propose c.replicas.(0) "beta" in
      Alcotest.(check bool) "slots increase" true (s2 > s1);
      Sim.sleep (Sim.sec 2.0);
      Alcotest.(check (list string)) "replica0" [ "alpha"; "beta" ] (applied c 0);
      Alcotest.(check (list string)) "replica1" [ "alpha"; "beta" ] (applied c 1);
      Alcotest.(check (list string)) "replica2" [ "alpha"; "beta" ] (applied c 2))

let test_concurrent_proposers () =
  Sim.run (fun () ->
      let c = mkcluster () in
      let pending = ref 6 in
      let all = Sim.Ivar.create () in
      for i = 0 to 2 do
        for k = 0 to 1 do
          Sim.spawn (fun () ->
              ignore (P.propose c.replicas.(i) (Printf.sprintf "c%d.%d" i k));
              decr pending;
              if !pending = 0 then Sim.Ivar.fill all ())
        done
      done;
      Sim.Ivar.read all;
      Sim.sleep (Sim.sec 2.0);
      List.iter
        (fun i ->
          Alcotest.(check int)
            (Printf.sprintf "replica %d applied all" i)
            6
            (List.length (applied c i)))
        [ 0; 1; 2 ];
      Alcotest.(check bool) "logs agree" true (consistent c);
      (* No duplicates. *)
      let l = applied c 0 in
      Alcotest.(check int) "distinct" (List.length l)
        (List.length (List.sort_uniq compare l)))

let test_minority_crash () =
  Sim.run (fun () ->
      let c = mkcluster () in
      ignore (P.propose c.replicas.(0) "one");
      Host.crash c.hosts.(2);
      ignore (P.propose c.replicas.(0) "two");
      ignore (P.propose c.replicas.(1) "three");
      Sim.sleep (Sim.sec 2.0);
      Alcotest.(check (list string)) "majority progresses"
        [ "one"; "two"; "three" ] (applied c 0);
      Alcotest.(check bool) "logs agree" true (consistent c))

let test_partition_heals () =
  Sim.run (fun () ->
      let net = Net.create () in
      let hosts = Array.init 3 (fun i -> Host.create (Printf.sprintf "ls%d" i)) in
      let ports = Array.map (fun h -> Net.attach net h) hosts in
      let rpcs = Array.map Rpc.create ports in
      let peers = Array.to_list (Array.map Rpc.addr rpcs) in
      let logs = Array.init 3 (fun _ -> ref []) in
      let replicas =
        Array.init 3 (fun i ->
            P.create ~rpc:rpcs.(i) ~group:1 ~peers ~id:i ~stable:(P.stable ())
              ~apply:(fun _ cmd -> logs.(i) := cmd :: !(logs.(i))))
      in
      (* Cut replica 2 off. *)
      let a2 = Rpc.addr rpcs.(2) in
      Net.set_reachable net (fun s d -> s <> a2 && d <> a2);
      ignore (P.propose replicas.(0) "during-partition");
      Alcotest.(check (list string)) "isolated learns nothing" [] (List.rev !(logs.(2)));
      Net.clear_partition net;
      Sim.sleep (Sim.sec 2.0);
      Alcotest.(check (list string)) "catch-up after heal" [ "during-partition" ]
        (List.rev !(logs.(2))))

let test_five_replicas_two_crashes () =
  Sim.run (fun () ->
      let c = mkcluster ~n:5 () in
      ignore (P.propose c.replicas.(0) "a");
      Host.crash c.hosts.(3);
      Host.crash c.hosts.(4);
      ignore (P.propose c.replicas.(1) "b");
      ignore (P.propose c.replicas.(2) "c");
      Sim.sleep (Sim.sec 2.0);
      Alcotest.(check (list string)) "3-of-5 progresses" [ "a"; "b"; "c" ] (applied c 0);
      Alcotest.(check bool) "agree" true (consistent c))

let prop_safety_random_schedules =
  QCheck.Test.make ~name:"paxos safety under random proposers" ~count:15
    QCheck.(pair (int_range 0 10000) (int_range 2 8))
    (fun (seed, nprop) ->
      Sim.run ~seed (fun () ->
          let c = mkcluster () in
          let pending = ref nprop in
          let all = Sim.Ivar.create () in
          for k = 0 to nprop - 1 do
            Sim.spawn (fun () ->
                Sim.sleep (Sim.random_int (Sim.ms 200));
                let who = Sim.random_int 3 in
                ignore (P.propose c.replicas.(who) (Printf.sprintf "p%d" k));
                decr pending;
                if !pending = 0 then Sim.Ivar.fill all ())
          done;
          Sim.Ivar.read all;
          Sim.sleep (Sim.sec 2.0);
          consistent c
          && List.length (applied c 0) = nprop
          && applied c 0 = applied c 1
          && applied c 1 = applied c 2))

(* --- nemesis schedules: seeded faults inside the Paxos traffic ------- *)

(* Drive [per] proposals from each of [proposers] concurrently (each
   proposer issues its commands in order) and return the sim time at
   which the last proposal was decided. *)
let duel c ~proposers ~per =
  let pending = ref (List.length proposers * per) in
  let all = Sim.Ivar.create () in
  List.iter
    (fun i ->
      Sim.spawn (fun () ->
          for k = 0 to per - 1 do
            ignore (P.propose c.replicas.(i) (Printf.sprintf "n%d.%d" i k))
          done;
          pending := !pending - per;
          if !pending = 0 then Sim.Ivar.fill all ()))
    proposers;
  Sim.Ivar.read all;
  Sim.now ()

let check_converged c ~n ~ncmds =
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d applied all" i)
        ncmds
        (List.length (applied c i)))
    (List.init n Fun.id);
  Alcotest.(check bool) "one decided sequence" true (consistent c);
  Alcotest.(check bool) "all logs equal" true
    (List.for_all (fun i -> applied c i = applied c 0) (List.init n Fun.id));
  let l = applied c 0 in
  Alcotest.(check int) "no duplicates" (List.length l)
    (List.length (List.sort_uniq compare l))

(* Duelling proposers through a 25%-loss network: prepares and
   accepts vanish at random, so ballots collide and get re-fought —
   yet the cluster must converge to a single decided sequence, and
   must do so within a liveness bound of simulated time. *)
let test_nemesis_lossy_duel () =
  Sim.run ~seed:1105 (fun () ->
      let c = mkcluster () in
      let nf = Netfault.create ~seed:7 c.net in
      Netfault.shape ~drop:0.25 nf;
      let t0 = Sim.now () in
      let decided_at = duel c ~proposers:[ 0; 1 ] ~per:5 in
      Netfault.clear nf;
      Sim.sleep (Sim.sec 5.0) (* catch-up daemons sync the laggard *);
      check_converged c ~n:3 ~ncmds:10;
      Alcotest.(check bool) "liveness bound (120 s sim)" true
        (decided_at - t0 < Sim.sec 120.0);
      (* The loss actually contested ballots: some proposal needed a
         higher round than the uncontested minimum. *)
      Alcotest.(check bool) "ballots were fought over" true
        (P.round c.replicas.(0) + P.round c.replicas.(1) > 10);
      let nfst = Netfault.stats nf in
      Alcotest.(check bool) "nemesis dropped traffic" true (nfst.loss_drops > 0))

(* Leader flaps: the current proposer is repeatedly isolated for a
   beat and healed while both it and a rival keep proposing. Every
   flap forces the duel to migrate to whichever side still has a
   majority; decisions must survive each flap and the logs converge
   once the flapping stops. *)
let test_nemesis_leader_flaps () =
  Sim.run ~seed:2210 (fun () ->
      let c = mkcluster () in
      let nf = Netfault.create ~seed:13 c.net in
      let a i = Rpc.addr c.rpcs.(i) in
      let flap victim at =
        [ (at, fun nf -> Netfault.isolate nf (a victim));
          (at + Sim.ms 1500, fun nf -> Netfault.heal_all nf) ]
      in
      Netfault.schedule nf
        (List.concat
           [ flap 0 (Sim.ms 200);
             flap 1 (Sim.sec 4.0);
             flap 0 (Sim.sec 8.0);
             flap 1 (Sim.sec 12.0) ]);
      let t0 = Sim.now () in
      let decided_at = duel c ~proposers:[ 0; 1 ] ~per:4 in
      Sim.sleep (Sim.sec 20.0) (* outlive the schedule, let catch-up run *);
      check_converged c ~n:3 ~ncmds:8;
      Alcotest.(check bool) "liveness bound (120 s sim)" true
        (decided_at - t0 < Sim.sec 120.0))

(* Delay/jitter shaping reorders messages (late promises, stale
   accepts) without losing them; and the whole nemesis run must be
   bit-identically replayable from its seeds. *)
let test_nemesis_delay_replay () =
  let run () =
    let result = ref ([], 0) in
    Sim.run ~seed:3311 (fun () ->
        let c = mkcluster () in
        let nf = Netfault.create ~seed:23 c.net in
        Netfault.shape ~delay:(Sim.ms 40) ~jitter:(Sim.ms 80) ~drop:0.10 nf;
        let _ = duel c ~proposers:[ 0; 1; 2 ] ~per:3 in
        Netfault.clear nf;
        Sim.sleep (Sim.sec 5.0);
        check_converged c ~n:3 ~ncmds:9;
        result := (applied c 0, Sim.now ()));
    !result
  in
  let log1, end1 = run () in
  let log2, end2 = run () in
  Alcotest.(check (list string)) "same decided sequence on replay" log1 log2;
  Alcotest.(check int) "same end time on replay" end1 end2

let () =
  Alcotest.run "paxos"
    [
      ( "paxos",
        [
          Alcotest.test_case "single proposer" `Quick test_single_proposer;
          Alcotest.test_case "concurrent proposers" `Quick test_concurrent_proposers;
          Alcotest.test_case "minority crash" `Quick test_minority_crash;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "5 replicas, 2 crashes" `Quick test_five_replicas_two_crashes;
          QCheck_alcotest.to_alcotest prop_safety_random_schedules;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "duelling proposers, 25% loss" `Quick
            test_nemesis_lossy_duel;
          Alcotest.test_case "leader flaps converge" `Quick
            test_nemesis_leader_flaps;
          Alcotest.test_case "delay shaping, bit-identical replay" `Quick
            test_nemesis_delay_replay;
        ] );
    ]
