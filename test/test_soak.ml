(* The quick soak subset: the scripted freeze/interlock scenarios,
   one short seeded round at reduced scale, and the determinism
   contract. The 20-seed x 1-simulated-hour soak is
   test_soak_full.exe, run from the verify workflow. *)

module Soak = Workloads.Soak
module Sim = Simkit.Sim

let check_clean what (o : Soak.outcome) =
  Alcotest.(check (list string)) what [] (Soak.failures o)

(* The drain-time write freeze: a sustained hot-chunk writer spans the
   whole handoff, yet the cutover commits within the bound — and the
   writer was provably frozen at least once (otherwise the case shows
   nothing). Bounded cutover is asserted inside [failures]. *)
let test_hot_cutover () =
  let o = Soak.run (Soak.Scripted "hot_cutover") in
  check_clean "hot_cutover" o;
  Alcotest.(check bool)
    (Printf.sprintf "freeze engaged (rejects %d)" o.Soak.freeze_rejects)
    true
    (o.Soak.freeze_rejects > 0);
  Alcotest.(check bool)
    (Printf.sprintf "cutover %.1fs within 30s bound"
       (Sim.to_sec o.Soak.max_cutover_ns))
    true
    (o.Soak.max_cutover_ns <= Sim.sec 30.0)

(* A writer frozen at handoff drain time must retry invisibly through
   the Wrong_epoch route — no error surfaces, its data lands. *)
let test_freeze_retry () =
  let o = Soak.run (Soak.Scripted "freeze_retry") in
  check_clean "freeze_retry" o;
  Alcotest.(check int) "no surfaced errors" 0 o.Soak.raw_errors;
  Alcotest.(check bool) "rode through the freeze" true
    (o.Soak.raw_freeze_waits > 0)

(* The §8 snapshot / reconfiguration interlock, in both orders. *)
let test_snapshot_reconf_interlock () =
  let o = Soak.run (Soak.Scripted "snap_during_reconf") in
  check_clean "snap_during_reconf" o;
  let o = Soak.run (Soak.Scripted "reconf_during_snap") in
  check_clean "reconf_during_snap" o

(* One full random-style round with everything composed. *)
let test_composed_quick () =
  check_clean "composed_quick" (Soak.run (Soak.Scripted "composed_quick"))

(* A short seeded soak at reduced scale: one 10-minute round on a
   16-server cluster. *)
let test_seeded_round () =
  check_clean "random_1"
    (Soak.run ~duration:(Sim.sec 600.0) ~fs_servers:16 (Soak.Random 1))

(* Same spec, twice: every outcome field — timeline, violations and
   the simulated end time included — must match, or a failing seed
   from the full soak would be unreproducible in debug_soak. *)
let test_deterministic_replay () =
  let o = Soak.run (Soak.Scripted "hot_cutover") in
  let o' = Soak.run (Soak.Scripted "hot_cutover") in
  Alcotest.(check bool) "scripted replay is bit-identical" true (o = o');
  let r = Soak.run ~duration:(Sim.sec 600.0) ~fs_servers:16 (Soak.Random 2) in
  let r' = Soak.run ~duration:(Sim.sec 600.0) ~fs_servers:16 (Soak.Random 2) in
  Alcotest.(check bool) "seeded replay is bit-identical" true (r = r')

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "hot-chunk cutover is bounded" `Quick
            test_hot_cutover;
          Alcotest.test_case "frozen writer retries invisibly" `Quick
            test_freeze_retry;
          Alcotest.test_case "snapshot/reconf interlock" `Quick
            test_snapshot_reconf_interlock;
          Alcotest.test_case "composed quick round" `Quick test_composed_quick;
          Alcotest.test_case "seeded round" `Quick test_seeded_round;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
        ] );
    ]
