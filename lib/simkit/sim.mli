(** Discrete-event simulation kernel.

    Processes are ordinary OCaml functions run as cooperative
    coroutines via effect handlers. A process runs until it performs a
    blocking operation ({!sleep}, {!suspend}, or a blocking primitive
    from {!Ivar}, {!Mailbox}, {!Resource}); the engine then advances
    virtual time to the next pending event. All blocking operations
    must be performed from inside {!run}.

    Time is measured in integer nanoseconds of {e simulated} time; a
    63-bit [int] covers ~146 years, far more than any experiment. *)

type time = int
(** Simulated time in nanoseconds. *)

val ns : int -> time
val us : int -> time
val ms : int -> time

val sec : float -> time
(** [sec s] is [s] seconds as a time value (rounded to nanoseconds). *)

val to_sec : time -> float
(** [to_sec t] converts back to floating-point seconds. *)

exception Deadlock of string
(** Raised by {!run} when no events remain but the main process has
    not finished. *)

exception Timed_out
(** Raised by {!run} when the [until] horizon is exceeded. *)

val run : ?seed:int -> ?until:time -> (unit -> 'a) -> 'a
(** [run main] creates a fresh engine, runs [main] as the initial
    process and drives the event loop until [main] returns. Processes
    still pending at that point are abandoned (useful for daemons).
    [seed] makes the simulation deterministic (default 42). *)

val now : unit -> time
(** Current simulated time. *)

val sleep : time -> unit
(** Block the calling process for a simulated duration. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current instant. The spawner continues
    immediately; the child runs when the scheduler next picks it. An
    exception escaping a process aborts the whole simulation. Unlike
    blocking operations, [spawn] may also be called from event
    callbacks running outside any process ({!at}, timer bodies are
    started through it internally). *)

val at : time -> (unit -> unit) -> unit
(** [at t f] schedules callback [f] at absolute instant [t] (clamped
    to now if in the past). [f] runs {e outside any process} and must
    not block — it may spawn, send, fill ivars, or schedule further
    callbacks. This is the allocation-lean alternative to
    [spawn (fun () -> sleep (t - now ()); f ())]: one heap event, no
    fiber. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend f] blocks the calling process and hands [f] a resumer
    function; calling the resumer (at most once) with a value
    reschedules the process at the instant of the call. This is the
    primitive from which all blocking abstractions are built.

    [f] runs synchronously at suspension time, outside any process:
    it must only register the resumer (no blocking, no effects). Work
    that must happen after registration belongs in a process spawned
    {e before} calling [suspend]. *)

val rng : unit -> Random.State.t
(** The engine's deterministic random state. *)

val random_float : float -> float
val random_int : int -> int

type stats = {
  events : int;  (** events executed (cancelled skips excluded) *)
  spawns : int;  (** processes started *)
  skipped : int;  (** lazily-cancelled events discarded at pop *)
  heap_len : int;  (** events currently pending *)
}

val stats : unit -> stats
(** Kernel counters: inside {!run}, the live counters of the current
    engine; outside, those of the most recently finished run. The
    [events] count divided by host wall-clock time is the simulator's
    events/sec — the capacity metric the scale experiments gate on. *)

(** Write-once synchronisation variable. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Fill the ivar and wake all readers. Raises [Invalid_argument]
      if already filled. *)

  val read : 'a t -> 'a
  (** Block until filled, then return the value. *)

  val peek : 'a t -> 'a option
  val is_filled : 'a t -> bool
end

(** Unbounded FIFO channel with blocking receive. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val send : 'a t -> 'a -> unit

  val recv : 'a t -> 'a
  (** Block until a message is available. Messages are delivered in
      FIFO order; blocked receivers are served in FIFO order. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end

(** FIFO [k]-server queueing resource; models CPUs, disk arms and
    network links, with utilisation accounting. *)
module Resource : sig
  type t

  val create : ?capacity:int -> string -> t
  (** [create name] makes a resource with [capacity] servers
      (default 1). [name] appears in statistics output. *)

  val acquire : t -> unit
  (** Block until one of the servers is free, then occupy it. *)

  val acquire_cb : t -> (unit -> unit) -> unit
  (** Callback-style acquire: run [k] as soon as a server is free —
      synchronously if one is free now, otherwise from the releasing
      context when this waiter reaches the head of the FIFO queue.
      [k] must not block (it may spawn). Pairs with {!release} exactly
      like {!acquire}; used by event-chain code that has no process of
      its own. *)

  val release : t -> unit

  val use : t -> time -> unit
  (** [use r d] = acquire, hold for [d] simulated time, release. *)

  val reserve : t -> time -> time
  (** [reserve r d] models FIFO store-and-forward occupancy without a
      waiting process: the work starts when the resource frees up
      ([max now free_at]), holds it for [d], and the new completion
      instant is returned (and becomes the next caller's earliest
      start). O(1), no queue, no suspension — the caller chains an
      {!at} callback on the returned instant. Busy-time accounting is
      credited immediately, so {!utilization} stays meaningful, but a
      resource must not mix [reserve] with [acquire]/[use]: the two
      disciplines do not see each other's occupancy. Capacity is
      treated as 1 pipe. *)

  val name : t -> string

  val reset_stats : t -> unit
  (** Restart utilisation accounting at the current instant. *)

  val utilization : t -> float
  (** Mean fraction of servers busy since the last {!reset_stats}
      (or creation). In [0, 1]. *)

  val busy_time : t -> time
  (** Total busy server-time accumulated since the last reset. *)
end

(** Broadcast condition: many waiters, woken all at once. *)
module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> unit
  (** Block until the next {!broadcast}. *)

  val broadcast : t -> unit
end

(** Cancellable one-shot timers. *)
module Timer : sig
  type t

  val after : time -> (unit -> unit) -> t
  (** [after d f] runs [f] as a new process [d] from now unless
      cancelled first. *)

  val cancel : t -> unit
  val is_pending : t -> bool
end
