type action =
  | Crash of (string -> unit)
  | Raise of exn
  | Delay of Sim.time

let enabled = ref false
let total_hits = ref 0
let site_counts : (string, int) Hashtbl.t = Hashtbl.create 64
let armed_global : (int * action) list ref = ref []
let armed_site : (string * int * action) list ref = ref []

let reset () =
  enabled := false;
  total_hits := 0;
  Hashtbl.reset site_counts;
  armed_global := [];
  armed_site := []

let enable () = enabled := true
let is_enabled () = !enabled
let total () = !total_hits

let count site =
  match Hashtbl.find_opt site_counts site with Some c -> c | None -> 0

let counts () =
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) site_counts []
  |> List.sort compare

let arm ~at action = armed_global := (at, action) :: !armed_global
let arm_site site ~at action = armed_site := (site, at, action) :: !armed_site

let perform site = function
  | Crash f -> f site
  | Raise e -> raise e
  | Delay d -> Sim.sleep d

let hit site =
  if !enabled then begin
    incr total_hits;
    let c = count site + 1 in
    Hashtbl.replace site_counts site c;
    (match List.partition (fun (at, _) -> at = !total_hits) !armed_global with
    | [], _ -> ()
    | fired, rest ->
      armed_global := rest;
      List.iter (fun (_, a) -> perform site a) fired);
    match List.partition (fun (s, at, _) -> s = site && at = c) !armed_site with
    | [], _ -> ()
    | fired, rest ->
      armed_site := rest;
      List.iter (fun (_, _, a) -> perform site a) fired
  end
