type time = int

let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let sec s = int_of_float ((s *. 1e9) +. 0.5)
let to_sec t = float_of_int t /. 1e9

exception Deadlock of string
exception Timed_out

(* An event either runs a plain callback or resumes a sleeping
   process; storing the continuation directly saves a closure per
   [sleep], the single most common operation. *)
type event = {
  at : time;
  seq : int;
  mutable cancelled : bool;
  kind : kind;
}

and kind =
  | Fn of (unit -> unit)
  | K of (unit, unit) Effect.Deep.continuation

(* Binary min-heap of events ordered by (at, seq); seq breaks ties so
   same-instant events run in schedule order. Sifting moves a hole
   instead of swapping (one store per level instead of three), with
   unchecked array access — indices are maintained in-bounds by
   construction. *)
module Heap = struct
  type t = { mutable arr : event array; mutable len : int }

  let dummy = { at = 0; seq = 0; cancelled = true; kind = Fn ignore }
  let create () = { arr = Array.make 256 dummy; len = 0 }

  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h ev =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    let arr = h.arr in
    let i = h.len in
    h.len <- i + 1;
    let rec up i =
      if i = 0 then 0
      else begin
        let p = (i - 1) / 2 in
        let pe = Array.unsafe_get arr p in
        if less ev pe then begin
          Array.unsafe_set arr i pe;
          up p
        end
        else i
      end
    in
    Array.unsafe_set arr (up i) ev

  (* Precondition: len > 0 (the run loop checks). *)
  let pop h =
    let arr = h.arr in
    let top = Array.unsafe_get arr 0 in
    let n = h.len - 1 in
    h.len <- n;
    let last = Array.unsafe_get arr n in
    Array.unsafe_set arr n dummy;
    if n > 0 then begin
      let rec down i =
        let l = (2 * i) + 1 in
        if l >= n then i
        else begin
          let r = l + 1 in
          let c =
            if r < n && less (Array.unsafe_get arr r) (Array.unsafe_get arr l)
            then r
            else l
          in
          let ce = Array.unsafe_get arr c in
          if less ce last then begin
            Array.unsafe_set arr i ce;
            down c
          end
          else i
        end
      in
      Array.unsafe_set arr (down 0) last
    end;
    top
end

type stats = {
  events : int;  (** events executed (cancelled skips excluded) *)
  spawns : int;  (** processes started *)
  skipped : int;  (** lazily-cancelled events discarded at pop *)
  heap_len : int;  (** events currently pending *)
}

let zero_stats = { events = 0; spawns = 0; skipped = 0; heap_len = 0 }

type engine = {
  mutable now : time;
  mutable seq : int;
  heap : Heap.t;
  rng : Random.State.t;
  mutable exec : (unit -> unit) -> unit;
      (* Start a function as a process (fiber) immediately; installed
         by [run]. Lets [spawn] and timer fire-paths avoid performing
         effects, so they also work from event callbacks that run
         outside any process. *)
  mutable n_events : int;
  mutable n_spawns : int;
  mutable n_skipped : int;
}

(* The engine currently executing; set only inside [run]. *)
let current : engine option ref = ref None

(* Counters of the most recently finished [run], so benchmarks can
   report events/sec after the fact. *)
let last_stats = ref zero_stats

let engine () =
  match !current with
  | Some e -> e
  | None -> invalid_arg "Sim: blocking operation performed outside Sim.run"

let schedule eng at kind =
  eng.seq <- eng.seq + 1;
  let ev = { at; seq = eng.seq; cancelled = false; kind } in
  Heap.push eng.heap ev;
  ev

let mk_stats e =
  {
    events = e.n_events;
    spawns = e.n_spawns;
    skipped = e.n_skipped;
    heap_len = e.heap.Heap.len;
  }

let stats () =
  match !current with Some e -> mk_stats e | None -> !last_stats

type _ Effect.t +=
  | E_sleep : time -> unit Effect.t
  | E_suspend : (('v -> unit) -> unit) -> 'v Effect.t

let now () = (engine ()).now
let rng () = (engine ()).rng
let random_float x = Random.State.float (rng ()) x

let random_int n =
  (* Random.State.int is limited to bounds < 2^30, too small for
     nanosecond durations. *)
  if n <= 0 then 0 else Random.State.full_int (rng ()) n

let sleep d = Effect.perform (E_sleep d)
let suspend f = Effect.perform (E_suspend f)

let spawn ?name:_ f =
  let e = engine () in
  e.n_spawns <- e.n_spawns + 1;
  ignore (schedule e e.now (Fn (fun () -> e.exec f)))

let at t f =
  let e = engine () in
  let t = if t < e.now then e.now else t in
  ignore (schedule e t (Fn f))

let run ?(seed = 42) ?until main =
  let eng =
    {
      now = 0;
      seq = 0;
      heap = Heap.create ();
      rng = Random.State.make [| seed |];
      exec = (fun _ -> assert false);
      n_events = 0;
      n_spawns = 0;
      n_skipped = 0;
    }
  in
  let open Effect.Deep in
  let rec exec f = match_with f () handler
  and handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | E_sleep d ->
            Some
              (fun (k : (c, unit) continuation) ->
                ignore (schedule eng (eng.now + max 0 d) (K k)))
          | E_suspend f ->
            Some
              (fun (k : (c, unit) continuation) ->
                let resumed = ref false in
                f (fun v ->
                    if !resumed then invalid_arg "Sim.suspend: resumed twice";
                    resumed := true;
                    ignore
                      (schedule eng eng.now (Fn (fun () -> continue k v)))))
          | _ -> None);
    }
  in
  eng.exec <- exec;
  let result = ref None in
  ignore (schedule eng 0 (Fn (fun () -> exec (fun () -> result := Some (main ())))));
  let saved = !current in
  current := Some eng;
  let finish v =
    last_stats := mk_stats eng;
    current := saved;
    v
  in
  let bail e =
    last_stats := mk_stats eng;
    current := saved;
    raise e
  in
  let rec loop () =
    match !result with
    | Some v -> finish v
    | None ->
      if eng.heap.Heap.len = 0 then
        bail (Deadlock "Sim.run: main process blocked forever")
      else begin
        let ev = Heap.pop eng.heap in
        if ev.cancelled then begin
          eng.n_skipped <- eng.n_skipped + 1;
          loop ()
        end
        else begin
          (match until with
          | Some u when ev.at > u -> bail Timed_out
          | _ -> ());
          eng.now <- ev.at;
          eng.n_events <- eng.n_events + 1;
          (try
             match ev.kind with
             | Fn f -> f ()
             | K k -> continue k ()
           with e -> bail e);
          loop ()
        end
      end
  in
  loop ()

module Ivar = struct
  type 'a t = { mutable value : 'a option; mutable waiters : ('a -> unit) list }

  let create () = { value = None; waiters = [] }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun w -> w v) ws

  let read t =
    match t.value with
    | Some v -> v
    | None -> suspend (fun resume -> t.waiters <- resume :: t.waiters)

  let peek t = t.value
  let is_filled t = t.value <> None
end

module Mailbox = struct
  type 'a t = { msgs : 'a Queue.t; readers : ('a -> unit) Queue.t }

  let create () = { msgs = Queue.create (); readers = Queue.create () }

  let send t m =
    match Queue.take_opt t.readers with
    | Some r -> r m
    | None -> Queue.push m t.msgs

  let recv t =
    match Queue.take_opt t.msgs with
    | Some m -> m
    | None -> suspend (fun resume -> Queue.push resume t.readers)

  let try_recv t = Queue.take_opt t.msgs
  let length t = Queue.length t.msgs
end

module Resource = struct
  type t = {
    rname : string;
    capacity : int;
    mutable in_use : int;
    waiters : (unit -> unit) Queue.t;
    mutable busy : int; (* integral of in_use over time since reset *)
    mutable last_change : time;
    mutable reset_at : time;
    mutable free_at : time; (* head-of-line completion time, for [reserve] *)
  }

  let create ?(capacity = 1) rname =
    if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
    { rname; capacity; in_use = 0; waiters = Queue.create (); busy = 0;
      last_change = 0; reset_at = 0; free_at = 0 }

  let name t = t.rname

  let account t =
    let n = now () in
    t.busy <- t.busy + (t.in_use * (n - t.last_change));
    t.last_change <- n

  let acquire t =
    if t.in_use < t.capacity then begin
      account t;
      t.in_use <- t.in_use + 1
    end
    else suspend (fun resume -> Queue.push (fun () -> resume ()) t.waiters)

  let acquire_cb t k =
    if t.in_use < t.capacity then begin
      account t;
      t.in_use <- t.in_use + 1;
      k ()
    end
    else Queue.push k t.waiters

  let release t =
    if t.in_use <= 0 then invalid_arg "Resource.release: not acquired";
    match Queue.take_opt t.waiters with
    | Some w -> w () (* hand the server over; in_use unchanged *)
    | None ->
      account t;
      t.in_use <- t.in_use - 1

  let use t d =
    acquire t;
    sleep d;
    release t

  let reserve t d =
    let n = now () in
    let start = if t.free_at > n then t.free_at else n in
    let fin = start + max 0 d in
    t.free_at <- fin;
    t.busy <- t.busy + max 0 d;
    fin

  let reset_stats t =
    t.busy <- 0;
    t.last_change <- now ();
    t.reset_at <- now ()

  let busy_time t =
    account t;
    t.busy

  let utilization t =
    account t;
    let span = now () - t.reset_at in
    if span <= 0 then 0.0
    else float_of_int t.busy /. float_of_int (t.capacity * span)
end

module Condition = struct
  type t = { mutable waiters : (unit -> unit) list }

  let create () = { waiters = [] }
  let wait t = suspend (fun resume -> t.waiters <- (fun () -> resume ()) :: t.waiters)

  let broadcast t =
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun w -> w ()) ws
end

module Timer = struct
  type t = { mutable ev : event; mutable fired : bool }

  (* One heap event per timer, no fiber until it actually fires;
     cancellation just flags the event, which the run loop discards
     when its instant arrives (lazy cancel). *)
  let after d f =
    let e = engine () in
    let t = { ev = Heap.dummy; fired = false } in
    t.ev <-
      schedule e
        (e.now + max 0 d)
        (Fn
           (fun () ->
             t.fired <- true;
             e.exec f));
    t

  let cancel t = t.ev.cancelled <- true
  let is_pending t = (not t.fired) && not t.ev.cancelled
end
