(** Deterministic crash/delay/error injection sites.

    Subsystems mark their durability boundaries with {!hit}
    (disabled: one branch, no allocation, no perturbation of the
    simulation schedule). A test enables the registry, runs a
    workload once to {e count} the hits, then re-runs it with an
    action {e armed} at hit [k]: because the simulation is
    deterministic under one seed and counting performs no effects,
    the armed run replays the counting run exactly up to hit [k] —
    so the two-pass sweep enumerates every intermediate crash point
    of the workload.

    The registry is deliberately global (sites live in library code
    across simkit, blockdev, petal, frangipani); call {!reset} at
    the start of each [Sim.run] that uses it. When no test ever
    calls {!enable}, every hook is inert.

    Actions are one-shot. [Crash f] calls [f site] inline (the
    callback typically crashes a host — it must not block). [Raise]
    raises from the hitting process: only arm it at sites whose
    callers handle the exception (e.g. ["recovery.apply"]); raising
    inside a server's request handler would abort the simulation.
    [Delay] sleeps the hitting process, perturbing schedules. *)

type action =
  | Crash of (string -> unit)  (** called with the site name, inline *)
  | Raise of exn  (** raised from the process that hit the site *)
  | Delay of Sim.time  (** sleep the hitting process *)

val reset : unit -> unit
(** Disable and forget all counters and armed actions. *)

val enable : unit -> unit
val is_enabled : unit -> bool

val hit : string -> unit
(** Mark one dynamic occurrence of a named site. Counts it (when
    enabled) and performs any action armed for this global hit
    number or this site's hit number. *)

val total : unit -> int
(** Dynamic hits across all sites since {!reset}. *)

val count : string -> int
val counts : unit -> (string * int) list
(** Per-site hit counts, sorted by site name. *)

val arm : at:int -> action -> unit
(** Fire when the global hit counter reaches [at] (1-based). *)

val arm_site : string -> at:int -> action -> unit
(** Fire on the [at]-th hit of one named site. *)
