(** Wire protocol and shared constants of the Petal virtual-disk
    service.

    Virtual addresses are OCaml ints, so the paper's 2{^64}-byte
    address space becomes 2{^62} here; all other constants (64 KB
    commit granularity, 512 B sectors) are the paper's. *)

open Cluster

let chunk_bytes = 65536
(** Physical space is committed and decommitted in 64 KB chunks. *)

let sector_bytes = 512

(** Which epoch of a chunk a read refers to: the live disk or a
    snapshot frozen at a given epoch. *)
type epoch_sel = Current | At of int

(** Management commands agreed on via Paxos; applying them in log
    order keeps every server's virtual-disk table identical — and,
    since PR 5, the cluster's chunk-ownership map as well.

    Membership reconfiguration is a two-phase handoff: [Add_server] /
    [Remove_server] open a {e pending transfer} towards a target
    active set (the old map stays authoritative for all data traffic
    while owners stream the affected chunks to their future owners in
    the background), and [Complete_transfer] — proposed only once
    every obligated server reports a drained transfer backlog —
    atomically cuts the cluster over to the new map and bumps the map
    epoch. [target] names the map epoch the transfer would commit, so
    duplicate proposals (every server polls for drain and may race to
    propose) are idempotent. *)
type mgmt_cmd =
  | Create_vdisk of { nrep : int }
  | Snapshot of { src : int }
      (** Freeze [src]'s current epoch. Refused while a transfer is
          pending: the handoff stream carries only head-version bytes,
          so an epoch bump mid-transfer would strand the newly pinned
          versions on the old owners. *)
  | Delete_vdisk of { id : int }
      (** Drop a snapshot disk and free the chunk versions only it
          pinned. Live disks are not deletable; refused while a
          transfer is pending (version GC must not race the handoff
          enumeration). Deleting the last snapshot re-enables
          reconfiguration (which {!Add_server} refuses while any
          snapshot exists). *)
  | Add_server of { idx : int }
      (** Begin activating standby member [idx] (index into the fixed
          provisioned-member array shared by all servers). *)
  | Remove_server of { idx : int }  (** Begin decommissioning member [idx]. *)
  | Complete_transfer of { target : int }
      (** Commit the pending transfer whose target map epoch is
          [target]; a no-op for any other value. *)

type Net.payload +=
  | Read_req of {
      root : int;
      chunk : int;
      within : int;
      len : int;
      sel : epoch_sel;
      mepoch : int;
          (** The map epoch the client routed this request under; a
              server whose committed map differs rejects with
              {!Wrong_epoch} instead of serving possibly-migrated
              data. *)
    }
  | Read_ok of bytes
  | Write_req of {
      root : int;
      chunk : int;
      within : int;
      data : bytes;
      doff : int;
      dlen : int;
          (** The bytes written are [data\[doff, doff+dlen)]: a client
              splitting one large buffer across chunks sends slices of
              the same underlying [bytes] instead of copying each
              piece. The buffer is immutable once sent (the zero-copy
              ownership rule), so sharing is safe. *)
      solo : bool;  (** Degraded-mode write: do not forward to the replica. *)
      mepoch : int;  (** Routing map epoch, as in {!Read_req}. *)
      expires : int option;
          (** §6's proposed guard: the writer's lease expiry (minus
              margin); the server ignores the write if it arrives
              later than this instant. *)
    }
  | Repl_req of {
      root : int;
      chunk : int;
      within : int;
      data : bytes;
      doff : int;
      dlen : int;  (** Slice convention as in {!Write_req}. *)
      epoch : int;
      expires : int option;
      stamp : int;
          (** Time the carried bytes were originally written. A
              replica that itself accepted a NEWER solo write to an
              overlapping range must not let this older copy clobber
              it (each byte range has a single serialized writer — the
              FS lock holder — so write time totally orders copies). *)
    }
  | Write_ok
  | Decommit_req of {
      root : int;
      chunk : int;
      forward : bool;
      mepoch : int;  (** Routing map epoch, as in {!Read_req}. [-1] on
          peer-to-peer propagation (forwards and resync pushes), which
          bypasses the ownership check. *)
      expires : int option;
          (* same §6 stamp as writes: freeing chunks after lease
             expiry is just as hazardous as writing them *)
    }
  | Decommit_ok
  | Mgmt_req of mgmt_cmd
  | Mgmt_ok of int  (** The id assigned to the new (or snapshot) virtual disk. *)
  | Vdisk_info_req of int
  | Vdisk_info of { root : int; nrep : int; frozen : int option }
  | Map_req
  | Map of { mepoch : int; active : int list }
      (** The committed ownership map: the epoch and the sorted member
          indexes currently serving data. *)
  | Xfer_status_req
  | Xfer_status of { mepoch : int; pending : bool; backlog : int }
      (** Reconfiguration drain probe: the server's committed map
          epoch, whether it knows of a pending transfer, and how many
          chunk entries its push backlog still holds. *)
  | Wrong_epoch of { mepoch : int }
      (** Data request rejected: the client's routing map epoch does
          not match the server's committed map (or the server is not
          an owner of the addressed chunk under it). Carries the
          server's epoch so the client knows whether to refetch or
          just wait out apply lag. *)
  | Perr of string

(* Message-size accounting (bytes of simulated wire traffic). *)
let hdr = 64
let read_req_size = hdr
let read_ok_size len = hdr + len
let write_req_size len = hdr + len
let small = 32

exception Unavailable of string
(** No replica of the addressed data is reachable. *)

exception Read_only
(** Write or decommit attempted on a snapshot. *)

exception Stale_write of string
(** A Petal server refused a write whose lease-derived expiration
    timestamp had passed (the §6 hazard guard). *)
