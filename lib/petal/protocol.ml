(** Wire protocol and shared constants of the Petal virtual-disk
    service.

    Virtual addresses are OCaml ints, so the paper's 2{^64}-byte
    address space becomes 2{^62} here; all other constants (64 KB
    commit granularity, 512 B sectors) are the paper's. *)

open Cluster

let chunk_bytes = 65536
(** Physical space is committed and decommitted in 64 KB chunks. *)

let sector_bytes = 512

(** Which epoch of a chunk a read refers to: the live disk or a
    snapshot frozen at a given epoch. *)
type epoch_sel = Current | At of int

(** Management commands agreed on via Paxos; applying them in log
    order keeps every server's virtual-disk table identical. *)
type mgmt_cmd =
  | Create_vdisk of { nrep : int }
  | Snapshot of { src : int }  (** Freeze [src]'s current epoch. *)

type Net.payload +=
  | Read_req of { root : int; chunk : int; within : int; len : int; sel : epoch_sel }
  | Read_ok of bytes
  | Write_req of {
      root : int;
      chunk : int;
      within : int;
      data : bytes;
      solo : bool;  (** Degraded-mode write: do not forward to the replica. *)
      expires : int option;
          (** §6's proposed guard: the writer's lease expiry (minus
              margin); the server ignores the write if it arrives
              later than this instant. *)
    }
  | Repl_req of {
      root : int;
      chunk : int;
      within : int;
      data : bytes;
      epoch : int;
      expires : int option;
    }
  | Write_ok
  | Decommit_req of {
      root : int;
      chunk : int;
      forward : bool;
      expires : int option;
          (* same §6 stamp as writes: freeing chunks after lease
             expiry is just as hazardous as writing them *)
    }
  | Decommit_ok
  | Mgmt_req of mgmt_cmd
  | Mgmt_ok of int  (** The id assigned to the new (or snapshot) virtual disk. *)
  | Vdisk_info_req of int
  | Vdisk_info of { root : int; nrep : int; frozen : int option }
  | Perr of string

(* Message-size accounting (bytes of simulated wire traffic). *)
let hdr = 64
let read_req_size = hdr
let read_ok_size len = hdr + len
let write_req_size len = hdr + len
let small = 32

exception Unavailable of string
(** No replica of the addressed data is reachable. *)

exception Read_only
(** Write or decommit attempted on a snapshot. *)

exception Stale_write of string
(** A Petal server refused a write whose lease-derived expiration
    timestamp had passed (the §6 hazard guard). *)
