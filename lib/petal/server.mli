(** A Petal storage server.

    Each server owns a set of local disks, stores 64 KB chunk
    extents on them, answers chunk read/write/decommit requests, and
    participates in the Paxos group that maintains the virtual-disk
    table (creation, snapshots) and — since PR 5 — the cluster's
    chunk-ownership map.

    Chunk placement: servers are created over a fixed
    provisioned-member array, of which a Paxos-agreed {e active}
    subset serves data. The primary for chunk [c] of the virtual disk
    rooted at [r] is the active member at ring slot [(r + c) mod n]
    (n = active count); the replica (for 2-way replicated disks) the
    next slot. Writes arrive at the primary, which applies them
    locally and forwards them to the replica before acknowledging.
    Snapshots are copy-on-write: each stored extent is tagged with
    the epoch it was written in, and a snapshot bumps the source
    disk's epoch so later writes go to fresh extents.

    Reconfiguration ([Add_server]/[Remove_server] through the Paxos
    log) is a two-phase ownership handoff: the old map stays
    authoritative while current owners stream affected chunks to
    their future owners through the resync machinery, and
    [Complete_transfer] — proposed by whichever server first observes
    every involved member drained — atomically bumps the map epoch.
    Data requests carry the client's map epoch and are rejected with
    [Wrong_epoch] when it is stale. See DESIGN.md, "Dynamic
    reconfiguration". *)

type t

val create :
  host:Cluster.Host.t ->
  rpc:Cluster.Rpc.t ->
  peers:Cluster.Net.addr array ->
  index:int ->
  disks:Blockdev.Storage.t array ->
  stable:Paxos_group.stable ->
  ?active:int list ->
  unit ->
  t
(** Start a Petal server: registers RPC handlers and joins the Paxos
    group. [peers] is the fixed provisioned-member array (all Paxos
    participants, standbys included) in ring order; [index] is this
    server's position; [active] the member indexes initially serving
    data (default: all). Every server of a cluster must be created
    with the same [peers] and [active]. *)

val host : t -> Cluster.Host.t
val index : t -> int

val chunk_count : t -> int
(** Number of live chunk extents stored (all epochs), for tests. *)

val disk_bytes_allocated : t -> int
(** Physical bytes committed on this server's disks. *)

val set_trusted : t -> Cluster.Net.addr list option -> unit
(** §2.2's partial security measure: accept data/management requests
    only from the listed (trusted Frangipani server) addresses, plus
    the Petal peers. [None] (the default) accepts everyone. *)

val degraded_count : t -> int
(** Chunks this server knows to be stale on some peer, pending
    resync — including pending ownership-transfer pushes. Zero once
    anti-entropy has caught up after a failure and any transfer has
    drained. *)

val current_epoch : t -> int
(** The committed ownership-map epoch. *)

val current_active : t -> int list
(** The member indexes serving data under the committed map. *)

val pending_transfer : t -> bool
(** Whether this server knows of a reconfiguration whose handoff has
    not yet cut over. *)

val nonowned_chunk_count : t -> int
(** Stored chunks this server does not own under the committed map.
    Transiently non-zero right after a cutover; the background GC
    frees them, and the reconfiguration sweep asserts they reach 0 —
    the "no data served from a decommissioned owner" teeth. *)

val stale_reject_count : t -> int
(** Mutations (writes, replica pushes, decommits) refused because
    their §6 lease-expiry stamp was in the past — at arrival or after
    waiting for the chunk lock. *)

val stale_applied_count : t -> int
(** Writes that reached the raw disk with a lapsed stamp anyway (the
    copy-on-write base read can block past the stamp). This is the §6
    invariant the lease margin is sized to protect; the partition
    sweep asserts it stays 0. *)

val wrong_epoch_count : t -> int
(** Data requests refused by the ownership-map guard (stale client
    epoch, or this server not an owner of the addressed chunk). *)

val freeze_reject_count : t -> int
(** Client mutations refused by the drain-time write freeze: once a
    transfer has been pending past a grace period, writes/decommits to
    chunks whose owner set actually changes get [Wrong_epoch] (the
    client waits and retries), so the push backlog can only shrink and
    a hot-chunk writer cannot defer the cutover forever. *)

val last_cutover_time : t -> Simkit.Sim.time
(** Pending-to-commit latency of the most recent completed transfer,
    as observed by this server's apply (0 before any cutover). *)

val max_cutover_time : t -> Simkit.Sim.time
(** Worst such latency since this server started — the quantity the
    soak bounds under a sustained hot-chunk writer. *)

val xfer_push_count : t -> int
(** Resync/handoff push RPCs this server has had acknowledged. *)

val xfer_bytes_pushed : t -> int
(** Bytes carried by those pushes (the migration traffic the bench
    reports). *)

val gc_chunk_count : t -> int
(** Chunks freed by the post-cutover ownership GC. *)

val snap_gc_chunk_count : t -> int
(** Chunk versions freed by [Delete_vdisk] because no remaining
    snapshot pinned them. *)
