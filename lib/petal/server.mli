(** A Petal storage server.

    Each server owns a set of local disks, stores 64 KB chunk
    extents on them, answers chunk read/write/decommit requests, and
    participates in the Paxos group that maintains the virtual-disk
    table (creation, snapshots).

    Chunk placement: the primary for chunk [c] of the virtual disk
    rooted at [r] is server [(r + c) mod n]; the replica (for 2-way
    replicated disks) is the successor. Writes arrive at the primary,
    which applies them locally and forwards them to the replica
    before acknowledging. Snapshots are copy-on-write: each stored
    extent is tagged with the epoch it was written in, and a snapshot
    bumps the source disk's epoch so later writes go to fresh
    extents. *)

type t

val create :
  host:Cluster.Host.t ->
  rpc:Cluster.Rpc.t ->
  peers:Cluster.Net.addr array ->
  index:int ->
  disks:Blockdev.Storage.t array ->
  stable:Paxos_group.stable ->
  t
(** Start a Petal server: registers RPC handlers and joins the Paxos
    group. [peers] are all Petal servers' addresses in ring order;
    [index] is this server's position. *)

val host : t -> Cluster.Host.t
val index : t -> int

val chunk_count : t -> int
(** Number of live chunk extents stored (all epochs), for tests. *)

val disk_bytes_allocated : t -> int
(** Physical bytes committed on this server's disks. *)

val set_trusted : t -> Cluster.Net.addr list option -> unit
(** §2.2's partial security measure: accept data/management requests
    only from the listed (trusted Frangipani server) addresses, plus
    the Petal peers. [None] (the default) accepts everyone. *)

val degraded_count : t -> int
(** Chunks this server knows to be stale on some replica, pending
    resync. Zero once anti-entropy has caught up after a failure. *)

val stale_reject_count : t -> int
(** Mutations (writes, replica pushes, decommits) refused because
    their §6 lease-expiry stamp was in the past — at arrival or after
    waiting for the chunk lock. *)

val stale_applied_count : t -> int
(** Writes that reached the raw disk with a lapsed stamp anyway (the
    copy-on-write base read can block past the stamp). This is the §6
    invariant the lease margin is sized to protect; the partition
    sweep asserts it stays 0. *)
