open Simkit
open Cluster
open Protocol
module P = Paxos_group.P

type vinfo = {
  root : int;
  mutable epoch : int;
  frozen : int option; (* Some e: snapshot frozen at epoch e (read-only) *)
  nrep : int;
}

(* One stored version of a chunk: the extent written during [epoch],
   or a tombstone ([loc = None]) recording a decommit. *)
type version = { epoch : int; loc : (int * int) option (* disk index, offset *) }

type t = {
  host : Host.t;
  rpc : Rpc.t;
  peers : Net.addr array;
  index : int;
  disks : Blockdev.Storage.t array;
  (* (vdisk root, chunk index) -> versions, newest first *)
  chunks : (int * int, version list ref) Hashtbl.t;
  (* Serializes mutations of one chunk: writing a fresh extent blocks
     on raw-disk I/O between reading the version list and installing
     the new head, so two concurrent writes to the same chunk would
     each otherwise build a base missing the other's data and the
     loser's bytes would silently read back as zeros. *)
  wlocks : (int * int, Sim.Resource.t) Hashtbl.t;
  vdisks : (int, vinfo) Hashtbl.t;
  mutable next_id : int;
  slot_ids : (int, int) Hashtbl.t; (* paxos slot -> id assigned by apply *)
  paxos : P.t;
  next_off : int array; (* per-disk allocation frontier *)
  free : int list ref array; (* per-disk extent free lists *)
  mutable alloc_rr : int;
  mutable allocated : int;
  (* Byte ranges within chunks whose replica on [peer] is known stale
     (a degraded write happened while it was unreachable); the resync
     daemon pushes them when the peer comes back. Ranges, not whole
     chunks: after an asymmetric fault BOTH replicas can hold writes
     the other missed (primary took forwarded-write failures while
     the secondary took solo writes), and a whole-chunk push in
     either direction would overwrite the peer's newer bytes. Pushing
     only what the peer provably missed makes resync converge to the
     union of the surviving writes. *)
  degraded : (Net.addr, (int * int, (int * int) list) Hashtbl.t) Hashtbl.t;
  (* §2.2's NFS-level security measure: when set, data and management
     requests are accepted only from these addresses (the trusted
     Frangipani server machines) and from Petal peers. *)
  mutable trusted : (Net.addr, unit) Hashtbl.t option;
  (* §6 write-guard accounting: mutations refused because their
     lease-derived stamp had passed, and — the sweep invariant —
     writes that reached the disk with a lapsed stamp anyway (must
     stay 0; the lease margin exists to make it so). *)
  mutable stale_rejects : int;
  mutable stale_applied : int;
}

let host t = t.host
let index t = t.index
let stale_reject_count t = t.stale_rejects
let stale_applied_count t = t.stale_applied

let set_trusted t addrs =
  match addrs with
  | None -> t.trusted <- None
  | Some l ->
    let h = Hashtbl.create 8 in
    List.iter (fun a -> Hashtbl.replace h a ()) l;
    Array.iter (fun a -> Hashtbl.replace h a ()) t.peers;
    t.trusted <- Some h

let authorized t src =
  match t.trusted with None -> true | Some h -> Hashtbl.mem h src

let degraded_set t peer =
  match Hashtbl.find_opt t.degraded peer with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 16 in
    Hashtbl.replace t.degraded peer set;
    set

(* Insert [a, b) into a sorted disjoint interval list, coalescing
   overlaps and adjacency. *)
let rec interval_add (a, b) = function
  | [] -> [ (a, b) ]
  | (x, y) :: rest when b < x -> (a, b) :: (x, y) :: rest
  | (x, y) :: rest when y < a -> (x, y) :: interval_add (a, b) rest
  | (x, y) :: rest -> interval_add (min a x, max b y) rest

(* Remove [a, b) from a sorted disjoint interval list. *)
let rec interval_sub cur (a, b) =
  match cur with
  | [] -> []
  | (x, y) :: rest when y <= a -> (x, y) :: interval_sub rest (a, b)
  | (x, y) :: rest when b <= x -> (x, y) :: rest
  | (x, y) :: rest ->
    (if x < a then [ (x, a) ] else [])
    @ (if b < y then [ (b, y) ] else [])
    @ interval_sub rest (a, b)

let mark_degraded t ~peer ~root ~chunk ~within ~len =
  let set = degraded_set t peer in
  let cur = Option.value ~default:[] (Hashtbl.find_opt set (root, chunk)) in
  Hashtbl.replace set (root, chunk) (interval_add (within, within + len) cur)

let degraded_count t =
  Hashtbl.fold (fun _ set acc -> acc + Hashtbl.length set) t.degraded 0

let chunk_count t =
  Hashtbl.fold
    (fun _ vl acc ->
      acc + List.length (List.filter (fun v -> v.loc <> None) !vl))
    t.chunks 0

let disk_bytes_allocated t = t.allocated

(* --- virtual-disk table maintenance (Paxos apply) ------------------- *)

let apply t slot cmd =
  match cmd with
  | Create_vdisk { nrep } ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.vdisks id { root = id; epoch = 0; frozen = None; nrep };
    Hashtbl.replace t.slot_ids slot id
  | Snapshot { src } -> (
    match Hashtbl.find_opt t.vdisks src with
    | None -> Hashtbl.replace t.slot_ids slot (-1)
    | Some v ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.vdisks id
        { root = v.root; epoch = v.epoch; frozen = Some v.epoch; nrep = v.nrep };
      v.epoch <- v.epoch + 1;
      Hashtbl.replace t.slot_ids slot id)

(* --- physical extent allocation -------------------------------------- *)

let allocate t =
  let d = t.alloc_rr mod Array.length t.disks in
  t.alloc_rr <- t.alloc_rr + 1;
  t.allocated <- t.allocated + chunk_bytes;
  match !(t.free.(d)) with
  | off :: rest ->
    t.free.(d) := rest;
    (d, off)
  | [] ->
    let off = t.next_off.(d) in
    if off + chunk_bytes > t.disks.(d).Blockdev.Storage.capacity then
      failwith (Host.name t.host ^ ": petal server out of disk space");
    t.next_off.(d) <- off + chunk_bytes;
    (d, off)

let free_extent t (d, off) =
  t.free.(d) := off :: !(t.free.(d));
  t.allocated <- t.allocated - chunk_bytes

(* --- chunk I/O -------------------------------------------------------- *)

let versions t key =
  match Hashtbl.find_opt t.chunks key with
  | Some vl -> vl
  | None ->
    let vl = ref [] in
    Hashtbl.replace t.chunks key vl;
    vl

let with_chunk_lock t key f =
  let lock =
    match Hashtbl.find_opt t.wlocks key with
    | Some l -> l
    | None ->
      let l = Sim.Resource.create ~capacity:1 "petal.chunk" in
      Hashtbl.replace t.wlocks key l;
      l
  in
  Sim.Resource.acquire lock;
  Fun.protect ~finally:(fun () -> Sim.Resource.release lock) f

let select_version vl sel =
  match sel with
  | Current -> ( match vl with v :: _ -> Some v | [] -> None)
  | At e -> List.find_opt (fun v -> v.epoch <= e) vl

exception Damaged
(* A media error (CRC) under this chunk: the caller falls back to the
   replica and triggers repair (§4: "Petal's built-in replication can
   ordinarily recover it"). *)

let read_chunk t ~root ~chunk ~within ~len ~sel =
  let vl = versions t (root, chunk) in
  match select_version !vl sel with
  | None | Some { loc = None; _ } -> Bytes.make len '\000'
  | Some { loc = Some (d, off); _ } -> (
    try t.disks.(d).Blockdev.Storage.read ~off:(off + within) ~len
    with Blockdev.Disk.Bad_sector _ -> raise Damaged)

(* Overwrite the damaged extent with a clean copy (repairs the medium
   in our disk model, as a real remap-and-rewrite would). *)
let repair_chunk t ~root ~chunk ~data =
  with_chunk_lock t (root, chunk) @@ fun () ->
  let vl = versions t (root, chunk) in
  match !vl with
  | { loc = Some (d, off); _ } :: _ when Bytes.length data = chunk_bytes ->
    t.disks.(d).Blockdev.Storage.write ~off data
  | _ -> ()

(* §6's proposed fix for the lease-expiry hazard: reject any write
   whose lease-derived expiration timestamp has already passed. *)
let expired expires = match expires with Some e -> Sim.now () > e | None -> false

exception Expired_stamp
(* Raised when a mutation's §6 stamp lapsed while it waited for the
   chunk lock; the handler turns it into the same rejection as an
   arrival-time check. *)

(* Write [data] into the chunk under epoch tag [epoch], copying an
   older extent first if a snapshot pinned it (copy-on-write). *)
let write_chunk t ~root ~chunk ~within ~data ~epoch ~expires =
  Faultpoint.hit "petal.chunk_write";
  with_chunk_lock t (root, chunk) @@ fun () ->
  (* Re-check the stamp once the chunk lock is held: queueing behind
     another mutation takes (simulated) time, and a stamp that lapsed
     in the queue must not reach the disk either. *)
  if expired expires then begin
    t.stale_rejects <- t.stale_rejects + 1;
    raise Expired_stamp
  end;
  (* The copy-on-write base read below can block on the raw disk, so
     the stamp is audited once more at the actual disk-write instant;
     a hit here is a §6 invariant violation the lease margin is sized
     to prevent, and the partition sweep asserts it stays 0. *)
  let audit_stamp () =
    if expired expires then t.stale_applied <- t.stale_applied + 1
  in
  let vl = versions t (root, chunk) in
  let whole = Bytes.length data = chunk_bytes && within = 0 in
  match !vl with
  | { epoch = e; loc = Some (d, off) } :: _ when e = epoch ->
    audit_stamp ();
    t.disks.(d).Blockdev.Storage.write ~off:(off + within) data
  | current ->
    (* Fresh extent needed: tombstone at this epoch, older epoch, or
       nothing stored yet. *)
    let base =
      if whole then Bytes.make 0 '\000'
      else
        match select_version current Current with
        | Some { loc = Some (d, off); _ } ->
          t.disks.(d).Blockdev.Storage.read ~off ~len:chunk_bytes
        | Some { loc = None; _ } | None -> Bytes.make chunk_bytes '\000'
    in
    let buf = if whole then data else base in
    if not whole then Bytes.blit data 0 buf within (Bytes.length data);
    let d, off = allocate t in
    audit_stamp ();
    t.disks.(d).Blockdev.Storage.write ~off buf;
    (* Replace a same-epoch entry (tombstone, or a stale copy being
       repaired by resync); otherwise insert keeping the list sorted
       newest-first — a resync push may arrive with an older epoch
       than our head if a snapshot happened while the peer was down. *)
    let fresh = { epoch; loc = Some (d, off) } in
    let rec place = function
      | v :: rest when v.epoch > epoch -> v :: place rest
      | v :: rest when v.epoch = epoch ->
        (match v.loc with Some ext -> free_extent t ext | None -> ());
        fresh :: rest
      | rest -> fresh :: rest
    in
    vl := place current

let decommit_chunk t ~root ~chunk ~epoch ~expires =
  Faultpoint.hit "petal.chunk_decommit";
  with_chunk_lock t (root, chunk) @@ fun () ->
  if expired expires then begin
    t.stale_rejects <- t.stale_rejects + 1;
    raise Expired_stamp
  end;
  let vl = versions t (root, chunk) in
  match !vl with
  | [] -> ()
  | { epoch = e; loc } :: rest when e = epoch ->
    (match loc with Some ext -> free_extent t ext | None -> ());
    (* If snapshot-pinned versions remain, the live disk must still
       read as zeros: leave a tombstone. *)
    if rest = [] then begin
      vl := [];
      Hashtbl.remove t.chunks (root, chunk)
    end
    else vl := { epoch; loc = None } :: rest
  | current -> vl := { epoch; loc = None } :: current

(* --- replication ------------------------------------------------------ *)

let successor t = t.peers.((t.index + 1) mod Array.length t.peers)

let forward_write t ~root ~chunk ~within ~data ~epoch ~expires =
  match
    Rpc.call t.rpc ~dst:(successor t) ~timeout:(Sim.ms 500)
      ~size:(write_req_size (Bytes.length data))
      (Repl_req { root; chunk; within; data; epoch; expires })
  with
  | Ok Write_ok -> ()
  | Ok _ | Error `Timeout ->
    (* Degraded: the replica is unreachable; the write is single-copy
       until the resync daemon repairs it. *)
    Logs.debug (fun m -> m "%s: replica write degraded" (Host.name t.host));
    mark_degraded t ~peer:(successor t) ~root ~chunk ~within
      ~len:(Bytes.length data)

(* Push the byte ranges of a degraded chunk the lagging replica
   missed; returns true when every range is acknowledged. *)
let push_chunk t ~peer ~root ~chunk ~ranges =
  match Hashtbl.find_opt t.chunks (root, chunk) with
  | None -> true (* vanished (decommitted): nothing to repair *)
  | Some vl -> (
    match !vl with
    | { epoch; loc = Some (d, off) } :: _ ->
      List.for_all
        (fun (a, b) ->
          let data = t.disks.(d).Blockdev.Storage.read ~off:(off + a) ~len:(b - a) in
          match
            Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 500)
              ~size:(write_req_size (b - a))
              (Repl_req { root; chunk; within = a; data; epoch; expires = None })
          with
          | Ok Write_ok -> true
          | Ok _ | Error `Timeout -> false)
        ranges
    | { loc = None; _ } :: _ | [] -> true)

let resync_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.sec 2.0);
    if Host.is_alive t.host && degraded_count t > 0 then
      Hashtbl.iter
        (fun peer set ->
          let chunks = Hashtbl.fold (fun k v acc -> (k, v) :: acc) set [] in
          List.iteri
            (fun i ((root, chunk), ranges) ->
              if i < 16 then begin
                match push_chunk t ~peer ~root ~chunk ~ranges with
                | true -> (
                  (* New failed forwards may have extended the entry
                     while we were pushing: clear only what we sent. *)
                  match Hashtbl.find_opt set (root, chunk) with
                  | None -> ()
                  | Some cur -> (
                    match
                      List.fold_left
                        (fun acc r -> interval_sub acc r)
                        cur ranges
                    with
                    | [] -> Hashtbl.remove set (root, chunk)
                    | left -> Hashtbl.replace set (root, chunk) left))
                | false -> ()
                | exception Host.Crashed _ -> ()
              end)
            chunks)
        t.degraded;
    loop ()
  in
  loop ()

(* --- RPC handlers ------------------------------------------------------ *)

let vdisk t root =
  match Hashtbl.find_opt t.vdisks root with
  | Some v -> v
  | None -> failwith "petal: unknown virtual disk"

let reject_stale t =
  t.stale_rejects <- t.stale_rejects + 1;
  Some (Perr "expired lease timestamp", small)

let handler t ~src body =
  match body with
  | (Read_req _ | Write_req _ | Repl_req _ | Decommit_req _ | Mgmt_req _)
    when not (authorized t src) ->
    Some (Perr "unauthorized", small)
  | Read_req { root; chunk; within; len; sel } -> (
    match read_chunk t ~root ~chunk ~within ~len ~sel with
    | data -> Some (Read_ok data, read_ok_size len)
    | exception Damaged ->
      (* Ask the replica for a clean whole-chunk copy, repair our
         medium, and serve the read. *)
      let v = vdisk t root in
      if v.nrep > 1 then begin
        match
          Rpc.call t.rpc ~dst:(successor t) ~timeout:(Sim.ms 500)
            ~size:read_req_size
            (Read_req { root; chunk; within = 0; len = chunk_bytes; sel })
        with
        | Ok (Read_ok clean) ->
          Logs.info (fun m ->
              m "%s: repaired damaged chunk (%d,%d) from replica"
                (Host.name t.host) root chunk);
          repair_chunk t ~root ~chunk ~data:clean;
          Some (Read_ok (Bytes.sub clean within len), read_ok_size len)
        | Ok _ | Error `Timeout -> Some (Perr "media error", small)
      end
      else Some (Perr "media error", small))
  | Write_req { expires; _ } when expired expires -> reject_stale t
  | Write_req { root; chunk; within; data; solo; expires } -> (
    let v = vdisk t root in
    let epoch = v.epoch in
    (if solo && v.nrep > 1 then begin
       (* Degraded client write: we are the replica; the primary
          missed this update and must be repaired when it returns. *)
       let primary = t.peers.((v.root + chunk) mod Array.length t.peers) in
       if primary <> Rpc.addr t.rpc then
         mark_degraded t ~peer:primary ~root ~chunk ~within
           ~len:(Bytes.length data)
     end);
    match
      if (not solo) && v.nrep > 1 then begin
        (* Apply locally and forward to the replica in parallel. *)
        let fwd = Sim.Ivar.create () in
        Sim.spawn (fun () ->
            forward_write t ~root ~chunk ~within ~data ~epoch ~expires;
            Sim.Ivar.fill fwd ());
        write_chunk t ~root ~chunk ~within ~data ~epoch ~expires;
        Sim.Ivar.read fwd
      end
      else write_chunk t ~root ~chunk ~within ~data ~epoch ~expires
    with
    | () -> Some (Write_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Repl_req { expires; _ } when expired expires -> reject_stale t
  | Repl_req { root; chunk; within; data; epoch; expires } -> (
    match write_chunk t ~root ~chunk ~within ~data ~epoch ~expires with
    | () -> Some (Write_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Decommit_req { expires; _ } when expired expires -> reject_stale t
  | Decommit_req { root; chunk; forward; expires } -> (
    let v = vdisk t root in
    match decommit_chunk t ~root ~chunk ~epoch:v.epoch ~expires with
    | () ->
      if forward && v.nrep > 1 then
        ignore
          (Rpc.call t.rpc ~dst:(successor t) ~timeout:(Sim.ms 500) ~size:small
             (Decommit_req { root; chunk; forward = false; expires }));
      Some (Decommit_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Mgmt_req cmd ->
    let slot = P.propose t.paxos cmd in
    while P.applied_up_to t.paxos <= slot do
      Sim.sleep (Sim.ms 1)
    done;
    let id = Hashtbl.find t.slot_ids slot in
    if id < 0 then Some (Perr "unknown source vdisk", small)
    else Some (Mgmt_ok id, small)
  | Vdisk_info_req id -> (
    match Hashtbl.find_opt t.vdisks id with
    | Some v -> Some (Vdisk_info { root = v.root; nrep = v.nrep; frozen = v.frozen }, small)
    | None -> Some (Perr "unknown vdisk", small))
  | _ -> None

let create ~host ~rpc ~peers ~index ~disks ~stable =
  let rec t =
    lazy
      {
        host;
        rpc;
        peers;
        index;
        disks;
        chunks = Hashtbl.create 4096;
        wlocks = Hashtbl.create 4096;
      degraded = Hashtbl.create 4;
        trusted = None;
        vdisks = Hashtbl.create 8;
        next_id = 1;
        slot_ids = Hashtbl.create 16;
        paxos =
          P.create ~rpc ~group:0x9e7a1 ~peers:(Array.to_list peers) ~id:index
            ~stable
            ~apply:(fun slot cmd -> apply (Lazy.force t) slot cmd);
        next_off = Array.map (fun _ -> 0) disks;
        free = Array.map (fun _ -> ref []) disks;
        alloc_rr = 0;
        allocated = 0;
        stale_rejects = 0;
        stale_applied = 0;
      }
  in
  let t = Lazy.force t in
  Rpc.add_handler rpc (handler t);
  Sim.spawn ~name:(Host.name host ^ ".resync") (resync_daemon t);
  t
