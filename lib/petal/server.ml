open Simkit
open Cluster
open Protocol
module P = Paxos_group.P

type vinfo = {
  root : int;
  mutable epoch : int;
  frozen : int option; (* Some e: snapshot frozen at epoch e (read-only) *)
  nrep : int;
}

(* One stored version of a chunk: the extent written during [epoch],
   or a tombstone ([loc = None]) recording a decommit. *)
type version = { epoch : int; loc : (int * int) option (* disk index, offset *) }

(* A reconfiguration in flight: the Paxos log has agreed on a new
   active set, the old map is still authoritative for data traffic,
   and owners are streaming the affected chunks to their future
   owners. [target_epoch] is the map epoch [Complete_transfer] will
   commit. *)
type pending = { target : int array; target_epoch : int }

type t = {
  host : Host.t;
  rpc : Rpc.t;
  members : Net.addr array;
      (* the fixed provisioned-member set (all Paxos peers); which of
         them serve data is the dynamic [active] map below *)
  index : int;
  disks : Blockdev.Storage.t array;
  (* (vdisk root, chunk index) -> versions, newest first *)
  chunks : (int * int, version list ref) Hashtbl.t;
  (* Serializes mutations of one chunk: writing a fresh extent blocks
     on raw-disk I/O between reading the version list and installing
     the new head, so two concurrent writes to the same chunk would
     each otherwise build a base missing the other's data and the
     loser's bytes would silently read back as zeros. *)
  wlocks : (int * int, Sim.Resource.t) Hashtbl.t;
  vdisks : (int, vinfo) Hashtbl.t;
  mutable next_id : int;
  slot_ids : (int, int) Hashtbl.t; (* paxos slot -> id assigned by apply *)
  paxos : P.t;
  next_off : int array; (* per-disk allocation frontier *)
  free : int list ref array; (* per-disk extent free lists *)
  mutable alloc_rr : int;
  mutable allocated : int;
  (* --- dynamic ownership map (replicated via the Paxos log) --------- *)
  mutable active : int array; (* sorted member indexes serving data *)
  mutable mepoch : int; (* committed map epoch *)
  mutable pending : pending option;
  (* When this server's apply installed [pending]. Drives the
     drain-time write freeze: past a grace period, client mutations of
     chunks whose owner set actually changes are rejected with
     [Wrong_epoch] (the client waits and retries), so the push backlog
     can only shrink and a relentless hot-chunk writer can no longer
     re-mark its chunk forever and defer the cutover. Also the base of
     the per-cutover latency the soak bounds. *)
  mutable pending_since : Sim.time;
  (* Byte ranges within chunks whose replica on [peer] is known stale
     (a degraded write happened while it was unreachable); the resync
     daemon pushes them when the peer comes back. Ranges, not whole
     chunks: after an asymmetric fault BOTH replicas can hold writes
     the other missed (primary took forwarded-write failures while
     the secondary took solo writes), and a whole-chunk push in
     either direction would overwrite the peer's newer bytes. Pushing
     only what the peer provably missed makes resync converge to the
     union of the surviving writes.

     Reconfiguration reuses this machinery wholesale: starting a
     transfer marks every affected chunk degraded toward its future
     owner, and writes accepted under the old map while the transfer
     is pending mark their byte range the same way — so the ordinary
     resync daemon is also the ownership-handoff stream, and "the
     transfer has drained" is exactly "the degraded backlog is
     empty". *)
  (* Each range carries the time its bytes were written, so a push
     can tell the receiver how fresh its copy is (see [Repl_req]).
     The whole entry also carries the generation of its latest mark:
     a push reads the chunk bytes, then blocks on disk and network,
     and a write landing in that window re-marks a range the push
     already read stale bytes for — the generation check stops the
     push completion from clearing it (see the resync daemon). *)
  degraded :
    (Net.addr, (int * int, (int * int * int) list * int) Hashtbl.t) Hashtbl.t;
  mutable mark_gen : int;
  (* §2.2's NFS-level security measure: when set, data and management
     requests are accepted only from these addresses (the trusted
     Frangipani server machines) and from Petal peers. *)
  mutable trusted : (Net.addr, unit) Hashtbl.t option;
  (* §6 write-guard accounting: mutations refused because their
     lease-derived stamp had passed, and — the sweep invariant —
     writes that reached the disk with a lapsed stamp anyway (must
     stay 0; the lease margin exists to make it so). *)
  mutable stale_rejects : int;
  mutable stale_applied : int;
  (* Reconfiguration accounting. *)
  mutable wrong_epoch_rejects : int; (* data requests refused by the map guard *)
  mutable freeze_rejects : int; (* mutations refused by the drain-time freeze *)
  mutable last_cutover : Sim.time; (* pending-to-commit latency, last transfer *)
  mutable max_cutover : Sim.time; (* worst such latency since creation *)
  mutable xfer_pushes : int; (* resync/transfer push RPCs acknowledged *)
  mutable xfer_bytes : int; (* bytes carried by those pushes *)
  mutable gc_chunks : int; (* chunks freed because ownership moved away *)
  mutable snap_gc_chunks : int; (* versions freed by snapshot deletion *)
}

let host t = t.host
let index t = t.index
let stale_reject_count t = t.stale_rejects
let stale_applied_count t = t.stale_applied
let wrong_epoch_count t = t.wrong_epoch_rejects
let freeze_reject_count t = t.freeze_rejects
let last_cutover_time t = t.last_cutover
let max_cutover_time t = t.max_cutover
let xfer_push_count t = t.xfer_pushes
let xfer_bytes_pushed t = t.xfer_bytes
let gc_chunk_count t = t.gc_chunks
let snap_gc_chunk_count t = t.snap_gc_chunks
let current_epoch t = t.mepoch
let current_active t = Array.to_list t.active
let pending_transfer t = t.pending <> None

let set_trusted t addrs =
  match addrs with
  | None -> t.trusted <- None
  | Some l ->
    let h = Hashtbl.create 8 in
    List.iter (fun a -> Hashtbl.replace h a ()) l;
    Array.iter (fun a -> Hashtbl.replace h a ()) t.members;
    t.trusted <- Some h

let authorized t src =
  match t.trusted with None -> true | Some h -> Hashtbl.mem h src

let degraded_set t peer =
  match Hashtbl.find_opt t.degraded peer with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 16 in
    Hashtbl.replace t.degraded peer set;
    set

(* Stamped interval lists: sorted disjoint [a, b) segments, each
   carrying the write time of the bytes it covers. A new mark takes
   over whatever part of older segments it overlaps. *)
let seg_add (a, b, s) segs =
  let rec cut = function
    | [] -> []
    | (x, y, st) :: rest when y <= a -> (x, y, st) :: cut rest
    | (x, y, st) :: rest when b <= x -> (x, y, st) :: rest
    | (x, y, st) :: rest ->
      (if x < a then [ (x, a, st) ] else [])
      @ (if b < y then [ (b, y, st) ] else [])
      @ cut rest
  in
  let rec ins = function
    | (x, y, st) :: rest when x < a -> (x, y, st) :: ins rest
    | rest -> (a, b, s) :: rest
  in
  ins (cut segs)

(* Remove [a, b) from a stamped segment list. *)
let rec seg_sub segs (a, b) =
  match segs with
  | [] -> []
  | (x, y, st) :: rest when y <= a -> (x, y, st) :: seg_sub rest (a, b)
  | (x, y, st) :: rest when b <= x -> (x, y, st) :: rest
  | (x, y, st) :: rest ->
    (if x < a then [ (x, a, st) ] else [])
    @ (if b < y then [ (b, y, st) ] else [])
    @ seg_sub rest (a, b)

(* Remove from [segs] the parts of [a, b) still stamped [<= upto];
   sub-ranges re-marked with a newer stamp survive. Used when a push
   completes but the entry was re-marked mid-flight: the pushed bytes
   are good for every sub-range whose stamp the push saw, and stale
   for any a concurrent write stamped afterwards. *)
let seg_clear segs (a, b) ~upto =
  List.concat_map
    (fun (x, y, st) ->
      if y <= a || b <= x || st > upto then [ (x, y, st) ]
      else
        (if x < a then [ (x, a, st) ] else [])
        @ if b < y then [ (b, y, st) ] else [])
    segs

(* Remove [a, b) from a plain range. *)
let range_sub (x, y) (a, b) =
  if y <= a || b <= x then [ (x, y) ]
  else (if x < a then [ (x, a) ] else []) @ if b < y then [ (b, y) ] else []

let mark_degraded t ~peer ~root ~chunk ~within ~len ~stamp =
  let set = degraded_set t peer in
  let cur =
    match Hashtbl.find_opt set (root, chunk) with
    | Some (segs, _) -> segs
    | None -> []
  in
  t.mark_gen <- t.mark_gen + 1;
  Hashtbl.replace set (root, chunk)
    (seg_add (within, within + len, stamp) cur, t.mark_gen)

let degraded_count t =
  Hashtbl.fold (fun _ set acc -> acc + Hashtbl.length set) t.degraded 0

(* Debug tracing for sweep forensics; enabled via PETAL_TRACE=1. *)
let tracing = Sys.getenv_opt "PETAL_TRACE" <> None

let needle = Sys.getenv_opt "PETAL_TRACE_NEEDLE"

let data_has_needle ?(boff = 0) ?len data =
  match needle with
  | None -> false
  | Some n ->
    let nl = String.length n in
    let dl = boff + (match len with Some l -> l | None -> Bytes.length data - boff) in
    let rec at i =
      if i + nl > dl then false
      else if String.equal (Bytes.sub_string data i nl) n then true
      else at (i + 1)
    in
    at boff

let trace fmt =
  if tracing then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr (fmt ^^ "\n%!")

let chunk_count t =
  Hashtbl.fold
    (fun _ vl acc ->
      acc + List.length (List.filter (fun v -> v.loc <> None) !vl))
    t.chunks 0

let disk_bytes_allocated t = t.allocated

(* --- ownership map ---------------------------------------------------- *)

(* Placement under an active set: the primary of chunk [c] of the
   disk rooted at [r] sits at ring slot [(r + c) mod n] of the sorted
   active array, the replica at the next slot. Every server and every
   client computes this from the same Paxos-agreed map, so routing is
   deterministic per map epoch. *)
let owners_under active ~nrep ~root ~chunk =
  let n = Array.length active in
  if n = 0 then []
  else begin
    let s = (root + chunk) mod n in
    let p = active.(s) in
    if nrep > 1 && n > 1 then [ p; active.((s + 1) mod n) ] else [ p ]
  end

let nrep_of_root t root =
  Hashtbl.fold
    (fun _ (v : vinfo) acc -> if v.root = root then max acc v.nrep else acc)
    t.vdisks 1

let is_owner t ~root ~chunk ~nrep =
  List.mem t.index (owners_under t.active ~nrep ~root ~chunk)

(* The peer this server forwards replicated writes to: the other
   owner of the chunk under the committed map. *)
let replica_of t ~root ~chunk ~nrep =
  match owners_under t.active ~nrep ~root ~chunk with
  | [ a; b ] -> Some (if a = t.index then b else a)
  | _ -> None

(* While a transfer is pending, a mutation accepted under the old map
   must also reach the chunk's future owners: mark the byte range
   degraded toward every new owner that is not already an old owner,
   so the resync stream carries the delta. *)
let mark_transfer_delta t ~root ~chunk ~within ~len ~stamp =
  match t.pending with
  | None -> ()
  | Some p ->
    let nrep = nrep_of_root t root in
    let old_owners = owners_under t.active ~nrep ~root ~chunk in
    if List.mem t.index old_owners then
      List.iter
        (fun o ->
          if (not (List.mem o old_owners)) && o <> t.index then
            mark_degraded t ~peer:t.members.(o) ~root ~chunk ~within ~len ~stamp)
        (owners_under p.target ~nrep ~root ~chunk)

(* --- virtual-disk table maintenance (Paxos apply) ------------------- *)

let sorted_add active idx =
  Array.of_list (List.sort_uniq compare (idx :: Array.to_list active))

let sorted_remove active idx =
  Array.of_list (List.filter (fun i -> i <> idx) (Array.to_list active))

let any_frozen t =
  Hashtbl.fold (fun _ (v : vinfo) acc -> acc || v.frozen <> None) t.vdisks false

let free_extent t (d, off) =
  t.free.(d) := off :: !(t.free.(d));
  t.allocated <- t.allocated - chunk_bytes

(* A member outside the active set serves no traffic, so every chunk
   it still holds is a stale leftover from a previous tenure —
   possibly decommitted cluster-wide since it left. Purge them when a
   transfer begins, before any push can arrive: once the new map
   makes this member an owner again, a leftover the GC had not freed
   yet would otherwise be served as live data. Skips chunks its own
   degraded sets still reference (conservative; an inactive member
   should have none). *)
let purge_stale_store t =
  let referenced = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ set -> Hashtbl.iter (fun k _ -> Hashtbl.replace referenced k ()) set)
    t.degraded;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.chunks [] in
  List.iter
    (fun key ->
      if not (Hashtbl.mem referenced key) then begin
        trace "t=%d PURGE %s root=%d chunk=%d" (Sim.now ()) (Host.name t.host)
          (fst key) (snd key);
        (match Hashtbl.find_opt t.chunks key with
        | None -> ()
        | Some vl ->
          List.iter
            (fun v -> match v.loc with Some ext -> free_extent t ext | None -> ())
            !vl);
        Hashtbl.remove t.chunks key;
        t.gc_chunks <- t.gc_chunks + 1
      end)
    (List.sort compare keys)

(* Enumerate the transfer obligations this server holds: every stored
   chunk it owns under the old map is marked (whole) degraded toward
   each of its future owners. Both old owners enumerate — duplicate
   pushes are idempotent and the redundancy keeps the transfer moving
   when one source crashes mid-stream. Pure table marking (no I/O),
   so it runs inline in the Paxos apply and a crash cannot leave the
   obligation half-recorded and forgotten. *)
let begin_transfer t (p : pending) =
  if not (Array.exists (( = ) t.index) t.active) then purge_stale_store t;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.chunks [] in
  List.iter
    (fun (root, chunk) ->
      let nrep = nrep_of_root t root in
      let old_owners = owners_under t.active ~nrep ~root ~chunk in
      if List.mem t.index old_owners then
        List.iter
          (fun o ->
            if (not (List.mem o old_owners)) && o <> t.index then
              (* Stamp 0: the write times of a stored chunk's bytes
                 are unknown, so the base copy must claim the lowest
                 freshness — overstating would let it clobber a newer
                 solo write at the receiver. Any real delta beats it;
                 a stale base at the receiver is later corrected by
                 the repair chain re-marking with true stamps. *)
              mark_degraded t ~peer:t.members.(o) ~root ~chunk ~within:0
                ~len:chunk_bytes ~stamp:0)
          (owners_under p.target ~nrep ~root ~chunk))
    (List.sort compare keys)

(* After cutover, degraded entries toward peers that no longer own
   their chunk are dead weight (the data migrated through the live
   owners): prune them so the backlog metric means something. *)
let prune_degraded t =
  Hashtbl.iter
    (fun peer set ->
      let stale =
        Hashtbl.fold
          (fun (root, chunk) _ acc ->
            let nrep = nrep_of_root t root in
            let pi =
              let rec find i = if i >= Array.length t.members then -1
                else if t.members.(i) = peer then i else find (i + 1)
              in
              find 0
            in
            if List.mem pi (owners_under t.active ~nrep ~root ~chunk) then acc
            else (root, chunk) :: acc)
          set []
      in
      List.iter (Hashtbl.remove set) stale)
    t.degraded

(* Free the chunk versions of [root] that no remaining snapshot pins:
   a version survives iff it is the live head or the one some
   remaining snapshot's frozen epoch selects (the newest version at or
   below it — the [select_version] rule). Runs when a snapshot disk is
   deleted; never touches the head, so it cannot race a live write. *)
let gc_unpinned_versions t ~root =
  let pins =
    Hashtbl.fold
      (fun _ (v : vinfo) acc ->
        if v.root = root then
          match v.frozen with Some e -> e :: acc | None -> acc
        else acc)
      t.vdisks []
  in
  let keys =
    Hashtbl.fold
      (fun (r, c) _ acc -> if r = root then (r, c) :: acc else acc)
      t.chunks []
  in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.chunks key with
      | None -> ()
      | Some vl ->
        let is_head v = match !vl with h :: _ -> h == v | [] -> false in
        let keep v =
          is_head v
          || List.exists
               (fun e ->
                 match List.find_opt (fun v' -> v'.epoch <= e) !vl with
                 | Some v' -> v' == v
                 | None -> false)
               pins
        in
        let kept, dead = List.partition keep !vl in
        List.iter
          (fun v -> match v.loc with Some ext -> free_extent t ext | None -> ())
          dead;
        t.snap_gc_chunks <- t.snap_gc_chunks + List.length dead;
        (* With nothing pinned beneath it, a tombstone head reads the
           same as an absent chunk: drop the entry. *)
        match kept with
        | [] | [ { loc = None; _ } ] -> Hashtbl.remove t.chunks key
        | kept -> vl := kept)
    (List.sort compare keys)

let apply t slot cmd =
  match cmd with
  | Create_vdisk { nrep } ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.vdisks id { root = id; epoch = 0; frozen = None; nrep };
    Hashtbl.replace t.slot_ids slot id
  | Snapshot { src } -> (
    match Hashtbl.find_opt t.vdisks src with
    | None -> Hashtbl.replace t.slot_ids slot (-1)
    | Some _ when t.pending <> None ->
      (* The handoff stream carries only head-version bytes: bumping
         the CoW epoch mid-transfer would pin versions the new owners
         never receive, stranding the snapshot on the old owners. The
         client retries once the cutover commits. *)
      Hashtbl.replace t.slot_ids slot (-1)
    | Some v ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.vdisks id
        { root = v.root; epoch = v.epoch; frozen = Some v.epoch; nrep = v.nrep };
      v.epoch <- v.epoch + 1;
      Hashtbl.replace t.slot_ids slot id)
  | Delete_vdisk { id } -> (
    match Hashtbl.find_opt t.vdisks id with
    | None -> Hashtbl.replace t.slot_ids slot 0 (* already gone: idempotent *)
    | Some { frozen = None; _ } ->
      Hashtbl.replace t.slot_ids slot (-1) (* live disks are not deletable *)
    | Some _ when t.pending <> None ->
      (* Version GC must not race the handoff enumeration. *)
      Hashtbl.replace t.slot_ids slot (-1)
    | Some v ->
      Hashtbl.remove t.vdisks id;
      gc_unpinned_versions t ~root:v.root;
      Hashtbl.replace t.slot_ids slot 0)
  | Add_server { idx } ->
    let target = sorted_add t.active idx in
    let ok =
      if Array.exists (( = ) idx) t.active && t.pending = None then true
        (* already active: the goal state — a duplicate proposal after
           a proposer crash must read as success *)
      else
        match t.pending with
        | Some p -> p.target = target (* same reconfig already pending *)
        | None ->
          if
            idx >= 0
            && idx < Array.length t.members
            && not (any_frozen t)
            (* snapshots pin old chunk versions the range-based
               transfer stream does not carry; reconfiguration is
               refused while any exist (see DESIGN.md) *)
          then begin
            let p = { target; target_epoch = t.mepoch + 1 } in
            t.pending <- Some p;
            t.pending_since <- Sim.now ();
            begin_transfer t p;
            true
          end
          else false
    in
    Hashtbl.replace t.slot_ids slot (if ok then 0 else -1)
  | Remove_server { idx } ->
    let target = sorted_remove t.active idx in
    let ok =
      if (not (Array.exists (( = ) idx) t.active)) && t.pending = None then true
      else
        match t.pending with
        | Some p -> p.target = target
        | None ->
          if Array.length target >= 2 && not (any_frozen t) then begin
            let p = { target; target_epoch = t.mepoch + 1 } in
            t.pending <- Some p;
            t.pending_since <- Sim.now ();
            begin_transfer t p;
            true
          end
          else false
    in
    Hashtbl.replace t.slot_ids slot (if ok then 0 else -1)
  | Complete_transfer { target } ->
    (match t.pending with
    | Some p when p.target_epoch = target ->
      trace "t=%d CUTOVER %s epoch=%d" (Sim.now ()) (Host.name t.host) target;
      let lat = Sim.now () - t.pending_since in
      t.last_cutover <- lat;
      if lat > t.max_cutover then t.max_cutover <- lat;
      t.active <- p.target;
      t.mepoch <- target;
      t.pending <- None;
      prune_degraded t
    | Some _ | None -> () (* duplicate or late proposal: no-op *));
    Hashtbl.replace t.slot_ids slot 0

(* --- physical extent allocation -------------------------------------- *)

let allocate t =
  let d = t.alloc_rr mod Array.length t.disks in
  t.alloc_rr <- t.alloc_rr + 1;
  t.allocated <- t.allocated + chunk_bytes;
  match !(t.free.(d)) with
  | off :: rest ->
    t.free.(d) := rest;
    (d, off)
  | [] ->
    let off = t.next_off.(d) in
    if off + chunk_bytes > t.disks.(d).Blockdev.Storage.capacity then
      failwith (Host.name t.host ^ ": petal server out of disk space");
    t.next_off.(d) <- off + chunk_bytes;
    (d, off)

(* --- chunk I/O -------------------------------------------------------- *)

let versions t key =
  match Hashtbl.find_opt t.chunks key with
  | Some vl -> vl
  | None ->
    let vl = ref [] in
    Hashtbl.replace t.chunks key vl;
    vl

let with_chunk_lock t key f =
  let lock =
    match Hashtbl.find_opt t.wlocks key with
    | Some l -> l
    | None ->
      let l = Sim.Resource.create ~capacity:1 "petal.chunk" in
      Hashtbl.replace t.wlocks key l;
      l
  in
  Sim.Resource.acquire lock;
  Fun.protect ~finally:(fun () -> Sim.Resource.release lock) f

let select_version vl sel =
  match sel with
  | Current -> ( match vl with v :: _ -> Some v | [] -> None)
  | At e -> List.find_opt (fun v -> v.epoch <= e) vl

exception Damaged
(* A media error (CRC) under this chunk: the caller falls back to the
   replica and triggers repair (§4: "Petal's built-in replication can
   ordinarily recover it"). *)

let read_chunk t ~root ~chunk ~within ~len ~sel =
  let vl = versions t (root, chunk) in
  match select_version !vl sel with
  | None | Some { loc = None; _ } -> Bytes.make len '\000'
  | Some { loc = Some (d, off); _ } -> (
    try t.disks.(d).Blockdev.Storage.read ~off:(off + within) ~len
    with Blockdev.Disk.Bad_sector _ -> raise Damaged)

(* Overwrite the damaged extent with a clean copy (repairs the medium
   in our disk model, as a real remap-and-rewrite would). *)
let repair_chunk t ~root ~chunk ~data =
  with_chunk_lock t (root, chunk) @@ fun () ->
  let vl = versions t (root, chunk) in
  match !vl with
  | { loc = Some (d, off); _ } :: _ when Bytes.length data = chunk_bytes ->
    t.disks.(d).Blockdev.Storage.write ~off data
  | _ -> ()

(* §6's proposed fix for the lease-expiry hazard: reject any write
   whose lease-derived expiration timestamp has already passed. *)
let expired expires = match expires with Some e -> Sim.now () > e | None -> false

exception Expired_stamp
(* Raised when a mutation's §6 stamp lapsed while it waited for the
   chunk lock; the handler turns it into the same rejection as an
   arrival-time check. *)

(* Record a freshly written extent: replace a same-epoch entry
   (tombstone, or a stale copy being repaired by resync); otherwise
   insert keeping the list sorted newest-first — a resync push may
   arrive with an older epoch than our head if a snapshot happened
   while the peer was down. *)
let place_version t vl ~epoch ~ext =
  let fresh = { epoch; loc = Some ext } in
  let rec place = function
    | v :: rest when v.epoch > epoch -> v :: place rest
    | v :: rest when v.epoch = epoch ->
      (match v.loc with Some e -> free_extent t e | None -> ());
      fresh :: rest
    | rest -> fresh :: rest
  in
  vl := place !vl

(* Write the [data[doff, doff+dlen)] slice into the chunk under epoch
   tag [epoch], copying an older extent first if a snapshot pinned it
   (copy-on-write). [data] is typically a shared RPC payload — sliced,
   never copied, and never mutated (the zero-copy ownership rule). *)
let write_chunk t ~root ~chunk ~within ~data ~doff ~dlen ~epoch ~expires =
  Faultpoint.hit "petal.chunk_write";
  with_chunk_lock t (root, chunk) @@ fun () ->
  trace "t=%d W %s root=%d chunk=%d w=%d len=%d hit=%b" (Sim.now ())
    (Host.name t.host) root chunk within dlen
    (data_has_needle ~boff:doff ~len:dlen data);
  (* Re-check the stamp once the chunk lock is held: queueing behind
     another mutation takes (simulated) time, and a stamp that lapsed
     in the queue must not reach the disk either. *)
  if expired expires then begin
    t.stale_rejects <- t.stale_rejects + 1;
    raise Expired_stamp
  end;
  (* The copy-on-write base read below can block on the raw disk, so
     the stamp is audited once more at the actual disk-write instant;
     a hit here is a §6 invariant violation the lease margin is sized
     to prevent, and the partition sweep asserts it stays 0. *)
  let audit_stamp () =
    if expired expires then t.stale_applied <- t.stale_applied + 1
  in
  let vl = versions t (root, chunk) in
  let whole = dlen = chunk_bytes && within = 0 in
  match !vl with
  | { epoch = e; loc = Some (d, off) } :: _ when e = epoch ->
    audit_stamp ();
    t.disks.(d).Blockdev.Storage.write_sub ~off:(off + within) data ~boff:doff
      ~len:dlen
  | current ->
    (* Fresh extent needed: tombstone at this epoch, older epoch, or
       nothing stored yet. *)
    if whole then begin
      let d, off = allocate t in
      audit_stamp ();
      (* Whole-chunk write: the payload slice goes straight to storage
         (the store copies, or aliases an immutable payload). *)
      t.disks.(d).Blockdev.Storage.write_sub ~off data ~boff:doff ~len:dlen;
      place_version t vl ~epoch ~ext:(d, off)
    end
    else begin
      let base =
        match select_version current Current with
        | Some { loc = Some (d, off); _ } ->
          t.disks.(d).Blockdev.Storage.read ~off ~len:chunk_bytes
        | Some { loc = None; _ } | None -> Bytes.make chunk_bytes '\000'
      in
      Bytes.blit data doff base within dlen;
      let d, off = allocate t in
      audit_stamp ();
      (* [base] is freshly built and never touched again: transfer
         ownership so an NVRAM front need not copy it. *)
      t.disks.(d).Blockdev.Storage.write_own ~off base;
      place_version t vl ~epoch ~ext:(d, off)
    end

let decommit_chunk t ~root ~chunk ~epoch ~expires =
  Faultpoint.hit "petal.chunk_decommit";
  with_chunk_lock t (root, chunk) @@ fun () ->
  trace "t=%d D %s root=%d chunk=%d" (Sim.now ()) (Host.name t.host) root chunk;
  if expired expires then begin
    t.stale_rejects <- t.stale_rejects + 1;
    raise Expired_stamp
  end;
  let vl = versions t (root, chunk) in
  match !vl with
  | [] -> ()
  | { epoch = e; loc } :: rest when e = epoch ->
    (match loc with Some ext -> free_extent t ext | None -> ());
    (* If snapshot-pinned versions remain, the live disk must still
       read as zeros: leave a tombstone. *)
    if rest = [] then begin
      vl := [];
      Hashtbl.remove t.chunks (root, chunk)
    end
    else vl := { epoch; loc = None } :: rest
  | current -> vl := { epoch; loc = None } :: current

(* --- replication ------------------------------------------------------ *)

let forward_write t ~root ~chunk ~within ~data ~doff ~dlen ~epoch ~expires
    ~stamp =
  match replica_of t ~root ~chunk ~nrep:(nrep_of_root t root) with
  | None -> ()
  | Some ri -> (
    let peer = t.members.(ri) in
    match
      Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 500)
        ~size:(write_req_size dlen)
        (Repl_req { root; chunk; within; data; doff; dlen; epoch; expires; stamp })
    with
    | Ok Write_ok -> ()
    | Ok _ | Error `Timeout ->
      (* Degraded: the replica is unreachable; the write is single-copy
         until the resync daemon repairs it. Marked with the write's
         own stamp, not the (later) failure time: the repair push must
         not claim to be fresher than the bytes it carries. *)
      Logs.debug (fun m -> m "%s: replica write degraded" (Host.name t.host));
      mark_degraded t ~peer ~root ~chunk ~within ~len:dlen ~stamp)

(* Push the byte ranges of a degraded chunk the lagging replica
   missed; returns true when every range is acknowledged. A chunk
   that vanished or whose head is a tombstone was decommitted since
   the ranges were marked: propagate the decommit instead, so the
   peer does not keep serving (or later resurface) the freed bytes. *)
let push_chunk t ~peer ~root ~chunk ~ranges =
  Faultpoint.hit "petal.resync_push";
  let push_decommit () =
    match
      Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 500) ~size:small
        (Decommit_req { root; chunk; forward = false; mepoch = -1; expires = None })
    with
    | Ok Decommit_ok ->
      t.xfer_pushes <- t.xfer_pushes + 1;
      true
    | Ok _ | Error `Timeout -> false
  in
  match Hashtbl.find_opt t.chunks (root, chunk) with
  | None ->
    trace "t=%d PUSHDECOMMIT %s->%d root=%d chunk=%d (absent)" (Sim.now ())
      (Host.name t.host) peer root chunk;
    push_decommit ()
  | Some vl -> (
    match !vl with
    | { epoch; loc = Some (d, off) } :: _ ->
      List.for_all
        (fun (a, b, s) ->
          let data = t.disks.(d).Blockdev.Storage.read ~off:(off + a) ~len:(b - a) in
          trace "t=%d P %s->%d root=%d chunk=%d [%d,%d) s=%d hit=%b" (Sim.now ())
            (Host.name t.host) peer root chunk a b s (data_has_needle data);
          match
            Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 500)
              ~size:(write_req_size (b - a))
              (Repl_req { root; chunk; within = a; data; doff = 0;
                          dlen = b - a; epoch; expires = None; stamp = s })
          with
          | Ok Write_ok ->
            t.xfer_pushes <- t.xfer_pushes + 1;
            t.xfer_bytes <- t.xfer_bytes + (b - a);
            true
          | Ok _ | Error `Timeout -> false)
        ranges
    | { loc = None; _ } :: _ ->
      trace "t=%d PUSHDECOMMIT %s->%d root=%d chunk=%d (tombstone)" (Sim.now ())
        (Host.name t.host) peer root chunk;
      push_decommit ()
    | [] ->
      trace "t=%d PUSHDECOMMIT %s->%d root=%d chunk=%d (empty)" (Sim.now ())
        (Host.name t.host) peer root chunk;
      push_decommit ())

(* Free the extents of chunks this server no longer owns under the
   committed map (the data migrated through the handoff stream), so a
   decommissioned or demoted server ends up holding nothing it could
   serve stale. Skipped while a transfer is pending (during one, the
   old map is authoritative and we may BE a future owner receiving
   data) and for chunks with unsent degraded ranges (late writes
   accepted just before cutover still have to reach the new owner). *)
let gc_nonowned t =
  if t.pending = None then begin
    let referenced = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ set -> Hashtbl.iter (fun k _ -> Hashtbl.replace referenced k ()) set)
      t.degraded;
    let victims =
      Hashtbl.fold
        (fun (root, chunk) _ acc ->
          if
            (not (Hashtbl.mem referenced (root, chunk)))
            && not (is_owner t ~root ~chunk ~nrep:(nrep_of_root t root))
          then (root, chunk) :: acc
          else acc)
        t.chunks []
    in
    List.iter
      (fun key ->
        with_chunk_lock t key @@ fun () ->
        (* Re-check under the lock: a reconfig may have started (or
           ownership returned) while we were freeing earlier chunks. *)
        let root, chunk = key in
        if t.pending = None && not (is_owner t ~root ~chunk ~nrep:(nrep_of_root t root))
        then
          match Hashtbl.find_opt t.chunks key with
          | None -> ()
          | Some vl ->
            trace "t=%d GC %s root=%d chunk=%d" (Sim.now ()) (Host.name t.host)
              root chunk;
            List.iter
              (fun v -> match v.loc with Some ext -> free_extent t ext | None -> ())
              !vl;
            Hashtbl.remove t.chunks key;
            t.gc_chunks <- t.gc_chunks + 1)
      (List.sort compare victims)
  end

let nonowned_chunk_count t =
  Hashtbl.fold
    (fun (root, chunk) _ acc ->
      if is_owner t ~root ~chunk ~nrep:(nrep_of_root t root) then acc else acc + 1)
    t.chunks 0

(* A backlog entry can outlive its purpose: a failed forward recorded
   toward a member a later reconfiguration removed, or a handoff delta
   toward a chunk whose owners have since moved again. Such a peer now
   rejects the push forever (it fails [peer_push_ok] on the receiving
   side), which would wedge the drain — and with it any pending
   cutover. Drop entries whose peer is not an owner of the chunk under
   either the committed map or the pending target. *)
let gc_stale_backlog t =
  Hashtbl.iter
    (fun peer set ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) set [] in
      List.iter
        (fun (root, chunk) ->
          let nrep = nrep_of_root t root in
          let has owners = List.exists (fun o -> t.members.(o) = peer) owners in
          let wanted =
            has (owners_under t.active ~nrep ~root ~chunk)
            ||
            match t.pending with
            | Some p -> has (owners_under p.target ~nrep ~root ~chunk)
            | None -> false
          in
          if not wanted then Hashtbl.remove set (root, chunk))
        (List.sort compare keys))
    t.degraded

let resync_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.sec 2.0);
    if Host.is_alive t.host then begin
      gc_stale_backlog t;
      if degraded_count t > 0 then begin
        (* The per-tick push budget rises while a transfer is pending:
           an ownership handoff marks every affected chunk at once and
           should drain in seconds of simulated time, not minutes. *)
        let budget = if t.pending = None then 16 else 64 in
        (* Snapshot the peer set: pushes block on the network, and a
           concurrent failed forward may add a brand-new peer entry
           mid-iteration. *)
        let peers = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.degraded [] in
        List.iter
          (fun (peer, set) ->
            let chunks = Hashtbl.fold (fun k v acc -> (k, v) :: acc) set [] in
            List.iteri
              (fun i ((root, chunk), (ranges, gen0)) ->
                if i < budget then begin
                  match push_chunk t ~peer ~root ~chunk ~ranges with
                  | true -> (
                    (* A write may have landed between the push
                       reading the bytes and the ack, re-marking part
                       of what we sent — the bytes we sent for that
                       part were already stale. If the generation is
                       untouched nothing moved: clear the pushed
                       ranges outright. Otherwise clear only the
                       sub-ranges whose stamp is still the one we
                       pushed; anything stamped newer stays for the
                       next tick. *)
                    match Hashtbl.find_opt set (root, chunk) with
                    | None -> ()
                    | Some (cur, gen) -> (
                      match
                        List.fold_left
                          (fun acc (a, b, s) ->
                            if gen = gen0 then seg_sub acc (a, b)
                            else seg_clear acc (a, b) ~upto:s)
                          cur ranges
                      with
                      | [] -> Hashtbl.remove set (root, chunk)
                      | left -> Hashtbl.replace set (root, chunk) (left, gen)))
                  | false -> ()
                  | exception Host.Crashed _ -> ()
                end)
              chunks)
          peers
      end;
      gc_nonowned t
    end;
    loop ()
  in
  loop ()

(* Cutover daemon: while this server knows of a pending transfer, it
   polls every involved member's drain status; once all of them
   report the same map epoch, the same pending transfer and an empty
   push backlog, it proposes [Complete_transfer]. Every server polls
   independently — whoever sees global drain first wins the Paxos
   race and the others' proposals apply as no-ops — so the cutover
   needs no distinguished coordinator and survives any proposer
   dying mid-handoff. An unreachable member simply delays the
   cutover until the nemesis heals or the host restarts; committing
   without its report could strand chunks it alone had marked. *)
let cutover_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.ms 900);
    (match t.pending with
    | Some p when Host.is_alive t.host -> (
      let involved =
        List.sort_uniq compare (Array.to_list t.active @ Array.to_list p.target)
      in
      let probe i =
        if i = t.index then
          t.mepoch = p.target_epoch - 1 && t.pending <> None && degraded_count t = 0
        else
          match
            Rpc.call t.rpc ~dst:t.members.(i) ~timeout:(Sim.ms 400) ~size:small
              Xfer_status_req
          with
          | Ok (Xfer_status { mepoch; pending; backlog }) ->
            mepoch = p.target_epoch - 1 && pending && backlog = 0
          | Ok _ | Error `Timeout -> false
      in
      match List.for_all probe involved with
      | true ->
        if t.pending <> None then begin
          (* The faultpoint may crash this very host; the propose then
             raises from this daemon and must not abort the run. *)
          try
            Faultpoint.hit "petal.cutover_propose";
            ignore
              (P.propose t.paxos (Complete_transfer { target = p.target_epoch }))
          with Host.Crashed _ -> ()
        end
      | false -> ()
      | exception Host.Crashed _ -> ())
    | _ -> ());
    loop ()
  in
  loop ()

(* --- RPC handlers ------------------------------------------------------ *)

let vdisk t root =
  match Hashtbl.find_opt t.vdisks root with
  | Some v -> v
  | None -> failwith "petal: unknown virtual disk"

let reject_stale t =
  t.stale_rejects <- t.stale_rejects + 1;
  Some (Perr "expired lease timestamp", small)

(* The map guard on every client data request: the client's routing
   epoch must match the committed map AND this server must actually
   own the chunk under it (the second check catches clients whose map
   is somehow current but whose routing is not). While a transfer is
   pending the old map stays authoritative, so traffic is undisturbed
   until the cutover instant. *)
let reject_wrong_epoch t =
  t.wrong_epoch_rejects <- t.wrong_epoch_rejects + 1;
  Some (Wrong_epoch { mepoch = t.mepoch }, small)

let map_ok t ~mepoch ~root ~chunk =
  mepoch = t.mepoch && is_owner t ~root ~chunk ~nrep:(nrep_of_root t root)

(* --- drain-time write freeze ------------------------------------------ *)

(* How long a pending transfer relies on write lulls before the freeze
   engages. Generous enough that an ordinary handoff (which drains in
   a few resync ticks) never freezes anybody; short enough to bound
   cutover latency under a relentless hot-chunk writer. *)
let freeze_grace = Sim.sec 8.0

let chunk_moving t (p : pending) ~root ~chunk =
  let nrep = nrep_of_root t root in
  List.sort compare (owners_under t.active ~nrep ~root ~chunk)
  <> List.sort compare (owners_under p.target ~nrep ~root ~chunk)

(* A client mutation of a chunk whose owner set actually changes is
   refused once the transfer has been pending past the grace period:
   every accepted write re-marks its byte range degraded toward the
   future owners ([mark_transfer_delta]), so without the freeze a
   sustained writer refills the push backlog every resync tick and the
   cutover daemon never observes global drain. Frozen writers get
   [Wrong_epoch] and wait-and-retry at the client; peer pushes
   ([Repl_req]) are never frozen — they ARE the drain. *)
let freeze_blocks t ~root ~chunk =
  match t.pending with
  | None -> false
  | Some p ->
    Sim.now () - t.pending_since >= freeze_grace
    && chunk_moving t p ~root ~chunk

let reject_frozen t =
  t.freeze_rejects <- t.freeze_rejects + 1;
  Some (Wrong_epoch { mepoch = t.mepoch }, small)

(* Peer pushes are accepted only by a member that owns the chunk
   under the committed map or will own it under the pending transfer.
   The reject matters for a lagging joiner that has not yet applied
   [Add_server]: its begin-transfer purge must run before it stores
   anything, so a push arriving early is refused and the source
   (which treats any non-ok reply as a failed push) simply retries a
   tick later. It also stops a push long-delayed in the network from
   resurrecting data on a member the map has since moved past. *)
let peer_push_ok t ~root ~chunk =
  let nrep = nrep_of_root t root in
  is_owner t ~root ~chunk ~nrep
  ||
  match t.pending with
  | Some p -> List.mem t.index (owners_under p.target ~nrep ~root ~chunk)
  | None -> false

let handler t ~src body =
  match body with
  | (Read_req _ | Write_req _ | Repl_req _ | Decommit_req _ | Mgmt_req _)
    when not (authorized t src) ->
    Some (Perr "unauthorized", small)
  | Read_req { root; chunk; mepoch; _ } when not (map_ok t ~mepoch ~root ~chunk) ->
    reject_wrong_epoch t
  | Read_req { root; chunk; within; len; sel; mepoch = _ } -> (
    match read_chunk t ~root ~chunk ~within ~len ~sel with
    | data -> Some (Read_ok data, read_ok_size len)
    | exception Damaged ->
      (* Ask the replica for a clean whole-chunk copy, repair our
         medium, and serve the read. *)
      let v = vdisk t root in
      match replica_of t ~root ~chunk ~nrep:v.nrep with
      | Some ri -> (
        match
          Rpc.call t.rpc ~dst:t.members.(ri) ~timeout:(Sim.ms 500)
            ~size:read_req_size
            (Read_req { root; chunk; within = 0; len = chunk_bytes; sel;
                        mepoch = t.mepoch })
        with
        | Ok (Read_ok clean) ->
          Logs.info (fun m ->
              m "%s: repaired damaged chunk (%d,%d) from replica"
                (Host.name t.host) root chunk);
          repair_chunk t ~root ~chunk ~data:clean;
          Some (Read_ok (Bytes.sub clean within len), read_ok_size len)
        | Ok _ | Error `Timeout -> Some (Perr "media error", small)
      )
      | None -> Some (Perr "media error", small))
  | Write_req { root; chunk; mepoch; _ } when not (map_ok t ~mepoch ~root ~chunk) ->
    reject_wrong_epoch t
  | Write_req { root; chunk; _ } when freeze_blocks t ~root ~chunk ->
    reject_frozen t
  | Write_req { expires; _ } when expired expires -> reject_stale t
  | Write_req { root; chunk; within; data; doff; dlen; solo; expires; mepoch = _ }
    -> (
    let v = vdisk t root in
    let epoch = v.epoch in
    (* The write's freshness stamp, captured before any mutation or
       blocking: every degraded mark and replica forward this write
       spawns must carry the time the bytes were written, not the
       (possibly much later) time a forward failed. *)
    let wstamp = Sim.now () in
    (* Transfer deltas are marked both before and after the mutation:
       a transfer that begins while this write is in flight would
       otherwise miss it on both sides — [begin_transfer] enumerates
       the chunk table before the write inserts into it, and a single
       pre-write mark still sees no pending transfer. *)
    mark_transfer_delta t ~root ~chunk ~within ~len:dlen ~stamp:wstamp;
    (if solo && v.nrep > 1 then begin
       (* Degraded client write: we are the replica; the primary
          missed this update and must be repaired when it returns. *)
       match replica_of t ~root ~chunk ~nrep:v.nrep with
       | Some pi when t.members.(pi) <> Rpc.addr t.rpc ->
         mark_degraded t ~peer:t.members.(pi) ~root ~chunk ~within
           ~len:dlen ~stamp:wstamp
       | Some _ | None -> ()
     end);
    match
      if (not solo) && v.nrep > 1 then begin
        (* Apply locally and forward to the replica in parallel. *)
        let fwd = Sim.Ivar.create () in
        Sim.spawn (fun () ->
            (* The forwarder runs as its own scheduled process: if the
               host dies mid-write (faultpoint or nemesis) the raise
               would escape the scheduler, so contain it here. Fill the
               ivar regardless — the handler's own raise, not ours,
               reports the crash. *)
            (try
               forward_write t ~root ~chunk ~within ~data ~doff ~dlen ~epoch
                 ~expires ~stamp:wstamp
             with Host.Crashed _ -> ());
            Sim.Ivar.fill fwd ());
        write_chunk t ~root ~chunk ~within ~data ~doff ~dlen ~epoch ~expires;
        Sim.Ivar.read fwd
      end
      else write_chunk t ~root ~chunk ~within ~data ~doff ~dlen ~epoch ~expires
    with
    | () ->
      mark_transfer_delta t ~root ~chunk ~within ~len:dlen ~stamp:wstamp;
      Some (Write_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Repl_req { root; chunk; _ } when not (peer_push_ok t ~root ~chunk) ->
    reject_wrong_epoch t
  | Repl_req { expires; _ } when expired expires -> reject_stale t
  | Repl_req { root; chunk; within; data; doff; dlen; epoch; expires; stamp }
    -> (
    (* Peer traffic (forwarded writes, resync and handoff pushes)
       bypasses the epoch equality check: during a transfer it
       legitimately targets future owners the committed map does not
       list yet — but only current-or-future owners (peer_push_ok).
       Deltas are marked before and after, as on the client path.

       Freshness guard: where our OWN backlog toward the sender
       records a write at least as new as the pushed bytes, our copy
       supersedes theirs — both sides accepted solo writes to the
       range during disjoint failure windows, and ours came later.
       Skip those sub-ranges (the sender gets our bytes when the
       counter-entry drains) but still ack, so the sender clears its
       now-obsolete entry instead of re-pushing stale data forever. *)
    let skips =
      match Hashtbl.find_opt t.degraded src with
      | None -> []
      | Some set -> (
        match Hashtbl.find_opt set (root, chunk) with
        | None -> []
        | Some (segs, _) ->
          let lo = within and hi = within + dlen in
          List.filter_map
            (fun (a, b, s) ->
              if s >= stamp && a < hi && lo < b then
                Some (max a lo, min b hi)
              else None)
            segs)
    in
    let applies =
      List.fold_left
        (fun acc skip -> List.concat_map (fun r -> range_sub r skip) acc)
        [ (within, within + dlen) ]
        skips
    in
    match
      List.iter
        (fun (a, b) ->
          mark_transfer_delta t ~root ~chunk ~within:a ~len:(b - a) ~stamp;
          (* Sub-range apply re-slices the shared payload — offset
             arithmetic instead of a Bytes.sub per surviving range. *)
          write_chunk t ~root ~chunk ~within:a ~data
            ~doff:(doff + (a - within)) ~dlen:(b - a) ~epoch ~expires;
          mark_transfer_delta t ~root ~chunk ~within:a ~len:(b - a) ~stamp)
        applies
    with
    | () -> Some (Write_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Decommit_req { root; chunk; mepoch; _ }
    when mepoch >= 0 && not (map_ok t ~mepoch ~root ~chunk) ->
    reject_wrong_epoch t
  | Decommit_req { root; chunk; mepoch; _ }
    when mepoch >= 0 && freeze_blocks t ~root ~chunk ->
    reject_frozen t
  | Decommit_req { expires; _ } when expired expires -> reject_stale t
  | Decommit_req { root; chunk; forward; expires; mepoch = _ } -> (
    let v = vdisk t root in
    let dstamp = Sim.now () in
    mark_transfer_delta t ~root ~chunk ~within:0 ~len:chunk_bytes ~stamp:dstamp;
    match decommit_chunk t ~root ~chunk ~epoch:v.epoch ~expires with
    | () ->
      (if forward && v.nrep > 1 then
         match replica_of t ~root ~chunk ~nrep:v.nrep with
         | None -> ()
         | Some ri -> (
           let peer = t.members.(ri) in
           match
             Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 500) ~size:small
               (Decommit_req
                  { root; chunk; forward = false; mepoch = -1; expires })
           with
           | Ok Decommit_ok -> ()
           | Ok _ | Error `Timeout ->
             (* The replica missed the decommit: mark the chunk so the
                resync daemon propagates it (push_chunk turns a
                tombstoned or vanished chunk into a decommit push) —
                otherwise the replicas diverge for good and a later
                failover serves the freed bytes back. *)
             mark_degraded t ~peer ~root ~chunk ~within:0 ~len:chunk_bytes
               ~stamp:dstamp));
      mark_transfer_delta t ~root ~chunk ~within:0 ~len:chunk_bytes ~stamp:dstamp;
      Some (Decommit_ok, small)
    | exception Expired_stamp -> Some (Perr "expired lease timestamp", small))
  | Mgmt_req cmd ->
    Faultpoint.hit "petal.mgmt_propose";
    let slot = P.propose t.paxos cmd in
    while P.applied_up_to t.paxos <= slot do
      Sim.sleep (Sim.ms 1)
    done;
    let id = Hashtbl.find t.slot_ids slot in
    if id < 0 then Some (Perr "rejected by apply", small)
    else Some (Mgmt_ok id, small)
  | Vdisk_info_req id -> (
    match Hashtbl.find_opt t.vdisks id with
    | Some v -> Some (Vdisk_info { root = v.root; nrep = v.nrep; frozen = v.frozen }, small)
    | None -> Some (Perr "unknown vdisk", small))
  | Map_req ->
    Some (Map { mepoch = t.mepoch; active = Array.to_list t.active }, small)
  | Xfer_status_req ->
    Some
      ( Xfer_status
          { mepoch = t.mepoch;
            pending = t.pending <> None;
            backlog = degraded_count t },
        small )
  | _ -> None

let create ~host ~rpc ~peers ~index ~disks ~stable ?active () =
  let active =
    match active with
    | Some l -> Array.of_list (List.sort_uniq compare l)
    | None -> Array.init (Array.length peers) Fun.id
  in
  let rec t =
    lazy
      {
        host;
        rpc;
        members = peers;
        index;
        disks;
        chunks = Hashtbl.create 4096;
        wlocks = Hashtbl.create 4096;
        degraded = Hashtbl.create 4;
        mark_gen = 0;
        trusted = None;
        vdisks = Hashtbl.create 8;
        next_id = 1;
        slot_ids = Hashtbl.create 16;
        paxos =
          P.create ~rpc ~group:0x9e7a1 ~peers:(Array.to_list peers) ~id:index
            ~stable
            ~apply:(fun slot cmd -> apply (Lazy.force t) slot cmd);
        next_off = Array.map (fun _ -> 0) disks;
        free = Array.map (fun _ -> ref []) disks;
        alloc_rr = 0;
        allocated = 0;
        active;
        mepoch = 0;
        pending = None;
        pending_since = 0;
        stale_rejects = 0;
        stale_applied = 0;
        wrong_epoch_rejects = 0;
        freeze_rejects = 0;
        last_cutover = 0;
        max_cutover = 0;
        xfer_pushes = 0;
        xfer_bytes = 0;
        gc_chunks = 0;
        snap_gc_chunks = 0;
      }
  in
  let t = Lazy.force t in
  Rpc.add_handler rpc (handler t);
  Sim.spawn ~name:(Host.name host ^ ".resync") (resync_daemon t);
  Sim.spawn ~name:(Host.name host ^ ".cutover") (cutover_daemon t);
  t
