open Cluster

type t = {
  hosts : Host.t array;
  servers : Server.t array;
  addrs : Net.addr array;
  rpcs : Rpc.t array;
  disks : Blockdev.Disk.t array array; (* raw disks, for fault injection *)
  active : int list; (* member indexes initially serving data *)
}

let build ~net ?(nservers = 7) ?nactive ?(ndisks = 9) ?(nvram = false)
    ?(disk_capacity = 64 * 1024 * 1024) () =
  let active =
    match nactive with
    | None -> List.init nservers Fun.id
    | Some n -> List.init (min n nservers) Fun.id
  in
  let hosts = Array.init nservers (fun i -> Host.create (Printf.sprintf "petal%d" i)) in
  let rpcs = Array.map (fun h -> Rpc.create (Net.attach net h)) hosts in
  let addrs = Array.map Rpc.addr rpcs in
  let raw_disks =
    Array.init nservers (fun i ->
        Array.init ndisks (fun d ->
            Blockdev.Disk.create ~capacity:disk_capacity
              (Printf.sprintf "petal%d.rz29-%d" i d)))
  in
  let servers =
    Array.init nservers (fun i ->
        let disks =
          Array.map
            (fun disk ->
              if nvram then Blockdev.Nvram.wrap disk else Blockdev.Storage.of_disk disk)
            raw_disks.(i)
        in
        Server.create ~host:hosts.(i) ~rpc:rpcs.(i) ~peers:addrs ~index:i ~disks
          ~stable:(Paxos_group.stable ()) ~active ())
  in
  { hosts; servers; addrs; rpcs; disks = raw_disks; active }

let client t ~rpc = Client.connect ~rpc ~servers:t.addrs ~active:t.active ()
