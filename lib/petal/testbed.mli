(** Convenience assembly of a Petal cluster (servers + hosts + disks)
    used by tests, examples and the benchmark harness. *)

type t = {
  hosts : Cluster.Host.t array;
  servers : Server.t array;
  addrs : Cluster.Net.addr array;
  rpcs : Cluster.Rpc.t array;  (** exposed so other services (e.g. lock
      servers) can co-locate on the Petal machines, as in Figure 2 *)
  disks : Blockdev.Disk.t array array;
      (** the raw disks per server, for fault injection in tests *)
  active : int list;
      (** the member indexes initially serving data (clients built
          with {!client} start routing under this map) *)
}

val build :
  net:Cluster.Net.t ->
  ?nservers:int ->
  ?nactive:int ->
  ?ndisks:int ->
  ?nvram:bool ->
  ?disk_capacity:int ->
  unit ->
  t
(** Build a cluster: default 7 servers with 9 disks each (the paper's
    testbed), NVRAM off, 64 MB per simulated disk (plenty for
    experiments while keeping memory small — pass a larger
    [disk_capacity] for long runs). [nactive] (default: all) makes
    only the first [nactive] members serve data initially, leaving
    the rest as standbys for reconfiguration tests — all [nservers]
    participate in the Paxos group either way. *)

val client : t -> rpc:Cluster.Rpc.t -> Client.t
(** A driver instance on some (other) host, wired to this cluster. *)
