open Simkit
open Cluster
open Protocol

type t = {
  rpc : Rpc.t;
  servers : Net.addr array;
      (* the fixed provisioned-member set; which members serve data is
         the Paxos-agreed [active] map below *)
  timeout : Sim.time;
  inflight : Sim.Resource.t;
      (* bounds outstanding chunk pieces: submission blocks here, so
         backpressure lives at the driver, not in every caller *)
  mutable write_guard : unit -> int option;
      (* expiration timestamp attached to every write (§6 fix) *)
  (* The ownership map this client routes under. Every data request
     carries [mepoch]; a server whose committed map differs answers
     [Wrong_epoch] and the client refetches the map (via [call_retry])
     and retries — so a stale client converges instead of surfacing
     spurious replica loss to the cache layer. *)
  mutable active : int array;
  mutable mepoch : int;
  mutable write_ops : int;
  mutable write_ns : int;
  mutable read_ops : int;
  mutable read_ns : int;
  mutable read_piece_count : int; (* chunk pieces before coalescing *)
  mutable read_rpc_count : int; (* read RPCs actually issued *)
  mutable read_coalesce_count : int; (* pieces merged into a neighbour *)
  mutable write_piece_count : int; (* write pieces before coalescing *)
  mutable write_rpc_count : int; (* write RPCs actually issued *)
  mutable write_coalesce_count : int; (* write pieces merged into a neighbour *)
  prefetch_inflight : Sim.Resource.t;
      (* speculative reads are bounded separately (and tighter) than
         the main pool, so a deep read-ahead window can never occupy
         the slots a foreground read or dirty write-back needs *)
  (* Servers whose last piece RPC timed out, mapped to the time of
     their next probe: until then pieces go straight to the other
     replica instead of re-paying the timeout, and after a successful
     probe the primary is used again (heal detection — failover is
     not pinned forever). *)
  suspects : (int, Sim.time) Hashtbl.t;
  mutable failover_count : int;
  mutable primary_skip_count : int;
  mutable probe_heal_count : int;
  mutable map_refresh_count : int;
  mutable wrong_epoch_retry_count : int;
  mutable freeze_wait_count : int;
      (* wait-and-retry rounds spent against a server NOT ahead of the
         client's map: Paxos apply lag, or the drain-time write freeze
         of a pending reconfiguration (which can last many seconds) *)
}

type vdisk = {
  c : t;
  vid : int;
  root : int;
  nrep : int;
  frozen : int option;
}

type 'a handle = ('a, exn) result Sim.Ivar.t

let wait h = Sim.Ivar.read h
let await h = match wait h with Ok v -> v | Error ex -> raise ex

type stats = {
  writes : int;
  write_seconds : float;
  reads : int;
  read_seconds : float;
  read_pieces : int;
  read_rpcs : int;
  read_coalesced : int;
  write_pieces : int;
  write_rpcs : int;
  write_coalesced : int;
  failovers : int;
  primary_skips : int;
  probe_heals : int;
  map_refreshes : int;
  wrong_epoch_retries : int;
  freeze_waits : int;
}

(* The paper keeps "several megabytes" of write-behind in flight
   (§4); 64 pieces of up to 64 KB each is 4 MB. *)
let max_inflight_pieces = 64

(* Speculative (read-ahead) pieces get their own, smaller bound: 16
   pieces of up to 64 KB is one full prefetch window in flight. *)
let max_prefetch_pieces = 16

(* The per-replica timeout must comfortably exceed a queued raw-disk
   write burst; failover latency is dominated by it, so it trades
   responsiveness against spurious degradation. *)
let connect ~rpc ~servers ?active () =
  let active =
    match active with
    | Some l -> Array.of_list (List.sort_uniq compare l)
    | None -> Array.init (Array.length servers) Fun.id
  in
  { rpc; servers; timeout = Sim.sec 2.0;
    inflight = Sim.Resource.create ~capacity:max_inflight_pieces "petal.inflight";
    prefetch_inflight =
      Sim.Resource.create ~capacity:max_prefetch_pieces "petal.prefetch";
    write_guard = (fun () -> None);
    active; mepoch = 0;
    write_ops = 0; write_ns = 0; read_ops = 0; read_ns = 0;
    read_piece_count = 0; read_rpc_count = 0; read_coalesce_count = 0;
    write_piece_count = 0; write_rpc_count = 0; write_coalesce_count = 0;
    suspects = Hashtbl.create 4;
    failover_count = 0; primary_skip_count = 0; probe_heal_count = 0;
    map_refresh_count = 0; wrong_epoch_retry_count = 0;
    freeze_wait_count = 0 }

(* How long a timed-out server is skipped before a piece probes it
   again. Short enough that a healed partition stops costing the
   replica detour within seconds, long enough that a dead server
   costs one timeout per window instead of one per piece. *)
let probe_interval = Sim.sec 5.0

let set_write_guard v f = v.c.write_guard <- f

let op_stats v =
  {
    writes = v.c.write_ops;
    write_seconds = float_of_int v.c.write_ns /. 1e9;
    reads = v.c.read_ops;
    read_seconds = float_of_int v.c.read_ns /. 1e9;
    read_pieces = v.c.read_piece_count;
    read_rpcs = v.c.read_rpc_count;
    read_coalesced = v.c.read_coalesce_count;
    write_pieces = v.c.write_piece_count;
    write_rpcs = v.c.write_rpc_count;
    write_coalesced = v.c.write_coalesce_count;
    failovers = v.c.failover_count;
    primary_skips = v.c.primary_skip_count;
    probe_heals = v.c.probe_heal_count;
    map_refreshes = v.c.map_refresh_count;
    wrong_epoch_retries = v.c.wrong_epoch_retry_count;
    freeze_waits = v.c.freeze_wait_count;
  }

(* Placement mirrors Server.owners_under exactly: ring slot
   [(root + chunk) mod n] of the sorted active array is the primary
   member, the next slot the replica. Both sides compute it from the
   same Paxos-agreed map, keyed by [mepoch]. *)
let primary_of t ~root ~chunk =
  t.active.((root + chunk) mod Array.length t.active)

let secondary_of t ~root ~chunk =
  t.active.(((root + chunk) mod Array.length t.active + 1) mod Array.length t.active)

(* Poll order for control-plane requests (map fetch, management,
   open): active members first — they are alive with high probability
   — then the standbys, which also participate in the Paxos group. *)
let poll_order t =
  Array.to_list t.active
  @ List.filter
      (fun i -> not (Array.exists (( = ) i) t.active))
      (List.init (Array.length t.servers) Fun.id)

(* Refetch the ownership map after a [Wrong_epoch] reject. Uses
   [call_retry] (retransmission + dedup) so a single lossy link does
   not turn a map refresh into a spurious failure; tries every member
   because during a reconfiguration some servers lag the Paxos
   apply. Keeps the old map if nobody offers a newer one — the
   caller's retry will then fail visibly rather than loop. *)
let refresh_map t =
  t.map_refresh_count <- t.map_refresh_count + 1;
  let rec go = function
    | [] -> ()
    | i :: rest -> (
      match
        Rpc.call_retry t.rpc ~dst:t.servers.(i) ~timeout:(Sim.ms 400)
          ~attempts:2 ~size:small Map_req
      with
      | Ok (Map { mepoch; active }) when mepoch > t.mepoch ->
        t.mepoch <- mepoch;
        t.active <- Array.of_list active
      | Ok (Map _) -> go rest (* not newer: maybe a lagging server *)
      | Ok _ | Error `Timeout -> go rest)
  in
  go (poll_order t)

let fetch_map t =
  refresh_map t;
  (t.mepoch, Array.to_list t.active)

(* A scatter-gather operation: every chunk piece is submitted up
   front (bounded by the in-flight pool), then a waiter process per
   piece drives its own primary→secondary failover, so a slow or dead
   replica never stalls sibling pieces. The caller's handle fills
   once, with the first failure or with the gathered result. *)
type 'a gather = {
  handle : 'a handle;
  result : unit -> 'a;
  mutable remaining : int;
  started : Sim.time;
  account : Sim.time -> unit;
}

let gather_create ~npieces ~result ~account =
  { handle = Sim.Ivar.create (); result; remaining = npieces;
    started = Sim.now (); account }

let gather_fill g r =
  if not (Sim.Ivar.is_filled g.handle) then begin
    g.account (Sim.now () - g.started);
    Sim.Ivar.fill g.handle r
  end

let gather_piece_done g =
  g.remaining <- g.remaining - 1;
  if g.remaining = 0 then gather_fill g (Ok (g.result ()))

(* A suspected server is skipped (no timeout paid) until its probe
   window opens; the first piece after that retries it for real. *)
let skip_primary t pi =
  match Hashtbl.find_opt t.suspects pi with
  | Some until -> Sim.now () < until
  | None -> false

let note_primary_timeout t pi =
  t.failover_count <- t.failover_count + 1;
  Hashtbl.replace t.suspects pi (Sim.now () + probe_interval)

let note_primary_ok t pi =
  if Hashtbl.mem t.suspects pi then begin
    t.probe_heal_count <- t.probe_heal_count + 1;
    Hashtbl.remove t.suspects pi
  end

(* How many map-refresh rounds a piece tolerates before giving up.
   One round suffices for a plain stale map; a couple more ride out
   the window where servers apply the cutover at slightly different
   instants. *)
let max_map_rounds = 4

(* How many wait-and-retry rounds a piece tolerates against a server
   that is NOT ahead of the client's map. That happens for seconds at
   most under plain apply lag, but for much longer under the
   drain-time write freeze of a pending reconfiguration — the server
   rejects mutations of a moving chunk until the handoff drains and
   the cutover commits. 120 rounds of 250 ms (30 s of simulated time)
   comfortably covers the freeze window; the freeze exists precisely
   so that window is bounded. *)
let max_wait_rounds = 120

(* Submit one piece: fire the first RPC from the submitting process
   (so submission order is preserved and backpressure is felt there),
   then hand completion to a fresh process. [on_reply] interprets the
   server's answer, raising to fail the whole operation. The primary
   is skipped while suspected (a recent timeout) and re-probed once
   its window opens, so a healed link resumes primary routing instead
   of pinning failover.

   [req_of] is re-evaluated on every attempt so retries carry the
   client's {e current} map epoch: a [Wrong_epoch] reject triggers a
   map refresh and a re-route against the new owners (bounded by
   [max_map_rounds]), which is how a client rides through a
   reconfiguration cutover without surfacing replica loss. *)
let submit_piece ?(prefetch = false) t g ~root ~chunk ~nrep ~size ~req_of
    ~on_reply =
  let pool = if prefetch then t.prefetch_inflight else t.inflight in
  Sim.Resource.acquire pool;
  let pi = primary_of t ~root ~chunk in
  let to_secondary = nrep > 1 && skip_primary t pi in
  if to_secondary then t.primary_skip_count <- t.primary_skip_count + 1;
  let first =
    try
      if to_secondary then
        Rpc.call_async t.rpc ~dst:t.servers.(secondary_of t ~root ~chunk)
          ~timeout:t.timeout ~size (req_of ~solo:true)
      else
        Rpc.call_async t.rpc ~dst:t.servers.(pi) ~timeout:t.timeout ~size
          (req_of ~solo:false)
    with ex ->
      Sim.Resource.release pool;
      raise ex
  in
  (* One routed attempt against the current map: primary first (unless
     freshly suspected), then the replica. *)
  let routed_attempt () =
    let pi = primary_of t ~root ~chunk in
    match
      Rpc.call t.rpc ~dst:t.servers.(pi) ~timeout:t.timeout ~size
        (req_of ~solo:false)
    with
    | Ok r ->
      note_primary_ok t pi;
      Some r
    | Error `Timeout ->
      note_primary_timeout t pi;
      if nrep > 1 then
        match
          Rpc.call t.rpc ~dst:t.servers.(secondary_of t ~root ~chunk)
            ~timeout:t.timeout ~size (req_of ~solo:true)
        with
        | Ok r -> Some r
        | Error `Timeout -> None
      else None
  in
  let rec resolve mrounds wrounds reply =
    match reply with
    | Some (Wrong_epoch { mepoch = srv })
      when srv > t.mepoch && mrounds < max_map_rounds ->
      (* Genuinely stale map: the server has committed an epoch we
         have not seen. Refetch and re-route. *)
      t.wrong_epoch_retry_count <- t.wrong_epoch_retry_count + 1;
      refresh_map t;
      resolve (mrounds + 1) wrounds (routed_attempt ())
    | Some (Wrong_epoch { mepoch = srv })
      when srv <= t.mepoch && wrounds < max_wait_rounds ->
      (* The server is not ahead of us: either it lags the Paxos apply,
         or the drain-time freeze of a pending transfer is holding our
         mutation back. A refresh would just read the same map back —
         wait it out and retry; once the cutover commits the reject
         flips to [srv > t.mepoch] and the map branch takes over. *)
      t.wrong_epoch_retry_count <- t.wrong_epoch_retry_count + 1;
      t.freeze_wait_count <- t.freeze_wait_count + 1;
      Sim.sleep (Sim.ms 250);
      resolve mrounds (wrounds + 1) (routed_attempt ())
    | r -> r
  in
  Sim.spawn (fun () ->
      match
        resolve 0 0
          (match Sim.Ivar.read first with
          | Ok r ->
            if not to_secondary then note_primary_ok t pi;
            Some r
          | Error `Timeout when to_secondary -> (
            (* The replica detour failed; the suspicion may be stale
               (the fault moved), so probe the skipped primary before
               declaring the data unreachable. *)
            match
              Rpc.call t.rpc ~dst:t.servers.(pi) ~timeout:t.timeout ~size
                (req_of ~solo:false)
            with
            | Ok r ->
              note_primary_ok t pi;
              Some r
            | Error `Timeout ->
              note_primary_timeout t pi;
              None)
          | Error `Timeout ->
            note_primary_timeout t pi;
            if nrep > 1 then
              match
                Rpc.call t.rpc ~dst:t.servers.(secondary_of t ~root ~chunk)
                  ~timeout:t.timeout ~size (req_of ~solo:true)
              with
              | Ok r -> Some r
              | Error `Timeout -> None
            else None)
      with
      | exception ex ->
        (* Our own host died mid-failover: fail the op, don't abort
           the simulation from this helper process. *)
        Sim.Resource.release pool;
        gather_fill g (Error ex)
      | reply -> (
        Sim.Resource.release pool;
        match reply with
        | None ->
          let msg =
            if nrep > 1 then "petal: no replica reachable"
            else "petal: server unreachable"
          in
          gather_fill g (Error (Unavailable msg))
        | Some (Wrong_epoch _) ->
          (* Map rounds exhausted: the cluster is reconfiguring faster
             than we can refetch, or every refresh source is cut off.
             Same caller-visible outcome as replica loss. *)
          gather_fill g (Error (Unavailable "petal: ownership map stale"))
        | Some r -> (
          match on_reply r with
          | () -> gather_piece_done g
          | exception ex -> gather_fill g (Error ex))))

let mgmt t cmd =
  let order = poll_order t in
  let rec go = function
    | [] -> raise (Unavailable "petal: no server for management op")
    | i :: rest -> (
      match
        Rpc.call t.rpc ~dst:t.servers.(i) ~timeout:(Sim.sec 2.0) ~size:small
          (Mgmt_req cmd)
      with
      | Ok (Mgmt_ok id) -> id
      | Ok (Perr e) -> failwith ("petal: " ^ e)
      | Ok _ | Error `Timeout -> go rest)
  in
  go order

let create_vdisk t ~nrep = mgmt t (Create_vdisk { nrep })

let add_server t ~idx = ignore (mgmt t (Add_server { idx }))
let remove_server t ~idx = ignore (mgmt t (Remove_server { idx }))
let delete_vdisk t ~id = ignore (mgmt t (Delete_vdisk { id }))

let open_vdisk t vid =
  let order = poll_order t in
  let rec go = function
    | [] -> raise (Unavailable "petal: no server for open")
    | i :: rest -> (
      match
        Rpc.call t.rpc ~dst:t.servers.(i) ~timeout:(Sim.ms 500) ~size:small
          (Vdisk_info_req vid)
      with
      | Ok (Vdisk_info { root; nrep; frozen }) -> { c = t; vid; root; nrep; frozen }
      | Ok (Perr e) -> failwith ("petal: " ^ e)
      | Ok _ | Error `Timeout -> go rest)
  in
  go order

let id v = v.vid
let is_snapshot v = v.frozen <> None

let check_aligned ~off ~len =
  if off < 0 || len < 0 || off mod sector_bytes <> 0 || len mod sector_bytes <> 0
  then invalid_arg "petal: unaligned I/O"

(* Split [off, off+len) into (chunk, within, n) pieces. *)
let pieces ~off ~len =
  let rec go off len acc =
    if len = 0 then List.rev acc
    else begin
      let chunk = off / chunk_bytes in
      let within = off mod chunk_bytes in
      let n = min len (chunk_bytes - within) in
      go (off + n) (len - n) ((chunk, within, n) :: acc)
    end
  in
  go off len []

let sel v = match v.frozen with Some e -> At e | None -> Current

(* One destination segment of a (possibly coalesced) read RPC:
   [dlen] bytes at offset [srcoff] of the reply land at [dpos] of
   [dbuf]. *)
type dest = { dbuf : bytes; dpos : int; srcoff : int; dlen : int }

(* The shared read engine: split every run into chunk pieces, then
   coalesce adjacent pieces that address the same chunk (and thus the
   same server) into a single RPC — e.g. the tail of one 64 KB run
   and the head of the next, when runs are not chunk-aligned. Each
   coalesced RPC scatters its reply into all its destination
   segments. *)
let read_scatter ?prefetch v ~runs ~result ~account =
  List.iter (fun (off, buf) -> check_aligned ~off ~len:(Bytes.length buf)) runs;
  let raw =
    List.concat_map
      (fun (off, buf) ->
        let pos = ref 0 in
        List.map
          (fun (chunk, within, n) ->
            let p = !pos in
            pos := !pos + n;
            (chunk, within, n, { dbuf = buf; dpos = p; srcoff = 0; dlen = n }))
          (pieces ~off ~len:(Bytes.length buf)))
      runs
  in
  let merged =
    List.fold_left
      (fun acc (chunk, within, n, d) ->
        match acc with
        | (c0, w0, l0, ds) :: rest when c0 = chunk && w0 + l0 = within ->
          (c0, w0, l0 + n, { d with srcoff = l0 } :: ds) :: rest
        | _ -> (chunk, within, n, [ d ]) :: acc)
      [] raw
    |> List.rev_map (fun (c, w, l, ds) -> (c, w, l, List.rev ds))
  in
  v.c.read_piece_count <- v.c.read_piece_count + List.length raw;
  v.c.read_rpc_count <- v.c.read_rpc_count + List.length merged;
  v.c.read_coalesce_count <-
    v.c.read_coalesce_count + (List.length raw - List.length merged);
  let g = gather_create ~npieces:(List.length merged) ~result ~account in
  if merged = [] then gather_fill g (Ok (result ()))
  else begin
    try
      List.iter
        (fun (chunk, within, len, ds) ->
          submit_piece ?prefetch v.c g ~root:v.root ~chunk ~nrep:v.nrep
            ~size:read_req_size
            ~req_of:(fun ~solo:_ ->
              Read_req
                { root = v.root; chunk; within; len; sel = sel v;
                  mepoch = v.c.mepoch })
            ~on_reply:(function
              | Read_ok data ->
                List.iter
                  (fun d -> Bytes.blit data d.srcoff d.dbuf d.dpos d.dlen)
                  ds
              | _ -> failwith "petal: bad read reply"))
        merged
    with ex -> gather_fill g (Error ex)
  end;
  g.handle

let read_async v ~off ~len =
  v.c.read_ops <- v.c.read_ops + 1;
  let buf = Bytes.create len in
  read_scatter v
    ~runs:[ (off, buf) ]
    ~result:(fun () -> buf)
    ~account:(fun dt -> v.c.read_ns <- v.c.read_ns + dt)

let read_runs_async ?prefetch v runs =
  v.c.read_ops <- v.c.read_ops + 1;
  let bufs = List.map (fun (off, len) -> (off, Bytes.create len)) runs in
  read_scatter ?prefetch v ~runs:bufs
    ~result:(fun () -> List.map snd bufs)
    ~account:(fun dt -> v.c.read_ns <- v.c.read_ns + dt)

(* One source segment of a (possibly coalesced) write RPC: [slen]
   bytes at [spos] of [sbuf] form part of the payload. *)
type src = { sbuf : bytes; spos : int; slen : int }

(* The write-side twin of {!read_scatter}: split every [(off, data)]
   run into chunk pieces, coalesce adjacent pieces addressing the same
   chunk (the tail of one run and the head of the next, when runs are
   not chunk-aligned) into one RPC. A piece with a single source ships
   a (doff, dlen) slice of the caller's buffer — no copy, payloads are
   immutable once sent (Storage.mli's ownership rules); a merged piece
   gathers its sources into one fresh payload. *)
let write_scatter v ~runs ~account =
  if is_snapshot v then raise Read_only;
  List.iter (fun (off, data) -> check_aligned ~off ~len:(Bytes.length data)) runs;
  let raw =
    List.concat_map
      (fun (off, data) ->
        let pos = ref 0 in
        List.map
          (fun (chunk, within, n) ->
            let p = !pos in
            pos := !pos + n;
            (chunk, within, n, { sbuf = data; spos = p; slen = n }))
          (pieces ~off ~len:(Bytes.length data)))
      runs
  in
  let merged =
    List.fold_left
      (fun acc (chunk, within, n, s) ->
        match acc with
        | (c0, w0, l0, ss) :: rest when c0 = chunk && w0 + l0 = within ->
          (c0, w0, l0 + n, s :: ss) :: rest
        | _ -> (chunk, within, n, [ s ]) :: acc)
      [] raw
    |> List.rev_map (fun (c, w, l, ss) -> (c, w, l, List.rev ss))
  in
  v.c.write_piece_count <- v.c.write_piece_count + List.length raw;
  v.c.write_rpc_count <- v.c.write_rpc_count + List.length merged;
  v.c.write_coalesce_count <-
    v.c.write_coalesce_count + (List.length raw - List.length merged);
  let g =
    gather_create ~npieces:(List.length merged)
      ~result:(fun () -> ())
      ~account
  in
  if merged = [] then gather_fill g (Ok ())
  else begin
    try
      List.iter
        (fun (chunk, within, len, ss) ->
          Faultpoint.hit "petal.write_piece";
          let data, doff, dlen =
            match ss with
            | [ s ] -> (s.sbuf, s.spos, s.slen)
            | ss ->
              ( Bytes.concat Bytes.empty
                  (List.map (fun s -> Bytes.sub s.sbuf s.spos s.slen) ss),
                0, len )
          in
          submit_piece v.c g ~root:v.root ~chunk ~nrep:v.nrep
            ~size:(write_req_size dlen)
            ~req_of:(fun ~solo ->
              (* The §6 stamp is captured per attempt, not per piece: a
                 retry that sat out a reconfiguration freeze must carry
                 the current lease expiry, or the stamp lapses in the
                 wait loop and the server rejects a perfectly safe
                 write as stale. *)
              let expires = v.c.write_guard () in
              Write_req
                { root = v.root; chunk; within; data; doff; dlen; solo;
                  mepoch = v.c.mepoch; expires })
            ~on_reply:(function
              | Write_ok -> ()
              | Perr "expired lease timestamp" ->
                raise (Stale_write "expired lease timestamp")
              | Perr e -> failwith ("petal: " ^ e)
              | _ -> failwith "petal: bad write reply"))
        merged
    with ex -> gather_fill g (Error ex)
  end;
  g.handle

let write_async v ~off data =
  v.c.write_ops <- v.c.write_ops + 1;
  write_scatter v
    ~runs:[ (off, data) ]
    ~account:(fun dt -> v.c.write_ns <- v.c.write_ns + dt)

let write_runs_async v runs =
  v.c.write_ops <- v.c.write_ops + 1;
  write_scatter v ~runs
    ~account:(fun dt -> v.c.write_ns <- v.c.write_ns + dt)

let decommit_async v ~off ~len =
  if is_snapshot v then raise Read_only;
  check_aligned ~off ~len;
  if off mod chunk_bytes <> 0 || len mod chunk_bytes <> 0 then
    invalid_arg "petal: decommit must be chunk-aligned";
  let ps = pieces ~off ~len in
  let g =
    gather_create ~npieces:(List.length ps)
      ~result:(fun () -> ())
      ~account:(fun _ -> ())
  in
  if ps = [] then gather_fill g (Ok ())
  else begin
    try
      List.iter
        (fun (chunk, _, _) ->
          Faultpoint.hit "petal.decommit_piece";
          submit_piece v.c g ~root:v.root ~chunk ~nrep:v.nrep ~size:small
            ~req_of:(fun ~solo ->
              (* Per-attempt stamp, as on the write path. *)
              let expires = v.c.write_guard () in
              Decommit_req
                { root = v.root; chunk; forward = not solo;
                  mepoch = v.c.mepoch; expires })
            ~on_reply:(function
              | Decommit_ok -> ()
              | Perr "expired lease timestamp" ->
                raise (Stale_write "expired lease timestamp")
              | Perr e -> failwith ("petal: " ^ e)
              | _ -> failwith "petal: bad decommit reply"))
        ps
    with ex -> gather_fill g (Error ex)
  end;
  g.handle

let read v ~off ~len = await (read_async v ~off ~len)
let write v ~off data = await (write_async v ~off data)
let decommit v ~off ~len = await (decommit_async v ~off ~len)

let snapshot v =
  if is_snapshot v then raise Read_only;
  mgmt v.c (Snapshot { src = v.vid })
