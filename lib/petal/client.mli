(** The Petal "device driver": makes the distributed virtual disk
    look like an ordinary local disk to its host (paper §2.1).

    It routes each chunk request to the responsible server under the
    cluster's Paxos-agreed ownership map, fails over to the replica
    on timeout, and hides striping entirely. All offsets and lengths
    must be 512-byte aligned; requests may span chunk boundaries and
    are split internally.

    I/O is submit-then-wait: {!read_async} and {!write_async} fan all
    chunk pieces out concurrently (each piece failing over to its
    replica independently) and return a completion {!handle}; the
    blocking {!read}/{!write} are thin wrappers. Submission applies
    backpressure — at most {!max_inflight_pieces} pieces are
    outstanding per driver, so a flood of writes blocks the submitter
    rather than growing unbounded queues.

    Reconfiguration: every data request carries the map epoch the
    client routed under. A server whose committed map differs rejects
    with [Wrong_epoch]; the driver then refetches the map (through
    [Rpc.call_retry]) and re-routes the piece, so membership changes
    are invisible to the cache layer above. *)

type t
(** A driver instance (one per client host). *)

type vdisk
(** An open virtual disk. *)

type 'a handle
(** A completion handle: fills exactly once, with the operation's
    result or the first failure. Abstract so only the client can fill
    it — callers observe it through {!await} / {!wait}. *)

val await : 'a handle -> 'a
(** Block until the handle fills; re-raise its failure. *)

val wait : 'a handle -> ('a, exn) result
(** Block until the handle fills; return its result without
    raising. *)

val max_inflight_pieces : int
(** Bound on outstanding chunk pieces per driver (the write-behind
    window of §4 — 64 pieces of up to 64 KB is 4 MB). *)

val max_prefetch_pieces : int
(** Separate, smaller bound for speculative (read-ahead) pieces. *)

val connect :
  rpc:Cluster.Rpc.t ->
  servers:Cluster.Net.addr array ->
  ?active:int list ->
  unit ->
  t
(** [servers] is the fixed provisioned-member array (same order on
    every client and server); [active] the member indexes initially
    serving data (default: all). The driver keeps its map current by
    refetching on [Wrong_epoch] rejects. *)

val fetch_map : t -> int * int list
(** Force a map refetch and return the (epoch, active members) the
    driver now routes under. Used by reconfiguration drivers to
    observe cutover. *)

val create_vdisk : t -> nrep:int -> int
(** Ask the Petal cluster to create a virtual disk with [nrep] (1 or
    2) replicas; returns its id. *)

val add_server : t -> idx:int -> unit
(** Propose activating standby member [idx] (Paxos-agreed; returns
    once accepted into the log). Raises [Failure] if the cluster
    rejects it — e.g. another reconfiguration is still pending. *)

val remove_server : t -> idx:int -> unit
(** Propose decommissioning member [idx]; same contract as
    {!add_server}. *)

val delete_vdisk : t -> id:int -> unit
(** Delete snapshot disk [id] and free the chunk versions only it
    pinned. Raises [Failure] if [id] names a live disk or a transfer
    is pending; deleting an already-deleted id succeeds (idempotent).
    Deleting the last snapshot of a disk re-enables reconfiguration,
    which is refused while any snapshot exists. *)

val open_vdisk : t -> int -> vdisk
(** Fetch the disk's metadata from the cluster and return a handle.
    Raises {!Protocol.Unavailable} if no server answers. *)

val id : vdisk -> int
val is_snapshot : vdisk -> bool

val read_async : vdisk -> off:int -> len:int -> bytes handle
(** Submit a read of [len] bytes at virtual offset [off]; uncommitted
    space reads as zeros. All chunk pieces are issued before the call
    returns; the handle fills when the last piece lands. *)

val read_runs_async : ?prefetch:bool -> vdisk -> (int * int) list -> bytes list handle
(** Submit several [(off, len)] extents as one scatter-gather read;
    the handle fills with one buffer per extent, in order, once every
    piece of every extent has landed. Adjacent chunk pieces of
    consecutive extents that address the same chunk (hence the same
    server) are coalesced into a single RPC — the batched read path's
    round-trip saver, visible in {!op_stats}. With [prefetch:true] the
    pieces draw from a separate, smaller in-flight pool
    ({!max_prefetch_pieces}), so speculative read-ahead can never
    occupy the slots a foreground read or dirty write-back needs. *)

val write_async : vdisk -> off:int -> bytes -> unit handle
(** Submit a write. When the handle fills the data is durable (both
    replicas for 2-way disks, modulo degraded mode when a replica is
    down). Raises {!Protocol.Read_only} on snapshots. *)

val write_runs_async : vdisk -> (int * bytes) list -> unit handle
(** Submit several [(off, data)] extents as one scatter-gather write;
    the handle fills once every piece of every extent is durable.
    Adjacent chunk pieces of consecutive extents that address the same
    chunk are coalesced into a single RPC, mirroring
    {!read_runs_async} — the batched write-back path's round-trip
    saver, visible in {!op_stats}. *)

val decommit_async : vdisk -> off:int -> len:int -> unit handle
(** Submit the freeing of the physical space backing a chunk-aligned
    range. *)

val read : vdisk -> off:int -> len:int -> bytes
(** [await (read_async ...)]. *)

val write : vdisk -> off:int -> bytes -> unit
(** [await (write_async ...)]. *)

val decommit : vdisk -> off:int -> len:int -> unit
(** [await (decommit_async ...)]. *)

val snapshot : vdisk -> int
(** Create a crash-consistent copy-on-write snapshot; returns the
    read-only snapshot disk's id. *)

val set_write_guard : vdisk -> (unit -> int option) -> unit
(** Install the §6 lease guard: the function is called on every write
    and its result travels with the request as an expiration
    timestamp; a Petal server ignores writes that arrive after it
    (raising {!Protocol.Stale_write} back at the client). Frangipani
    sets it to [lease_valid_until - margin] at mount. *)

type stats = {
  writes : int;  (** write/decommit submissions *)
  write_seconds : float;  (** simulated time inside writes *)
  reads : int;  (** read submissions (single- or multi-extent) *)
  read_seconds : float;  (** simulated time inside reads *)
  read_pieces : int;  (** chunk pieces across all reads, pre-coalescing *)
  read_rpcs : int;  (** read RPCs actually issued *)
  read_coalesced : int;  (** pieces merged into a neighbouring RPC *)
  write_pieces : int;  (** chunk pieces across all writes, pre-coalescing *)
  write_rpcs : int;  (** write RPCs actually issued *)
  write_coalesced : int;  (** write pieces merged into a neighbouring RPC *)
  failovers : int;  (** piece RPCs that timed out on the primary *)
  primary_skips : int;  (** pieces routed straight to the replica *)
  probe_heals : int;  (** suspected primaries found healthy again *)
  map_refreshes : int;  (** ownership-map refetches *)
  wrong_epoch_retries : int;  (** pieces re-routed after a [Wrong_epoch] *)
  freeze_waits : int;
      (** wait-and-retry rounds against a server not ahead of the
          client's map — Paxos apply lag or the drain-time write
          freeze of a pending reconfiguration *)
}

val op_stats : vdisk -> stats
(** Operation counters accumulated by this driver instance —
    simulated time spent inside Petal operations plus the read-side
    piece/coalesce accounting, for performance debugging and the
    bench's round-trips-saved report. *)
