open Simkit
open Stdext
open Errors
open Locksvc

type t = Ctx.t

type stats = {
  inum : int;
  itype : Ondisk.itype;
  size : int;
  nlink : int;
  mtime : int;
  ctime : int;
  atime : int;
}

let root = 0

exception Retry
(* Internal: a two-phase operation found its phase-1 lookups stale
   after locking (§5); release everything and start over. *)

let host (ctx : t) = ctx.Ctx.host
let log_slot (ctx : t) = ctx.Ctx.slot
let cache_stats (ctx : t) = Cache.stats ctx.Ctx.cache
let wal_stats (ctx : t) = Wal.stats ctx.Ctx.wal
let petal_stats (ctx : t) = Petal.Client.op_stats ctx.Ctx.vd
let net_stats (ctx : t) = Cluster.Rpc.stats ctx.Ctx.rpc
let lease_stats (ctx : t) = Clerk.stats ctx.Ctx.clerk
let is_poisoned (ctx : t) = ctx.Ctx.poisoned

type recovery_stats = {
  replays : int;  (** recovery replays started on this server *)
  diffs_applied : int;
  diffs_skipped : int;  (** version check said already on disk *)
  torn_tails : int;  (** replays whose log ended in a torn record *)
}

let recovery_stats (ctx : t) =
  {
    replays = ctx.Ctx.recov_runs;
    diffs_applied = ctx.Ctx.recov_applied;
    diffs_skipped = ctx.Ctx.recov_skipped;
    torn_tails = ctx.Ctx.recov_torn;
  }

(* --- formatting --------------------------------------------------------- *)

let format vd =
  (* Root inode: an empty directory, version 1. *)
  let sector = Bytes.make Layout.inode_size '\000' in
  Codec.put_int sector 0 1;
  let root_ino =
    { Ondisk.empty_inode with itype = Dir; nlink = 2; size = 0 }
  in
  Bytes.blit (Ondisk.encode_inode root_ino) 0 sector Ondisk.off_itype
    (Layout.inode_size - Ondisk.off_itype);
  (* Mark inode 0 allocated in the bitmap. *)
  let bsec = Bytes.make Layout.sector '\000' in
  Codec.put_int bsec 0 1;
  Bytes.set bsec 8 '\001';
  (* The three formatting writes are independent: submit them all,
     then wait once. *)
  List.iter Petal.Client.await
    [
      Petal.Client.write_async vd ~off:Layout.superblock_addr
        (Ondisk.encode_superblock ());
      Petal.Client.write_async vd ~off:(Layout.inode_addr root) sector;
      Petal.Client.write_async vd ~off:(Layout.bit_sector Layout.Inode_pool 0) bsec;
    ]

(* --- lock helpers -------------------------------------------------------- *)

let ilock = Lockns.inode_lock

let with_locks ctx locks f = Lockns.with_locks ctx.Ctx.clerk locks f

(* Modifying operations also hold the global barrier lock in shared
   mode so an online backup can quiesce the file system (§8). *)
let modifying (ctx : t) locks f =
  if ctx.Ctx.readonly then fail Erofs;
  Clerk.acquire ctx.Ctx.clerk ~lock:Lockns.barrier_lock Types.R;
  Fun.protect
    ~finally:(fun () -> Clerk.release ctx.Ctx.clerk ~lock:Lockns.barrier_lock Types.R)
    (fun () -> with_locks ctx locks f)

let rec retrying f = match f () with v -> v | exception Retry -> retrying f

(* --- inode helpers -------------------------------------------------------- *)

let live_inode ctx inum =
  let ino = Inode.read ctx inum in
  if ino.Ondisk.itype = Free then fail Estale;
  ino

let dir_inode ctx inum =
  let ino = live_inode ctx inum in
  if ino.Ondisk.itype <> Dir then fail Enotdir;
  ino

let is_meta (ino : Ondisk.inode) = ino.itype = Dir

(* Destroy one link's worth of [inum]; frees everything on the last
   link. Caller holds the inode lock W and runs inside [txn]. *)
let drop_link ctx txn inum (ino : Ondisk.inode) =
  if ino.nlink > 1 && ino.itype <> Dir then
    Inode.write ctx txn inum { ino with nlink = ino.nlink - 1; ctime = Sim.now () }
  else begin
    let bits =
      (Layout.Inode_pool, inum) :: File.content_bits ino ~meta:(is_meta ino)
    in
    Alloc.free_many ctx txn bits;
    Inode.write ctx txn inum { Ondisk.empty_inode with itype = Free };
    Ctx.forget_read_ahead ctx inum
  end

let new_inode ctx txn (proto : Ondisk.inode) =
  let inum = Alloc.alloc ctx txn Layout.Inode_pool in
  if inum >= Layout.max_inodes then fail Enospc;
  (* Fresh inode: take its lock for the initialisation. Uncontended
     except for stale sticky holders, which revoke cleanly. *)
  Clerk.acquire ctx.Ctx.clerk ~lock:(ilock inum) Types.W;
  Cache.on_commit txn (fun () ->
      Clerk.release ctx.Ctx.clerk ~lock:(ilock inum) Types.W);
  let now = Sim.now () in
  Inode.write ctx txn inum { proto with mtime = now; ctime = now; atime = now };
  inum

(* --- namespace operations -------------------------------------------------- *)

let prologue (ctx : t) =
  Ctx.check_usable ctx;
  Ctx.charge_op ctx

let make_child ctx ~dir name proto ~bump_parent =
  prologue ctx;
  modifying ctx [ (ilock dir, Types.W) ] (fun () ->
      let dino = dir_inode ctx dir in
      if name = "." || Dir.lookup ctx dir dino name <> None then fail Eexist;
      Cache.with_txn ctx.Ctx.cache (fun txn ->
          let inum = new_inode ctx txn proto in
          let dino = Dir.insert ctx txn dir dino name inum in
          let nlink = if bump_parent then dino.Ondisk.nlink + 1 else dino.Ondisk.nlink in
          Inode.write ctx txn dir { dino with nlink; mtime = Sim.now () };
          inum))

let create ctx ~dir name =
  make_child ctx ~dir name
    { Ondisk.empty_inode with itype = Reg; nlink = 1 }
    ~bump_parent:false

let mkdir ctx ~dir name =
  make_child ctx ~dir name
    { Ondisk.empty_inode with itype = Dir; nlink = 2 }
    ~bump_parent:true

let symlink ctx ~dir name ~target =
  if String.length target > 255 then fail Enametoolong;
  make_child ctx ~dir name
    { Ondisk.empty_inode with itype = Symlink; nlink = 1; target;
      size = String.length target }
    ~bump_parent:false

let lookup ctx ~dir name =
  prologue ctx;
  if name = "." then begin
    with_locks ctx [ (ilock dir, Types.R) ] (fun () -> ignore (dir_inode ctx dir));
    dir
  end
  else
    with_locks ctx
      [ (ilock dir, Types.R) ]
      (fun () ->
        let dino = dir_inode ctx dir in
        match Dir.lookup ctx dir dino name with
        | Some inum -> inum
        | None -> fail Enoent)

let readdir ctx dir =
  prologue ctx;
  with_locks ctx
    [ (ilock dir, Types.R) ]
    (fun () ->
      let dino = dir_inode ctx dir in
      Inode.touch_atime ctx dir;
      Dir.entries ctx dir dino)

let readlink ctx inum =
  prologue ctx;
  with_locks ctx
    [ (ilock inum, Types.R) ]
    (fun () ->
      let ino = live_inode ctx inum in
      if ino.Ondisk.itype <> Symlink then fail Einval;
      ino.Ondisk.target)

let link ctx ~dir name ~inum =
  prologue ctx;
  modifying ctx
    [ (ilock dir, Types.W); (ilock inum, Types.W) ]
    (fun () ->
      let dino = dir_inode ctx dir in
      let ino = live_inode ctx inum in
      if ino.Ondisk.itype = Dir then fail Eisdir;
      if Dir.lookup ctx dir dino name <> None then fail Eexist;
      Cache.with_txn ctx.Ctx.cache (fun txn ->
          let dino = Dir.insert ctx txn dir dino name inum in
          Inode.write ctx txn dir { dino with mtime = Sim.now () };
          Inode.write ctx txn inum
            { ino with nlink = ino.Ondisk.nlink + 1; ctime = Sim.now () }))

(* unlink / rmdir share the two-phase shape: peek at the target under
   a read lock, lock dir + target in sorted order, re-validate. *)
let remove_entry ctx ~dir name ~want_dir =
  prologue ctx;
  retrying (fun () ->
      let target =
        with_locks ctx
          [ (ilock dir, Types.R) ]
          (fun () ->
            let dino = dir_inode ctx dir in
            match Dir.lookup ctx dir dino name with
            | Some t -> t
            | None -> fail Enoent)
      in
      modifying ctx
        [ (ilock dir, Types.W); (ilock target, Types.W) ]
        (fun () ->
          let dino = dir_inode ctx dir in
          if Dir.lookup ctx dir dino name <> Some target then raise Retry;
          let ino = live_inode ctx target in
          (match (want_dir, ino.Ondisk.itype) with
          | false, Dir -> fail Eisdir
          | true, Dir -> if not (Dir.is_empty ctx target ino) then fail Enotempty
          | true, _ -> fail Enotdir
          | false, _ -> ());
          Cache.with_txn ctx.Ctx.cache (fun txn ->
              ignore (Dir.remove ctx txn dir dino name);
              let nlink =
                if want_dir then dino.Ondisk.nlink - 1 else dino.Ondisk.nlink
              in
              Inode.write ctx txn dir { dino with nlink; mtime = Sim.now () };
              drop_link ctx txn target ino)))

let unlink ctx ~dir name = remove_entry ctx ~dir name ~want_dir:false
let rmdir ctx ~dir name = remove_entry ctx ~dir name ~want_dir:true

let rename ctx ~sdir sname ~ddir dname =
  prologue ctx;
  if dname = "." || sname = "." then fail Einval;
  retrying (fun () ->
      (* Phase 1: look everything up under read locks. *)
      let src, dst =
        with_locks ctx
          (List.sort_uniq compare [ (ilock sdir, Types.R); (ilock ddir, Types.R) ])
          (fun () ->
            let sino = dir_inode ctx sdir in
            let dino = dir_inode ctx ddir in
            let src =
              match Dir.lookup ctx sdir sino sname with
              | Some s -> s
              | None -> fail Enoent
            in
            (src, Dir.lookup ctx ddir dino dname))
      in
      if src = sdir || src = ddir then fail Einval;
      (* Cycle check (classic EINVAL): a directory must not move into
         its own subtree, or the subtree detaches from the root as an
         unreachable cycle. Walked before the write phase with one
         read lock at a time (never while holding others), respecting
         the sorted-acquisition discipline. A rename racing elsewhere
         in the tree could still slip a cycle past this — the gap
         namei-based kernels close with a global rename lock, which a
         distributed FS cannot afford; our callers do not do that. *)
      if sdir <> ddir then begin
        let rec subtree_contains = function
          | [] -> false
          | d :: rest ->
            d = ddir
            || (let children =
                  with_locks ctx
                    [ (ilock d, Types.R) ]
                    (fun () ->
                      match Inode.read ctx d with
                      | { Ondisk.itype = Dir; _ } as ino ->
                        List.map snd (Dir.entries ctx d ino)
                      | _ -> [])
                in
                subtree_contains (children @ rest))
        in
        if subtree_contains [ src ] then fail Einval
      end;
      if sdir = ddir && Some src = dst then (* rename to itself *) ()
      else begin
        let locks =
          [ (ilock sdir, Types.W); (ilock ddir, Types.W); (ilock src, Types.W) ]
          @ (match dst with
            | Some d when d <> src -> [ (ilock d, Types.W) ]
            | _ -> [])
        in
        (* Phase 2: sorted acquisition, then re-validate (§5). *)
        modifying ctx locks (fun () ->
            let sino = dir_inode ctx sdir in
            let dino = dir_inode ctx ddir in
            if
              Dir.lookup ctx sdir sino sname <> Some src
              || Dir.lookup ctx ddir dino dname <> dst
            then raise Retry;
            let srci = live_inode ctx src in
            (match dst with
            | Some d when d <> src ->
              let dsti = live_inode ctx d in
              (match (srci.Ondisk.itype, dsti.Ondisk.itype) with
              | Dir, Dir ->
                if not (Dir.is_empty ctx d dsti) then fail Enotempty
              | Dir, _ -> fail Enotdir
              | _, Dir -> fail Eisdir
              | _, _ -> ())
            | _ -> ());
            Cache.with_txn ctx.Ctx.cache (fun txn ->
                let sino = ref sino and dino = ref dino in
                ignore (Dir.remove ctx txn sdir !sino sname);
                (if sdir = ddir then dino := { !dino with size = !sino.Ondisk.size });
                (match dst with
                | Some d when d <> src ->
                  Dir.replace ctx txn ddir !dino dname src;
                  let dsti = live_inode ctx d in
                  (if dsti.Ondisk.itype = Dir then
                     dino := { !dino with nlink = !dino.Ondisk.nlink - 1 });
                  drop_link ctx txn d dsti
                | _ ->
                  let d' = Dir.insert ctx txn ddir !dino dname src in
                  dino := d');
                (* A directory moving between parents shifts the
                   parents' link counts. *)
                (if srci.Ondisk.itype = Dir && sdir <> ddir then begin
                   sino := { !sino with nlink = !sino.Ondisk.nlink - 1 };
                   dino := { !dino with nlink = !dino.Ondisk.nlink + 1 }
                 end);
                let now = Sim.now () in
                if sdir = ddir then
                  Inode.write ctx txn sdir { !dino with mtime = now }
                else begin
                  Inode.write ctx txn sdir { !sino with mtime = now };
                  Inode.write ctx txn ddir { !dino with mtime = now }
                end))
      end)

(* --- file I/O ------------------------------------------------------------- *)

let reg_inode ctx inum =
  let ino = live_inode ctx inum in
  (match ino.Ondisk.itype with
  | Ondisk.Reg -> ()
  | Ondisk.Dir -> fail Eisdir
  | Ondisk.Symlink | Ondisk.Free -> fail Einval);
  ino

(* Read-ahead (§9.2): the prefetch inherits the caller's shared hold
   on the file lock and releases it when the fetch completes, like a
   kernel read-ahead keeping the buffers busy. The paper's Figure 8
   anomaly — a revoke serialised behind a prefetch whose data is then
   discarded anyway — is fixed by cancellation rather than ablation:
   the hold is registered as sheddable, and when a revoke arrives
   while the fetch is in flight the clerk's [on_contended] callback
   releases it immediately and flags the fetch cancelled, so its data
   (possibly stale by landing time) is simply not inserted.

   [boffs] are the blocks actually worth fetching (mapped, uncached,
   within the per-inode in-flight budget); their bytes were charged by
   the caller and are discharged here when the batch lands, however it
   lands. The whole window goes down as one batched submission unless
   the serial ablation is on, drawing on the Petal client's separate
   speculative in-flight pool so it never crowds out foreground reads
   or dirty write-back. *)
let read_ahead_holding_lock ctx inum ino boffs =
  let bytes = List.length boffs * Layout.block in
  let lock = ilock inum in
  let cancelled = ref false in
  Ctx.prefetch_hold_register ctx ~lock cancelled;
  Sim.spawn (fun () ->
      Fun.protect
        ~finally:(fun () ->
          Ctx.prefetch_discharge ctx inum bytes;
          (* Whoever removes the registry entry owns the release; a
             contended revoke may already have shed our hold. *)
          if Ctx.prefetch_hold_take ctx ~lock cancelled then
            Clerk.release ctx.Ctx.clerk ~lock Types.R)
        (fun () ->
          try
            File.fetch_blocks ~serial:ctx.Ctx.config.read_ahead_serial
              ~prefetch:true
              ~still_wanted:(fun () -> not !cancelled)
              ctx inum ino boffs
          with
          | Error _ | Types.Lease_expired | Cluster.Host.Crashed _
          | Petal.Protocol.Unavailable _
          -> ()))

let read ctx inum ~off ~len =
  prologue ctx;
  Clerk.acquire ctx.Ctx.clerk ~lock:(ilock inum) Types.R;
  match
    let ino = reg_inode ctx inum in
    let len = max 0 (min len (ino.Ondisk.size - off)) in
    let data = File.read ctx inum ino ~off ~len in
    Inode.touch_atime ctx inum;
    (data, ino, off + len)
  with
  | data, ino, next ->
    (* Read-ahead fires only on sequential access (this read started
       where the previous one ended, or at the file head) — the UFS
       heuristic. *)
    let sequential =
      match Ctx.predicted_next ctx inum with
      | Some predicted -> off = predicted
      | None -> off = 0
    in
    Ctx.note_read_ahead ctx ~inum ~next;
    let n = ctx.Ctx.config.read_ahead in
    let window =
      if n > 0 && sequential && next < ino.Ondisk.size then begin
        let boff0 = (next + Layout.block - 1) / Layout.block * Layout.block in
        let boffs =
          List.init n (fun i -> boff0 + (i * Layout.block))
          |> List.filter (fun boff -> boff < ino.Ondisk.size)
        in
        (* Only blocks a fetch would actually transfer count against
           the per-inode budget; a window past the cap is clipped, not
           skipped, so a slow Petal bounds speculation at two windows
           in flight. *)
        let missing = File.missing_blocks ctx ino boffs in
        let budget = Ctx.prefetch_budget_blocks ctx inum in
        List.filteri (fun i _ -> i < budget) missing
      end
      else []
    in
    if window <> [] then begin
      (* Hand our hold over to the prefetch process. *)
      Ctx.prefetch_charge ctx inum (List.length window * Layout.block);
      read_ahead_holding_lock ctx inum ino window
    end
    else Clerk.release ctx.Ctx.clerk ~lock:(ilock inum) Types.R;
    data
  | exception e ->
    Clerk.release ctx.Ctx.clerk ~lock:(ilock inum) Types.R;
    raise e

let write ctx inum ~off data =
  prologue ctx;
  modifying ctx
    [ (ilock inum, Types.W) ]
    (fun () ->
      let ino = reg_inode ctx inum in
      ignore (File.write ctx inum ino ~off ~data ~meta:false);
      Cache.maybe_writeback ctx.Ctx.cache)

let truncate ctx inum ~size =
  prologue ctx;
  if size < 0 then fail Einval;
  modifying ctx
    [ (ilock inum, Types.W) ]
    (fun () ->
      let ino = reg_inode ctx inum in
      if size = 0 then Ctx.forget_read_ahead ctx inum;
      Cache.with_txn ctx.Ctx.cache (fun txn ->
          let ino = File.truncate ctx txn inum ino ~size ~meta:false in
          Inode.write ctx txn inum { ino with mtime = Sim.now () }))

let stat ctx inum =
  prologue ctx;
  with_locks ctx
    [ (ilock inum, Types.R) ]
    (fun () ->
      let ino = live_inode ctx inum in
      {
        inum;
        itype = ino.Ondisk.itype;
        size = ino.Ondisk.size;
        nlink = ino.Ondisk.nlink;
        mtime = ino.Ondisk.mtime;
        ctime = ino.Ondisk.ctime;
        atime = ino.Ondisk.atime;
      })

(* --- durability ------------------------------------------------------------ *)

let fsync ctx inum =
  prologue ctx;
  Wal.flush ctx.Ctx.wal;
  Cache.flush_lock ctx.Ctx.cache (ilock inum)

let sync ctx =
  Ctx.check_usable ctx;
  Wal.flush ctx.Ctx.wal;
  Cache.flush_all ctx.Ctx.cache

(* --- mount / unmount / crash ------------------------------------------------ *)

let sync_demon ctx () =
  let rec loop () =
    Sim.sleep ctx.Ctx.config.sync_interval;
    if
      Cluster.Host.is_alive ctx.Ctx.host
      && (not ctx.Ctx.unmounted)
      && not ctx.Ctx.poisoned
    then begin
      (try sync ctx
       with
       | Error _ | Types.Lease_expired | Petal.Protocol.Unavailable _
       | Cluster.Host.Crashed _
       -> ());
      loop ()
    end
    else if not ctx.Ctx.unmounted then loop ()
  in
  loop ()

let on_revoke ctx ~lock ~to_read =
  if lock = Lockns.barrier_lock then begin
    (* Entering the backup barrier (§8): clean everything. *)
    Wal.flush ctx.Ctx.wal;
    Cache.flush_all ctx.Ctx.cache
  end
  else begin
    Cache.flush_lock ctx.Ctx.cache lock;
    if not to_read then Cache.invalidate_lock ctx.Ctx.cache lock
  end

let on_expired ctx () =
  (* §6: on lease loss the cache is discarded; if any of it was
     dirty, the file system is poisoned until unmounted. *)
  if Cache.dirty_count ctx.Ctx.cache > 0 then ctx.Ctx.poisoned <- true;
  Cache.discard_volatile ctx.Ctx.cache;
  Wal.discard_volatile ctx.Ctx.wal

let mount ~host ~rpc ~vd ~lock_servers ?(table = "fs0") ?(config = Ctx.default_config)
    ?(readonly = false) () =
  let sb = Petal.Client.read vd ~off:Layout.superblock_addr ~len:Layout.sector in
  if not (Ondisk.check_superblock sb) then fail Eio;
  let clerk = Clerk.create ~rpc ~servers:lock_servers ~table () in
  let slot = Clerk.lease clerk mod Layout.max_servers in
  let poisoned_ref = ref false in
  let lease_ok () = Clerk.check_lease_margin clerk && not !poisoned_ref in
  let wal =
    Wal.create ~log_bytes:config.Ctx.log_bytes ~vd ~slot
      ~synchronous:config.Ctx.synchronous_log ~lease_ok ()
  in
  let cache = Cache.create ~vd ~wal ~lease_ok in
  Wal.set_reclaim_hook wal (fun ~upto_rid -> Cache.flush_upto_rid cache upto_rid);
  let ctx =
    {
      Ctx.host;
      config;
      rpc;
      vd;
      clerk;
      cache;
      wal;
      slot;
      alloc = Alloc_state.create ();
      readonly;
      poisoned = false;
      unmounted = false;
      recov_runs = 0;
      recov_applied = 0;
      recov_skipped = 0;
      recov_torn = 0;
      read_ahead_next = Hashtbl.create 64;
      read_ahead_order = Queue.create ();
      prefetch_inflight = Hashtbl.create 64;
      prefetch_holds = Hashtbl.create 16;
    }
  in
  Clerk.set_callbacks clerk
    ~on_contended:(fun ~lock ->
      (* A revoke is blocked on local users: shed any speculative
         read-ahead holds on this lock so the remote waiter is not
         serialised behind a prefetch (whose data would be discarded
         by the revoke anyway). *)
      List.iter
        (fun c ->
          c := true;
          Clerk.release clerk ~lock Types.R)
        (Ctx.prefetch_holds_shed ctx ~lock))
    ~on_revoke:(fun ~lock ~to_read -> on_revoke ctx ~lock ~to_read)
    ~on_do_recovery:(fun ~dead_lease -> Recovery.run ctx ~dead_lease)
    ~on_expired:(fun () ->
      on_expired ctx ();
      poisoned_ref := ctx.Ctx.poisoned);
  if not readonly then begin
    (* The §6 hazard guard: stamp every Petal write with the lease
       expiry (minus margin); Petal rejects stale ones. *)
    Petal.Client.set_write_guard vd (fun () ->
        Some (Clerk.lease_valid_until clerk - Types.lease_margin));
    (* Own the private log (held for the life of the mount) and start
       it empty (§7: a restarted server begins with an empty log). *)
    Clerk.acquire clerk ~lock:(Lockns.log_lock slot) Types.W;
    let zeros = Bytes.make (config.Ctx.log_bytes / 2) '\000' in
    List.iter Petal.Client.await
      [
        Petal.Client.write_async vd ~off:(Layout.log_addr ~slot) zeros;
        Petal.Client.write_async vd
          ~off:(Layout.log_addr ~slot + (config.Ctx.log_bytes / 2))
          zeros;
      ]
  end;
  Cluster.Host.on_crash host (fun () ->
      Cache.discard_volatile cache;
      Wal.discard_volatile wal);
  Sim.spawn ~name:(Cluster.Host.name host ^ ".update") (sync_demon ctx);
  ctx

let unmount ctx =
  if not ctx.Ctx.unmounted then begin
    (if (not ctx.Ctx.poisoned) && not ctx.Ctx.readonly then
       try sync ctx with Error _ | Types.Lease_expired -> ());
    ctx.Ctx.unmounted <- true;
    Clerk.close ctx.Ctx.clerk
  end

let crash ctx = Cluster.Host.crash ctx.Ctx.host

let drop_caches ctx = Cache.drop_clean ctx.Ctx.cache

(* --- fault injection (exercises Fsck) ----------------------------------- *)

let unlink_entry_only_for_test ctx ~dir name =
  modifying ctx
    [ (ilock dir, Types.W) ]
    (fun () ->
      let dino = dir_inode ctx dir in
      Cache.with_txn ctx.Ctx.cache (fun txn ->
          ignore (Dir.remove ctx txn dir dino name)))

let corrupt_nlink_for_test ctx inum nlink =
  modifying ctx
    [ (ilock inum, Types.W) ]
    (fun () ->
      let ino = live_inode ctx inum in
      Cache.with_txn ctx.Ctx.cache (fun txn ->
          Inode.write ctx txn inum { ino with nlink }))
