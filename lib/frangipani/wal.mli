(** Per-server write-ahead redo log (paper §4).

    Metadata updates are described as sub-sector diffs, each carrying
    the new version number of the 512-byte metadata sector it
    touches. Records are appended to an in-memory tail and written to
    the server's private 128 KB log region in Petal — always before
    the metadata they describe (write-ahead ordering is enforced
    together with {!Cache}).

    The log is a circular buffer of sectors (128 KB by default,
    configurable per server); each written sector carries a
    monotonically increasing LSN, so recovery finds the live window
    as the maximal run of consecutive LSNs, and sector placement
    [(lsn-1) mod log_sectors] makes the buffer circular. Before a
    sector is overwritten, the metadata covered by the records about
    to be lost is written to Petal (the paper's "reclaim the oldest
    25%" policy generalised to exactly what is needed, and run
    proactively between pipeline groups so it rarely stalls a flush).
    Records are replayed at recovery only into sectors whose version
    is older, so replaying a stale record is harmless.

    Flushing is a two-stage pipeline: pending records are formatted
    into bounded groups of sector images while an earlier group's
    Petal submission is still in flight. A single submitter writes
    groups strictly in LSN order, so prefix durability — no sector
    durable before its predecessors — is preserved. *)

type diff = {
  addr : int;  (** sector-aligned Petal address of the metadata sector *)
  doff : int;  (** offset of the change within the sector *)
  data : bytes;
  version : int;  (** the sector's version after this update *)
}

type t

val create :
  ?log_bytes:int ->
  vd:Petal.Client.vdisk ->
  slot:int ->
  synchronous:bool ->
  lease_ok:(unit -> bool) ->
  unit ->
  t
(** [slot] selects the private log region ([lease mod 256], §7).
    [log_bytes] sizes the circular log (default 128 KB, the paper's
    figure; must be sector-aligned, at least the default, and fit the
    slot spacing). [synchronous] makes every {!append} flush before
    returning (§4's optional stronger failure semantics). [lease_ok]
    is consulted before any Petal write — the §6 hazard check. *)

val set_reclaim_hook : t -> (upto_rid:int -> unit) -> unit
(** Install the cache's "write back all dirty metadata recorded by
    records with id ≤ [upto_rid]" hook, used when the log wraps. *)

val append : t -> diff list -> int
(** Append one logical record (one metadata operation); returns its
    record id, used as a durability barrier. *)

val ensure_flushed : t -> int -> unit
(** Block until the record with the given id is durable in Petal. *)

val flush : t -> unit
(** Write all pending records to Petal (group commit). *)

val last_rid : t -> int

val log_size : t -> int
(** The configured log size in bytes. *)

val discard_volatile : t -> unit
(** Crash simulation: drop the in-memory tail (unwritten records and
    formatted-but-unsubmitted groups). *)

type wal_stats = {
  flush_groups : int;  (** groups submitted to Petal *)
  pipeline_overlaps : int;
      (** groups formatted while another was in flight *)
  log_pressure_stalls : int;
      (** submissions that had to reclaim before overwriting *)
  reclaim_rounds : int;  (** reclaim invocations (stalled + proactive) *)
  append_stalls : int;
      (** synchronous appends that waited on the pipeline *)
  ensure_stalls : int;
      (** ensure_flushed calls that waited on the pipeline *)
}

val stats : t -> wal_stats

type scan_report = {
  diffs : diff list;  (** diffs of all complete records, in log order *)
  records : int;  (** complete records decoded *)
  live_sectors : int;  (** CRC-valid sectors in the replay window *)
  torn : bool;
      (** the stream ended inside an incomplete or garbled record — a
          crash mid-group-commit; the valid prefix is in [diffs] *)
}

val scan_report : ?log_bytes:int -> Petal.Client.vdisk -> slot:int -> scan_report
(** Recovery: read a log region and decode the live window. Decoding
    is strict (lengths, alignment, versions) and stops at the first
    inconsistency rather than raising, so recovery after a crash
    mid-commit replays the valid prefix. [log_bytes] must match the
    size the dead server logged with (the cluster-wide config). *)

val scan : ?log_bytes:int -> Petal.Client.vdisk -> slot:int -> diff list
(** [(scan_report vd ~slot).diffs]. *)

val serialize_for_bench : diff list -> bytes
(** The record serializer, exposed for the microbenchmark harness. *)
