(** On-disk layout of the Petal virtual disk (paper §3, Figure 4).

    {v
    0 ......... 1T  shared configuration parameters (superblock)
    1T ........ 2T  256 private logs (one per server, 128 KB each,
                    spaced 4 GB apart)
    2T ........ 5T  allocation bitmaps, in five sub-regions
    5T ........ 6T  inodes, 512 B each (2^31 of them)
    6T ...... 134T  small blocks, 4 KB each
    134T ..... 2^62 large blocks, 1 TB each
    v}

    Virtual addresses are OCaml 63-bit ints, so the paper's 2{^64}
    space becomes 2{^62}: the large-file limit drops from ~2{^24} to
    ~2{^22} files — every other constant is the paper's. The first
    64 KB of a file live in 16 small blocks; the remainder in one
    large block, so no file exceeds 64 KB + 1 TB.

    To honour the rule that freed metadata is reused only as metadata
    (§4: version numbers must never be overwritten by user data),
    small and large blocks are statically split into metadata pools
    (directory content) and data pools (file content). *)

let tb = 1 lsl 40
let sector = 512
let block = 4096
let inode_size = 512
let small_block = 4096
let large_block = tb
let max_small_blocks_per_file = 16
let small_area_per_file = max_small_blocks_per_file * small_block (* 64 KB *)

(* Regions. *)
let params_base = 0
let logs_base = tb
let bitmap_base = 2 * tb
let inode_base = 5 * tb
let small_base = 6 * tb
let large_base = 134 * tb

let max_servers = 256
let log_bytes = 128 * 1024
let log_sectors = log_bytes / sector (* 256 *)
let log_slot_spacing = 4 * (1 lsl 30) (* 4 GB apart *)

let log_addr ~slot =
  assert (slot >= 0 && slot < max_servers);
  logs_base + (slot * log_slot_spacing)

let max_inodes = 1 lsl 31
let inode_addr inum = inode_base + (inum * inode_size)

type pool = Inode_pool | Small_meta | Small_data | Large_meta | Large_data

(* Small-block pools: the first 2^20 small blocks (4 GB) are the
   metadata pool (directory blocks), the rest hold file data. The
   pools address disjoint block ranges, so a freed metadata block can
   only ever be reallocated as metadata (§4's reuse rule is
   structural, not a convention the allocator must remember). *)
let small_meta_count = 1 lsl 20
let small_data_count = (1 lsl 35) - small_meta_count

let small_addr pool b =
  match pool with
  | Small_meta ->
    assert (b >= 0 && b < small_meta_count);
    small_base + (b * small_block)
  | Small_data ->
    assert (b >= 0 && b < small_data_count);
    small_base + ((small_meta_count + b) * small_block)
  | Inode_pool | Large_meta | Large_data -> invalid_arg "Layout.small_addr"

(* Large-block pools: the first 2^10 large blocks are the metadata
   pool (oversized directories), the rest hold file data. *)
let large_meta_count = 1 lsl 10
let large_data_count = ((1 lsl 62) - large_base) / large_block - large_meta_count

let large_addr pool l =
  match pool with
  | Large_meta ->
    assert (l >= 0 && l < large_meta_count);
    large_base + (l * large_block)
  | Large_data ->
    assert (l >= 0 && l < large_data_count);
    large_base + ((large_meta_count + l) * large_block)
  | Inode_pool | Small_meta | Small_data -> invalid_arg "Layout.large_addr"

(* --- allocation bitmaps ------------------------------------------------ *)

(* Each 512 B bitmap sector = 8 B version + 504 B of bits. A segment
   (the unit a server locks exclusively) is 8 sectors = 32256 bits. *)
let bits_per_sector = 504 * 8
let sectors_per_segment = 8
let bits_per_segment = bits_per_sector * sectors_per_segment

let pool_index = function
  | Inode_pool -> 0
  | Small_meta -> 1
  | Small_data -> 2
  | Large_meta -> 3
  | Large_data -> 4

let pool_size = function
  | Inode_pool -> max_inodes
  | Small_meta -> small_meta_count
  | Small_data -> small_data_count
  | Large_meta -> large_meta_count
  | Large_data -> large_data_count

let pool_segments p = (pool_size p + bits_per_segment - 1) / bits_per_segment

(* Bitmap sub-regions, 0.5 TB apart within [2T, 5T). *)
let pool_bitmap_base p = bitmap_base + (pool_index p * (tb / 2))

(* Address of the bitmap sector holding bit [n] of pool [p]. *)
let bit_sector p n = pool_bitmap_base p + (n / bits_per_sector * sector)
let bit_in_sector n = n mod bits_per_sector
let segment_of_bit n = n / bits_per_segment
let segment_first_bit seg = seg * bits_per_segment

(* Global segment ids (for lock naming): pool index in the top bits. *)
let global_segment p seg = (pool_index p * (1 lsl 32)) + seg

(* --- directory format --------------------------------------------------- *)

(* Directory content sectors: 8 B version + 7 fixed 64 B slots + 56 B
   pad. A slot holds an inode number and a name of at most
   [max_name] bytes. *)
let dir_slot_size = 64
let dir_slots_per_sector = 7
let max_name = 55

(* --- superblock --------------------------------------------------------- *)

let superblock_addr = params_base
let magic = 0x46524e47 (* "FRNG" *)
