open Stdext
open Simkit

type entry = {
  addr : int;
  mutable data : bytes;
  mutable dirty : bool;
  mutable gen : int; (* bumped on every modification (flush races) *)
  mutable rid : int; (* newest log record describing this entry *)
  mutable pins : int;
      (* > 0 while an uncommitted transaction has modified this
         sector: regular flushes skip it so the metadata can never
         reach Petal before its log record *)
  mutable flushing : bool; (* a write-back for this entry is in flight *)
  lock : int;
}

type t = {
  vd : Petal.Client.vdisk;
  wal : Wal.t;
  lease_ok : unit -> bool;
  tbl : (int, entry) Hashtbl.t;
  by_lock : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  inflight : (int, unit Sim.Ivar.t) Hashtbl.t; (* fetch dedup *)
  mutable ndirty : int;
  mutable wb_running : bool; (* background write-behind active *)
  flush_done : Sim.Condition.t; (* signalled as write-back runs complete *)
  mutable hits : int;
  mutable misses : int;
}

(* Start draining to Petal in the background once this much data is
   dirty, so streaming writes overlap with the flush (the kernel's
   write-behind). *)
let writeback_threshold = 256 (* entries; ~1 MB of 4 KB blocks *)

let mark_dirty t e =
  if not e.dirty then begin
    e.dirty <- true;
    t.ndirty <- t.ndirty + 1
  end;
  e.gen <- e.gen + 1

let mark_clean t e =
  if e.dirty then begin
    e.dirty <- false;
    t.ndirty <- t.ndirty - 1
  end

type txn = {
  mutable diffs : Wal.diff list;
  mutable touched : entry list;
  mutable post : (unit -> unit) list; (* run after commit (lock releases) *)
  mutable undo : (entry * bytes) list;
      (* pre-images (newest first): an aborted transaction must take
         its bytes back out of the cache, or the orphaned mutation is
         later flushed under an older — already durable — record and
         reaches Petal without ever being logged *)
}

let create ~vd ~wal ~lease_ok =
  { vd; wal; lease_ok; tbl = Hashtbl.create 4096; by_lock = Hashtbl.create 256;
    inflight = Hashtbl.create 64; ndirty = 0; wb_running = false;
    flush_done = Sim.Condition.create (); hits = 0; misses = 0 }

let lock_index t lock =
  match Hashtbl.find_opt t.by_lock lock with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 16 in
    Hashtbl.replace t.by_lock lock s;
    s

let rec entry t ~lock ~addr ~len =
  match Hashtbl.find_opt t.tbl addr with
  | Some e ->
    t.hits <- t.hits + 1;
    e
  | None -> (
    match Hashtbl.find_opt t.inflight addr with
    | Some iv ->
      (* Someone (often the read-ahead) is already fetching it. *)
      Sim.Ivar.read iv;
      entry t ~lock ~addr ~len
    | None ->
      t.misses <- t.misses + 1;
      let iv = Sim.Ivar.create () in
      Hashtbl.replace t.inflight addr iv;
      let finish () =
        Hashtbl.remove t.inflight addr;
        Sim.Ivar.fill iv ()
      in
      let data =
        try Petal.Client.read t.vd ~off:addr ~len
        with ex ->
          finish ();
          raise ex
      in
      let e = { addr; data; dirty = false; gen = 0; rid = 0; pins = 0; flushing = false; lock } in
      Hashtbl.replace t.tbl addr e;
      Hashtbl.replace (lock_index t lock) addr ();
      finish ();
      e)

let read t ~lock ~addr ~len = (entry t ~lock ~addr ~len).data

let with_txn t f =
  let txn = { diffs = []; touched = []; post = []; undo = [] } in
  let finish () = List.iter (fun g -> g ()) (List.rev txn.post) in
  let unpin () = List.iter (fun e -> e.pins <- e.pins - 1) txn.touched in
  let r =
    try f txn
    with e ->
      (* Abort: restore pre-images newest-first, so with repeated
         updates to one sector the oldest (pre-transaction) image
         wins. The diffs are dropped unlogged, so the cache must not
         keep the bytes either. *)
      List.iter (fun (en, img) -> Bytes.blit img 0 en.data 0 (Bytes.length img))
        txn.undo;
      unpin ();
      finish ();
      raise e
  in
  (match txn.diffs with
  | [] -> ()
  | diffs -> (
    match Wal.append t.wal (List.rev diffs) with
    | rid -> List.iter (fun e -> e.rid <- max e.rid rid) txn.touched
    | exception ex ->
      (* A synchronous flush failed (Petal unreachable): the record
         was still enqueued under the WAL's newest rid and will be
         retried, so stamp the touched entries conservatively — and
         run the pin releases and commit hooks (lock releases!)
         before re-raising, or the locks leak forever. *)
      List.iter (fun e -> e.rid <- max e.rid (Wal.last_rid t.wal)) txn.touched;
      unpin ();
      finish ();
      raise ex));
  unpin ();
  finish ();
  r

let on_commit txn g = txn.post <- g :: txn.post

let update t txn ~lock ~addr ~off ~bytes:data =
  assert (addr mod Layout.sector = 0 && off + Bytes.length data <= Layout.sector);
  let e = entry t ~lock ~addr ~len:Layout.sector in
  txn.undo <- (e, Bytes.copy e.data) :: txn.undo;
  let version = Codec.get_int e.data 0 + 1 in
  Codec.put_int e.data 0 version;
  Bytes.blit data 0 e.data off (Bytes.length data);
  mark_dirty t e;
  e.pins <- e.pins + 1;
  txn.diffs <- { Wal.addr; doff = off; data = Bytes.copy data; version } :: txn.diffs;
  txn.touched <- e :: txn.touched

let update_nolog t ~lock ~addr ~off ~bytes:data =
  let e = entry t ~lock ~addr ~len:Layout.sector in
  Codec.put_int e.data 0 (Codec.get_int e.data 0 + 1);
  Bytes.blit data 0 e.data off (Bytes.length data);
  mark_dirty t e

(* Partial user-data update: read-modify-write within a cached block
   of [len] bytes (fetched on miss). Not logged, no version field. *)
let update_data t ~lock ~addr ~len ~off ~bytes:data =
  let e = entry t ~lock ~addr ~len in
  Bytes.blit data 0 e.data off (Bytes.length data);
  mark_dirty t e

let write_data t ~lock ~addr ~bytes:data =
  match Hashtbl.find_opt t.tbl addr with
  | Some e ->
    t.hits <- t.hits + 1;
    Bytes.blit data 0 e.data 0 (Bytes.length data);
    mark_dirty t e
  | None ->
    (* A full-block overwrite needs no fetch, but it is still an
       entry-creation path: count the miss so {!stats} agrees across
       paths. *)
    t.misses <- t.misses + 1;
    let e = { addr; data = Bytes.copy data; dirty = false; gen = 0; rid = 0; pins = 0; flushing = false; lock } in
    mark_dirty t e;
    Hashtbl.replace t.tbl addr e;
    Hashtbl.replace (lock_index t lock) addr ()

let mem t addr = Hashtbl.mem t.tbl addr
let present t addr = Hashtbl.mem t.tbl addr || Hashtbl.mem t.inflight addr

(* Fetch several [(lock, addr, len)] runs with one Petal submission
   (the client fans the chunk pieces of every run out concurrently
   and coalesces adjacent pieces) and populate entries of [granule]
   bytes each — the batched miss path of a scatter-gather read.
   Granules already cached or being fetched elsewhere are skipped;
   readers of those wait on the other fetch through {!entry}. *)
let fill_runs ?(prefetch = false) ?(still_wanted = fun () -> true) t runs
    ~granule =
  (* Granules already cached (or being fetched) are hits of the
     read-ahead; misses are counted below, per entry this fetch
     actually fills — a failed read counts nothing, and granules
     someone else inserts while the fetch is in flight stay
     theirs. *)
  let prepared =
    List.filter_map
      (fun (lock, addr, len) ->
        if len <= 0 then None
        else begin
          let requested = List.init (len / granule) (fun i -> addr + (i * granule)) in
          let wanted = List.filter (fun a -> not (present t a)) requested in
          t.hits <- t.hits + (List.length requested - List.length wanted);
          if wanted = [] then None else Some (lock, addr, len, wanted)
        end)
      runs
  in
  if prepared <> [] then begin
    let ivs =
      List.concat_map
        (fun (_, _, _, wanted) -> List.map (fun a -> (a, Sim.Ivar.create ())) wanted)
        prepared
    in
    List.iter (fun (a, iv) -> Hashtbl.replace t.inflight a iv) ivs;
    let finish () =
      List.iter
        (fun (a, iv) ->
          Hashtbl.remove t.inflight a;
          Sim.Ivar.fill iv ())
        ivs
    in
    (* One submission for all runs: the Petal client fans the chunk
       pieces out concurrently and coalesces across run boundaries. *)
    let datas =
      try
        Petal.Client.await
          (Petal.Client.read_runs_async ~prefetch t.vd
             (List.map (fun (_, addr, len, _) -> (addr, len)) prepared))
      with ex ->
        finish ();
        raise ex
    in
    (* A cancelled prefetch (its lock was revoked mid-fetch) must not
       insert: the data may be stale by now. Waiters parked on the
       inflight ivars re-check the table and fetch for themselves. *)
    let insert = still_wanted () in
    List.iter2
      (fun (lock, addr, _, wanted) data ->
        List.iter
          (fun a ->
            if insert && not (Hashtbl.mem t.tbl a) then begin
              let e =
                { addr = a; data = Bytes.sub data (a - addr) granule; dirty = false;
                  gen = 0; rid = 0; pins = 0; flushing = false; lock }
              in
              t.misses <- t.misses + 1;
              Hashtbl.replace t.tbl a e;
              Hashtbl.replace (lock_index t lock) a ()
            end)
          wanted)
      prepared datas;
    finish ()
  end

(* Single-run convenience: sequential-read clustering over one
   contiguous range. *)
let fill_range t ~lock ~addr ~len ~granule = fill_runs t [ (lock, addr, len) ] ~granule

(* Write a set of dirty entries back to Petal: log records first
   (write-ahead), then the entries clustered into naturally-aligned
   runs of up to 64 KB (§9.2), all runs submitted asynchronously
   before waiting once. Backpressure is the Petal client's bounded
   in-flight pool, so submission itself throttles when the pipe is
   full. *)
let max_run = 65536

(* Cluster address-sorted dirty entries into contiguous runs that do
   not cross a naturally-aligned 64 KB boundary. *)
let group_runs dirty =
  List.fold_left
    (fun acc e ->
      match acc with
      | (last :: _ as run) :: rest
        when last.addr + Bytes.length last.data = e.addr
             && e.addr / max_run = last.addr / max_run ->
        (e :: run) :: rest
      | _ -> [ e ] :: acc)
    [] dirty
  |> List.rev_map List.rev

(* Submit all runs as ONE scatter-gather Petal write (the client
   coalesces adjacent same-chunk pieces across run boundaries), then
   wait for it. Once the batch lands, entries whose generation is
   unchanged become clean; [on_run_done] runs per run (even on
   failure). If submission itself raises (e.g. the host died),
   [on_run_done] still runs for every run so their entries are not
   left marked in-flight forever. *)
let write_runs t runs ~on_run_done =
  if runs <> [] then begin
    List.iter (fun _ -> Faultpoint.hit "cache.write_run") runs;
    let gens =
      List.map (fun run -> List.map (fun e -> (e, e.gen)) run) runs
    in
    let extents =
      List.map
        (fun run ->
          ( (List.hd run).addr,
            Bytes.concat Bytes.empty (List.map (fun e -> e.data) run) ))
        runs
    in
    let finish () = List.iter on_run_done runs in
    match Petal.Client.write_runs_async t.vd extents with
    | h -> (
      match Petal.Client.wait h with
      | Ok () ->
        List.iter
          (List.iter (fun (e, g) -> if e.gen = g then mark_clean t e))
          gens;
        finish ()
      | Error ex ->
        finish ();
        raise ex)
    | exception ex ->
      finish ();
      raise ex
  end

let flush_entries t entries =
  let candidates =
    List.filter (fun e -> e.dirty && e.pins = 0) entries
    |> List.sort_uniq (fun a b -> compare a.addr b.addr)
  in
  (* Entries already being written by a concurrent flush are not
     re-sent; we wait for those writes at the end instead. *)
  let busy = List.filter (fun e -> e.flushing) candidates in
  let dirty = List.filter (fun e -> not e.flushing) candidates in
  if dirty <> [] then begin
    let max_rid = List.fold_left (fun acc e -> max acc e.rid) 0 dirty in
    if max_rid > 0 then Wal.ensure_flushed t.wal max_rid;
    if not (t.lease_ok ()) then Errors.fail Errors.Eio;
    let runs = group_runs dirty in
    List.iter (fun e -> e.flushing <- true) dirty;
    write_runs t runs ~on_run_done:(fun run ->
        List.iter (fun e -> e.flushing <- false) run;
        Sim.Condition.broadcast t.flush_done)
  end;
  (* Durability barrier: also wait out writes another flush started. *)
  List.iter
    (fun e ->
      while e.flushing do
        Sim.Condition.wait t.flush_done
      done)
    busy

let flush_lock t lock =
  match Hashtbl.find_opt t.by_lock lock with
  | None -> ()
  | Some s ->
    let entries =
      Hashtbl.fold
        (fun a () acc ->
          match Hashtbl.find_opt t.tbl a with Some e -> e :: acc | None -> acc)
        s []
    in
    flush_entries t entries

let invalidate_lock t lock =
  match Hashtbl.find_opt t.by_lock lock with
  | None -> ()
  | Some s ->
    Hashtbl.iter
      (fun a () ->
        match Hashtbl.find_opt t.tbl a with
        | Some e ->
          assert (not e.dirty);
          Hashtbl.remove t.tbl a
        | None -> ())
      s;
    Hashtbl.remove t.by_lock lock

let flush_all t =
  flush_entries t (Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [])

(* WAL-reclaim path: these records are already durable, so no
   ensure_flushed (which would recurse into the in-progress log
   flush). Clustered into runs and submitted together like the main
   flush path, instead of one serial write per entry. *)
let flush_upto_rid t bound =
  let entries =
    Hashtbl.fold
      (fun _ e acc -> if e.dirty && e.rid > 0 && e.rid <= bound then e :: acc else acc)
      t.tbl []
    |> List.sort_uniq (fun a b -> compare a.addr b.addr)
  in
  if entries <> [] then begin
    if not (t.lease_ok ()) then Errors.fail Errors.Eio;
    write_runs t (group_runs entries) ~on_run_done:(fun _ -> ())
  end

let drop_clean t =
  let doomed =
    Hashtbl.fold (fun a e acc -> if e.dirty then acc else (a, e.lock) :: acc) t.tbl []
  in
  List.iter
    (fun (a, lock) ->
      Hashtbl.remove t.tbl a;
      match Hashtbl.find_opt t.by_lock lock with
      | Some s -> Hashtbl.remove s a
      | None -> ())
    doomed

let discard_volatile t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.by_lock;
  t.ndirty <- 0

let dirty_count t = t.ndirty

(* Background write-behind: once enough data is dirty, drain it to
   Petal concurrently with the writer, like the kernel's update/
   bdflush pair. The drainer runs an elevator loop — each sweep
   snapshots the dirty set (flush_entries sorts it by address and
   coalesces adjacent runs) — and keeps sweeping while the writer
   stays ahead of it, so a streaming write overlaps its entire drain
   instead of leaving everything after the first sweep's snapshot to
   the final sync. Failures leave the data dirty for the next sync. *)
let maybe_writeback t =
  if (not t.wb_running) && t.ndirty >= writeback_threshold then begin
    t.wb_running <- true;
    Sim.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> t.wb_running <- false)
          (fun () ->
            try
              let continue = ref true in
              while !continue && t.ndirty >= writeback_threshold / 2 do
                let before = t.ndirty in
                flush_entries t (Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []);
                (* No progress (everything left is pinned or being
                   flushed elsewhere): stop rather than spin. *)
                if t.ndirty >= before then continue := false
              done
            with _ -> ()))
  end
let stats t = (t.hits, t.misses)
