open Stdext
open Simkit

type diff = { addr : int; doff : int; data : bytes; version : int }

let payload_cap = 496 (* 512 - 8 lsn - 2 first_rec - 2 len - 4 crc *)

type t = {
  vd : Petal.Client.vdisk;
  slot : int;
  synchronous : bool;
  lease_ok : unit -> bool;
  mutable reclaim : upto_rid:int -> unit;
  mutable next_rid : int;
  mutable flushed_rid : int; (* records <= this are durable *)
  mutable next_lsn : int; (* next sector lsn to write (starts at 1) *)
  mutable applied_barrier : int; (* sectors <= this have their metadata applied *)
  mutable rid_at_lsn : (int * int) list; (* (lsn, last rid fully contained) newest first *)
  mutable pending : (int * bytes) list; (* (rid, serialized record) newest first *)
  mutable pending_bytes : int;
  mutable flushing : bool;
  flush_done : Sim.Condition.t;
}

let create ~vd ~slot ~synchronous ~lease_ok =
  {
    vd;
    slot;
    synchronous;
    lease_ok;
    reclaim = (fun ~upto_rid:_ -> ());
    next_rid = 0;
    flushed_rid = 0;
    next_lsn = 1;
    applied_barrier = 0;
    rid_at_lsn = [];
    pending = [];
    pending_bytes = 0;
    flushing = false;
    flush_done = Sim.Condition.create ();
  }

let set_reclaim_hook t f = t.reclaim <- f
let last_rid t = t.next_rid

let serialize_record diffs =
  let w = Codec.W.create ~size:128 () in
  Codec.W.u16 w (List.length diffs);
  List.iter
    (fun d ->
      assert (d.addr mod Layout.sector = 0);
      assert (d.doff + Bytes.length d.data <= Layout.sector);
      Codec.W.int w d.addr;
      Codec.W.u16 w d.doff;
      Codec.W.u16 w (Bytes.length d.data);
      Codec.W.int w d.version;
      Codec.W.bytes w d.data)
    diffs;
  let body = Codec.W.contents w in
  let out = Codec.W.create ~size:(Bytes.length body + 4) () in
  Codec.W.u32 out (Bytes.length body);
  Codec.W.bytes out body;
  Codec.W.contents out

let serialize_for_bench = serialize_record

let sector_addr t lsn = Layout.log_addr ~slot:t.slot + ((lsn - 1) mod Layout.log_sectors * Layout.sector)

(* Write the pending records out as log sectors, reclaiming space
   from the circular buffer as needed. Only one flusher runs at a
   time; concurrent callers wait for it (group commit). *)
let rec flush t =
  if t.flushing then begin
    Sim.Condition.wait t.flush_done;
    flush t
  end
  else if t.pending <> [] then begin
    if not (t.lease_ok ()) then Errors.fail Errors.Eio;
    t.flushing <- true;
    let records = List.rev t.pending in
    let highest_rid = t.next_rid in
    t.pending <- [];
    t.pending_bytes <- 0;
    match write_records t records with
    | () ->
      t.flushed_rid <- max t.flushed_rid highest_rid;
      t.flushing <- false;
      Sim.Condition.broadcast t.flush_done;
      (* More records may have been appended while we were writing. *)
      flush t
    | exception ex ->
      (* The host died or Petal became unreachable mid-commit: put
         the batch back so a later flush retries it (sectors that
         already landed are rewritten under fresh LSNs — replay is
         version-checked, so duplicates are harmless), and wake the
         other flushers so they retry or observe the failure instead
         of parking on [flush_done] forever. *)
      t.pending <- t.pending @ List.rev records;
      t.pending_bytes <-
        t.pending_bytes
        + List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 records;
      t.flushing <- false;
      Sim.Condition.broadcast t.flush_done;
      raise ex
  end

and write_records t records =
    (* Concatenate the records, remembering where each starts and
       which record each byte belongs to. *)
    let total = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 records in
    let stream = Bytes.create total in
    let starts = ref [] (* stream offset of each record start *)
    and ends = ref [] (* (stream end offset, rid) *) in
    let pos = ref 0 in
    List.iter
      (fun (rid, b) ->
        starts := !pos :: !starts;
        Bytes.blit b 0 stream !pos (Bytes.length b);
        pos := !pos + Bytes.length b;
        ends := (!pos, rid) :: !ends)
      records;
    let starts = List.rev !starts and ends = List.rev !ends in
    let nsectors = (total + payload_cap - 1) / payload_cap in
    let base_lsn = t.next_lsn in
    (* Build the sectors first, then write them clustered: a group
       commit lands as one or two contiguous Petal writes. *)
    let build s =
      let lsn = base_lsn + s in
      let off = s * payload_cap in
      let len = min payload_cap (total - off) in
      let sector = Bytes.make Layout.sector '\000' in
      Codec.put_int sector 0 lsn;
      let first_rec =
        match List.find_opt (fun st -> st >= off && st < off + len) starts with
        | Some st -> st - off
        | None -> 0xffff
      in
      Codec.put_u16 sector 8 first_rec;
      Codec.put_u16 sector 10 len;
      Bytes.blit stream off sector 12 len;
      Codec.put_u32 sector 508 (Crc32.bytes sector 0 508);
      (lsn, sector)
    in
    (* Process in batches small enough to reclaim ahead of. *)
    let batch = 64 in
    let s = ref 0 in
    while !s < nsectors do
      let n = min batch (nsectors - !s) in
      let last_lsn = base_lsn + !s + n - 1 in
      (* Make room: sectors about to be overwritten held lsn - 256;
         everything they described must be in place first. *)
      if
        last_lsn > Layout.log_sectors
        && last_lsn - Layout.log_sectors > t.applied_barrier
      then begin
        let upto = last_lsn - 1 in
        let rid_limit =
          List.fold_left
            (fun acc (l, r) -> if l <= upto then max acc r else acc)
            0 t.rid_at_lsn
        in
        if rid_limit > 0 then t.reclaim ~upto_rid:rid_limit;
        t.applied_barrier <- upto;
        t.rid_at_lsn <- List.filter (fun (l, _) -> l > upto) t.rid_at_lsn
      end;
      let sectors = List.init n (fun i -> build (!s + i)) in
      (* Recovery replays the maximal run of consecutive LSNs ending
         at the highest one, so a log sector must never become durable
         before its predecessors (prefix durability) — a crash
         mid-flush must not leave an orphaned suffix that replay would
         apply without the records preceding it. Split the batch
         wherever one Petal write would stop being a single
         failure-atomic piece — at the circular-buffer wrap and at
         chunk boundaries — and write the pieces strictly in order,
         each awaited before the next is submitted. *)
      let chunk = Petal.Protocol.chunk_bytes in
      let rec runs = function
        | [] -> []
        | (lsn0, _) :: _ as rest ->
          let pos0 = (lsn0 - 1) mod Layout.log_sectors in
          let addr0 = sector_addr t lsn0 in
          let to_wrap = Layout.log_sectors - pos0 in
          let to_chunk = (chunk - (addr0 mod chunk)) / Layout.sector in
          let fit = min (List.length rest) (min to_wrap to_chunk) in
          let run = List.filteri (fun i _ -> i < fit) rest in
          let tail = List.filteri (fun i _ -> i >= fit) rest in
          (addr0, run) :: runs tail
      in
      List.iter
        (fun (addr0, run) ->
          Petal.Client.write t.vd ~off:addr0
            (Bytes.concat Bytes.empty (List.map snd run));
          Faultpoint.hit "wal.commit")
        (runs sectors);
      (* Account durability per written sector. *)
      List.iter
        (fun (lsn, _) ->
          let soff = (lsn - base_lsn) * payload_cap in
          let slen = min payload_cap (total - soff) in
          let durable =
            List.fold_left
              (fun acc (e, rid) -> if e <= soff + slen then max acc rid else acc)
              t.flushed_rid ends
          in
          t.flushed_rid <- max t.flushed_rid durable;
          t.rid_at_lsn <- (lsn, durable) :: t.rid_at_lsn)
        sectors;
      s := !s + n;
      t.next_lsn <- base_lsn + !s
    done

let append t diffs =
  Faultpoint.hit "wal.append";
  t.next_rid <- t.next_rid + 1;
  let rid = t.next_rid in
  let b = serialize_record diffs in
  t.pending <- (rid, b) :: t.pending;
  t.pending_bytes <- t.pending_bytes + Bytes.length b;
  if t.synchronous || t.pending_bytes >= Layout.log_bytes / 4 then flush t;
  rid

let ensure_flushed t rid =
  (* If a crash discarded the pending tail, the records can never
     become durable: return (rather than spin) and let the caller run
     into the dead host's failure on its next I/O. *)
  while rid > t.flushed_rid && (t.flushing || t.pending <> []) do
    flush t
  done

let discard_volatile t =
  t.pending <- [];
  t.pending_bytes <- 0

(* --- recovery-side scan -------------------------------------------------- *)

type scan_report = {
  diffs : diff list;
  records : int;  (* complete records decoded *)
  live_sectors : int;  (* CRC-valid sectors in the replay window *)
  torn : bool;  (* the stream ended inside an incomplete or garbled record *)
}

let scan_report vd ~slot =
  let base = Layout.log_addr ~slot in
  let raw = Petal.Client.read vd ~off:base ~len:Layout.log_bytes in
  let sectors = ref [] in
  for i = 0 to Layout.log_sectors - 1 do
    let b = Bytes.sub raw (i * Layout.sector) Layout.sector in
    let lsn = Codec.get_int b 0 in
    if
      lsn > 0
      && Codec.get_u16 b 10 <= payload_cap
      && Codec.get_u32 b 508 = Crc32.bytes b 0 508
    then sectors := (lsn, b) :: !sectors
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !sectors in
  (* Maximal run of consecutive LSNs ending at the highest one. *)
  let live =
    List.fold_left
      (fun acc (lsn, b) ->
        match acc with
        | (prev, _) :: _ when lsn = prev + 1 -> (lsn, b) :: acc
        | _ -> [ (lsn, b) ])
      [] sorted
    |> List.rev
  in
  match live with
  | [] -> { diffs = []; records = 0; live_sectors = 0; torn = false }
  | _ ->
    let payloads =
      List.map
        (fun (_, b) ->
          let len = Codec.get_u16 b 10 in
          Bytes.sub b 12 len)
        live
    in
    let stream = Bytes.concat Bytes.empty payloads in
    (* First record boundary: the oldest live sector may begin
       mid-record (its head sectors were already overwritten). *)
    let start =
      let rec find acc sectors payloads =
        match (sectors, payloads) with
        | [], _ | _, [] -> Bytes.length stream
        | (_, b) :: rest, p :: prest ->
          let fr = Codec.get_u16 b 8 in
          if fr <> 0xffff then acc + fr else find (acc + Bytes.length p) rest prest
      in
      find 0 live payloads
    in
    (* Decode records strictly, stopping at the first inconsistency:
       a crash mid-group-commit leaves a torn tail (a length header
       or record body cut off at the last durable sector), and replay
       must apply exactly the valid prefix rather than raise. *)
    let n = Bytes.length stream in
    let diffs = ref [] and records = ref 0 and torn = ref false in
    let pos = ref start in
    (try
       while !pos < n do
         if !pos + 4 > n then begin
           torn := true;
           raise Exit
         end;
         let len = Codec.get_u32 stream !pos in
         if len < 2 || !pos + 4 + len > n then begin
           torn := true;
           raise Exit
         end;
         let stop = !pos + 4 + len in
         let r = Codec.R.of_bytes ~pos:(!pos + 4) stream in
         let rdiffs = ref [] in
         (match
            let ndiffs = Codec.R.u16 r in
            for _ = 1 to ndiffs do
              let addr = Codec.R.int r in
              let doff = Codec.R.u16 r in
              let dlen = Codec.R.u16 r in
              let version = Codec.R.int r in
              if
                addr < 0
                || addr mod Layout.sector <> 0
                || doff + dlen > Layout.sector
                || version <= 0
              then raise Exit;
              let data = Codec.R.bytes r dlen in
              rdiffs := { addr; doff; data; version } :: !rdiffs
            done
          with
         | () when Codec.R.pos r = stop ->
           diffs := !rdiffs @ !diffs;
           incr records;
           pos := stop
         | () ->
           torn := true;
           raise Exit
         | exception (Exit | Codec.R.Underflow) ->
           torn := true;
           raise Exit)
       done
     with Exit -> ());
    {
      diffs = List.rev !diffs;
      records = !records;
      live_sectors = List.length live;
      torn = !torn;
    }

let scan vd ~slot = (scan_report vd ~slot).diffs
