open Stdext
open Simkit

type diff = { addr : int; doff : int; data : bytes; version : int }

let payload_cap = 496 (* 512 - 8 lsn - 2 first_rec - 2 len - 4 crc *)

(* The flush pipeline has two stages. The *format* stage packs pending
   records into 512-byte sector images (grouped into bounded "groups"
   of sectors); the *submit* stage stamps LSNs and CRCs, reclaims log
   space ahead of the write cursor, and writes each group to Petal in
   strict order. Formatting a new group overlaps the in-flight
   submission of an earlier one; at most [max_queued_groups] formatted
   groups wait behind the submitter.

   LSNs are assigned at submission, not at formatting: a failed
   submission puts its records back and the retry reuses the same LSN
   range, so the on-disk LSN sequence never develops a gap — recovery
   replays the maximal run of consecutive LSNs ending at the highest
   one, and a gap would silently cut durable records out of the
   replay window. *)
type group = {
  g_records : (int * bytes) list;
      (* the (rid, record) pairs whose last byte lands in this group —
         what must be requeued if the group's submission fails *)
  g_sectors : bytes list;
      (* formatted sector images, LSN and CRC fields still zero *)
  g_rids : int list;
      (* per sector: the highest rid wholly contained once that sector
         is durable (0 if no record ends in it) *)
}

type wal_stats = {
  flush_groups : int;  (** groups submitted to Petal *)
  pipeline_overlaps : int;  (** groups formatted while another was in flight *)
  log_pressure_stalls : int;  (** submissions that had to reclaim before overwriting *)
  reclaim_rounds : int;  (** reclaim invocations (stalled + proactive) *)
  append_stalls : int;  (** synchronous appends that waited on the pipeline *)
  ensure_stalls : int;  (** ensure_flushed calls that waited on the pipeline *)
}

type t = {
  vd : Petal.Client.vdisk;
  slot : int;
  synchronous : bool;
  lease_ok : unit -> bool;
  log_bytes : int;
  log_sectors : int;
  mutable reclaim : upto_rid:int -> unit;
  mutable next_rid : int;
  mutable flushed_rid : int; (* records <= this are durable *)
  mutable next_lsn : int; (* next sector lsn to write (starts at 1) *)
  mutable applied_barrier : int; (* sectors <= this have their metadata applied *)
  mutable rid_at_lsn : (int * int) list; (* (lsn, last rid fully contained) newest first *)
  mutable pending : (int * bytes) list; (* (rid, serialized record) newest first *)
  mutable pending_bytes : int;
  mutable queued : group list; (* formatted groups awaiting submission, oldest first *)
  mutable submitting : bool; (* the single submitter is draining [queued] *)
  flush_done : Sim.Condition.t;
  mutable s_flush_groups : int;
  mutable s_overlaps : int;
  mutable s_pressure : int;
  mutable s_reclaims : int;
  mutable s_append_stalls : int;
  mutable s_ensure_stalls : int;
}

(* Sectors per group: the pipeline's stage unit, and the granularity
   at which the submitter reclaims ahead of the write cursor. Must
   stay well below the smallest log's sector count. *)
let group_sector_cap = 64

(* Bounded pipeline depth: with a submitter active and this many
   groups already formatted, further formatting waits for a group to
   land (or, on the asynchronous append path, simply stays pending). *)
let max_queued_groups = 4

let create ?(log_bytes = Layout.log_bytes) ~vd ~slot ~synchronous ~lease_ok () =
  if
    log_bytes < Layout.log_bytes
    || log_bytes mod Layout.sector <> 0
    || log_bytes > Layout.log_slot_spacing
  then invalid_arg "wal: bad log size";
  {
    vd;
    slot;
    synchronous;
    lease_ok;
    log_bytes;
    log_sectors = log_bytes / Layout.sector;
    reclaim = (fun ~upto_rid:_ -> ());
    next_rid = 0;
    flushed_rid = 0;
    next_lsn = 1;
    applied_barrier = 0;
    rid_at_lsn = [];
    pending = [];
    pending_bytes = 0;
    queued = [];
    submitting = false;
    flush_done = Sim.Condition.create ();
    s_flush_groups = 0;
    s_overlaps = 0;
    s_pressure = 0;
    s_reclaims = 0;
    s_append_stalls = 0;
    s_ensure_stalls = 0;
  }

let set_reclaim_hook t f = t.reclaim <- f
let last_rid t = t.next_rid
let log_size t = t.log_bytes

let stats t =
  {
    flush_groups = t.s_flush_groups;
    pipeline_overlaps = t.s_overlaps;
    log_pressure_stalls = t.s_pressure;
    reclaim_rounds = t.s_reclaims;
    append_stalls = t.s_append_stalls;
    ensure_stalls = t.s_ensure_stalls;
  }

let serialize_record diffs =
  let w = Codec.W.create ~size:128 () in
  Codec.W.u16 w (List.length diffs);
  List.iter
    (fun d ->
      assert (d.addr mod Layout.sector = 0);
      assert (d.doff + Bytes.length d.data <= Layout.sector);
      Codec.W.int w d.addr;
      Codec.W.u16 w d.doff;
      Codec.W.u16 w (Bytes.length d.data);
      Codec.W.int w d.version;
      Codec.W.bytes w d.data)
    diffs;
  let body = Codec.W.contents w in
  let out = Codec.W.create ~size:(Bytes.length body + 4) () in
  Codec.W.u32 out (Bytes.length body);
  Codec.W.bytes out body;
  Codec.W.contents out

let serialize_for_bench = serialize_record

let sector_addr t lsn =
  Layout.log_addr ~slot:t.slot + ((lsn - 1) mod t.log_sectors * Layout.sector)

(* --- format stage -------------------------------------------------------- *)

(* Pack [records] (oldest first) into groups of formatted sector
   images. Pure computation: no Petal I/O, no LSN consumption. *)
let make_groups records =
  let total = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 records in
  let stream = Bytes.create total in
  let starts = ref [] (* stream offset of each record start *)
  and ends = ref [] (* (stream end offset, rid) *) in
  let pos = ref 0 in
  List.iter
    (fun (rid, b) ->
      starts := !pos :: !starts;
      Bytes.blit b 0 stream !pos (Bytes.length b);
      pos := !pos + Bytes.length b;
      ends := (!pos, rid) :: !ends)
    records;
  let starts = List.rev !starts and ends = List.rev !ends in
  let nsectors = (total + payload_cap - 1) / payload_cap in
  let build s =
    let off = s * payload_cap in
    let len = min payload_cap (total - off) in
    let sector = Bytes.make Layout.sector '\000' in
    let first_rec =
      match List.find_opt (fun st -> st >= off && st < off + len) starts with
      | Some st -> st - off
      | None -> 0xffff
    in
    Codec.put_u16 sector 8 first_rec;
    Codec.put_u16 sector 10 len;
    Bytes.blit stream off sector 12 len;
    sector
  in
  let durable s =
    let off = s * payload_cap in
    let len = min payload_cap (total - off) in
    List.fold_left
      (fun acc (e, r) -> if e <= off + len then max acc r else acc)
      0 ends
  in
  let recs_with_ends = List.combine records ends in
  let rec chop s acc =
    if s >= nsectors then List.rev acc
    else begin
      let n = min group_sector_cap (nsectors - s) in
      let lo = s * payload_cap and hi = (s + n) * payload_cap in
      let g =
        {
          g_records =
            List.filter_map
              (fun (rec_, (e, _)) -> if e > lo && e <= hi then Some rec_ else None)
              recs_with_ends;
          g_sectors = List.init n (fun i -> build (s + i));
          g_rids = List.init n (fun i -> durable (s + i));
        }
      in
      chop (s + n) (g :: acc)
    end
  in
  chop 0 []

(* Move everything pending into formatted groups on the queue.
   Assumes the caller already handled the lease check and any
   pipeline-depth wait. *)
let format_now t =
  if t.pending <> [] then begin
    let records = List.rev t.pending in
    t.pending <- [];
    t.pending_bytes <- 0;
    let groups = make_groups records in
    if t.submitting && groups <> [] then
      t.s_overlaps <- t.s_overlaps + List.length groups;
    t.queued <- t.queued @ groups
  end

(* --- submit stage -------------------------------------------------------- *)

(* Apply (via the reclaim hook) every record wholly contained in
   sectors with lsn <= [upto], then advance the applied barrier. *)
let reclaim_upto t upto =
  t.s_reclaims <- t.s_reclaims + 1;
  let rid_limit =
    List.fold_left
      (fun acc (l, r) -> if l <= upto then max acc r else acc)
      0 t.rid_at_lsn
  in
  if rid_limit > 0 then t.reclaim ~upto_rid:rid_limit;
  t.applied_barrier <- max t.applied_barrier upto;
  t.rid_at_lsn <- List.filter (fun (l, _) -> l > upto) t.rid_at_lsn

(* Proactive reclaim, run between group submissions: once the live
   window passes 3/4 of the log, apply the older half now — off the
   overwrite path — so the hard guard in [write_group] (a log-pressure
   stall) rarely fires. Smarter than the paper's reclaim-a-quarter-
   when-full policy, which pays the whole application inside the
   stalled flush. *)
let maybe_reclaim_ahead t =
  let landed = t.next_lsn - 1 in
  if landed - t.applied_barrier > t.log_sectors * 3 / 4 then
    reclaim_upto t (landed - (t.log_sectors / 2))

(* Stamp LSNs and CRCs onto one group's sectors and write them.
   Recovery replays the maximal run of consecutive LSNs ending at the
   highest one, so a log sector must never become durable before its
   predecessors (prefix durability) — a crash mid-group must not leave
   an orphaned suffix that replay would apply without the records
   preceding it. The group is split wherever one Petal write would
   stop being a single failure-atomic piece — at the circular-buffer
   wrap and at chunk boundaries — and the pieces are written strictly
   in order, each awaited before the next is submitted.

   [t.next_lsn] advances only after the whole group has landed, so a
   failed group's retry reuses its LSN range (overwriting whatever
   prefix of the old attempt landed — harmless, replay is
   version-checked). *)
let write_group t g =
  let n = List.length g.g_sectors in
  let base = t.next_lsn in
  let last_lsn = base + n - 1 in
  (* Make room: sectors about to be overwritten held lsn minus the log
     size; everything they described must be in place first. *)
  if last_lsn > t.log_sectors && last_lsn - t.log_sectors > t.applied_barrier
  then begin
    t.s_pressure <- t.s_pressure + 1;
    reclaim_upto t (last_lsn - 1)
  end;
  let sectors =
    List.mapi
      (fun i sector ->
        let lsn = base + i in
        Codec.put_int sector 0 lsn;
        Codec.put_u32 sector 508 (Crc32.bytes sector 0 508);
        (lsn, sector))
      g.g_sectors
  in
  let chunk = Petal.Protocol.chunk_bytes in
  let rec runs = function
    | [] -> []
    | (lsn0, _) :: _ as rest ->
      let pos0 = (lsn0 - 1) mod t.log_sectors in
      let addr0 = sector_addr t lsn0 in
      let to_wrap = t.log_sectors - pos0 in
      let to_chunk = (chunk - (addr0 mod chunk)) / Layout.sector in
      let fit = min (List.length rest) (min to_wrap to_chunk) in
      let run = List.filteri (fun i _ -> i < fit) rest in
      let tail = List.filteri (fun i _ -> i >= fit) rest in
      (addr0, run) :: runs tail
  in
  List.iter
    (fun (addr0, run) ->
      Petal.Client.write t.vd ~off:addr0
        (Bytes.concat Bytes.empty (List.map snd run));
      Faultpoint.hit "wal.commit")
    (runs sectors);
  (* Account durability per written sector. *)
  List.iteri
    (fun i rid ->
      let r = max t.flushed_rid rid in
      t.flushed_rid <- r;
      t.rid_at_lsn <- (base + i, r) :: t.rid_at_lsn)
    g.g_rids;
  t.next_lsn <- base + n

(* Drain the group queue as the single submitter. On failure, the
   failed group (still at the head) and everything queued behind it
   are put back as records — merged with any since-appended pending
   records and re-sorted by rid, so the retry's groups preserve
   per-record order — and the other flushers are woken so they retry
   or observe the failure instead of parking on [flush_done]
   forever. *)
let submit_queued t =
  t.submitting <- true;
  match
    while t.queued <> [] do
      let g = List.hd t.queued in
      write_group t g;
      (* A crash during the write runs [discard_volatile] (clearing
         the queue) under our feet; only pop if the head is still our
         group. *)
      (match t.queued with
      | g' :: rest when g' == g -> t.queued <- rest
      | _ -> ());
      t.s_flush_groups <- t.s_flush_groups + 1;
      Faultpoint.hit "wal.group";
      Sim.Condition.broadcast t.flush_done;
      maybe_reclaim_ahead t
    done
  with
  | () ->
    t.submitting <- false;
    Sim.Condition.broadcast t.flush_done
  | exception ex ->
    let requeued = List.concat_map (fun g -> g.g_records) t.queued in
    t.queued <- [];
    t.pending <-
      List.sort (fun (a, _) (b, _) -> compare b a) (requeued @ t.pending);
    t.pending_bytes <-
      List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.pending;
    t.submitting <- false;
    Sim.Condition.broadcast t.flush_done;
    raise ex

(* --- the caller-facing pipeline ------------------------------------------ *)

(* Format whatever is pending and drive the pipeline until records up
   to [target] are durable. If another fiber is submitting, wait on
   its progress; if the wait ends with the records neither durable nor
   anywhere in the pipeline (a crash discarded the volatile tail),
   return rather than spin — the caller runs into the dead host's
   failure on its next I/O. Submission failures propagate to every
   caller that attempts the (re-queued) work itself. *)
let rec flush_to t ~target ~on_stall =
  if t.pending <> [] then begin
    if not (t.lease_ok ()) then Errors.fail Errors.Eio;
    while List.length t.queued >= max_queued_groups && t.submitting do
      on_stall ();
      Sim.Condition.wait t.flush_done
    done;
    format_now t
  end;
  if t.flushed_rid < target then
    if t.submitting then begin
      on_stall ();
      Sim.Condition.wait t.flush_done;
      if
        t.flushed_rid < target
        && (t.submitting || t.queued <> [] || t.pending <> [])
      then flush_to t ~target ~on_stall
    end
    else if t.queued <> [] then begin
      submit_queued t;
      if t.flushed_rid < target && (t.queued <> [] || t.pending <> []) then
        flush_to t ~target ~on_stall
    end

let flush t = flush_to t ~target:t.next_rid ~on_stall:ignore

let ensure_flushed t rid =
  if rid > t.flushed_rid then
    flush_to t ~target:(min rid t.next_rid) ~on_stall:(fun () ->
        t.s_ensure_stalls <- t.s_ensure_stalls + 1)

(* Asynchronous flush kick (the non-synchronous append path): format
   and enqueue without blocking the appender, and start a submitter if
   none is running. A failure inside the spawned submitter already put
   the records back as pending; it resurfaces at the next synchronous
   flush/fsync. With the pipeline full the records simply stay
   pending — the appender never blocks. *)
let kick t =
  if
    t.pending <> []
    && t.lease_ok ()
    && not (t.submitting && List.length t.queued >= max_queued_groups)
  then begin
    format_now t;
    if (not t.submitting) && t.queued <> [] then
      Sim.spawn (fun () ->
          if (not t.submitting) && t.queued <> [] then
            try submit_queued t with _ -> ())
  end

let append t diffs =
  Faultpoint.hit "wal.append";
  t.next_rid <- t.next_rid + 1;
  let rid = t.next_rid in
  let b = serialize_record diffs in
  t.pending <- (rid, b) :: t.pending;
  t.pending_bytes <- t.pending_bytes + Bytes.length b;
  if t.synchronous then
    flush_to t ~target:rid ~on_stall:(fun () ->
        t.s_append_stalls <- t.s_append_stalls + 1)
  else if t.pending_bytes >= t.log_bytes / 4 then kick t;
  rid

let discard_volatile t =
  t.pending <- [];
  t.pending_bytes <- 0;
  t.queued <- []

(* --- recovery-side scan -------------------------------------------------- *)

type scan_report = {
  diffs : diff list;
  records : int;  (* complete records decoded *)
  live_sectors : int;  (* CRC-valid sectors in the replay window *)
  torn : bool;  (* the stream ended inside an incomplete or garbled record *)
}

let scan_report ?(log_bytes = Layout.log_bytes) vd ~slot =
  let log_sectors = log_bytes / Layout.sector in
  let base = Layout.log_addr ~slot in
  let raw = Petal.Client.read vd ~off:base ~len:log_bytes in
  let sectors = ref [] in
  for i = 0 to log_sectors - 1 do
    let b = Bytes.sub raw (i * Layout.sector) Layout.sector in
    let lsn = Codec.get_int b 0 in
    if
      lsn > 0
      && Codec.get_u16 b 10 <= payload_cap
      && Codec.get_u32 b 508 = Crc32.bytes b 0 508
    then sectors := (lsn, b) :: !sectors
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !sectors in
  (* Maximal run of consecutive LSNs ending at the highest one. *)
  let live =
    List.fold_left
      (fun acc (lsn, b) ->
        match acc with
        | (prev, _) :: _ when lsn = prev + 1 -> (lsn, b) :: acc
        | _ -> [ (lsn, b) ])
      [] sorted
    |> List.rev
  in
  match live with
  | [] -> { diffs = []; records = 0; live_sectors = 0; torn = false }
  | _ ->
    let payloads =
      List.map
        (fun (_, b) ->
          let len = Codec.get_u16 b 10 in
          Bytes.sub b 12 len)
        live
    in
    let stream = Bytes.concat Bytes.empty payloads in
    (* First record boundary: the oldest live sector may begin
       mid-record (its head sectors were already overwritten). *)
    let start =
      let rec find acc sectors payloads =
        match (sectors, payloads) with
        | [], _ | _, [] -> Bytes.length stream
        | (_, b) :: rest, p :: prest ->
          let fr = Codec.get_u16 b 8 in
          if fr <> 0xffff then acc + fr else find (acc + Bytes.length p) rest prest
      in
      find 0 live payloads
    in
    (* Decode records strictly, stopping at the first inconsistency:
       a crash mid-group-commit leaves a torn tail (a length header
       or record body cut off at the last durable sector), and replay
       must apply exactly the valid prefix rather than raise. *)
    let n = Bytes.length stream in
    let diffs = ref [] and records = ref 0 and torn = ref false in
    let pos = ref start in
    (try
       while !pos < n do
         if !pos + 4 > n then begin
           torn := true;
           raise Exit
         end;
         let len = Codec.get_u32 stream !pos in
         if len < 2 || !pos + 4 + len > n then begin
           torn := true;
           raise Exit
         end;
         let stop = !pos + 4 + len in
         let r = Codec.R.of_bytes ~pos:(!pos + 4) stream in
         let rdiffs = ref [] in
         (match
            let ndiffs = Codec.R.u16 r in
            for _ = 1 to ndiffs do
              let addr = Codec.R.int r in
              let doff = Codec.R.u16 r in
              let dlen = Codec.R.u16 r in
              let version = Codec.R.int r in
              if
                addr < 0
                || addr mod Layout.sector <> 0
                || doff + dlen > Layout.sector
                || version <= 0
              then raise Exit;
              let data = Codec.R.bytes r dlen in
              rdiffs := { addr; doff; data; version } :: !rdiffs
            done
          with
         | () when Codec.R.pos r = stop ->
           diffs := !rdiffs @ !diffs;
           incr records;
           pos := stop
         | () ->
           torn := true;
           raise Exit
         | exception (Exit | Codec.R.Underflow) ->
           torn := true;
           raise Exit)
       done
     with Exit -> ());
    {
      diffs = List.rev !diffs;
      records = !records;
      live_sectors = List.length live;
      torn = !torn;
    }

let scan ?log_bytes vd ~slot = (scan_report ?log_bytes vd ~slot).diffs
