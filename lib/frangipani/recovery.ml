(** The recovery demon (§4, §6).

    Invoked by the lock service on a live server when another
    server's lease expires. It seizes the dead server's log lock,
    replays the log from Petal, and applies each diff only where the
    on-disk sector's version number is older than the record's — so
    updates that already reached Petal (or were superseded) are never
    redone, and replaying a log twice is harmless.

    A replay that aborts (our own lease margin ran out, Petal
    unreachable, this host crashed) releases the log lock and lets
    the exception propagate: the clerk then stays silent instead of
    announcing completion, and the lock server's nag loop re-issues
    the recovery — here or on another live server — until someone
    finishes it. *)

open Stdext

let apply_diff ctx (d : Wal.diff) =
  Simkit.Faultpoint.hit "recovery.apply";
  let sector = Petal.Client.read ctx.Ctx.vd ~off:d.addr ~len:Layout.sector in
  if Codec.get_int sector 0 < d.version then begin
    Bytes.blit d.data 0 sector d.doff (Bytes.length d.data);
    Codec.put_int sector 0 d.version;
    if not (Locksvc.Clerk.check_lease_margin ctx.Ctx.clerk) then
      Errors.fail Errors.Eio;
    Petal.Client.write ctx.Ctx.vd ~off:d.addr sector;
    ctx.Ctx.recov_applied <- ctx.Ctx.recov_applied + 1
  end
  else ctx.Ctx.recov_skipped <- ctx.Ctx.recov_skipped + 1

let run ctx ~dead_lease =
  let slot = dead_lease mod Layout.max_servers in
  Logs.info (fun m ->
      m "%s: recovering log slot %d (lease %d)"
        (Cluster.Host.name ctx.Ctx.host) slot dead_lease);
  let lock = Lockns.log_lock slot in
  Locksvc.Clerk.acquire_for_recovery ctx.Ctx.clerk ~lock;
  Fun.protect
    ~finally:(fun () -> Locksvc.Clerk.release ctx.Ctx.clerk ~lock Locksvc.Types.W)
    (fun () ->
      (* [log_bytes] is a cluster-wide constant, so our own config
         tells us how large the dead server's log region is. *)
      let report =
        Wal.scan_report ~log_bytes:ctx.Ctx.config.Ctx.log_bytes ctx.Ctx.vd ~slot
      in
      ctx.Ctx.recov_runs <- ctx.Ctx.recov_runs + 1;
      if report.Wal.torn then ctx.Ctx.recov_torn <- ctx.Ctx.recov_torn + 1;
      List.iter (apply_diff ctx) report.Wal.diffs;
      Logs.info (fun m ->
          m "%s: replayed %d diffs (%d records, %d live sectors%s) from slot %d"
            (Cluster.Host.name ctx.Ctx.host)
            (List.length report.Wal.diffs)
            report.Wal.records report.Wal.live_sectors
            (if report.Wal.torn then ", torn tail" else "")
            slot))
