(** File-content block mapping and data I/O (§3): the first 64 KB of
    a file live in 16 small (4 KB) blocks, the remainder in one large
    (1 TB) block; directories use the metadata pools so their freed
    blocks are never recycled as user data (§4).

    Callers hold the file's lock (W for writes, R for reads); all
    functions here assume it. *)

open Errors

let small_pool ~meta = if meta then Layout.Small_meta else Layout.Small_data
let large_pool ~meta = if meta then Layout.Large_meta else Layout.Large_data

(* Petal address of the file block containing byte [boff] (block
   aligned), if mapped. Which address pool a block number refers to
   is determined by the inode type: only directories keep content in
   the metadata pools (symlink targets are inline). *)
let block_addr (ino : Ondisk.inode) ~boff =
  let meta = ino.itype = Ondisk.Dir in
  if boff < Layout.small_area_per_file then begin
    match ino.small.(boff / Layout.small_block) with
    | 0 -> None
    | v -> Some (Layout.small_addr (small_pool ~meta) (v - 1))
  end
  else
    match ino.large with
    | 0 -> None
    | v ->
      Some
        (Layout.large_addr (large_pool ~meta) (v - 1)
        + boff - Layout.small_area_per_file)

(* Ensure the block containing [boff] is mapped, allocating (in its
   own transaction) if needed. [meta] selects the directory pools.
   Returns the (possibly updated) inode and the block address. *)
let ensure_block ctx inum (ino : Ondisk.inode) ~boff ~meta =
  if boff >= Layout.small_area_per_file + Layout.large_block then fail Efbig;
  match block_addr ino ~boff with
  | Some a -> (ino, a)
  | None ->
    Cache.with_txn ctx.Ctx.cache (fun txn ->
        if boff < Layout.small_area_per_file then begin
          let b = Alloc.alloc ctx txn (small_pool ~meta) in
          let small = Array.copy ino.small in
          small.(boff / Layout.small_block) <- b + 1;
          let ino = { ino with small } in
          Inode.write ctx txn inum ino;
          (ino, Layout.small_addr (small_pool ~meta) b)
        end
        else begin
          let l = Alloc.alloc ctx txn (large_pool ~meta) in
          let ino = { ino with large = l + 1 } in
          Inode.write ctx txn inum ino;
          ( ino,
            Layout.large_addr (large_pool ~meta) l
            + boff - Layout.small_area_per_file )
        end)

(* Split [off, off+len) into block-aligned pieces:
   (block_start, offset_within_block, piece_len). *)
let pieces ~off ~len =
  let rec go off len acc =
    if len <= 0 then List.rev acc
    else begin
      let boff = off / Layout.block * Layout.block in
      let within = off - boff in
      let n = min len (Layout.block - within) in
      go (off + n) (len - n) ((boff, within, n) :: acc)
    end
  in
  go off len []

(* The blocks among [boffs] that are mapped but neither cached nor
   already being fetched — what a fetch would actually transfer.
   Holes are skipped (they read as zeros without I/O). *)
let missing_blocks ctx (ino : Ondisk.inode) boffs =
  List.filter
    (fun boff ->
      match block_addr ino ~boff with
      | Some addr -> not (Cache.present ctx.Ctx.cache addr)
      | None -> false)
    boffs

(* Fetch the uncached blocks among [boffs]: cluster their Petal
   addresses into contiguous runs of up to 64 KB (holes and the
   small/large-block address discontinuity split runs naturally) and
   submit every run through one batched scatter-gather fetch — or,
   for the UFS-style read-ahead ablation, one run at a time. *)
let fetch_blocks ?(serial = false) ?prefetch ?still_wanted ctx inum
    (ino : Ondisk.inode) boffs =
  let missing =
    List.filter_map (fun boff -> block_addr ino ~boff) boffs
    |> List.filter (fun addr -> not (Cache.present ctx.Ctx.cache addr))
    |> List.sort_uniq compare
  in
  let runs =
    List.fold_left
      (fun acc addr ->
        match acc with
        | (a0, len) :: rest when a0 + len = addr && len < 65536 ->
          (a0, len + Layout.block) :: rest
        | _ -> (addr, Layout.block) :: acc)
      [] missing
    |> List.rev
  in
  match runs with
  | [] -> ()
  | runs when serial ->
    List.iter
      (fun (addr, len) ->
        Cache.fill_range ctx.Ctx.cache
          ~lock:(Ctx.data_lock ctx ~inum ~addr)
          ~addr ~len ~granule:Layout.block)
      runs
  | runs ->
    Cache.fill_runs ?prefetch ?still_wanted ctx.Ctx.cache
      (List.map
         (fun (addr, len) -> (Ctx.data_lock ctx ~inum ~addr, addr, len))
         runs)
      ~granule:Layout.block

(** Read file content; holes and the region past EOF read as zeros
    (the caller clamps [len] to size if it wants POSIX reads). *)
let read ctx inum (ino : Ondisk.inode) ~off ~len =
  Ctx.charge_bytes ctx len;
  let ps = pieces ~off ~len in
  if not ctx.Ctx.config.block_locks then
    fetch_blocks ctx inum ino (List.map (fun (boff, _, _) -> boff) ps);
  let buf = Bytes.make len '\000' in
  List.iter
    (fun (boff, within, n) ->
      match block_addr ino ~boff with
      | None -> ()
      | Some addr ->
        let lock = Ctx.data_lock ctx ~inum ~addr in
        if ctx.Ctx.config.block_locks then
          Locksvc.Clerk.acquire ctx.Ctx.clerk ~lock Locksvc.Types.R;
        let data = Cache.read ctx.Ctx.cache ~lock ~addr ~len:Layout.block in
        Bytes.blit data within buf (boff + within - off) n;
        if ctx.Ctx.config.block_locks then
          Locksvc.Clerk.release ctx.Ctx.clerk ~lock Locksvc.Types.R)
    ps;
  buf

(** Write file content, allocating blocks as needed; returns the
    updated inode (size and mtime already updated and logged). *)
let write ctx inum (ino : Ondisk.inode) ~off ~data ~meta =
  let len = Bytes.length data in
  Ctx.charge_bytes ctx len;
  let ino = ref ino in
  List.iter
    (fun (boff, within, n) ->
      let ino', addr = ensure_block ctx inum !ino ~boff ~meta in
      ino := ino';
      let lock = Ctx.data_lock ctx ~inum ~addr in
      if ctx.Ctx.config.block_locks then
        Locksvc.Clerk.acquire ctx.Ctx.clerk ~lock Locksvc.Types.W;
      let piece = Bytes.sub data (boff + within - off) n in
      if within = 0 && n = Layout.block then
        Cache.write_data ctx.Ctx.cache ~lock ~addr ~bytes:piece
      else
        Cache.update_data ctx.Ctx.cache ~lock ~addr ~len:Layout.block ~off:within
          ~bytes:piece;
      if ctx.Ctx.config.block_locks then
        Locksvc.Clerk.release ctx.Ctx.clerk ~lock Locksvc.Types.W)
    (pieces ~off ~len);
  let newsize = max !ino.size (off + len) in
  Cache.with_txn ctx.Ctx.cache (fun txn ->
      let ino' = { !ino with size = newsize; mtime = Simkit.Sim.now () } in
      Inode.write ctx txn inum ino';
      ino := ino');
  !ino

(** The (pool, bit) list backing a file's content — what must be
    freed when it is destroyed. *)
let content_bits (ino : Ondisk.inode) ~meta =
  let bits = ref [] in
  Array.iter
    (fun v -> if v <> 0 then bits := (small_pool ~meta, v - 1) :: !bits)
    ino.small;
  if ino.large <> 0 then bits := (large_pool ~meta, ino.large - 1) :: !bits;
  List.rev !bits

(** Truncate to [size]; frees whole blocks past the end and zeroes
    the cached tail of the last partial block. Returns the updated
    inode (not yet written — the caller's transaction does that). *)
let truncate ctx txn inum (ino : Ondisk.inode) ~size ~meta =
  if size > ino.size then { ino with size }
  else begin
    let keep_blocks = (size + Layout.block - 1) / Layout.block in
    let small = Array.copy ino.small in
    let freed = ref [] in
    Array.iteri
      (fun i v ->
        if v <> 0 && i >= keep_blocks then begin
          freed := (small_pool ~meta, v - 1) :: !freed;
          small.(i) <- 0
        end)
      small;
    let large =
      if ino.large <> 0 && size <= Layout.small_area_per_file then begin
        freed := (large_pool ~meta, ino.large - 1) :: !freed;
        0
      end
      else ino.large
    in
    if !freed <> [] then Alloc.free_many ctx txn (List.rev !freed);
    (* Zero the tail of the last partial block so data exposed by a
       later extension reads as zeros. *)
    let ino' = { ino with small; large; size } in
    (if size mod Layout.block <> 0 then begin
       let boff = size / Layout.block * Layout.block in
       match block_addr ino' ~boff with
       | Some addr ->
         let lock = Ctx.data_lock ctx ~inum ~addr in
         let tail = Layout.block - (size mod Layout.block) in
         Cache.update_data ctx.Ctx.cache ~lock ~addr ~len:Layout.block
           ~off:(size mod Layout.block) ~bytes:(Bytes.make tail '\000')
       | None -> ()
     end);
    ino'
  end
