(** Per-server block cache with write-ahead ordering.

    Stands in for the kernel buffer pool of the paper (§2.1). Every
    entry is covered by a lock of the lock service; the coherence
    protocol (§5) flushes a lock's dirty entries before the lock is
    released or downgraded, and invalidates them on release.

    Metadata updates go through transactions: the cached sector is
    modified in place, its version number is bumped, and a redo
    record is accumulated; committing the transaction appends one
    logical record to the {!Wal} and tags the touched entries with
    the record id, so a dirty metadata sector is never written to
    Petal before its log record ({!flush_lock} enforces the
    ordering). User data is written through the same cache but never
    logged (§4). *)

type t

val create :
  vd:Petal.Client.vdisk ->
  wal:Wal.t ->
  lease_ok:(unit -> bool) ->
  t

(** A metadata transaction: one logical operation, one log record. *)
type txn

val with_txn : t -> (txn -> 'a) -> 'a
(** Run a metadata operation; commit its accumulated diffs as a
    single log record on normal return. *)

val on_commit : txn -> (unit -> unit) -> unit
(** Register work (typically bitmap-segment lock releases) to run
    right after the transaction's record is appended. *)

val read : t -> lock:int -> addr:int -> len:int -> bytes
(** Return the cached block, fetching it from Petal on a miss. The
    returned buffer is the live cache entry: callers must treat it
    as read-only. *)

val update : t -> txn -> lock:int -> addr:int -> off:int -> bytes:bytes -> unit
(** Logged metadata update of the 512-byte sector at [addr]: bump its
    version, splice [bytes] at [off], add the diff to the
    transaction. *)

val update_nolog : t -> lock:int -> addr:int -> off:int -> bytes:bytes -> unit
(** Unlogged metadata update (the approximate last-accessed time,
    §2.1): bumps the version but writes no record; lost in a crash. *)

val write_data : t -> lock:int -> addr:int -> bytes:bytes -> unit
(** Cache a full user-data block as dirty (not logged). *)

val update_data : t -> lock:int -> addr:int -> len:int -> off:int -> bytes:bytes -> unit
(** Partial user-data update within a block of [len] bytes
    (read-modify-write; not logged). *)

val mem : t -> int -> bool
(** Is this address cached? (Read-clustering uses it to find runs of
    missing blocks.) *)

val present : t -> int -> bool
(** Is this address cached or already being fetched? (What a
    prefetch would skip — used to size read-ahead windows.) *)

val fill_runs :
  ?prefetch:bool ->
  ?still_wanted:(unit -> bool) ->
  t ->
  (int * int * int) list ->
  granule:int ->
  unit
(** Fetch several [(lock, addr, len)] miss runs with one Petal
    submission (pieces of every run fan out concurrently; adjacent
    pieces in one chunk coalesce into one RPC) and populate clean
    entries of [granule] bytes — the batched scatter-gather read
    path. [prefetch:true] draws the pieces from the Petal client's
    separate (smaller) speculative pool. [still_wanted] is consulted
    when the data arrives: if it answers false (a cancelled
    read-ahead — its lock was revoked mid-fetch) nothing is inserted,
    and readers already waiting on the fetch re-issue it
    themselves. *)

val fill_range : t -> lock:int -> addr:int -> len:int -> granule:int -> unit
(** Fetch a contiguous range with a single Petal read and populate
    clean entries of [granule] bytes — sequential-read clustering;
    [fill_runs] restricted to one run (the serial read-ahead
    ablation). *)

val flush_lock : t -> int -> unit
(** Write back all dirty entries covered by a lock (logging first). *)

val invalidate_lock : t -> int -> unit
(** Drop all entries covered by a lock (they must be clean — call
    {!flush_lock} first). *)

val flush_all : t -> unit

val flush_upto_rid : t -> int -> unit
(** Write back dirty metadata recorded by records with id ≤ the
    given bound — the WAL's reclaim hook. Never triggers a log
    flush. *)

val drop_clean : t -> unit
(** Evict all clean entries (lets experiments measure uncached
    reads). *)

val discard_volatile : t -> unit
(** Crash simulation: drop everything, dirty included. *)

val maybe_writeback : t -> unit
(** Kick a background drain if enough data is dirty (write-behind);
    called by the write path so streaming writes overlap with their
    flush. *)

val dirty_count : t -> int
val stats : t -> int * int  (** hits, misses *)
