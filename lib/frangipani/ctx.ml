(** The state of one Frangipani server (one mount of one file
    system), threaded through every operation. *)

open Simkit

type config = {
  sync_interval : Sim.time;  (** the Unix update-demon period (§4) *)
  synchronous_log : bool;  (** flush the log on every metadata op (§4 option) *)
  log_bytes : int;
      (** per-server circular log size; a cluster-wide constant so
          recovery can scan a dead server's slot (default 128 KB, §4) *)
  read_ahead : int;  (** prefetch depth in 4 KB blocks; 0 disables *)
  read_ahead_serial : bool;
      (** ablation: issue the prefetch window one 64 KB cluster at a
          time (the UFS-derived read-ahead the paper says Frangipani
          borrowed, §9.2) instead of as one batched submission *)
  cpu_ns_per_byte : int;  (** FS-layer copy cost, calibrated to Table 3 *)
  cpu_per_op : Sim.time;  (** fixed per-call overhead *)
  block_locks : bool;  (** finer-granularity locking ablation (§2.3) *)
}

let default_config =
  {
    sync_interval = Sim.sec 30.0;
    synchronous_log = false;
    log_bytes = Layout.log_bytes;
    (* A 512 KB window of sequential prefetch, submitted as one
       batched scatter-gather fetch that overlaps the foreground
       read — deep enough to hide Petal latency at full link rate;
       [read_ahead_serial] restores the weaker one-cluster-at-a-time
       UFS behaviour as an ablation. *)
    read_ahead = 128;
    read_ahead_serial = false;
    cpu_ns_per_byte = 22;
    cpu_per_op = Sim.us 40;
    block_locks = false;
  }

type t = {
  host : Cluster.Host.t;
  config : config;
  rpc : Cluster.Rpc.t;  (** the machine's RPC endpoint, for counters *)
  vd : Petal.Client.vdisk;
  clerk : Locksvc.Clerk.t;
  cache : Cache.t;
  wal : Wal.t;
  slot : int;  (** private log slot, [lease mod 256] (§7) *)
  alloc : Alloc_state.t;
  readonly : bool;
  mutable poisoned : bool;
      (** lease expired with dirty data: all operations fail until
          unmount (§6) *)
  mutable unmounted : bool;
  mutable recov_runs : int;  (** recovery replays started on this server *)
  mutable recov_applied : int;  (** diffs whose version won (written) *)
  mutable recov_skipped : int;  (** diffs already on disk (version check) *)
  mutable recov_torn : int;  (** replays whose log ended in a torn record *)
  read_ahead_next : (int, int) Hashtbl.t;  (** inum -> predicted next offset *)
  read_ahead_order : int Queue.t;
      (** insertion order of [read_ahead_next] keys, for eviction *)
  prefetch_inflight : (int, int) Hashtbl.t;
      (** inum -> bytes of prefetch currently in flight (capped) *)
  prefetch_holds : (int, bool ref list) Hashtbl.t;
      (** lock -> cancellation flags of in-flight prefetches holding
          it in R — what a contended revoke sheds *)
}

let check_usable t =
  if t.poisoned || t.unmounted then Errors.fail Errors.Eio

let charge_op t = Cluster.Host.consume t.host t.config.cpu_per_op

let charge_bytes t n =
  if n > 0 then Cluster.Host.consume t.host (n * t.config.cpu_ns_per_byte)

(* --- read-ahead bookkeeping --------------------------------------------- *)

(* The sequential-access predictor must not grow with the number of
   files ever read: entries are dropped when their inode is destroyed
   or truncated to zero, and the table is capped, evicting the
   oldest-inserted entries (losing one only costs a missed prefetch
   window). *)
let read_ahead_table_cap = 512

let predicted_next t inum = Hashtbl.find_opt t.read_ahead_next inum

let note_read_ahead t ~inum ~next =
  if not (Hashtbl.mem t.read_ahead_next inum) then begin
    while
      Hashtbl.length t.read_ahead_next >= read_ahead_table_cap
      && not (Queue.is_empty t.read_ahead_order)
    do
      Hashtbl.remove t.read_ahead_next (Queue.pop t.read_ahead_order)
    done;
    (* The order queue can accumulate entries for inodes meanwhile
       unlinked (and duplicates from re-insertion after unlink);
       compact it once it is clearly mostly stale. *)
    if Queue.length t.read_ahead_order > 2 * read_ahead_table_cap then begin
      let seen = Hashtbl.create 64 in
      let fresh = Queue.create () in
      Queue.iter
        (fun i ->
          if Hashtbl.mem t.read_ahead_next i && not (Hashtbl.mem seen i) then begin
            Hashtbl.add seen i ();
            Queue.push i fresh
          end)
        t.read_ahead_order;
      Queue.clear t.read_ahead_order;
      Queue.transfer fresh t.read_ahead_order
    end;
    Queue.push inum t.read_ahead_order
  end;
  Hashtbl.replace t.read_ahead_next inum next

let forget_read_ahead t inum = Hashtbl.remove t.read_ahead_next inum

(* Per-inode bound on in-flight prefetch bytes: two full windows, so
   consecutive windows overlap but a slow Petal cannot accumulate an
   unbounded pile of speculative fetches behind one file. *)
let prefetch_cap_bytes t = 2 * t.config.read_ahead * Layout.block

let prefetch_budget_blocks t inum =
  let used = Option.value ~default:0 (Hashtbl.find_opt t.prefetch_inflight inum) in
  max 0 ((prefetch_cap_bytes t - used) / Layout.block)

let prefetch_charge t inum bytes =
  Hashtbl.replace t.prefetch_inflight inum
    (Option.value ~default:0 (Hashtbl.find_opt t.prefetch_inflight inum) + bytes)

let prefetch_discharge t inum bytes =
  match Hashtbl.find_opt t.prefetch_inflight inum with
  | Some v when v > bytes -> Hashtbl.replace t.prefetch_inflight inum (v - bytes)
  | _ -> Hashtbl.remove t.prefetch_inflight inum

(* Registry of speculative R holds, keyed by the lock each in-flight
   prefetch inherited. A contended revoke sheds every hold under the
   lock ([prefetch_holds_shed]); a completing prefetch takes its own
   entry back ([prefetch_hold_take]) — whoever gets the entry out of
   the table does the lock release, so it happens exactly once. *)
let prefetch_hold_register t ~lock c =
  Hashtbl.replace t.prefetch_holds lock
    (c :: Option.value ~default:[] (Hashtbl.find_opt t.prefetch_holds lock))

let prefetch_hold_take t ~lock c =
  match Hashtbl.find_opt t.prefetch_holds lock with
  | Some cs when List.memq c cs ->
    (match List.filter (fun x -> not (x == c)) cs with
    | [] -> Hashtbl.remove t.prefetch_holds lock
    | rest -> Hashtbl.replace t.prefetch_holds lock rest);
    true
  | Some _ | None -> false

let prefetch_holds_shed t ~lock =
  match Hashtbl.find_opt t.prefetch_holds lock with
  | None -> []
  | Some cs ->
    Hashtbl.remove t.prefetch_holds lock;
    cs

(** The data lock covering a given data block of a file: the whole
    file's lock normally, a per-block lock in the ablation mode. *)
let data_lock t ~inum ~addr =
  if t.config.block_locks then Lockns.block_lock addr else Lockns.inode_lock inum
