(** The Frangipani file server module: the public file-system API.

    Each {!t} is one Frangipani server — one mount of a shared Petal
    virtual disk, coordinated with every other mount through the
    distributed lock service. All servers see one coherent file tree
    (§2.1): changes made on one machine are immediately visible on
    all others, with the same guarantees as a local Unix file system
    (data is staged through the cache and reaches non-volatile
    storage on the next sync/fsync; metadata is logged).

    Files and directories are named by inode numbers ([inum]); the
    root directory is {!root}. Operations raise {!Errors.Error}. *)

type t = Ctx.t

type stats = {
  inum : int;
  itype : Ondisk.itype;
  size : int;
  nlink : int;
  mtime : int;
  ctime : int;
  atime : int;
}

val root : int
(** The root directory's inode number (0). *)

val format : Petal.Client.vdisk -> unit
(** One-time initialisation of a fresh virtual disk: superblock and
    an empty root directory. *)

val mount :
  host:Cluster.Host.t ->
  rpc:Cluster.Rpc.t ->
  vd:Petal.Client.vdisk ->
  lock_servers:Cluster.Net.addr array ->
  ?table:string ->
  ?config:Ctx.config ->
  ?readonly:bool ->
  unit ->
  t
(** Add this machine as a Frangipani server (§7: it needs only the
    virtual disk and the lock service; no other server is touched).
    Opens the lock table (default ["fs0"]), derives its private log
    slot from the lease, clears and locks that log, and starts the
    sync demon. [readonly] mounts snapshots (no log, no writes). *)

val unmount : t -> unit
(** Flush everything, release locks, close the lease — the clean
    removal of §7. *)

val crash : t -> unit
(** Crash the server's host: volatile state (cache, log tail,
    clerk) is lost; recovery will eventually run on another server. *)

(* --- namespace operations --------------------------------------------- *)

val create : t -> dir:int -> string -> int
(** Create a regular file; returns its inum. *)

val mkdir : t -> dir:int -> string -> int
val symlink : t -> dir:int -> string -> target:string -> int

val lookup : t -> dir:int -> string -> int
(** Raises [Enoent] if absent. ["."] resolves to [dir] itself. *)

val readdir : t -> int -> (string * int) list
val readlink : t -> int -> string

val link : t -> dir:int -> string -> inum:int -> unit
(** Hard-link a regular file or symlink under a new name. *)

val unlink : t -> dir:int -> string -> unit
(** Remove a file or symlink entry; frees the inode and blocks when
    the last link goes. *)

val rmdir : t -> dir:int -> string -> unit

val rename : t -> sdir:int -> string -> ddir:int -> string -> unit
(** Atomic rename, overwriting a compatible destination if present.
    Uses the two-phase sorted-lock protocol of §5. Cycle prevention
    for directory renames is the caller's (path layer's) concern. *)

(* --- file I/O ----------------------------------------------------------- *)

val read : t -> int -> off:int -> len:int -> bytes
(** Read up to [len] bytes at [off] (clamped at end-of-file). Updates
    the approximate atime; triggers read-ahead if configured. *)

val write : t -> int -> off:int -> bytes -> unit
val truncate : t -> int -> size:int -> unit
val stat : t -> int -> stats

val fsync : t -> int -> unit
(** Force the log and the file's dirty data to Petal (§2.1). *)

val sync : t -> unit
(** The 30-second update demon's work: log first, then all dirty
    blocks. *)

(* --- introspection ------------------------------------------------------ *)

val host : t -> Cluster.Host.t
val log_slot : t -> int
val cache_stats : t -> int * int

val wal_stats : t -> Wal.wal_stats
(** This server's log-flush pipeline counters (groups, overlaps,
    log-pressure stalls, reclaim rounds) — the bench's wal section. *)

val petal_stats : t -> Petal.Client.stats
(** This server's Petal driver counters (op counts, simulated time,
    read piece/coalesce accounting) — lets tests assert a cold
    sequential read costs O(chunks) RPCs, and the bench report
    round trips saved. *)

val net_stats : t -> Cluster.Rpc.stats
(** The machine's RPC endpoint counters (attempts, timeouts, retries,
    duplicate suppressions) — the bench prints the per-workload
    delta. *)

val lease_stats : t -> Locksvc.Clerk.stats
(** Lease-renewal counters from this mount's lock clerk. *)

val is_poisoned : t -> bool

type recovery_stats = {
  replays : int;  (** recovery replays started on this server *)
  diffs_applied : int;
  diffs_skipped : int;  (** version check said already on disk *)
  torn_tails : int;  (** replays whose log ended in a torn record *)
}

val recovery_stats : t -> recovery_stats
(** Counters from this server's recovery demon (replays of other
    servers' logs it has performed). *)

val drop_caches : t -> unit
(** Evict all clean cached blocks (used by the uncached-read
    experiments, Figure 6). *)

(** {2 Fault injection}

    These deliberately violate invariants to give {!Fsck} something
    to find; never call them for real work. *)

val unlink_entry_only_for_test : t -> dir:int -> string -> unit
(** Remove a directory entry {e without} freeing its target: creates
    an orphan inode. *)

val corrupt_nlink_for_test : t -> int -> int -> unit
(** Overwrite an inode's link count. *)
