(** Wire protocol and shared definitions of the distributed lock
    service (paper §6, the third — fully distributed — design).

    Locks live in tables named by ASCII strings (one table per file
    system) and are named by integers within a table. Locks are
    partitioned into {!ngroups} lock groups; group [g] is served by
    the [g mod n]-th of the [n] live lock servers, a deterministic
    rule every party derives from the Paxos-replicated server list.

    Clerks and lock servers communicate through asynchronous
    [request] / [grant] / [revoke] / [release] messages, as in the
    paper; opens and membership changes go through Paxos. *)

open Cluster

type mode = R | W

let mode_geq a b = match (a, b) with W, _ -> true | R, R -> true | R, W -> false
let compatible a b = a = R && b = R

let default_ngroups = 100

(* Timing constants (paper values). *)
let lease_period = Simkit.Sim.sec 30.0
let renew_interval = Simkit.Sim.sec 10.0
let lease_margin = Simkit.Sim.sec 15.0
let idle_discard = Simkit.Sim.sec 3600.0 (* sticky locks dropped after 1 h idle *)

(** Replicated global state commands: the "small amount of global
    state information that does not change often" (§6). *)
type cmd =
  | Add_clerk of { table : string; addr : Net.addr }
  | Remove_clerk of { table : string; lease : int }
  | Add_server of { addr : Net.addr }
  | Remove_server of { addr : Net.addr }

type Net.payload +=
  (* clerk <-> server RPCs *)
  | L_open of { table : string }
  | L_opened of { lease : int; servers : Net.addr list; ngroups : int }
  | L_close of { table : string; lease : int }
  | L_closed
  | L_renew of { lease : int }
  | L_renewed
  | L_sync
  | L_synced of { servers : Net.addr list; ngroups : int }
  (* asynchronous lock traffic *)
  | L_request of {
      table : string;
      lease : int;
      lock : int;
      mode : mode;
      for_recovery : bool;
    }
  | L_grant of { table : string; lock : int; mode : mode }
  | L_revoke of { table : string; lock : int; to_mode : mode option }
      (** [to_mode = Some R]: downgrade; [None]: release. *)
  | L_release of { table : string; lease : int; lock : int; to_mode : mode option }
  (* failure handling *)
  | L_do_recovery of { table : string; dead_lease : int }
  | L_recovered of { table : string; dead_lease : int }
  | L_get_state of { table : string; group : int }
  | L_state of { held : (string * int * mode) list }
  | S_heartbeat
  | S_renew_note of { lease : int }
      (** server -> server: a renewal landed here; refresh your copy
          of the lease clock. One lock server partitioned from a
          clerk must not declare the lease dead while the clerk is
          still renewing through its peers — the lock service is one
          logical service (§6), however many machines implement it. *)
  | L_err of string

let msg = 64 (* nominal size of the small lock-protocol messages *)

let group_of ~ngroups ~table ~lock = Hashtbl.hash (table, lock) mod ngroups

let owner_of ~servers ~ngroups ~table ~lock =
  match servers with
  | [] -> None
  | _ ->
    let g = group_of ~ngroups ~table ~lock in
    Some (List.nth servers (g mod List.length servers))

exception Lease_expired
(** Raised by clerk operations after the clerk's lease has lapsed
    (network partition from the lock service); the file system must
    be unmounted to clear the condition (paper §6). *)
