open Simkit
open Cluster
open Types
module P = Paxos_group.P

type pending = { please : int; pmode : mode; pclerk : Net.addr; precovery : bool }

type lockst = {
  mutable holders : (int * mode) list; (* lease, mode *)
  queue : pending Queue.t;
  mutable last_revoke : Sim.time;
}

type lease_rec = {
  laddr : Net.addr;
  ltable : string;
  mutable last_renew : Sim.time;
  mutable dead : bool;
}

type t = {
  host : Host.t;
  rpc : Rpc.t;
  index : int;
  ngroups : int;
  mutable paxos : P.t option;
  (* Replicated state (identical on every server: pure function of the
     applied command prefix plus the static initial configuration). *)
  mutable servers : Net.addr list;
  mutable clerks : (string * Net.addr * int) list; (* table, addr, lease *)
  mutable next_lease : int;
  slot_lease : (int, int) Hashtbl.t;
  (* Soft state. *)
  leases : (int, lease_rec) Hashtbl.t;
  locks : (string * int, lockst) Hashtbl.t; (* owned groups only *)
  ready : (int, unit) Hashtbl.t; (* groups this server may serve *)
  hb : (Net.addr, Sim.time) Hashtbl.t;
  recovering : (int, unit) Hashtbl.t; (* dead leases with recovery in flight *)
}

let host t = t.host
let my_addr t = Rpc.addr t.rpc
let paxos t = match t.paxos with Some p -> p | None -> assert false

let group t ~table ~lock = group_of ~ngroups:t.ngroups ~table ~lock

let is_owner t g =
  match t.servers with
  | [] -> false
  | servers -> List.nth servers (g mod List.length servers) = my_addr t

let lease_alive t lease =
  match Hashtbl.find_opt t.leases lease with
  | Some l -> not l.dead
  | None -> false

let lease_count t =
  Hashtbl.fold (fun _ l acc -> if l.dead then acc else acc + 1) t.leases 0

let held_locks t =
  Hashtbl.fold
    (fun (table, lock) l acc ->
      List.fold_left
        (fun acc (lease, m) -> (table, lock, m, lease) :: acc)
        acc l.holders)
    t.locks []

let lockst t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
    let l = { holders = []; queue = Queue.create (); last_revoke = 0 } in
    Hashtbl.replace t.locks key l;
    l

let send_clerk t dst m = Rpc.oneway t.rpc ~dst ~size:msg m

(* --- grant/revoke engine ---------------------------------------------- *)

let grantable t l p =
  let live_conflict =
    List.exists
      (fun (lease, m) ->
        lease <> p.please && (p.pmode = W || m = W))
      l.holders
  in
  let dead_holder =
    List.exists (fun (lease, _) -> not (lease_alive t lease)) l.holders
  in
  if p.precovery then
    (* A recovery demon may seize a dead server's lock. *)
    not
      (List.exists
         (fun (lease, m) ->
           lease_alive t lease && lease <> p.please && (p.pmode = W || m = W))
         l.holders)
  else (not live_conflict) && not dead_holder

let do_grant t ~table ~lock l p =
  if p.precovery then
    l.holders <- List.filter (fun (lease, _) -> lease_alive t lease) l.holders;
  (* Idempotent for retried requests. *)
  l.holders <- (p.please, p.pmode) :: List.remove_assoc p.please l.holders;
  send_clerk t p.pclerk (L_grant { table; lock; mode = p.pmode })

let pump t ~table ~lock =
  let g = group t ~table ~lock in
  if is_owner t g && Hashtbl.mem t.ready g then begin
    let l = lockst t (table, lock) in
    let rec grant_prefix () =
      match Queue.peek_opt l.queue with
      | Some p when not (lease_alive t p.please) ->
        ignore (Queue.pop l.queue);
        grant_prefix ()
      | Some p when grantable t l p ->
        ignore (Queue.pop l.queue);
        do_grant t ~table ~lock l p;
        grant_prefix ()
      | Some _ | None -> ()
    in
    grant_prefix ();
    (* Conflict remains: ask the offending holders to give way. *)
    match Queue.peek_opt l.queue with
    | None -> ()
    | Some p ->
      if Sim.now () - l.last_revoke >= Sim.sec 2.0 || l.last_revoke = 0 then begin
        l.last_revoke <- Sim.now ();
        let to_mode = if p.pmode = R then Some R else None in
        List.iter
          (fun (lease, m) ->
            if lease_alive t lease && (p.pmode = W || m = W) then
              match Hashtbl.find_opt t.leases lease with
              | Some lr -> send_clerk t lr.laddr (L_revoke { table; lock; to_mode })
              | None -> ())
          l.holders
      end
  end

let pump_all t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.locks [] in
  List.iter (fun (table, lock) -> pump t ~table ~lock) keys

(* --- group reassignment (paper: two-phase lock reassignment) --------- *)

let recover_group t g =
  (* Phase 2: rebuild holder state for a newly gained group from the
     clerks that have the relevant tables open. *)
  let clerk_addrs = List.sort_uniq compare (List.map (fun (_, a, _) -> a) t.clerks) in
  List.iter
    (fun addr ->
      match
        Rpc.call t.rpc ~dst:addr ~timeout:(Sim.ms 500) ~size:msg
          (L_get_state { table = ""; group = g })
      with
      | Ok (L_state { held }) ->
        List.iter
          (fun (table, lock, m) ->
            match
              List.find_opt (fun (tb, a, _) -> tb = table && a = addr) t.clerks
            with
            | Some (_, _, lease) ->
              let l = lockst t (table, lock) in
              l.holders <- (lease, m) :: List.remove_assoc lease l.holders
            | None -> ())
          held
      | Ok _ | Error `Timeout -> ()
      | exception Host.Crashed _ -> ())
    clerk_addrs;
  Hashtbl.replace t.ready g ();
  pump_all t

let recompute_ownership t old_servers =
  for g = 0 to t.ngroups - 1 do
    let owner srv =
      match srv with
      | [] -> None
      | l -> Some (List.nth l (g mod List.length l))
    in
    let before = owner old_servers = Some (my_addr t) in
    let after = owner t.servers = Some (my_addr t) in
    if before && not after then begin
      (* Phase 1: discard state for groups we lost. *)
      Hashtbl.remove t.ready g;
      let doomed =
        Hashtbl.fold
          (fun (table, lock) _ acc ->
            if group t ~table ~lock = g then (table, lock) :: acc else acc)
          t.locks []
      in
      List.iter (fun k -> Hashtbl.remove t.locks k) doomed
    end
    else if after && not before then begin
      Hashtbl.remove t.ready g;
      Sim.spawn (fun () -> recover_group t g)
    end
  done

(* --- replicated-state application -------------------------------------- *)

let apply t slot cmd =
  match cmd with
  | Add_clerk { table; addr } ->
    let lease = t.next_lease in
    t.next_lease <- t.next_lease + 1;
    t.clerks <- t.clerks @ [ (table, addr, lease) ];
    Hashtbl.replace t.leases lease
      { laddr = addr; ltable = table; last_renew = Sim.now (); dead = false };
    Hashtbl.replace t.slot_lease slot lease
  | Remove_clerk { table; lease } ->
    t.clerks <- List.filter (fun (tb, _, le) -> not (tb = table && le = lease)) t.clerks;
    Hashtbl.remove t.leases lease;
    Hashtbl.remove t.recovering lease;
    (* Locks held by the removed lease are now free. *)
    Hashtbl.iter
      (fun _ l -> l.holders <- List.filter (fun (le, _) -> le <> lease) l.holders)
      t.locks;
    pump_all t
  | Add_server { addr } ->
    if not (List.mem addr t.servers) then begin
      let old = t.servers in
      t.servers <- t.servers @ [ addr ];
      (* If WE are the one rejoining, our soft lease clocks are stale:
         we were deaf to renewals and gossip while out. Restart every
         clock rather than let an old opinion kill a live lease — a
         genuinely dead one simply re-expires a lease period later. *)
      if addr = my_addr t then
        Hashtbl.iter
          (fun _ lr ->
            lr.last_renew <- Sim.now ();
            lr.dead <- false)
          t.leases;
      recompute_ownership t old
    end
  | Remove_server { addr } ->
    (* Never empty the membership: a partition leaves BOTH sides with
       queued removal proposals, and after heal the stale ones commit
       too. With one server left there is nobody to heartbeat, so the
       rejoin path could never recover from zero. The floor is a
       deterministic function of replicated state, so every replica
       refuses the same command. *)
    if List.mem addr t.servers && List.length t.servers > 1 then begin
      let old = t.servers in
      t.servers <- List.filter (fun a -> a <> addr) t.servers;
      recompute_ownership t old
    end

(* --- lease expiry and Frangipani-server recovery ----------------------- *)

let initiate_recovery t lease =
  let rec nag () =
    match Hashtbl.find_opt t.leases lease with
    | Some lr when lr.dead ->
      (* Ask a live clerk with the same table open to run recovery. *)
      let target =
        List.find_opt
          (fun (tb, _, le) -> tb = lr.ltable && le <> lease && lease_alive t le)
          t.clerks
      in
      (match target with
      | Some (_, addr, _) ->
        send_clerk t addr (L_do_recovery { table = lr.ltable; dead_lease = lease })
      | None -> ());
      Sim.sleep (Sim.sec 10.0);
      nag ()
    | Some _ | None -> ()
  in
  nag ()

let expiry_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.sec 5.0);
    (* Only a current member may pass judgement: a server voted out
       during a partition stops hearing renewals and gossip, so its
       clocks say nothing about the clerk's health. *)
    if Host.is_alive t.host && List.mem (my_addr t) t.servers then begin
      Hashtbl.iter
        (fun lease lr ->
          if (not lr.dead) && Sim.now () - lr.last_renew > lease_period then begin
            Logs.info (fun m ->
                m "%s: lease %d expired, initiating recovery" (Host.name t.host) lease);
            lr.dead <- true;
            (* Its locks stop being grantable until recovery completes;
               nag a live clerk to run recovery. *)
            Sim.spawn (fun () -> initiate_recovery t lease);
            pump_all t
          end)
        t.leases
    end;
    loop ()
  in
  loop ()

(* --- lock-server heartbeats & membership -------------------------------- *)

let propose_remove_server t addr =
  if List.mem addr t.servers then ignore (P.propose (paxos t) (Remove_server { addr }))

let propose_add_server t addr =
  if not (List.mem addr t.servers) then ignore (P.propose (paxos t) (Add_server { addr }))

let heartbeat_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.sec 2.0);
    if Host.is_alive t.host then begin
      List.iter
        (fun a -> if a <> my_addr t then Rpc.oneway t.rpc ~dst:a ~size:16 S_heartbeat)
        t.servers;
      List.iter
        (fun a ->
          if a <> my_addr t then
            match Hashtbl.find_opt t.hb a with
            | None -> Hashtbl.replace t.hb a (Sim.now ())
            | Some last ->
              if Sim.now () - last > Sim.sec 10.0 then begin
                Logs.info (fun m ->
                    m "%s: lock server %d silent, proposing removal"
                      (Host.name t.host) a);
                Hashtbl.remove t.hb a;
                Sim.spawn (fun () -> try propose_remove_server t a with Host.Crashed _ -> ())
              end)
        t.servers
    end;
    loop ()
  in
  loop ()

(* --- message handling --------------------------------------------------- *)

let handle_request t ~table ~lease ~lock ~mode ~for_recovery =
  if lease_alive t lease || for_recovery then begin
    let g = group t ~table ~lock in
    if is_owner t g then begin
      let l = lockst t (table, lock) in
      (* Retried request for a lock already held: re-grant. *)
      match List.assoc_opt lease l.holders with
      | Some m when mode_geq m mode ->
        (match Hashtbl.find_opt t.leases lease with
        | Some lr -> send_clerk t lr.laddr (L_grant { table; lock; mode = m })
        | None -> ())
      | Some _ | None ->
        let already =
          Queue.fold
            (fun acc p -> acc || (p.please = lease && p.pmode = mode))
            false l.queue
        in
        if not already then begin
          let pclerk =
            match Hashtbl.find_opt t.leases lease with
            | Some lr -> lr.laddr
            | None -> -1
          in
          if pclerk >= 0 then
            Queue.push
              { please = lease; pmode = mode; pclerk; precovery = for_recovery }
              l.queue
        end;
        pump t ~table ~lock
    end
  end

let handle_release t ~table ~lease ~lock ~to_mode =
  match Hashtbl.find_opt t.locks (table, lock) with
  | None -> ()
  | Some l ->
    (match to_mode with
    | None -> l.holders <- List.filter (fun (le, _) -> le <> lease) l.holders
    | Some m ->
      l.holders <-
        List.map (fun (le, hm) -> if le = lease then (le, m) else (le, hm)) l.holders);
    l.last_revoke <- 0;
    pump t ~table ~lock

let handle_recovered t ~table ~dead_lease =
  match Hashtbl.find_opt t.leases dead_lease with
  | Some lr when lr.dead ->
    if not (Hashtbl.mem t.recovering dead_lease) then begin
      Hashtbl.replace t.recovering dead_lease ();
      Sim.spawn (fun () ->
          try ignore (P.propose (paxos t) (Remove_clerk { table; lease = dead_lease }))
          with Host.Crashed _ -> ())
    end
  | Some _ | None -> ()

let rpc_handler t ~src body =
  match body with
  | L_open { table } ->
    let slot = P.propose (paxos t) (Add_clerk { table; addr = src }) in
    while P.applied_up_to (paxos t) <= slot do
      Sim.sleep (Sim.ms 1)
    done;
    let lease = Hashtbl.find t.slot_lease slot in
    Some (L_opened { lease; servers = t.servers; ngroups = t.ngroups }, msg)
  | L_close { table; lease } ->
    Sim.spawn (fun () ->
        try ignore (P.propose (paxos t) (Remove_clerk { table; lease }))
        with Host.Crashed _ -> ());
    Some (L_closed, msg)
  | L_renew { lease } -> (
    match Hashtbl.find_opt t.leases lease with
    | Some lr when not lr.dead ->
      lr.last_renew <- Sim.now ();
      (* Tell the peer servers: each keeps its own lease clock, and a
         peer the clerk cannot reach right now must not expire a
         lease the service as a whole is still renewing. *)
      List.iter
        (fun a ->
          if a <> my_addr t then
            Rpc.oneway t.rpc ~dst:a ~size:16 (S_renew_note { lease }))
        t.servers;
      Some (L_renewed, 16)
    | Some _ | None -> Some (L_err "unknown lease", msg))
  | L_sync -> Some (L_synced { servers = t.servers; ngroups = t.ngroups }, msg)
  | _ -> None

let oneway_handler t ~src body =
  match body with
  | L_request { table; lease; lock; mode; for_recovery } ->
    handle_request t ~table ~lease ~lock ~mode ~for_recovery
  | L_release { table; lease; lock; to_mode } ->
    handle_release t ~table ~lease ~lock ~to_mode
  | L_recovered { table; dead_lease } -> handle_recovered t ~table ~dead_lease
  | S_heartbeat ->
    Hashtbl.replace t.hb src (Sim.now ());
    (* A peer we removed during a partition is audibly alive again:
       bring it back. (Without this, stale removals — including the
       minority side's own queued proposals committing after heal —
       would only ever shrink the membership.) *)
    if not (List.mem src t.servers) then
      Sim.spawn (fun () -> try propose_add_server t src with Host.Crashed _ -> ())
  | S_renew_note { lease } -> (
    match Hashtbl.find_opt t.leases lease with
    | Some lr when not lr.dead -> lr.last_renew <- Sim.now ()
    | Some _ | None -> ())
  | _ -> ()

(* Re-sent revokes and deferred grants need a periodic nudge in case
   messages were lost. *)
let pump_daemon t () =
  let rec loop () =
    Sim.sleep (Sim.sec 2.0);
    if Host.is_alive t.host then pump_all t;
    loop ()
  in
  loop ()

let create ~host ~rpc ~peers ~index ?(ngroups = default_ngroups) ~stable () =
  let t =
    {
      host;
      rpc;
      index;
      ngroups;
      paxos = None;
      servers = Array.to_list peers;
      clerks = [];
      next_lease = 1;
      slot_lease = Hashtbl.create 32;
      leases = Hashtbl.create 32;
      locks = Hashtbl.create 1024;
      ready = Hashtbl.create 64;
      hb = Hashtbl.create 8;
      recovering = Hashtbl.create 8;
    }
  in
  t.paxos <-
    Some
      (P.create ~rpc ~group:0x10c2 ~peers:(Array.to_list peers) ~id:index ~stable
         ~apply:(fun slot cmd -> apply t slot cmd));
  (* Initially-owned groups have no prior state to recover. *)
  for g = 0 to ngroups - 1 do
    if is_owner t g then Hashtbl.replace t.ready g ()
  done;
  Rpc.add_handler rpc (rpc_handler t);
  Rpc.on_oneway rpc (oneway_handler t);
  Sim.spawn ~name:"locksvc.expiry" (expiry_daemon t);
  Sim.spawn ~name:"locksvc.heartbeat" (heartbeat_daemon t);
  Sim.spawn ~name:"locksvc.pump" (pump_daemon t);
  t
