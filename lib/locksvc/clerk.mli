(** The clerk module linked into each Frangipani server (paper §6).

    The clerk caches ("sticky") locks granted by the lock service,
    shares them among local users with reader/writer counting, sends
    [request]/[release] messages, and reacts to [grant]/[revoke].
    Before complying with a revoke it invokes the file system's
    callback so dirty data covered by the lock reaches Petal first.

    It also renews the 30-second lease, detects its own lease expiry
    (after which every operation raises {!Types.Lease_expired}), and
    relays the lock service's request to run recovery for a crashed
    peer. *)

type t

val create :
  rpc:Cluster.Rpc.t ->
  servers:Cluster.Net.addr array ->
  table:string ->
  unit ->
  t
(** Open the lock table: obtains a lease and starts the housekeeping
    daemon. Blocks until some lock server answers. *)

val lease : t -> int
(** The lease identifier (a Frangipani server derives its private log
    position from it, paper §7). *)

val table : t -> string

val set_callbacks :
  ?on_contended:(lock:int -> unit) ->
  t ->
  on_revoke:(lock:int -> to_read:bool -> unit) ->
  on_do_recovery:(dead_lease:int -> unit) ->
  on_expired:(unit -> unit) ->
  unit
(** [on_revoke ~lock ~to_read] must write back dirty data covered by
    [lock] and, unless [to_read] (a downgrade), invalidate cached
    data. [on_do_recovery dead] must replay the dead server's log.
    [on_expired] is invoked once if the lease lapses. [on_contended
    ~lock] fires when a revoke arrives but cannot start because local
    users still hold the lock — the FS layer uses it to shed
    discretionary holds (cancel speculative read-ahead) so a remote
    waiter is not serialised behind a prefetch. *)

val acquire : t -> lock:int -> Types.mode -> unit
(** Block until the lock is held in (at least) the given mode for
    this caller. Local users queue FIFO; the global lock is fetched
    from the lock service when the cached one is insufficient. *)

val release : t -> lock:int -> Types.mode -> unit
(** End a local use. The global lock stays cached (sticky) until
    revoked or idle for {!Types.idle_discard}. *)

val acquire_for_recovery : t -> lock:int -> unit
(** Seize a dead server's (exclusively held) lock — used by the
    recovery demon to take ownership of the victim's log. *)

val holds : t -> lock:int -> Types.mode option
(** The cached global mode, for tests and assertions. *)

val lease_valid_until : t -> Simkit.Sim.time

val check_lease_margin : t -> bool
(** The §6 hazard check: true iff the lease will still be valid for
    {!Types.lease_margin} — a Frangipani server calls this before
    every write to Petal. *)

val is_expired : t -> bool

type stats = {
  renew_rounds : int;  (** renewal rounds attempted (incl. backoff retries) *)
  renew_misses : int;  (** rounds in which no lock server answered *)
}

val stats : t -> stats
(** Lease-renewal counters: a missed round triggers an early retry on
    a 1→8 s exponential backoff rather than waiting out the full
    renew interval, so [renew_misses] counts brushes with the §6
    expiry path. *)

val close : t -> unit
(** Release all cached locks and close the table (clean shutdown).
    The caller must have flushed dirty data first. *)
