open Simkit
open Cluster
open Types

type lstate = {
  lid : int;
  mutable global : mode option;
  mutable wanted : mode option;
  mutable requested_at : Sim.time;
  mutable readers : int;
  mutable writer : bool;
  waiting : (mode * (unit -> unit)) Queue.t;
  mutable revoke_to : mode option option; (* Some to_mode = revoke pending *)
  mutable revoking : bool;
  mutable recovery : bool; (* outstanding request is a recovery seizure *)
  mutable last_used : Sim.time;
}

type t = {
  rpc : Rpc.t;
  host : Host.t;
  ctable : string;
  clease : int;
  mutable servers : Net.addr list;
  ngroups : int;
  locks : (int, lstate) Hashtbl.t;
  mutable on_revoke : lock:int -> to_read:bool -> unit;
  mutable on_do_recovery : dead_lease:int -> unit;
  mutable on_expired : unit -> unit;
  mutable on_contended : lock:int -> unit;
  mutable expired : bool;
  mutable valid_until : Sim.time;
  mutable closed : bool;
  recoveries : (int, unit) Hashtbl.t;
  mutable s_renew_rounds : int;
  mutable s_renew_misses : int;
}

type stats = { renew_rounds : int; renew_misses : int }

let stats t = { renew_rounds = t.s_renew_rounds; renew_misses = t.s_renew_misses }

let lease t = t.clease
let table t = t.ctable
let is_expired t = t.expired
let lease_valid_until t = t.valid_until

let check_lease_margin t =
  (not t.expired) && Sim.now () + lease_margin <= t.valid_until

let set_callbacks ?on_contended t ~on_revoke ~on_do_recovery ~on_expired =
  t.on_revoke <- on_revoke;
  t.on_do_recovery <- on_do_recovery;
  t.on_expired <- on_expired;
  match on_contended with Some f -> t.on_contended <- f | None -> ()

let lstate t lid =
  match Hashtbl.find_opt t.locks lid with
  | Some st -> st
  | None ->
    let st =
      {
        lid;
        global = None;
        wanted = None;
        requested_at = 0;
        readers = 0;
        writer = false;
        waiting = Queue.create ();
        revoke_to = None;
        revoking = false;
        recovery = false;
        last_used = Sim.now ();
      }
    in
    Hashtbl.replace t.locks lid st;
    st

let owner t lid = owner_of ~servers:t.servers ~ngroups:t.ngroups ~table:t.ctable ~lock:lid

(* Both sends are fire-and-forget and may run in helper processes
   that outlive a crash of this host (retransmit loops, revoke
   completions): a dead host simply sends nothing. *)
let send_request t st mode ~for_recovery =
  match owner t st.lid with
  | None -> ()
  | Some dst -> (
    st.wanted <- Some mode;
    st.requested_at <- Sim.now ();
    try
      Rpc.oneway t.rpc ~dst ~size:msg
        (L_request
           {
             table = t.ctable;
             lease = t.clease;
             lock = st.lid;
             mode;
             for_recovery = for_recovery || st.recovery;
           })
    with Host.Crashed _ -> ())

let send_release t st to_mode =
  match owner t st.lid with
  | None -> ()
  | Some dst -> (
    try
      Rpc.oneway t.rpc ~dst ~size:msg
        (L_release { table = t.ctable; lease = t.clease; lock = st.lid; to_mode })
    with Host.Crashed _ -> ())

(* Can a local user in [mode] start right now? *)
let admissible st mode =
  st.revoke_to = None
  && (not st.revoking)
  &&
  match (st.global, mode) with
  | Some W, W -> (not st.writer) && st.readers = 0
  | Some W, R | Some R, R -> not st.writer
  | Some R, W | None, _ -> false

(* Begin servicing a pending revoke once local users have drained
   enough: a downgrade to R waits only for the writer; a full release
   waits for everyone. *)
let rec try_start_revoke t st =
  match st.revoke_to with
  | Some to_mode
    when (not st.revoking)
         && (not st.writer)
         && (to_mode = Some R || st.readers = 0) ->
    st.revoking <- true;
    Sim.spawn (fun () ->
        (* Flush dirty data (and invalidate on release) before the
           lock changes hands — the coherence invariant of §5. A
           transiently failing flush (storage unreachable) is retried:
           the lock must NOT be released until the data is safe. *)
        let rec flush_retrying () =
          match t.on_revoke ~lock:st.lid ~to_read:(to_mode = Some R) with
          | () -> true
          | exception Host.Crashed _ -> false
          | exception _ ->
            Sim.sleep (Sim.sec 1.0);
            Host.is_alive t.host && flush_retrying ()
        in
        if flush_retrying () then begin
          send_release t st to_mode;
          st.global <- to_mode;
          st.revoking <- false;
          st.revoke_to <- None;
          pump t st
        end)
  | _ -> ()

and pump t st =
  let rec admit () =
    match Queue.peek_opt st.waiting with
    | Some (mode, _) when admissible st mode ->
      let _, k = Queue.pop st.waiting in
      (match mode with
      | R -> st.readers <- st.readers + 1
      | W -> st.writer <- true);
      st.last_used <- Sim.now ();
      k ();
      admit ()
    | Some (mode, _)
      when st.revoke_to = None && (not st.revoking)
           && not (match st.global with Some g -> mode_geq g mode | None -> false)
      -> (
      (* The cached lock is insufficient. *)
      match st.global with
      | Some R when mode = W && st.readers = 0 && not st.writer ->
        (* No upgrades in the protocol: voluntarily release the read
           lock (invalidating cache) and request the write lock. *)
        st.revoking <- true;
        Sim.spawn (fun () ->
            (try t.on_revoke ~lock:st.lid ~to_read:false with Host.Crashed _ -> ());
            send_release t st None;
            st.global <- None;
            st.revoking <- false;
            send_request t st W ~for_recovery:false)
      | Some _ -> ()
      | None -> (
        match st.wanted with
        | Some w when mode_geq w mode -> () (* request already outstanding *)
        | Some _ | None -> send_request t st mode ~for_recovery:false))
    | Some _ | None -> ()
  in
  admit ();
  try_start_revoke t st

let check_usable t = if t.expired || t.closed then raise Lease_expired

let acquire t ~lock mode =
  check_usable t;
  let st = lstate t lock in
  if Queue.is_empty st.waiting && admissible st mode then begin
    (match mode with
    | R -> st.readers <- st.readers + 1
    | W -> st.writer <- true);
    st.last_used <- Sim.now ()
  end
  else begin
    (* The pump (which may send lock-service messages) runs as its
       own process, after the waiter below is registered. *)
    Sim.spawn (fun () -> pump t st);
    Sim.suspend (fun resume -> Queue.push (mode, (fun () -> resume ())) st.waiting)
  end;
  check_usable t

let release t ~lock mode =
  (* After a crash the lock table was reset (the lease is dead and
     the holdings gone); a surviving process unwinding through its
     release must not re-create state for — or trip asserts on — a
     lock it no longer holds. *)
  if not t.closed then begin
    let st = lstate t lock in
    (match mode with
    | R ->
      assert (st.readers > 0);
      st.readers <- st.readers - 1
    | W ->
      assert st.writer;
      st.writer <- false);
    st.last_used <- Sim.now ();
    pump t st
  end

let acquire_for_recovery t ~lock =
  check_usable t;
  let st = lstate t lock in
  st.recovery <- true;
  Sim.spawn (fun () ->
      send_request t st W ~for_recovery:true;
      pump t st);
  Sim.suspend (fun resume -> Queue.push (W, (fun () -> resume ())) st.waiting);
  check_usable t

let holds t ~lock =
  match Hashtbl.find_opt t.locks lock with
  | Some st -> st.global
  | None -> None

(* --- incoming messages -------------------------------------------------- *)

let on_grant t ~lock mode =
  let st = lstate t lock in
  (match st.global with
  | Some g when mode_geq g mode -> ()
  | _ -> st.global <- Some mode);
  (match st.wanted with
  | Some w when mode_geq mode w ->
    st.wanted <- None;
    st.recovery <- false
  | _ -> ());
  pump t st

let on_revoke_msg t ~lock ~to_mode =
  match Hashtbl.find_opt t.locks lock with
  | None ->
    (* We hold nothing: tell the server so it can move on. *)
    let st = lstate t lock in
    send_release t st to_mode
  | Some st -> (
    match (st.global, to_mode) with
    | None, _ ->
      if st.wanted = None then send_release t st to_mode
    | Some R, Some R -> () (* already downgraded *)
    | Some _, _ ->
      (match (st.revoke_to, to_mode) with
      | Some (Some R), None -> st.revoke_to <- Some None (* strengthen *)
      | Some _, _ -> ()
      | None, _ -> st.revoke_to <- Some to_mode);
      try_start_revoke t st;
      (* Still blocked on local users: tell the FS layer, so it can
         shed discretionary holds (cancel speculative read-ahead)
         instead of making the remote waiter ride them out. *)
      if st.revoke_to <> None && not st.revoking then t.on_contended ~lock)

let on_do_recovery_msg t ~dead_lease =
  if not (Hashtbl.mem t.recoveries dead_lease) then begin
    Hashtbl.replace t.recoveries dead_lease ();
    Sim.spawn (fun () ->
        match t.on_do_recovery ~dead_lease with
        | () ->
          (* Only a completed replay is announced; the lock server
             then frees the dead server's locks and stops nagging.
             The callback may have crashed this very host and still
             returned (a test rigging `crash` as the callback), so
             the announce itself must tolerate a dead sender. *)
          (try
             List.iter
               (fun dst ->
                 Rpc.oneway t.rpc ~dst ~size:msg
                   (L_recovered { table = t.ctable; dead_lease }))
               t.servers
           with Host.Crashed _ -> ());
          Hashtbl.remove t.recoveries dead_lease
        | exception Host.Crashed _ -> ()
        | exception _ ->
          (* The replay aborted (our lease margin ran out, Petal
             unreachable): stay silent and forget it, so the lock
             server's nag re-issues the recovery here or elsewhere. *)
          Hashtbl.remove t.recoveries dead_lease)
  end

let expire t =
  if not t.expired then begin
    t.expired <- true;
    (* Discard all locks and cached data without writing anything:
       the data may no longer be ours to write (paper §6). Waiters
       are woken and observe Lease_expired. *)
    Hashtbl.iter
      (fun _ st ->
        st.global <- None;
        st.wanted <- None;
        st.revoke_to <- None;
        Queue.iter (fun (_, k) -> k ()) st.waiting;
        Queue.clear st.waiting)
      t.locks;
    (try t.on_expired () with Host.Crashed _ -> ())
  end

(* --- housekeeping: renewals, retries, idle discard, sync ---------------- *)

(* Every lock server tracks renewals independently, so the lease must
   be refreshed with all of them (in parallel — a crashed server's
   timeout must not delay the others past their expiry check). Each
   server gets a short retransmitting call, so one dropped datagram
   on a lossy link does not cost a whole renewal round. Returns
   whether any server acknowledged. *)
let renew_once t =
  let sent_at = Sim.now () in
  let ok = ref false and pending = ref (List.length t.servers) in
  let all = Sim.Ivar.create () in
  List.iter
    (fun dst ->
      Sim.spawn (fun () ->
          (match
             Rpc.call_retry t.rpc ~dst ~timeout:(Sim.ms 400) ~attempts:2
               ~backoff:(Sim.ms 50) ~size:16
               (L_renew { lease = t.clease })
           with
          | Ok L_renewed -> ok := true
          | Ok (L_err _) -> expire t
          | Ok _ | Error `Timeout -> ()
          | exception Host.Crashed _ -> ());
          decr pending;
          if !pending = 0 then Sim.Ivar.fill all ()))
    t.servers;
  Sim.Ivar.read all;
  if !ok then t.valid_until <- sent_at + lease_period;
  !ok

let sync_once t =
  match t.servers with
  | [] -> ()
  | servers -> (
    let dst = List.nth servers (Sim.random_int (List.length servers)) in
    match Rpc.call t.rpc ~dst ~timeout:(Sim.ms 300) ~size:16 L_sync with
    | Ok (L_synced { servers; ngroups = _ }) -> t.servers <- servers
    | Ok _ | Error `Timeout -> ())

let housekeeping t () =
  let next_renew = ref 0 and renew_backoff = ref 0 and last_sync = ref 0 in
  (* The host can crash at any instant — including while this demon
     is between its liveness check and an RPC; the raise just ends
     the demon. *)
  let rec loop () =
    Sim.sleep (Sim.sec 1.0);
    if (not t.closed) && Host.is_alive t.host then begin
      if not t.expired then begin
        (* Renew every [renew_interval] — but a missed round (no
           server answered) is retried early, on a 1→8 s exponential
           backoff, instead of idling out the full interval while the
           lease runs down (§6: the clerk must fight for its lease
           before taking the expiry path). *)
        if Sim.now () >= !next_renew then begin
          t.s_renew_rounds <- t.s_renew_rounds + 1;
          if renew_once t then begin
            renew_backoff := 0;
            next_renew := Sim.now () + renew_interval
          end
          else begin
            t.s_renew_misses <- t.s_renew_misses + 1;
            renew_backoff :=
              (if !renew_backoff = 0 then Sim.sec 1.0
               else min (2 * !renew_backoff) (Sim.sec 8.0));
            next_renew := Sim.now () + !renew_backoff
          end
        end;
        if (not t.expired) && Sim.now () > t.valid_until then expire t;
        if Sim.now () - !last_sync >= Sim.sec 2.0 then begin
          last_sync := Sim.now ();
          sync_once t
        end;
        (* Retransmit stale requests; drop long-idle sticky locks. *)
        Hashtbl.iter
          (fun _ st ->
            (match st.wanted with
            | Some w when Sim.now () - st.requested_at > Sim.sec 2.0 ->
              send_request t st w ~for_recovery:false
            | _ -> ());
            if
              st.global <> None && st.wanted = None && st.revoke_to = None
              && (not st.revoking) && st.readers = 0 && (not st.writer)
              && Queue.is_empty st.waiting
              && Sim.now () - st.last_used > idle_discard
            then begin
              st.revoking <- true;
              Sim.spawn (fun () ->
                  (try t.on_revoke ~lock:st.lid ~to_read:false
                   with Host.Crashed _ -> ());
                  send_release t st None;
                  st.global <- None;
                  st.revoking <- false)
            end)
          t.locks
      end;
      loop ()
    end
  in
  try loop () with Host.Crashed _ -> ()

(* All clerks sharing one RPC endpoint (one machine mounting several
   file systems, §3): the lock servers query lock state per machine,
   so a single handler must answer for every table. Keyed by address;
   an entry left over from a previous simulation run (stale endpoint
   object) is simply replaced. *)
let registry : (Net.addr, Rpc.t * t list ref) Hashtbl.t = Hashtbl.create 16

let register_clerk rpc t =
  let addr = Rpc.addr rpc in
  match Hashtbl.find_opt registry addr with
  | Some (r, clerks) when r == rpc ->
    clerks := t :: !clerks;
    false
  | Some _ | None ->
    Hashtbl.replace registry addr (rpc, ref [ t ]);
    true

let create ~rpc ~servers ~table:ctable () =
  let host = Rpc.host rpc in
  let server_list = Array.to_list servers in
  let rec open_loop i =
    if i >= Array.length servers then failwith "locksvc: no lock server reachable"
    else
      match
        Rpc.call rpc ~dst:servers.(i) ~timeout:(Sim.sec 2.0) ~size:msg
          (L_open { table = ctable })
      with
      | Ok (L_opened { lease; servers; ngroups }) -> (lease, servers, ngroups)
      | Ok _ | Error `Timeout -> open_loop (i + 1)
  in
  let clease, servers', ngroups = open_loop 0 in
  let t =
    {
      rpc;
      host;
      ctable;
      clease;
      servers = (if servers' = [] then server_list else servers');
      ngroups;
      locks = Hashtbl.create 256;
      on_revoke = (fun ~lock:_ ~to_read:_ -> ());
      on_do_recovery = (fun ~dead_lease:_ -> ());
      on_expired = (fun () -> ());
      on_contended = (fun ~lock:_ -> ());
      expired = false;
      valid_until = Sim.now () + lease_period;
      closed = false;
      recoveries = Hashtbl.create 4;
      s_renew_rounds = 0;
      s_renew_misses = 0;
    }
  in
  Rpc.on_oneway rpc (fun ~src:_ body ->
      match body with
      | L_grant { table; lock; mode } when table = ctable -> on_grant t ~lock mode
      | L_revoke { table; lock; to_mode } when table = ctable ->
        on_revoke_msg t ~lock ~to_mode
      | L_do_recovery { table; dead_lease } when table = ctable ->
        on_do_recovery_msg t ~dead_lease
      | _ -> ());
  (* The state-query handler answers for every clerk on this machine
     (one per mounted file system); installed only once per endpoint. *)
  if register_clerk rpc t then
    Rpc.add_handler rpc (fun ~src:_ body ->
        match body with
        | L_get_state { group; _ } ->
          let clerks =
            match Hashtbl.find_opt registry (Rpc.addr rpc) with
            | Some (r, clerks) when r == rpc -> !clerks
            | Some _ | None -> []
          in
          let held =
            List.concat_map
              (fun (c : t) ->
                Hashtbl.fold
                  (fun lid st acc ->
                    match st.global with
                    | Some m
                      when group_of ~ngroups:c.ngroups ~table:c.ctable ~lock:lid
                           = group ->
                      (c.ctable, lid, m) :: acc
                    | _ -> acc)
                  c.locks [])
              clerks
          in
          Some (L_state { held }, msg + (16 * List.length held))
        | _ -> None);
  (* A crash loses all volatile clerk state; a restarted host builds
     a fresh clerk (and gets a fresh lease), so the old one must not
     answer state queries with stale holdings. *)
  Host.on_crash host (fun () ->
      t.closed <- true;
      (* Processes parked in [acquire] would otherwise wait forever
         for a grant that died with the host: wake them so they
         observe [Lease_expired] from [check_usable] and unwind. *)
      Hashtbl.iter
        (fun _ st ->
          Queue.iter (fun (_, k) -> k ()) st.waiting;
          Queue.clear st.waiting)
        t.locks;
      Hashtbl.reset t.locks);
  Sim.spawn ~name:"clerk.housekeeping" (housekeeping t);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter
      (fun _ st ->
        if st.global <> None then begin
          send_release t st None;
          st.global <- None
        end)
      t.locks;
    (match
       Rpc.call t.rpc ~dst:(List.hd t.servers) ~timeout:(Sim.sec 1.0) ~size:msg
         (L_close { table = t.ctable; lease = t.clease })
     with
    | Ok _ | Error `Timeout -> ())
  end
