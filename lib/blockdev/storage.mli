(** Uniform byte-addressed storage interface.

    Petal servers and the AdvFS baseline are written against this
    record type so a raw disk and an NVRAM-fronted disk (the paper's
    "Raw" and "NVR" configurations) are interchangeable.

    {b Buffer ownership.} [write] never retains the caller's buffer
    (an implementation copies if it buffers). [write_own] transfers
    ownership: the implementation may alias the buffer indefinitely,
    so the caller must never mutate it afterwards — the contract the
    zero-copy data path (RPC payloads are immutable after send)
    relies on. [write_sub] writes the [\[boff, boff+len)] slice of a
    larger buffer the caller keeps; the implementation must not
    retain the slice without copying it. [read] returns a fresh
    buffer the caller owns outright. *)

type t = {
  sname : string;
  capacity : int;
  read : off:int -> len:int -> bytes;
  write : off:int -> bytes -> unit;
  write_own : off:int -> bytes -> unit;
      (** Like [write], but the buffer becomes the implementation's:
          the caller must not mutate it after the call. *)
  write_sub : off:int -> bytes -> boff:int -> len:int -> unit;
      (** Write a slice of a caller-owned buffer without an
          intermediate [Bytes.sub]. *)
  flush : unit -> unit;  (** Wait until all buffered writes are stable. *)
}

val of_disk : Disk.t -> t
