open Simkit

type state = {
  disk : Disk.t;
  capacity : int;
  write_latency : Sim.time;
  bytes_per_sec : int;
  table : (int, bytes) Hashtbl.t; (* pending writes, keyed by offset *)
  mutable used : int;
  space_freed : Sim.Condition.t;
  work : Sim.Condition.t;
  port : Sim.Resource.t; (* NVRAM bus: one transfer at a time *)
}

let overlaps ~off ~len (o, b) = o < off + len && off < o + Bytes.length b

(* Destage batches issued across all NVRAM instances (counting one
   per coalesced disk write), for the bench's counter report. *)
let destage_batch_count = ref 0
let destage_batches () = !destage_batch_count

(* The destager is an elevator: each sweep snapshots the pending
   table, sorts it by disk address and coalesces adjacent entries
   into one disk write per contiguous batch — one seek per batch
   instead of one per entry, and the disk sees a monotone address
   sequence within a sweep (SCAN order). Entries overwritten while
   their batch was in flight stay pending for the next sweep. *)
let destager st () =
  let rec loop () =
    if Hashtbl.length st.table = 0 then begin
      Sim.Condition.wait st.work;
      loop ()
    end
    else begin
      let entries =
        Hashtbl.fold (fun o b acc -> (o, b) :: acc) st.table []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let batches =
        List.fold_left
          (fun acc (o, b) ->
            match acc with
            | (start, stop, bufs) :: rest when stop = o ->
              (start, stop + Bytes.length b, b :: bufs) :: rest
            | _ -> (o, o + Bytes.length b, [ b ]) :: acc)
          [] entries
        |> List.rev_map (fun (start, _, bufs) -> (start, List.rev bufs))
      in
      List.iter
        (fun (start, bufs) ->
          Disk.write st.disk ~off:start (Bytes.concat Bytes.empty bufs);
          incr destage_batch_count;
          Faultpoint.hit "nvram.destage";
          (* Only drop entries that were not overwritten while the
             batch write was in flight. *)
          let pos = ref start in
          List.iter
            (fun b ->
              let o = !pos in
              pos := o + Bytes.length b;
              match Hashtbl.find_opt st.table o with
              | Some d when d == b ->
                Hashtbl.remove st.table o;
                st.used <- st.used - Bytes.length b;
                Sim.Condition.broadcast st.space_freed
              | Some _ | None -> ())
            bufs)
        batches;
      loop ()
    end
  in
  loop ()

let nvram_time st len =
  st.write_latency + int_of_float (float_of_int len /. float_of_int st.bytes_per_sec *. 1e9)

(* Ownership-transfer write: [data] is stored in the table without a
   copy, so the caller must never mutate it afterwards (the
   Storage.write_own contract). *)
let write_own st ~off data =
  let len = Bytes.length data in
  while st.used + len > st.capacity do
    Sim.Condition.wait st.space_freed
  done;
  Sim.Resource.use st.port (nvram_time st len);
  (match Hashtbl.find_opt st.table off with
  | Some old when Bytes.length old = len -> st.used <- st.used - len
  | Some old ->
    (* Different length at the same offset: flush the old entry to
       keep the table free of partial overlaps. *)
    Disk.write st.disk ~off old;
    st.used <- st.used - Bytes.length old;
    Hashtbl.remove st.table off
  | None -> ());
  Hashtbl.replace st.table off data;
  st.used <- st.used + len;
  Sim.Condition.broadcast st.work;
  Faultpoint.hit "nvram.write"

let write st ~off data = write_own st ~off (Bytes.copy data)

let write_sub st ~off data ~boff ~len =
  write_own st ~off (Bytes.sub data boff len)

let read st ~off ~len =
  (* Exact-offset hit serves straight from NVRAM; any partial overlap
     is destaged first so the disk holds the truth. *)
  match Hashtbl.find_opt st.table off with
  | Some data when Bytes.length data = len ->
    Sim.Resource.use st.port (nvram_time st len);
    Bytes.copy data
  | _ ->
    let pending =
      Hashtbl.fold
        (fun o b acc -> if overlaps ~off ~len (o, b) then (o, b) :: acc else acc)
        st.table []
    in
    List.iter
      (fun (o, b) ->
        Disk.write st.disk ~off:o b;
        (match Hashtbl.find_opt st.table o with
        | Some d when d == b ->
          Hashtbl.remove st.table o;
          st.used <- st.used - Bytes.length b;
          Sim.Condition.broadcast st.space_freed
        | Some _ | None -> ()))
      pending;
    Disk.read st.disk ~off ~len

let flush st () =
  while st.used > 0 do
    Sim.Condition.wait st.space_freed
  done

let wrap ?(capacity = 8 * 1024 * 1024) ?(write_latency = Sim.us 50)
    ?(bytes_per_sec = 200_000_000) disk =
  let st =
    {
      disk;
      capacity;
      write_latency;
      bytes_per_sec;
      table = Hashtbl.create 256;
      used = 0;
      space_freed = Sim.Condition.create ();
      work = Sim.Condition.create ();
      port = Sim.Resource.create (Disk.name disk ^ ".nvram");
    }
  in
  Sim.spawn ~name:(Disk.name disk ^ ".destager") (destager st);
  {
    Storage.sname = Disk.name disk ^ "+nvram";
    capacity = Disk.capacity disk;
    read = read st;
    write = write st;
    write_own = write_own st;
    write_sub = write_sub st;
    flush = flush st;
  }
