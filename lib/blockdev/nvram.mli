(** PrestoServe-style NVRAM write-back cache in front of a disk.

    Writes complete at NVRAM speed and are destaged to the disk by a
    background process; contents are non-volatile, so they survive a
    host crash (the paper treats NVRAM {e card} failure as a Petal
    server failure, which we model by failing the underlying disk).

    The default capacity is the 8 MB of the paper's PrestoServe
    cards; when the buffer is full, writers block until destaging
    frees space.

    Destaging is an elevator: each sweep sorts the pending entries by
    disk address and coalesces adjacent ones into a single disk write
    per contiguous batch, so a burst of scattered writes costs one
    seek per contiguous region instead of one per entry. *)

val destage_batches : unit -> int
(** Coalesced destage disk writes issued so far, across all NVRAM
    instances (a monotone counter for the bench report). *)

val wrap :
  ?capacity:int ->
  ?write_latency:Simkit.Sim.time ->
  ?bytes_per_sec:int ->
  Disk.t ->
  Storage.t
