open Simkit

exception Failed of string
exception Bad_sector of int

let sector_size = 512

(* Backing store granule: 64 KB slabs allocated on first touch, so a
   mostly-empty multi-gigabyte disk costs almost no host memory. *)
let slab_bytes = 65536

type t = {
  dname : string;
  capacity : int;
  avg_seek : Sim.time;
  xfer_bps : int;
  slabs : (int, bytes) Hashtbl.t;
  damaged : (int, unit) Hashtbl.t; (* sector number -> () *)
  arm : Sim.Resource.t;
  mutable pos : int; (* last byte offset touched, for the seek model *)
  mutable failed : bool;
}

let create ?(capacity = 4_300_000_000) ?(avg_seek = Sim.ms 9)
    ?(transfer_bytes_per_sec = 6_000_000) dname =
  {
    dname;
    capacity;
    avg_seek;
    xfer_bps = transfer_bytes_per_sec;
    slabs = Hashtbl.create 1024;
    damaged = Hashtbl.create 7;
    arm = Sim.Resource.create (dname ^ ".arm");
    pos = 0;
    failed = false;
  }

let name t = t.dname
let capacity t = t.capacity
let arm t = t.arm
let fail t = t.failed <- true
let heal t = t.failed <- false
let is_failed t = t.failed
let damage_sector t s = Hashtbl.replace t.damaged s ()

let check t ~off ~len =
  if t.failed then raise (Failed t.dname);
  if off < 0 || len < 0 || off + len > t.capacity then
    invalid_arg (Printf.sprintf "%s: I/O out of range (off=%d len=%d)" t.dname off len);
  if off mod sector_size <> 0 || len mod sector_size <> 0 then
    invalid_arg (Printf.sprintf "%s: unaligned I/O (off=%d len=%d)" t.dname off len)

(* Service time: seek proportional to arm travel plus media transfer.
   base + stroke/3 averages to [avg_seek] for uniformly random
   targets; sequential access pays only a settle time. *)
let service_time t ~off ~len =
  let seek =
    if off = t.pos then Sim.us 200
    else begin
      let dist = abs (off - t.pos) in
      let base = t.avg_seek / 3 in
      let stroke = 2 * t.avg_seek in
      base + int_of_float (float_of_int stroke *. float_of_int dist /. float_of_int t.capacity)
    end
  in
  let transfer = int_of_float (float_of_int len /. float_of_int t.xfer_bps *. 1e9) in
  seek + transfer

let slab_for t idx =
  match Hashtbl.find_opt t.slabs idx with
  | Some b -> b
  | None ->
    let b = Bytes.make slab_bytes '\000' in
    Hashtbl.replace t.slabs idx b;
    b

(* Copy the [boff, boff+len) range of [buf] to/from the slab store at
   disk offset [off]; [dir] [`In] = store -> buf, [`Out] = buf -> store. *)
let move t ~off buf ~boff ~len ~dir =
  let rec go doff boff left =
    if left > 0 then begin
      let idx = doff / slab_bytes in
      let within = doff mod slab_bytes in
      let n = min (slab_bytes - within) left in
      let slab = slab_for t idx in
      (match dir with
      | `In -> Bytes.blit slab within buf boff n
      | `Out -> Bytes.blit buf boff slab within n);
      go (doff + n) (boff + n) (left - n)
    end
  in
  go off boff len

let read t ~off ~len =
  check t ~off ~len;
  Sim.Resource.acquire t.arm;
  Sim.sleep (service_time t ~off ~len);
  t.pos <- off + len;
  Sim.Resource.release t.arm;
  if t.failed then raise (Failed t.dname);
  let s0 = off / sector_size and s1 = (off + len) / sector_size in
  Hashtbl.iter
    (fun s () -> if s >= s0 && s < s1 then raise (Bad_sector s))
    t.damaged;
  let buf = Bytes.create len in
  move t ~off buf ~boff:0 ~len ~dir:`In;
  buf

let write_sub t ~off data ~boff ~len =
  if boff < 0 || len < 0 || boff + len > Bytes.length data then
    invalid_arg (t.dname ^ ": write_sub slice out of range");
  check t ~off ~len;
  Sim.Resource.acquire t.arm;
  Sim.sleep (service_time t ~off ~len);
  t.pos <- off + len;
  Sim.Resource.release t.arm;
  if t.failed then raise (Failed t.dname);
  move t ~off data ~boff ~len ~dir:`Out;
  let s0 = off / sector_size and s1 = (off + len) / sector_size in
  for s = s0 to s1 - 1 do
    Hashtbl.remove t.damaged s
  done;
  Faultpoint.hit "disk.write"

let write t ~off data = write_sub t ~off data ~boff:0 ~len:(Bytes.length data)
