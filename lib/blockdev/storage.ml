type t = {
  sname : string;
  capacity : int;
  read : off:int -> len:int -> bytes;
  write : off:int -> bytes -> unit;
  write_own : off:int -> bytes -> unit;
  write_sub : off:int -> bytes -> boff:int -> len:int -> unit;
  flush : unit -> unit;
}

let of_disk d =
  {
    sname = Disk.name d;
    capacity = Disk.capacity d;
    read = (fun ~off ~len -> Disk.read d ~off ~len);
    write = (fun ~off data -> Disk.write d ~off data);
    (* The disk copies into its slab store either way, so ownership
       transfer is free here. *)
    write_own = (fun ~off data -> Disk.write d ~off data);
    write_sub = (fun ~off data ~boff ~len -> Disk.write_sub d ~off data ~boff ~len);
    flush = (fun () -> ());
  }
