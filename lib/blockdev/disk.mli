(** Simulated physical disk.

    Stores real bytes, sector-addressed, with a seek + rotation +
    transfer service-time model. Default timing parameters are
    calibrated to the DIGITAL RZ29 drives of the paper's testbed:
    9 ms average access, 6 MB/s sustained transfer, 4.3 GB capacity.

    A write of a single 512-byte sector is atomic — the failure
    assumption Frangipani's logging relies on (paper §4). Sectors can
    be artificially damaged to exercise CRC-error recovery paths. *)

type t

exception Failed of string
(** Raised by I/O on a disk that has suffered a hard failure. *)

exception Bad_sector of int
(** Raised when reading a damaged sector (models a CRC error);
    carries the sector number. *)

val sector_size : int
(** 512 bytes. *)

val create :
  ?capacity:int ->
  ?avg_seek:Simkit.Sim.time ->
  ?transfer_bytes_per_sec:int ->
  string ->
  t
(** [create name] builds a disk. [capacity] is in bytes (default
    4.3 GB), [avg_seek] the average positioning time (default 9 ms),
    [transfer_bytes_per_sec] the media rate (default 6 MB/s). *)

val name : t -> string
val capacity : t -> int

val read : t -> off:int -> len:int -> bytes
(** Blocking sector-aligned read; unwritten space reads as zeros. *)

val write : t -> off:int -> bytes -> unit
(** Blocking sector-aligned write. The disk copies the bytes into its
    backing store before returning; the caller keeps ownership. *)

val write_sub : t -> off:int -> bytes -> boff:int -> len:int -> unit
(** Write the [\[boff, boff+len)] slice of a larger buffer without
    materialising an intermediate copy. Same semantics as {!write}
    of [Bytes.sub data boff len]. *)

val arm : t -> Simkit.Sim.Resource.t
(** The disk-arm queueing resource, exposed for utilisation stats. *)

val fail : t -> unit
(** Hard-fail the disk: all subsequent I/O raises {!Failed}. *)

val heal : t -> unit

val damage_sector : t -> int -> unit
(** Mark one sector as returning CRC errors on read (until it is
    next overwritten). *)

val is_failed : t -> bool
