open Simkit

type payload = ..
type addr = int

type port = {
  paddr : addr;
  phost : Host.t;
  pnet : t;
  bandwidth : float;
  latency : Sim.time;
  cpu_ns_per_byte : int;
  cpu_ns_per_msg : int;
  tx : Sim.Resource.t;
  rx : Sim.Resource.t;
  inbox : (addr * payload) Sim.Mailbox.t;
}

and t = {
  mutable ports : port list;
  mutable next_addr : addr;
  mutable reachable : addr -> addr -> bool;
  mutable fault_cut : addr -> addr -> bool;
  mutable netem : (addr -> addr -> int -> fate) option;
}

and fate = Deliver | Lose | Delay of Sim.time

let create () =
  {
    ports = [];
    next_addr = 0;
    reachable = (fun _ _ -> true);
    fault_cut = (fun _ _ -> false);
    netem = None;
  }

let attach t ?(bandwidth_bits_per_sec = 155e6) ?(latency = Sim.us 120)
    ?(cpu_ns_per_byte = 2) ?(cpu_ns_per_msg = 30_000) phost =
  let paddr = t.next_addr in
  t.next_addr <- t.next_addr + 1;
  let p =
    {
      paddr;
      phost;
      pnet = t;
      bandwidth = bandwidth_bits_per_sec;
      latency;
      cpu_ns_per_byte;
      cpu_ns_per_msg;
      tx = Sim.Resource.create (Host.name phost ^ ".tx");
      rx = Sim.Resource.create (Host.name phost ^ ".rx");
      inbox = Sim.Mailbox.create ();
    }
  in
  t.ports <- p :: t.ports;
  p

let addr p = p.paddr
let host p = p.phost
let net p = p.pnet
let tx_link p = p.tx
let rx_link p = p.rx
let set_reachable t f = t.reachable <- f
let clear_partition t = t.reachable <- (fun _ _ -> true)
let set_fault_cut t f = t.fault_cut <- f
let clear_fault_cut t = t.fault_cut <- (fun _ _ -> false)
let set_netem t f = t.netem <- Some f
let clear_netem t = t.netem <- None
let addrs t = List.rev_map (fun p -> p.paddr) t.ports

let find_port t a = List.find_opt (fun p -> p.paddr = a) t.ports

let stack_cost p size = p.cpu_ns_per_msg + (p.cpu_ns_per_byte * size)

let transfer_time p size =
  int_of_float (float_of_int (size * 8) /. p.bandwidth *. 1e9)

(* The in-flight portion of a message is a chain of heap events, not
   a process: the tx and rx links are FIFO pipes ([Resource.reserve]),
   and latency/CPU segments are [Sim.at] callbacks. A cluster moving
   millions of messages allocates one event per hop instead of two
   fibers per message; timing and the delivery-instant fault semantics
   are unchanged from the process formulation. *)
let send p ~dst ~size m =
  Host.check p.phost;
  (* Protocol-stack CPU work is paid synchronously by the caller. *)
  Sim.Resource.use (Host.cpu p.phost) (stack_cost p size);
  let t = p.pnet in
  let src = p.paddr in
  let tx_done = Sim.Resource.reserve p.tx (transfer_time p size) in
  let deliver () =
    (* Partition semantics: both predicates are evaluated at the
       delivery instant, so a cut installed while a message is in
       flight retroactively drops it (see net.mli). *)
    if
      Host.is_alive p.phost
      && t.reachable src dst
      && not (t.fault_cut src dst)
    then
      match find_port t dst with
      | Some q when Host.is_alive q.phost ->
        (* Receive side: the message occupies the receiver's link,
           then its protocol-stack CPU cost is charged, before the
           message becomes visible. *)
        let rx_done = Sim.Resource.reserve q.rx (transfer_time q size) in
        Sim.at rx_done (fun () ->
            if Host.is_alive q.phost then begin
              let cpu = Host.cpu q.phost in
              Sim.Resource.acquire_cb cpu (fun () ->
                  Sim.at
                    (Sim.now () + stack_cost q size)
                    (fun () ->
                      Sim.Resource.release cpu;
                      if Host.is_alive q.phost then
                        Sim.Mailbox.send q.inbox (src, m)))
            end)
      | Some _ | None -> ()
  in
  Sim.at (tx_done + p.latency) (fun () ->
      (* Network-emulation hook (Netfault): consulted once per
         message, after the base propagation latency, so loss and
         added delay are sampled in a deterministic order. *)
      match t.netem with
      | None -> deliver ()
      | Some em -> (
        match em src dst size with
        | Deliver -> deliver ()
        | Lose -> ()
        | Delay d -> Sim.at (Sim.now () + d) deliver))

let recv p = Sim.Mailbox.recv p.inbox
