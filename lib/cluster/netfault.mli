(** Deterministic network nemesis over {!Net}: the fault layer the
    partition sweep (Workloads.Partsweep) drives.

    Three fault families compose:

    - {b Cuts} — directional link cuts installed via
      {!Net.set_fault_cut} and evaluated at the delivery instant, so
      installing a cut mid-flight drops messages already on the wire
      (the documented Net semantics). {!cut} with [~oneway:true]
      gives asymmetric faults; {!partition} and {!isolate} build the
      usual group splits.
    - {b Loss} — per-link drop probability, sampled once per message
      from a private PRNG seeded at {!create}; same seed, same
      schedule ⇒ bit-identical replay.
    - {b Delay} — fixed extra delay plus uniform jitter per matching
      message, from the same PRNG.

    All three leave {!Net.set_reachable} untouched, so tests that
    install their own reachability predicate compose with a nemesis.

    One nemesis per network: {!create} installs the Net hooks, a
    second [create] on the same net replaces the first. *)

type t

type stats = {
  cut_drops : int;  (** messages dropped by a cut at delivery time *)
  loss_drops : int;  (** messages dropped by sampled loss *)
  delayed : int;  (** messages given extra delay *)
  events : int;  (** schedule events applied so far *)
}

val create : ?seed:int -> Net.t -> t
(** Install the nemesis hooks on [net]. [seed] (default 42) fixes the
    loss/jitter PRNG independently of the simulation's own RNG. *)

(** {2 Cuts} *)

val cut : ?oneway:bool -> t -> Net.addr -> Net.addr -> unit
(** Cut the [a]↔[b] link (both directions unless [~oneway:true], in
    which case only [a]→[b] traffic is dropped). *)

val heal : t -> Net.addr -> Net.addr -> unit
(** Remove both directions of the [a]↔[b] cut. *)

val partition : t -> Net.addr list -> Net.addr list -> unit
(** Cut every cross link between the two groups, both directions. *)

val isolate : t -> Net.addr -> unit
(** Cut [a] off from every other attached address. *)

val heal_all : t -> unit

(** {2 Loss and delay shaping} *)

val shape :
  ?src:Net.addr ->
  ?dst:Net.addr ->
  ?drop:float ->
  ?delay:Simkit.Sim.time ->
  ?jitter:Simkit.Sim.time ->
  t ->
  unit
(** Push a shaping rule: messages matching [src]/[dst] (omitted =
    wildcard) are dropped with probability [drop], and otherwise
    delayed by [delay] plus uniform jitter in [0, jitter]. Most
    recent rule wins when several match. *)

val clear_shaping : t -> unit

val clear : t -> unit
(** [heal_all] + [clear_shaping]: the no-fault state. *)

(** {2 Scheduling} *)

val schedule : t -> (Simkit.Sim.time * (t -> unit)) list -> unit
(** Spawn a process that applies each [(at, action)] at time
    [now + at] (list must be sorted by [at]). Actions typically call
    {!cut}/{!partition}/{!shape}/{!clear}. *)

val stats : t -> stats
