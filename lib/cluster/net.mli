(** Cluster network: a single switch with a dedicated full-duplex
    point-to-point link per host, like the paper's 24-port ATM switch
    with 155 Mbit/s links.

    A message occupies the sender's transmit link for
    [bits / bandwidth] (so links saturate realistically — Figure 7
    depends on this), then arrives after the propagation latency.
    Delivery is dropped silently if either end is crashed or the pair
    is partitioned; reliability is the business of upper layers.

    {b Partition semantics for in-flight messages.} Reachability (and
    the {!set_fault_cut} predicate layered on it by
    [Cluster.Netfault]) is evaluated at the {e delivery} instant, not
    at send time: a cut installed while a message is crossing the
    switch retroactively drops it, and a cut healed before delivery
    lets a message sent during the partition through. This is the
    realistic choice — a physical link that dies mid-flight loses the
    frames already on the wire — and it is the documented, tested
    behaviour ([test_cluster], "partition installed mid-flight").

    Payloads are an extensible variant: each protocol adds its own
    constructors. *)

type payload = ..

type addr = int

type t
(** The switch. *)

type port
(** One host's network attachment. *)

val create : unit -> t

val attach :
  t ->
  ?bandwidth_bits_per_sec:float ->
  ?latency:Simkit.Sim.time ->
  ?cpu_ns_per_byte:int ->
  ?cpu_ns_per_msg:int ->
  Host.t ->
  port
(** Attach a host. Defaults: 155 Mbit/s, 120 µs switch latency, and a
    UDP/IP-stack CPU cost of 2 ns/byte + 30 µs/message charged to the
    host on both send and receive (calibrated to the paper's "16 MB/s
    at 4% CPU" raw Petal measurement). *)

val addr : port -> addr
val host : port -> Host.t
val net : port -> t

val send : port -> dst:addr -> size:int -> payload -> unit
(** Fire-and-forget datagram of [size] bytes. Charges CPU, queues on
    the TX link, delivers asynchronously. Raises [Host.Crashed] if
    the sending host is down. *)

val recv : port -> addr * payload
(** Block until a datagram arrives; returns the source address. *)

val tx_link : port -> Simkit.Sim.Resource.t
(** Transmit-link resource, for utilisation/saturation stats. *)

val rx_link : port -> Simkit.Sim.Resource.t
(** Receive-link resource; inbound messages occupy it for their
    transfer time, so a host's incoming bandwidth also saturates. *)

val set_reachable : t -> (addr -> addr -> bool) -> unit
(** Install a reachability predicate (network partitions). The
    default is full connectivity. Evaluated at the delivery instant
    (see the module comment). *)

val clear_partition : t -> unit

val addrs : t -> addr list
(** Addresses of every attached port, in attachment order. *)

(** {2 Fault-injection hooks}

    Two composable hooks used by [Cluster.Netfault]; both default to
    "no fault" and are independent of {!set_reachable}, so tests that
    install their own reachability predicate keep working under a
    nemesis layer. *)

val set_fault_cut : t -> (addr -> addr -> bool) -> unit
(** [set_fault_cut t cut]: a message from [src] to [dst] is dropped
    when [cut src dst] is true {e at the delivery instant}. The
    predicate is directional, so one-way (asymmetric) link faults are
    expressible. ANDed with {!set_reachable} (a message must be
    reachable and not cut). *)

val clear_fault_cut : t -> unit

type fate = Deliver | Lose | Delay of Simkit.Sim.time
(** What the network-emulation hook decides for one message. *)

val set_netem : t -> (addr -> addr -> int -> fate) -> unit
(** [set_netem t em]: [em src dst size] is consulted exactly once per
    message, after the base propagation latency and before the
    partition check, so a seeded nemesis samples loss/delay in a
    deterministic order. [Lose] drops the message; [Delay d] adds [d]
    to its in-flight time (cuts installed during the extra delay
    still apply). *)

val clear_netem : t -> unit
