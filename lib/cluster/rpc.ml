open Simkit

type error = [ `Timeout ]

let pp_error fmt `Timeout = Format.pp_print_string fmt "timeout"

type Net.payload +=
  | Req of { id : int; body : Net.payload }
  | Reply of { id : int; body : Net.payload }
  | Oneway of Net.payload

type handler = src:Net.addr -> Net.payload -> (Net.payload * int) option

type t = {
  port : Net.port;
  mutable handlers : handler list;
  mutable oneway_subs : (src:Net.addr -> Net.payload -> unit) list;
  pending : (int, (Net.payload, error) result Sim.Ivar.t) Hashtbl.t;
  mutable next_id : int;
}

let port t = t.port
let addr t = Net.addr t.port
let host t = Net.host t.port
let add_handler t h = t.handlers <- t.handlers @ [ h ]
let on_oneway t f = t.oneway_subs <- t.oneway_subs @ [ f ]

let handle_request t ~src id body =
  let rec try_handlers = function
    | [] ->
      Logs.warn (fun m ->
          m "%s: unhandled rpc request from %d" (Host.name (host t)) src)
    | h :: rest -> (
      match h ~src body with
      | Some (reply, size) -> Net.send t.port ~dst:src ~size (Reply { id; body = reply })
      | None -> try_handlers rest)
  in
  try try_handlers t.handlers
  with Host.Crashed _ -> () (* host died mid-request: no reply, caller times out *)

let dispatcher t () =
  let h = host t in
  let rec loop () =
    let src, m = Net.recv t.port in
    (* Delivery already requires the host to be alive; a crash between
       delivery and processing drops the message, like a real kernel
       losing its socket buffers. *)
    if Host.is_alive h then
      (match m with
      | Req { id; body } -> Sim.spawn (fun () -> handle_request t ~src id body)
      | Reply { id; body } -> (
        match Hashtbl.find_opt t.pending id with
        | Some iv ->
          Hashtbl.remove t.pending id;
          if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill iv (Ok body)
        | None -> () (* reply after timeout: drop *))
      | Oneway body ->
        List.iter
          (fun f ->
            Sim.spawn (fun () -> try f ~src body with Host.Crashed _ -> ()))
          t.oneway_subs
      | _ ->
        Logs.warn (fun m ->
            m "%s: malformed datagram from %d" (Host.name h) src));
    loop ()
  in
  loop ()

let create port =
  let t =
    { port; handlers = []; oneway_subs = []; pending = Hashtbl.create 64; next_id = 0 }
  in
  Sim.spawn ~name:(Host.name (Net.host port) ^ ".rpc") (dispatcher t);
  t

let call_async t ~dst ?(timeout = Sim.sec 1.0) ~size body =
  Host.check (host t);
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let iv = Sim.Ivar.create () in
  Hashtbl.replace t.pending id iv;
  ignore
    (Sim.Timer.after timeout (fun () ->
         if not (Sim.Ivar.is_filled iv) then begin
           Hashtbl.remove t.pending id;
           Sim.Ivar.fill iv (Error `Timeout)
         end));
  Net.send t.port ~dst ~size (Req { id; body });
  iv

let call t ~dst ?timeout ~size body =
  Sim.Ivar.read (call_async t ~dst ?timeout ~size body)

let oneway t ~dst ~size body = Net.send t.port ~dst ~size (Oneway body)
