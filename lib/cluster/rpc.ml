open Simkit

type error = [ `Timeout ]

let pp_error fmt `Timeout = Format.pp_print_string fmt "timeout"

type Net.payload +=
  | Req of { id : int; dedup : bool; body : Net.payload }
  | Reply of { id : int; body : Net.payload }
  | Oneway of Net.payload

type handler = src:Net.addr -> Net.payload -> (Net.payload * int) option

type stats = {
  calls : int;
  attempts : int;
  timeouts : int;
  retries : int;
  dups_suppressed : int;
  dedup_evictions : int;
}

(* Server-side duplicate-suppression cache for [dedup] requests
   (those issued by [call_retry], which reuses one request id across
   attempts). [In_progress] while the first copy's handler runs;
   [Done] keeps the reply so a retransmitted request is answered
   without re-executing a non-idempotent handler. *)
type cached = In_progress | Done of (Net.payload * int)

let default_dedup_cap = 1024

type t = {
  port : Net.port;
  dedup_cap : int;
  mutable handlers : handler list;
  mutable oneway_subs : (src:Net.addr -> Net.payload -> unit) list;
  pending : (int, (Net.payload, error) result Sim.Ivar.t * Sim.Timer.t) Hashtbl.t;
  replies : (Net.addr * int, cached) Hashtbl.t;
  reply_order : (Net.addr * int) Queue.t;
  mutable next_id : int;
  mutable s_calls : int;
  mutable s_attempts : int;
  mutable s_timeouts : int;
  mutable s_retries : int;
  mutable s_dups : int;
  mutable s_evictions : int;
}

let port t = t.port
let addr t = Net.addr t.port
let host t = Net.host t.port
let add_handler t h = t.handlers <- t.handlers @ [ h ]
let on_oneway t f = t.oneway_subs <- t.oneway_subs @ [ f ]

let stats t =
  {
    calls = t.s_calls;
    attempts = t.s_attempts;
    timeouts = t.s_timeouts;
    retries = t.s_retries;
    dups_suppressed = t.s_dups;
    dedup_evictions = t.s_evictions;
  }

let run_handlers t ~src body =
  let rec try_handlers = function
    | [] ->
      Logs.warn (fun m ->
          m "%s: unhandled rpc request from %d" (Host.name (host t)) src);
      None
    | h :: rest -> (
      match h ~src body with
      | Some (reply, size) -> Some (reply, size)
      | None -> try_handlers rest)
  in
  try_handlers t.handlers

let send_reply t ~dst id (reply, size) =
  try Net.send t.port ~dst ~size (Reply { id; body = reply })
  with Host.Crashed _ -> ()

let handle_request t ~src id ~dedup body =
  if not dedup then (
    try
      match run_handlers t ~src body with
      | Some r -> send_reply t ~dst:src id r
      | None -> ()
    with Host.Crashed _ -> () (* host died mid-request: no reply, caller times out *))
  else
    let key = (src, id) in
    match Hashtbl.find_opt t.replies key with
    | Some (Done r) ->
      (* Retransmission of a request we already executed: answer from
         the cache, do not run the handler again. *)
      t.s_dups <- t.s_dups + 1;
      send_reply t ~dst:src id r
    | Some In_progress ->
      (* First copy's handler is still running; it will reply. *)
      t.s_dups <- t.s_dups + 1
    | None -> (
      Hashtbl.replace t.replies key In_progress;
      Queue.push key t.reply_order;
      if Queue.length t.reply_order > t.dedup_cap then begin
        (* Bounded reply cache: the oldest entry's reply is forgotten.
           A retransmission of that request will re-execute its
           handler — safe as long as callers only use [call_retry]
           for operations that tolerate re-execution against a
           restarted server (the crash path already forgets the whole
           cache). *)
        t.s_evictions <- t.s_evictions + 1;
        Hashtbl.remove t.replies (Queue.pop t.reply_order)
      end;
      match run_handlers t ~src body with
      | Some r ->
        Hashtbl.replace t.replies key (Done r);
        send_reply t ~dst:src id r
      | None -> Hashtbl.remove t.replies key
      | exception Host.Crashed _ ->
        (* The handler's side effects died with the host's volatile
           state; let a retry re-execute, as against a restarted
           server. *)
        Hashtbl.remove t.replies key)

let dispatcher t () =
  let h = host t in
  let rec loop () =
    let src, m = Net.recv t.port in
    (* Delivery already requires the host to be alive; a crash between
       delivery and processing drops the message, like a real kernel
       losing its socket buffers. *)
    if Host.is_alive h then
      (match m with
      | Req { id; dedup; body } ->
        Sim.spawn (fun () -> handle_request t ~src id ~dedup body)
      | Reply { id; body } -> (
        match Hashtbl.find_opt t.pending id with
        | Some (iv, timer) ->
          Hashtbl.remove t.pending id;
          Sim.Timer.cancel timer;
          if not (Sim.Ivar.is_filled iv) then Sim.Ivar.fill iv (Ok body)
        | None -> () (* reply after timeout: drop *))
      | Oneway body ->
        List.iter
          (fun f ->
            Sim.spawn (fun () -> try f ~src body with Host.Crashed _ -> ()))
          t.oneway_subs
      | _ ->
        Logs.warn (fun m ->
            m "%s: malformed datagram from %d" (Host.name h) src));
    loop ()
  in
  loop ()

let create ?(dedup_cap = default_dedup_cap) port =
  let t =
    {
      port;
      dedup_cap;
      handlers = [];
      oneway_subs = [];
      pending = Hashtbl.create 64;
      replies = Hashtbl.create 64;
      reply_order = Queue.create ();
      next_id = 0;
      s_calls = 0;
      s_attempts = 0;
      s_timeouts = 0;
      s_retries = 0;
      s_dups = 0;
      s_evictions = 0;
    }
  in
  (* The dedup cache is volatile server state: a crash loses it, so a
     retry against the restarted incarnation re-executes — exactly
     what a real server that lost its memory would do. *)
  Host.on_crash (Net.host port) (fun () ->
      Hashtbl.reset t.replies;
      Queue.clear t.reply_order);
  Sim.spawn ~name:(Host.name (Net.host port) ^ ".rpc") (dispatcher t);
  t

(* One network attempt: arm a timeout timer (cancelled by the
   dispatcher when the reply arrives — no dead timers accumulate over
   long sweeps) and transmit. *)
let attempt t ~dst ~timeout ~dedup ~size ~id body =
  let iv = Sim.Ivar.create () in
  let timer =
    Sim.Timer.after timeout (fun () ->
        if not (Sim.Ivar.is_filled iv) then begin
          Hashtbl.remove t.pending id;
          t.s_timeouts <- t.s_timeouts + 1;
          Sim.Ivar.fill iv (Error `Timeout)
        end)
  in
  Hashtbl.replace t.pending id (iv, timer);
  t.s_attempts <- t.s_attempts + 1;
  Net.send t.port ~dst ~size (Req { id; dedup; body });
  iv

let call_async t ~dst ?(timeout = Sim.sec 1.0) ~size body =
  Host.check (host t);
  t.s_calls <- t.s_calls + 1;
  t.next_id <- t.next_id + 1;
  attempt t ~dst ~timeout ~dedup:false ~size ~id:t.next_id body

let call t ~dst ?timeout ~size body =
  Sim.Ivar.read (call_async t ~dst ?timeout ~size body)

let max_backoff = Sim.sec 5.0

let call_retry t ~dst ?(timeout = Sim.sec 1.0) ?(attempts = 4)
    ?(backoff = Sim.ms 100) ~size body =
  Host.check (host t);
  t.s_calls <- t.s_calls + 1;
  t.next_id <- t.next_id + 1;
  (* One id for all attempts: a late reply to an earlier copy
     completes the current attempt, and the server can suppress
     duplicate executions keyed on (src, id). *)
  let id = t.next_id in
  let rec go n delay =
    if n > 1 then t.s_retries <- t.s_retries + 1;
    match Sim.Ivar.read (attempt t ~dst ~timeout ~dedup:true ~size ~id body) with
    | Ok r -> Ok r
    | Error `Timeout when n < attempts ->
      (* Exponential backoff with jitter from the engine's
         deterministic RNG. *)
      let j = if delay > 1 then Sim.random_int (delay / 2) else 0 in
      Sim.sleep (delay + j);
      Host.check (host t);
      go (n + 1) (min (2 * delay) max_backoff)
    | Error `Timeout -> Error `Timeout
  in
  go 1 backoff

let oneway t ~dst ~size body = Net.send t.port ~dst ~size (Oneway body)
