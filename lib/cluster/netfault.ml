(* Deterministic network nemesis layered over Net: scheduled
   partition/heal, per-link loss probability and delay/jitter from a
   private seeded PRNG, and asymmetric (one-way) cuts. See
   netfault.mli for the contract. *)

open Simkit

type shaping = { drop_p : float; delay : Sim.time; jitter : Sim.time }

type stats = {
  cut_drops : int;
  loss_drops : int;
  delayed : int;
  events : int;
}

type t = {
  net : Net.t;
  rng : Random.State.t;
  cuts : (Net.addr * Net.addr, unit) Hashtbl.t;
  (* Most recent rule first; first match wins. [None] matches any
     address. *)
  mutable rules : (Net.addr option * Net.addr option * shaping) list;
  mutable s_cut_drops : int;
  mutable s_loss_drops : int;
  mutable s_delayed : int;
  mutable s_events : int;
}

let is_cut t src dst =
  if Hashtbl.mem t.cuts (src, dst) then begin
    t.s_cut_drops <- t.s_cut_drops + 1;
    true
  end
  else false

let rule_for t src dst =
  let matches side = function None -> true | Some a -> a = side in
  List.find_opt (fun (s, d, _) -> matches src s && matches dst d) t.rules

let netem t src dst _size =
  match rule_for t src dst with
  | None -> Net.Deliver
  | Some (_, _, sh) ->
    (* At most two PRNG draws per message, in a fixed order, so a
       given seed replays bit-identically. *)
    let lose = sh.drop_p > 0.0 && Random.State.float t.rng 1.0 < sh.drop_p in
    if lose then begin
      t.s_loss_drops <- t.s_loss_drops + 1;
      Net.Lose
    end
    else if sh.delay > 0 || sh.jitter > 0 then begin
      let j = if sh.jitter > 0 then Random.State.int t.rng (sh.jitter + 1) else 0 in
      t.s_delayed <- t.s_delayed + 1;
      Net.Delay (sh.delay + j)
    end
    else Net.Deliver

let create ?(seed = 42) net =
  let t =
    {
      net;
      rng = Random.State.make [| seed; 0x9e3779b9 |];
      cuts = Hashtbl.create 64;
      rules = [];
      s_cut_drops = 0;
      s_loss_drops = 0;
      s_delayed = 0;
      s_events = 0;
    }
  in
  Net.set_fault_cut net (is_cut t);
  Net.set_netem net (netem t);
  t

let cut ?(oneway = false) t a b =
  Hashtbl.replace t.cuts (a, b) ();
  if not oneway then Hashtbl.replace t.cuts (b, a) ()

let heal t a b =
  Hashtbl.remove t.cuts (a, b);
  Hashtbl.remove t.cuts (b, a)

let partition t ga gb =
  List.iter (fun a -> List.iter (fun b -> cut t a b) gb) ga

let isolate t a =
  List.iter (fun b -> if b <> a then cut t a b) (Net.addrs t.net)

let heal_all t = Hashtbl.reset t.cuts

let shape ?src ?dst ?(drop = 0.0) ?(delay = 0) ?(jitter = 0) t =
  t.rules <- (src, dst, { drop_p = drop; delay; jitter }) :: t.rules

let clear_shaping t = t.rules <- []

let clear t =
  heal_all t;
  clear_shaping t

let schedule t evs =
  let t0 = Sim.now () in
  Sim.spawn (fun () ->
      List.iter
        (fun (at, act) ->
          let due = t0 + at in
          if Sim.now () < due then Sim.sleep (due - Sim.now ());
          t.s_events <- t.s_events + 1;
          act t)
        evs)

let stats t =
  {
    cut_drops = t.s_cut_drops;
    loss_drops = t.s_loss_drops;
    delayed = t.s_delayed;
    events = t.s_events;
  }
