(** Request/response matching over {!Net} datagrams, with timeouts.

    Each host runs one {!t} per incarnation; services on the host
    register handlers on it. Handlers run as their own processes so a
    slow disk I/O in one request does not block the dispatcher. Lost
    messages (crashes, partitions) surface as [`Timeout]. *)

type error = [ `Timeout ]

val pp_error : Format.formatter -> error -> unit

type handler = src:Net.addr -> Net.payload -> (Net.payload * int) option
(** A handler inspects a request body; if it recognises it, it
    returns [Some (reply, reply_size_bytes)]. Handlers may block. *)

type t

val create : ?dedup_cap:int -> Net.port -> t
(** Create the endpoint and start its dispatcher. The dispatcher
    lives as long as the simulation; while the host is crashed no
    messages are delivered to it, so the endpoint simply falls
    silent and resumes after a restart (services model volatile-state
    loss with [Host.on_crash] hooks). [dedup_cap] (default 1024)
    bounds the server-side reply cache backing [call_retry]'s
    duplicate suppression; an evicted entry makes a late
    retransmission re-execute its handler, which is counted in
    {!stats} and exercised by a directed test. *)

val port : t -> Net.port
val addr : t -> Net.addr
val host : t -> Host.t

val add_handler : t -> handler -> unit

val on_oneway : t -> (src:Net.addr -> Net.payload -> unit) -> unit
(** Subscribe to non-RPC datagrams (heartbeats, asynchronous
    notifications). Callbacks run in a fresh process per message. *)

val call_async :
  t ->
  dst:Net.addr ->
  ?timeout:Simkit.Sim.time ->
  size:int ->
  Net.payload ->
  (Net.payload, error) result Simkit.Sim.Ivar.t
(** Issue a request of [size] bytes and return immediately (after the
    sender-side protocol-stack cost) with an ivar that is filled with
    the reply, or with [`Timeout] once the timeout (default 1 s of
    simulated time) expires. Callers can keep many requests
    outstanding and wait once — the submit/complete split the whole
    block-I/O path is built on. *)

val call :
  t ->
  dst:Net.addr ->
  ?timeout:Simkit.Sim.time ->
  size:int ->
  Net.payload ->
  (Net.payload, error) result
(** [call_async] followed by a blocking read of the reply. *)

val call_retry :
  t ->
  dst:Net.addr ->
  ?timeout:Simkit.Sim.time ->
  ?attempts:int ->
  ?backoff:Simkit.Sim.time ->
  size:int ->
  Net.payload ->
  (Net.payload, error) result
(** Blocking call with retransmission: up to [attempts] (default 4)
    copies, [timeout] (default 1 s) per copy, exponential backoff
    starting at [backoff] (default 100 ms, doubling, capped at 5 s)
    with deterministic jitter between copies. All copies carry the
    {e same} request id and a [dedup] flag, so the receiving endpoint
    executes the handler at most once per id and answers
    retransmissions from a bounded reply cache — safe for
    non-idempotent operations. A server crash clears that cache
    (volatile state), in which case a retry re-executes against the
    restarted incarnation, exactly as against a real rebooted server.
    Returns [`Timeout] only after every attempt has timed out. *)

type stats = {
  calls : int;  (** [call]/[call_async]/[call_retry] invocations *)
  attempts : int;  (** request transmissions, retries included *)
  timeouts : int;  (** attempts that timed out *)
  retries : int;  (** retransmissions by [call_retry] *)
  dups_suppressed : int;  (** server-side duplicate requests absorbed *)
  dedup_evictions : int;
      (** reply-cache entries dropped because the cache hit its cap —
          each one licenses a (safe) re-execution on retransmission *)
}

val stats : t -> stats
(** Cumulative counters for this endpoint (both its client and server
    roles). *)

val oneway : t -> dst:Net.addr -> size:int -> Net.payload -> unit
(** Fire-and-forget datagram through this endpoint. *)
