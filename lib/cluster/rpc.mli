(** Request/response matching over {!Net} datagrams, with timeouts.

    Each host runs one {!t} per incarnation; services on the host
    register handlers on it. Handlers run as their own processes so a
    slow disk I/O in one request does not block the dispatcher. Lost
    messages (crashes, partitions) surface as [`Timeout]. *)

type error = [ `Timeout ]

val pp_error : Format.formatter -> error -> unit

type handler = src:Net.addr -> Net.payload -> (Net.payload * int) option
(** A handler inspects a request body; if it recognises it, it
    returns [Some (reply, reply_size_bytes)]. Handlers may block. *)

type t

val create : Net.port -> t
(** Create the endpoint and start its dispatcher. The dispatcher
    lives as long as the simulation; while the host is crashed no
    messages are delivered to it, so the endpoint simply falls
    silent and resumes after a restart (services model volatile-state
    loss with [Host.on_crash] hooks). *)

val port : t -> Net.port
val addr : t -> Net.addr
val host : t -> Host.t

val add_handler : t -> handler -> unit

val on_oneway : t -> (src:Net.addr -> Net.payload -> unit) -> unit
(** Subscribe to non-RPC datagrams (heartbeats, asynchronous
    notifications). Callbacks run in a fresh process per message. *)

val call_async :
  t ->
  dst:Net.addr ->
  ?timeout:Simkit.Sim.time ->
  size:int ->
  Net.payload ->
  (Net.payload, error) result Simkit.Sim.Ivar.t
(** Issue a request of [size] bytes and return immediately (after the
    sender-side protocol-stack cost) with an ivar that is filled with
    the reply, or with [`Timeout] once the timeout (default 1 s of
    simulated time) expires. Callers can keep many requests
    outstanding and wait once — the submit/complete split the whole
    block-I/O path is built on. *)

val call :
  t ->
  dst:Net.addr ->
  ?timeout:Simkit.Sim.time ->
  size:int ->
  Net.payload ->
  (Net.payload, error) result
(** [call_async] followed by a blocking read of the reply. *)

val oneway : t -> dst:Net.addr -> size:int -> Net.payload -> unit
(** Fire-and-forget datagram through this endpoint. *)
