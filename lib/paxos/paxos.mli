(** Lamport's Paxos as a multi-instance replicated command log.

    The paper's lock service replicates "a small amount of global
    state information that does not change often" with Paxos (§6),
    reusing an implementation written for Petal. This module plays
    that role: a fixed group of replicas (the lock servers) agrees on
    a totally-ordered log of commands; each replica applies the log
    prefix, in order, exactly once, to its local copy of the state.

    Safety holds with any minority of replicas crashed or partitioned
    away; liveness requires a majority up and mutually reachable.
    Acceptor state must survive crashes for safety, so it lives in a
    {!type:stable} record the caller keeps across restarts — the
    model of a small on-disk/NVRAM area, the same assumption the
    original makes. *)

module Make (C : sig
  type t
end) : sig
  type t

  type stable
  (** A replica's durable acceptor state. *)

  val stable : unit -> stable

  val create :
    rpc:Cluster.Rpc.t ->
    group:int ->
    peers:Cluster.Net.addr list ->
    id:int ->
    stable:stable ->
    apply:(int -> C.t -> unit) ->
    t
  (** Start a replica. [peers] lists all replicas' addresses
      (including this one); [id] is this replica's index in [peers];
      [group] isolates independent Paxos groups sharing a network.
      [apply slot cmd] is invoked in strict slot order, exactly once
      per slot, as commands become known decided. Registers handlers
      on [rpc] and starts a catch-up daemon. *)

  val propose : t -> C.t -> int
  (** Block until the given command is chosen in some slot, retrying
      with higher ballots / later slots as needed; returns the slot.
      May block forever if a majority is unreachable. *)

  val decided : t -> int -> C.t option
  val applied_up_to : t -> int
  (** Slots [0 .. applied_up_to - 1] have been applied locally. *)

  val round : t -> int
  (** This replica's current ballot round (its proposal epoch). Grows
      with every contested proposal — nemesis tests read it to verify
      that duelling proposers actually fought over ballots instead of
      the schedule degenerating to uncontended runs. *)
end
