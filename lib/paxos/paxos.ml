open Simkit
open Cluster

module Make (C : sig
  type t
end) =
struct
  type ballot = int * int (* round, proposer id; lexicographic *)

  type entry = { origin : int; oseq : int; cmd : C.t }

  let same_entry a b = a.origin = b.origin && a.oseq = b.oseq

  type Net.payload +=
    | Prepare of { group : int; slot : int; ballot : ballot }
    | Promise of {
        ok : bool;
        accepted : (ballot * entry) option;
        chosen : entry option;
      }
    | Accept of { group : int; slot : int; ballot : ballot; entry : entry }
    | Accepted of { ok : bool }
    | Decided of { group : int; slot : int; entry : entry }
    | Query of { group : int; from_slot : int }
    | Answer of { entries : (int * entry) list }

  type stable = {
    promised : (int, ballot) Hashtbl.t;
    accepted : (int, ballot * entry) Hashtbl.t;
  }

  let stable () = { promised = Hashtbl.create 32; accepted = Hashtbl.create 32 }

  type t = {
    rpc : Rpc.t;
    group : int;
    peers : Net.addr list;
    id : int;
    st : stable;
    apply : int -> C.t -> unit;
    chosen : (int, entry) Hashtbl.t;
    mutable applied : int;
    mutable oseq : int;
    mutable round : int;
  }

  let majority t = (List.length t.peers / 2) + 1

  let promised_for t slot =
    match Hashtbl.find_opt t.st.promised slot with
    | Some b -> b
    | None -> (-1, -1)

  let record_decided t slot entry =
    if not (Hashtbl.mem t.chosen slot) then begin
      Hashtbl.replace t.chosen slot entry;
      let rec drain () =
        match Hashtbl.find_opt t.chosen t.applied with
        | Some e ->
          t.apply t.applied e.cmd;
          t.applied <- t.applied + 1;
          drain ()
        | None -> ()
      in
      drain ()
    end

  let handler t ~src:_ body =
    match body with
    | Prepare { group; slot; ballot } when group = t.group ->
      let chosen = Hashtbl.find_opt t.chosen slot in
      if ballot >= promised_for t slot then begin
        Hashtbl.replace t.st.promised slot ballot;
        Some
          (Promise { ok = true; accepted = Hashtbl.find_opt t.st.accepted slot; chosen }, 64)
      end
      else Some (Promise { ok = false; accepted = None; chosen }, 32)
    | Accept { group; slot; ballot; entry } when group = t.group ->
      if ballot >= promised_for t slot then begin
        Hashtbl.replace t.st.promised slot ballot;
        Hashtbl.replace t.st.accepted slot (ballot, entry);
        Some (Accepted { ok = true }, 16)
      end
      else Some (Accepted { ok = false }, 16)
    | Query { group; from_slot } when group = t.group ->
      let entries =
        Hashtbl.fold
          (fun slot e acc -> if slot >= from_slot then (slot, e) :: acc else acc)
          t.chosen []
      in
      Some (Answer { entries }, 64 + (64 * List.length entries))
    | _ -> None

  let on_decided t ~src:_ body =
    match body with
    | Decided { group; slot; entry } when group = t.group -> record_decided t slot entry
    | _ -> ()

  (* Issue [msg] to every peer in parallel and return the successful
     replies (loopback included: a replica is its own acceptor). *)
  let broadcast_call t msg =
    let n = List.length t.peers in
    let results = ref [] and pending = ref n in
    let all_in = Sim.Ivar.create () in
    List.iter
      (fun peer ->
        Sim.spawn (fun () ->
            (match Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 300) ~size:64 msg with
            | Ok reply -> results := reply :: !results
            | Error `Timeout -> ()
            | exception Host.Crashed _ -> ());
            decr pending;
            if !pending = 0 then Sim.Ivar.fill all_in ()))
      t.peers;
    Sim.Ivar.read all_in;
    !results

  let first_undecided t =
    let rec go slot = if Hashtbl.mem t.chosen slot then go (slot + 1) else slot in
    go t.applied

  let propose t cmd =
    t.oseq <- t.oseq + 1;
    let mine = { origin = t.id; oseq = t.oseq; cmd } in
    let rec outer () =
      let slot = first_undecided t in
      let rec try_ballot () =
        t.round <- t.round + 1 + Sim.random_int 2;
        let ballot = (t.round, t.id) in
        let replies = broadcast_call t (Prepare { group = t.group; slot; ballot }) in
        (* Someone may already know this slot's outcome. *)
        let already =
          List.find_map
            (function Promise { chosen = Some e; _ } -> Some e | _ -> None)
            replies
        in
        match already with
        | Some e ->
          record_decided t slot e;
          if same_entry e mine then slot else outer ()
        | None ->
          let promises =
            List.filter_map
              (function
                | Promise { ok = true; accepted; _ } -> Some accepted
                | _ -> None)
              replies
          in
          if List.length promises < majority t then begin
            Sim.sleep (Sim.ms (1 + Sim.random_int 50));
            try_ballot ()
          end
          else begin
            (* Adopt the highest-ballot accepted value, if any. *)
            let value =
              List.fold_left
                (fun best a ->
                  match (best, a) with
                  | None, x -> x
                  | Some _, None -> best
                  | Some (bb, _), Some (ab, _) -> if ab > bb then a else best)
                None promises
              |> function
              | Some (_, e) -> e
              | None -> mine
            in
            let acks =
              broadcast_call t (Accept { group = t.group; slot; ballot; entry = value })
              |> List.filter (function Accepted { ok = true } -> true | _ -> false)
            in
            if List.length acks >= majority t then begin
              List.iter
                (fun peer ->
                  Rpc.oneway t.rpc ~dst:peer ~size:64
                    (Decided { group = t.group; slot; entry = value }))
                t.peers;
              record_decided t slot value;
              if same_entry value mine then slot else outer ()
            end
            else begin
              Sim.sleep (Sim.ms (1 + Sim.random_int 50));
              try_ballot ()
            end
          end
      in
      try_ballot ()
    in
    outer ()

  let decided t slot =
    match Hashtbl.find_opt t.chosen slot with
    | Some e -> Some e.cmd
    | None -> None

  let applied_up_to t = t.applied
  let round t = t.round

  let catch_up_daemon t () =
    let h = Rpc.host t.rpc in
    let rec loop () =
      Sim.sleep (Sim.ms (250 + Sim.random_int 100));
      if Host.is_alive h then begin
        let others = List.filter (fun a -> a <> Rpc.addr t.rpc) t.peers in
        match others with
        | [] -> ()
        | _ -> (
          let peer = List.nth others (Sim.random_int (List.length others)) in
          match
            Rpc.call t.rpc ~dst:peer ~timeout:(Sim.ms 200) ~size:32
              (Query { group = t.group; from_slot = t.applied })
          with
          | Ok (Answer { entries }) ->
            List.iter (fun (slot, e) -> record_decided t slot e) entries
          | Ok _ | Error `Timeout -> ()
          | exception Host.Crashed _ -> ())
      end;
      loop ()
    in
    loop ()

  let create ~rpc ~group ~peers ~id ~stable ~apply =
    let t =
      {
        rpc;
        group;
        peers;
        id;
        st = stable;
        apply;
        chosen = Hashtbl.create 64;
        applied = 0;
        oseq = 0;
        round = 0;
      }
    in
    Rpc.add_handler rpc (handler t);
    Rpc.on_oneway rpc (on_decided t);
    Sim.spawn ~name:"paxos.catchup" (catch_up_daemon t);
    t
end
