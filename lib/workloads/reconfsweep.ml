(** Deterministic reconfiguration-sweep harness (the membership twin
    of {!Partsweep}).

    One [run] is one complete simulation: a five-member Petal cluster
    starts with three members active; a Frangipani server [a] runs
    the paced, fully deterministic {!Partsweep}-style workload while
    a reconfiguration driver adds and removes Petal members
    mid-flight — each change Paxos-agreed, each handoff streamed in
    the background, each cutover an atomic map-epoch bump. Schedules
    compose the membership changes with a {!Cluster.Netfault} nemesis
    (partitions that isolate the joining member, loss, delay, link
    cuts) and with {!Simkit.Faultpoint} crashes (a transfer source
    dies mid-stream, the proposing server dies inside [Add_server],
    the cutover proposer dies; the victim restarts a few seconds
    later). After everything heals the harness waits for the final
    transfer to commit, drains the push backlog, lets the garbage
    collector empty decommissioned members, remounts a fresh server
    and checks:

    - every reconfiguration requested was eventually committed and
      the final map is exactly the expected member set,
    - every acked operation survives with its bytes intact,
    - no transfer is left pending and the resync backlog drains,
    - decommissioned (and otherwise non-owning) members hold zero
      chunks — nobody can be served stale data from an old owner,
    - no write with a lapsed §6 stamp ever reached a disk,
    - the volume is fsck-clean,
    - the run replays bit-identically from its seeds (the sweep
      compares whole outcomes, including the simulated end time).

    Schedules are either scripted (one per named scenario) or
    generated from a seed. *)

open Simkit
open Cluster
module Fs = Frangipani.Fs

type spec = Scripted of string | Random of int

type reconf_op = Add of int | Remove of int

type crash_spec = {
  site : string;  (** faultpoint site to arm *)
  at_hit : int;  (** 1-based hit of that site (counted after enable) *)
  victim : int;  (** Petal member index whose host crashes *)
  restart_after : Sim.time;  (** host restarts this long after *)
}

type schedule = {
  reconfigs : (Sim.time * reconf_op) list;  (** absolute sim offsets *)
  nemesis : (Sim.time * (Netfault.t -> unit)) list;
  crash : crash_spec option;
}

type outcome = {
  label : string;
  acked : int;  (** ops whose op + sync both returned *)
  failed_ops : int;  (** ops that raised (handoff, nemesis, ...) *)
  expired : bool;  (** server [a] took the §6 expiry path *)
  requested : int;  (** reconfigurations the driver asked for *)
  committed : int;  (** map epochs actually reached *)
  final_active : int list;  (** member set under the final map *)
  expected_active : int list;  (** member set the schedule prescribes *)
  xfer_pushes : int;  (** transfer/resync chunk pushes (cluster-wide) *)
  xfer_bytes : int;  (** bytes those pushes carried *)
  wrong_epoch_rejects : int;  (** data requests refused for a stale map *)
  map_refreshes : int;  (** ownership-map refetches by [a]'s driver *)
  wrong_epoch_retries : int;  (** pieces re-routed after a reject *)
  gc_chunks : int;  (** chunks freed off non-owners after cutover *)
  stale_applied : int;  (** must be 0: lapsed-stamp writes applied *)
  degraded_left : int;  (** must be 0: undrained push backlog *)
  leftover_chunks : int;  (** must be 0: chunks still on non-owners *)
  pending_left : bool;  (** must be false: transfer never committed *)
  nf : Netfault.stats;
  lost : string list;  (** acked files missing/corrupt at the end *)
  fsck_findings : string list;
  end_ns : int;  (** simulated end time: the determinism fingerprint *)
}

(* The ledger, settle loops and fsck teeth live in {!Invariants},
   shared with the other fault harnesses. *)
let bytes_pat = Invariants.bytes_pat
let sweep_config = Invariants.sweep_config

(* Addresses the schedules play with. *)
type roles = { petal : Net.addr array; a_addr : Net.addr }

(* --- schedules --------------------------------------------------------- *)

(* Provisioned members 0..4; members 0,1,2 start active. The workload
   begins at 0 and takes >= 40 s, so reconfigurations in [4 s, 36 s]
   and fault windows in [2 s, 45 s] overlap live traffic. Every
   nemesis schedule ends with [Netfault.clear]. *)
let scripted_schedule name (r : roles) =
  let fin = (Sim.sec 60.0, Netfault.clear) in
  let nofault = [ fin ] in
  match name with
  | "add_plain" ->
    (* One standby joins on a healthy network: background stream,
       atomic cutover, clients re-route via [Wrong_epoch]. *)
    { reconfigs = [ (Sim.sec 6.0, Add 3) ]; nemesis = nofault; crash = None }
  | "remove_plain" ->
    (* One member drains out; its whole store must migrate and then
       be garbage-collected off it. *)
    { reconfigs = [ (Sim.sec 6.0, Remove 0) ]; nemesis = nofault; crash = None }
  | "add_then_remove" ->
    { reconfigs = [ (Sim.sec 5.0, Add 3); (Sim.sec 30.0, Remove 1) ];
      nemesis = nofault; crash = None }
  | "back_to_back" ->
    (* The second proposal lands while the first handoff may still be
       pending: the cluster must serialize them (driver retries the
       rejected proposal until the pending transfer commits). *)
    { reconfigs =
        [ (Sim.sec 4.0, Add 3); (Sim.sec 18.0, Add 4); (Sim.sec 34.0, Remove 0) ];
      nemesis = nofault; crash = None }
  | "add_joiner_partitioned" ->
    (* The joining member is partitioned from everyone mid-transfer:
       pushes to it fail (sources stay degraded), the cutover is held
       back until the heal, then the handoff completes. *)
    { reconfigs = [ (Sim.sec 5.0, Add 3) ];
      nemesis =
        [ (Sim.sec 8.0, fun nf -> Netfault.isolate nf r.petal.(3));
          (Sim.sec 28.0, fun nf -> Netfault.heal_all nf); fin ];
      crash = None }
  | "add_joiner_dark_start" ->
    (* The member is already unreachable when it is proposed. *)
    { reconfigs = [ (Sim.sec 6.0, Add 3) ];
      nemesis =
        [ (Sim.sec 2.0, fun nf -> Netfault.isolate nf r.petal.(3));
          (Sim.sec 24.0, fun nf -> Netfault.heal_all nf); fin ];
      crash = None }
  | "remove_under_loss" ->
    (* 12% of every message dropped while a member drains out. *)
    { reconfigs = [ (Sim.sec 6.0, Remove 2) ];
      nemesis =
        [ (Sim.sec 2.0, fun nf -> Netfault.shape ~drop:0.12 nf);
          (Sim.sec 40.0, fun nf -> Netfault.clear_shaping nf); fin ];
      crash = None }
  | "add_under_delay" ->
    { reconfigs = [ (Sim.sec 6.0, Add 4) ];
      nemesis =
        [ (Sim.sec 2.0,
           fun nf -> Netfault.shape ~delay:(Sim.ms 25) ~jitter:(Sim.ms 15) nf);
          (Sim.sec 40.0, fun nf -> Netfault.clear_shaping nf); fin ];
      crash = None }
  | "flap_during_add" ->
    (* An old owner flaps three times while the handoff streams. *)
    { reconfigs = [ (Sim.sec 5.0, Add 3) ];
      nemesis =
        List.concat
          (List.init 3 (fun i ->
               let t0 = Sim.sec (7.0 +. (6.0 *. float_of_int i)) in
               [ (t0, fun nf -> Netfault.isolate nf r.petal.(0));
                 (t0 + Sim.sec 3.0, fun nf -> Netfault.heal_all nf) ]))
        @ [ fin ];
      crash = None }
  | "owner_dies_mid_transfer" ->
    (* A transfer source crashes between pushes; the other old owner
       carries the handoff, the victim restarts and catches up. *)
    { reconfigs = [ (Sim.sec 5.0, Add 3) ];
      nemesis = nofault;
      crash =
        Some { site = "petal.resync_push"; at_hit = 3; victim = 0;
               restart_after = Sim.sec 12.0 } }
  | "proposer_dies_mid_add" ->
    (* The server handling the management RPC crashes after receiving
       it but before proposing: the client times out and re-issues
       through the next member (idempotent at apply). *)
    { reconfigs = [ (Sim.sec 5.0, Add 3) ];
      nemesis = nofault;
      crash =
        Some { site = "petal.mgmt_propose"; at_hit = 1; victim = 0;
               restart_after = Sim.sec 10.0 } }
  | "cutover_proposer_dies" ->
    (* A member crashes at the instant the drained transfer is first
       proposed for cutover; every member polls independently, so a
       survivor's duplicate proposal commits it. *)
    { reconfigs = [ (Sim.sec 5.0, Add 3) ];
      nemesis = nofault;
      crash =
        Some { site = "petal.cutover_propose"; at_hit = 1; victim = 1;
               restart_after = Sim.sec 10.0 } }
  | _ -> invalid_arg ("reconfsweep: unknown scripted schedule " ^ name)

let scripted_labels =
  [
    "add_plain"; "remove_plain"; "add_then_remove"; "back_to_back";
    "add_joiner_partitioned"; "add_joiner_dark_start"; "remove_under_loss";
    "add_under_delay"; "flap_during_add"; "owner_dies_mid_transfer";
    "proposer_dies_mid_add"; "cutover_proposer_dies";
  ]

(* The member set a schedule must end with (assuming, as the sweep
   asserts, that every requested reconfiguration commits). *)
let expected_active_of sched =
  List.fold_left
    (fun acc (_, op) ->
      match op with
      | Add i -> List.sort_uniq compare (i :: acc)
      | Remove i -> List.filter (( <> ) i) acc)
    [ 0; 1; 2 ] sched.reconfigs

(* Seed-generated schedules: 1-2 membership changes spaced far enough
   apart to serialize naturally, 0-2 nemesis windows from the
   {!Partsweep} families, and a fifty-fifty chance of one crash at a
   seeded faultpoint hit with a restart a few seconds later. *)
let random_schedule seed (r : roles) =
  let rng = Random.State.make [| seed; 0xc0f; 0x5eed |] in
  let active = ref [ 0; 1; 2 ] and standby = ref [ 3; 4 ] in
  let reconfigs = ref [] in
  let t = ref (Sim.sec 4.0) in
  let n = 1 + Random.State.int rng 2 in
  for _ = 1 to n do
    let at = !t + Sim.ms (Random.State.int rng 6000) in
    let op =
      let can_add = !standby <> [] and can_rm = List.length !active > 2 in
      if can_add && ((not can_rm) || Random.State.bool rng) then begin
        let i = List.nth !standby (Random.State.int rng (List.length !standby)) in
        standby := List.filter (( <> ) i) !standby;
        active := List.sort_uniq compare (i :: !active);
        Add i
      end
      else begin
        let i = List.nth !active (Random.State.int rng (List.length !active)) in
        active := List.filter (( <> ) i) !active;
        standby := List.sort_uniq compare (i :: !standby);
        Remove i
      end
    in
    reconfigs := (at, op) :: !reconfigs;
    t := at + Sim.sec 14.0 + Sim.ms (Random.State.int rng 8000)
  done;
  let evs = ref [] in
  let wt = ref (Sim.sec 3.0) in
  let nw = Random.State.int rng 3 in
  for _ = 1 to nw do
    let start = !wt + Sim.ms (Random.State.int rng 5000) in
    let dur = Sim.sec 3.0 + Sim.ms (Random.State.int rng 15_000) in
    let ev =
      match Random.State.int rng 5 with
      | 0 ->
        let p = r.petal.(Random.State.int rng 5) in
        fun nf -> Netfault.isolate nf p
      | 1 ->
        let p = r.petal.(Random.State.int rng 5) in
        fun nf -> Netfault.cut nf r.a_addr p
      | 2 ->
        let i = Random.State.int rng 5 in
        let j = (i + 1 + Random.State.int rng 4) mod 5 in
        fun nf -> Netfault.cut nf r.petal.(i) r.petal.(j)
      | 3 ->
        let drop = 0.05 +. (float_of_int (Random.State.int rng 12) /. 100.0) in
        fun nf -> Netfault.shape ~drop nf
      | _ ->
        let delay = Sim.ms (5 + Random.State.int rng 30) in
        let jitter = Sim.ms (Random.State.int rng 15) in
        fun nf -> Netfault.shape ~delay ~jitter nf
    in
    evs := (start + dur, Netfault.clear) :: (start, ev) :: !evs;
    wt := start + dur + Sim.sec 1.0
  done;
  let nemesis =
    List.sort (fun (t1, _) (t2, _) -> compare t1 t2) !evs
    @ [ (Sim.sec 60.0, Netfault.clear) ]
  in
  let crash =
    if Random.State.int rng 2 = 0 then None
    else
      let sites =
        [| "petal.resync_push"; "petal.chunk_write"; "petal.mgmt_propose";
           "petal.cutover_propose" |]
      in
      Some
        { site = sites.(Random.State.int rng (Array.length sites));
          at_hit = 1 + Random.State.int rng 6;
          victim = Random.State.int rng 5;
          restart_after = Sim.sec 8.0 + Sim.ms (Random.State.int rng 8000) }
  in
  { reconfigs = List.rev !reconfigs; nemesis; crash }

(* --- the run ----------------------------------------------------------- *)

let schedule_end evs = List.fold_left (fun acc (t, _) -> max acc t) 0 evs

(* The paced workload: one op per simulated second, each acked by a
   sync. Deterministic so same-seed runs replay identically. *)
let nops = 40

let run spec =
  let label, sim_seed, nf_seed =
    match spec with
    | Scripted name -> (name, 42, 42)
    | Random n -> (Printf.sprintf "random_%d" n, 2000 + n, n)
  in
  Sim.run ~seed:sim_seed ~until:(Sim.sec 3600.0) (fun () ->
      Faultpoint.reset ();
      let t =
        Testbed.build ~petal_servers:5 ~petal_active:3 ~ndisks:2 ~ngroups:16 ()
      in
      let a = Testbed.add_server t ~config:sweep_config ~name:"reconf-a" () in
      let roles =
        { petal = t.petal.Petal.Testbed.addrs; a_addr = Testbed.addr_of t a }
      in
      let sched =
        match spec with
        | Scripted name -> scripted_schedule name roles
        | Random n -> random_schedule n roles
      in
      let nf = Netfault.create ~seed:nf_seed t.net in
      Netfault.schedule nf sched.nemesis;
      (match sched.crash with
      | None -> ()
      | Some c ->
        Faultpoint.arm_site c.site ~at:c.at_hit
          (Faultpoint.Crash
             (fun _site ->
               let h = t.petal.Petal.Testbed.hosts.(c.victim) in
               if Host.is_alive h then begin
                 Host.crash h;
                 ignore
                   (Sim.Timer.after c.restart_after (fun () -> Host.restart h))
               end)));
      Faultpoint.enable ();
      (* The reconfiguration driver: its own machine, talking straight
         to the Petal cluster. A proposal rejected because another
         handoff is still pending (or lost to the nemesis) is retried
         every 2 s until the cluster takes it. *)
      let _, drv_rpc = Testbed.fresh_client t "reconf-drv" in
      let pc = Petal.Testbed.client t.petal ~rpc:drv_rpc in
      let requested = ref 0 in
      let committed = ref 0 in
      let reconf_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          List.iter
            (fun (at, op) ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              incr requested;
              let propose () =
                match op with
                | Add i -> Petal.Client.add_server pc ~idx:i
                | Remove i -> Petal.Client.remove_server pc ~idx:i
              in
              let rec attempt n =
                match propose () with
                | () -> ()
                | exception (Failure _ | Petal.Protocol.Unavailable _)
                  when n > 0 ->
                  Sim.sleep (Sim.sec 2.0);
                  attempt (n - 1)
              in
              attempt 120)
            sched.reconfigs;
          (* Wait for the last handoff to commit (bounded: a cutover
             stuck past this shows up as [pending_left]). *)
          let want = List.length sched.reconfigs in
          let rec await n =
            let ep, _ = Petal.Client.fetch_map pc in
            committed := ep;
            if ep < want && n > 0 then begin
              Sim.sleep (Sim.sec 2.0);
              await (n - 1)
            end
          in
          await 240;
          Sim.Ivar.fill reconf_done ());
      let led = Invariants.ledger () and failed = ref 0 in
      let expired = ref false in
      let dir = Fs.mkdir a ~dir:Fs.root "reconf" in
      let wl_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          let stopped = ref false in
          for i = 0 to nops - 1 do
            if not !stopped then begin
              (try
                 (* Occasionally destroy the most recently acked file
                    first (unlink + decommit race the handoff); it is
                    dropped from the acked set before the attempt,
                    since we never assert absence. *)
                 if i mod 9 = 5 then
                   (match Invariants.pop_latest led with
                   | Some (path, _) ->
                     Fs.unlink a ~dir (List.nth path (List.length path - 1));
                     Fs.sync a
                   | None -> ());
                 let name = Printf.sprintf "f%02d" i in
                 let f = Fs.create a ~dir name in
                 let data = bytes_pat (512 * (1 + (i mod 4))) (100 + i) in
                 Fs.write a f ~off:0 data;
                 let final =
                   if i mod 5 = 2 then begin
                     Fs.rename a ~sdir:dir name ~ddir:dir (name ^ ".r");
                     name ^ ".r"
                   end
                   else name
                 in
                 Fs.sync a;
                 Invariants.ack led ~path:[ "reconf"; final ] data
               with ex ->
                incr failed;
                (match Invariants.classify a ex with
                | Invariants.Expired ->
                  expired := true;
                  stopped := true
                | Invariants.Failed -> ()));
              if not !stopped then Sim.sleep (Sim.sec 1.0)
            end
          done;
          Sim.Ivar.fill wl_done ());
      Sim.Ivar.read wl_done;
      Sim.Ivar.read reconf_done;
      (* Outlive the nemesis schedule and any crash restart, then give
         lease recovery and the handoff machinery time to settle. *)
      let horizon = schedule_end sched.nemesis + Sim.sec 5.0 in
      if Sim.now () < horizon then Sim.sleep (horizon - Sim.now ());
      Sim.sleep (Sim.sec 90.0);
      let petal_servers = t.petal.Petal.Testbed.servers in
      let sum f = Invariants.sum f petal_servers in
      let degraded_left = Invariants.drain_backlog petal_servers in
      (* Let the GC empty decommissioned members and wait out any
         still-pending transfer. *)
      let pending_left, leftover_chunks =
        Invariants.settle_transfers petal_servers
      in
      (* One more write through the original driver now that the map
         has settled: its cached routing map predates any committed
         cutover, so this op deterministically exercises the client's
         [Wrong_epoch] refresh-and-retry path — and the file joins the
         acked set, so the final verify also proves a post-cutover
         write lands on the new owners. *)
      (if (not !expired) && !committed > 0 then
         try
           let dir = Fs.lookup a ~dir:Fs.root "reconf" in
           let f = Fs.create a ~dir "post" in
           let data = bytes_pat 768 99 in
           Fs.write a f ~off:0 data;
           Fs.sync a;
           Invariants.ack led ~path:[ "reconf"; "post" ] data
         with _ -> ());
      let final_active =
        let _, act = Petal.Client.fetch_map pc in
        act
      in
      let a_stats = Petal.Client.op_stats a.Frangipani.Ctx.vd in
      let clean_unmount =
        match Fs.unmount a with () -> not !expired | exception _ -> false
      in
      (* A fresh server starts from the build-time map, so its first
         reads exercise the [Wrong_epoch] refresh path for real; it
         must see every acked file and a fsck-clean volume. *)
      let c = Testbed.add_server t ~name:"reconf-c" () in
      if not clean_unmount then Invariants.await_replay c;
      let lost = Invariants.verify led c in
      let fsck_findings = Invariants.fsck c in
      {
        label;
        acked = Invariants.acked_count led;
        failed_ops = !failed;
        expired = !expired;
        requested = !requested;
        committed = !committed;
        final_active;
        expected_active = expected_active_of sched;
        xfer_pushes = sum Petal.Server.xfer_push_count;
        xfer_bytes = sum Petal.Server.xfer_bytes_pushed;
        wrong_epoch_rejects = sum Petal.Server.wrong_epoch_count;
        map_refreshes = a_stats.Petal.Client.map_refreshes;
        wrong_epoch_retries = a_stats.Petal.Client.wrong_epoch_retries;
        gc_chunks = sum Petal.Server.gc_chunk_count;
        stale_applied = sum Petal.Server.stale_applied_count;
        degraded_left;
        leftover_chunks;
        pending_left;
        nf = Netfault.stats nf;
        lost;
        fsck_findings;
        end_ns = Sim.now ();
      })

(** What an outcome violates; [] = all invariants held. *)
let failures o =
  let bad cond msg acc = if cond then msg :: acc else acc in
  let set l = String.concat "," (List.map string_of_int l) in
  []
  |> bad (o.lost <> [])
       (Printf.sprintf "acked ops lost: %s" (String.concat "; " o.lost))
  |> bad (o.fsck_findings <> [])
       (Printf.sprintf "fsck: %s" (String.concat "; " o.fsck_findings))
  |> bad (o.committed <> o.requested)
       (Printf.sprintf "reconfigurations requested %d but committed %d"
          o.requested o.committed)
  |> bad (o.final_active <> o.expected_active)
       (Printf.sprintf "final map {%s} but expected {%s}" (set o.final_active)
          (set o.expected_active))
  |> bad o.pending_left "a transfer never committed"
  |> bad (o.degraded_left <> 0)
       (Printf.sprintf "push backlog not drained: %d" o.degraded_left)
  |> bad (o.leftover_chunks <> 0)
       (Printf.sprintf "chunks left on non-owning members: %d" o.leftover_chunks)
  |> bad (o.stale_applied <> 0)
       (Printf.sprintf "expired-stamp writes applied: %d" o.stale_applied)
  |> bad (o.acked = 0) "no op was ever acked"
  |> List.rev
