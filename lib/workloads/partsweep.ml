(** Deterministic partition-sweep harness (the network twin of
    {!Crashsweep}).

    One [run] is one complete simulation: a two-server Frangipani
    cluster (plus three Petal/lock machines) runs a paced, fully
    deterministic workload on server [a] while a {!Cluster.Netfault}
    nemesis executes a fault schedule — isolate [a] from the service
    machines, split the Petal replica set, flap links, drop or delay
    a fraction of all messages, cut single directions of single
    links. The schedule always heals; after a settling period the
    harness drains Petal's resync backlog, remounts a fresh server
    and checks the §5/§6 guarantees:

    - no write with a lapsed §6 stamp ever reached a disk
      ([Petal.Server.stale_applied_count] = 0 everywhere),
    - every acked operation (op + [Fs.sync] returned) survives with
      its bytes intact,
    - [degraded_count] drains to 0 after heal,
    - the volume is fsck-clean.

    Schedules are either scripted (one per named scenario) or
    generated from a seed; the nemesis PRNG, the simulation RNG and
    the generator are all seeded, so the same spec replays
    bit-identically — the sweep checks that too. *)

open Simkit
open Cluster
module Fs = Frangipani.Fs

type spec = Scripted of string | Random of int

type outcome = {
  label : string;
  acked : int;  (** ops whose op + sync both returned *)
  failed_ops : int;  (** ops that raised (partition, expiry, ...) *)
  expired : bool;  (** server [a] took the §6 expiry path *)
  stale_rejects : int;  (** mutations refused by the §6 stamp check *)
  stale_applied : int;  (** must be 0: lapsed-stamp writes applied *)
  nf : Netfault.stats;
  lost : string list;  (** acked files missing/corrupt after heal *)
  degraded_left : int;  (** must be 0: undrained resync backlog *)
  fsck_findings : string list;
  renew_misses : int;
  rpc_retries : int;
  end_ns : int;  (** simulated end time: the determinism fingerprint *)
}

(* The ledger, settle loops and fsck teeth live in {!Invariants},
   shared with the other fault harnesses. *)
let bytes_pat = Invariants.bytes_pat
let sweep_config = Invariants.sweep_config

(* Addresses the schedules play with. The lock servers are co-located
   on the Petal machines (Figure 2), so "the service cluster" is one
   address set. *)
type roles = { cluster : Net.addr list; a_addr : Net.addr }

(* --- schedules --------------------------------------------------------- *)

(* Times are relative to simulation start; the workload begins at 0
   and takes >= 40 s, so windows in [2 s, 60 s] overlap live traffic.
   Every schedule ends with [Netfault.clear]. *)
let scripted_schedule name (r : roles) =
  let p0 = List.nth r.cluster 0 in
  let rest = List.tl r.cluster in
  let cut_cluster nf = Netfault.partition nf [ r.a_addr ] r.cluster in
  let heal nf = Netfault.heal_all nf in
  let fin = (Sim.sec 70.0, Netfault.clear) in
  match name with
  | "isolate_server" ->
    (* [a] loses everything for 45 s: renewals fail, the lease
       expires, the clerk poisons; recovery replays the dead log. *)
    [ (Sim.sec 5.0, cut_cluster); (Sim.sec 50.0, heal); fin ]
  | "isolate_brief" ->
    (* 10 s outage, well inside the lease: ops stall and resume. *)
    [ (Sim.sec 5.0, cut_cluster); (Sim.sec 15.0, heal); fin ]
  | "split_petal" ->
    (* Replica set split: petal0 cannot reach its successor, so
       forwarded writes degrade and resync must drain after heal. *)
    [
      (Sim.sec 3.0, fun nf -> Netfault.partition nf [ p0 ] rest);
      (Sim.sec 40.0, heal);
      fin;
    ]
  | "client_petal0" ->
    (* [a] loses one service machine: piece failover + suspect
       pinning on the Petal side, lock groups owned by petal0 stall
       until heal, renewals keep succeeding via the other two. *)
    [
      (Sim.sec 3.0, fun nf -> Netfault.cut nf r.a_addr p0);
      (Sim.sec 45.0, heal);
      fin;
    ]
  | "isolate_petal0" ->
    [
      (Sim.sec 3.0, fun nf -> Netfault.isolate nf p0);
      (Sim.sec 45.0, heal);
      fin;
    ]
  | "oneway_to_petal0" ->
    (* Asymmetric: [a]'s datagrams to petal0 vanish, replies and
       grants still flow. *)
    [
      (Sim.sec 3.0, fun nf -> Netfault.cut ~oneway:true nf r.a_addr p0);
      (Sim.sec 45.0, heal);
      fin;
    ]
  | "oneway_from_petal0" ->
    (* Asymmetric the other way: petal0 executes requests but its
       replies are lost — retries must not double-apply. *)
    [
      (Sim.sec 3.0, fun nf -> Netfault.cut ~oneway:true nf p0 r.a_addr);
      (Sim.sec 45.0, heal);
      fin;
    ]
  | "flap" ->
    (* Six 3 s outages, 3 s apart: renewal backoff and request
       retransmission recover each time, no expiry. *)
    List.concat
      (List.init 6 (fun i ->
           let t0 = Sim.sec (5.0 +. (6.0 *. float_of_int i)) in
           [ (t0, cut_cluster); (t0 + Sim.sec 3.0, heal) ]))
    @ [ fin ]
  | "lossy" ->
    (* 15% of every message dropped for 48 s: retry with backoff
       carries renewals and RPCs through. *)
    [
      (Sim.sec 2.0, fun nf -> Netfault.shape ~drop:0.15 nf);
      (Sim.sec 50.0, fun nf -> Netfault.clear_shaping nf);
      fin;
    ]
  | "slow" ->
    (* +30 ms / ±20 ms on every message: everything succeeds, later. *)
    [
      (Sim.sec 2.0, fun nf -> Netfault.shape ~delay:(Sim.ms 30) ~jitter:(Sim.ms 20) nf);
      (Sim.sec 50.0, fun nf -> Netfault.clear_shaping nf);
      fin;
    ]
  | "lossy_cut" ->
    (* A lossy network and a dead link at the same time. *)
    [
      (Sim.sec 2.0, fun nf -> Netfault.shape ~drop:0.10 nf);
      (Sim.sec 4.0, fun nf -> Netfault.cut nf r.a_addr p0);
      (Sim.sec 40.0, heal);
      (Sim.sec 48.0, fun nf -> Netfault.clear_shaping nf);
      fin;
    ]
  | _ -> invalid_arg ("partsweep: unknown scripted schedule " ^ name)

let scripted_labels =
  [
    "isolate_server"; "isolate_brief"; "split_petal"; "client_petal0";
    "isolate_petal0"; "oneway_to_petal0"; "oneway_from_petal0"; "flap";
    "lossy"; "slow"; "lossy_cut";
  ]

(* Seed-generated schedules: 2-4 sequential fault windows drawn from
   the same families as the scripted ones, all healed by ~75 s. *)
let random_schedule seed (r : roles) =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let p_of i = List.nth r.cluster (i mod List.length r.cluster) in
  let evs = ref [] in
  let t = ref (Sim.sec 2.0) in
  let n = 2 + Random.State.int rng 3 in
  for _ = 1 to n do
    let start = !t + Sim.ms (Random.State.int rng 4000) in
    let dur = Sim.sec 3.0 + Sim.ms (Random.State.int rng 27_000) in
    let ev =
      match Random.State.int rng 6 with
      | 0 -> (fun nf -> Netfault.partition nf [ r.a_addr ] r.cluster)
      | 1 ->
        let p = p_of (Random.State.int rng 3) in
        fun nf -> Netfault.cut nf r.a_addr p
      | 2 ->
        let p = p_of (Random.State.int rng 3) in
        let flip = Random.State.bool rng in
        fun nf ->
          if flip then Netfault.cut ~oneway:true nf r.a_addr p
          else Netfault.cut ~oneway:true nf p r.a_addr
      | 3 ->
        let p = p_of (Random.State.int rng 3) in
        fun nf -> Netfault.partition nf [ p ] (List.filter (( <> ) p) r.cluster)
      | 4 ->
        let drop = 0.05 +. (float_of_int (Random.State.int rng 15) /. 100.0) in
        fun nf -> Netfault.shape ~drop nf
      | _ ->
        let delay = Sim.ms (5 + Random.State.int rng 40) in
        let jitter = Sim.ms (Random.State.int rng 20) in
        fun nf -> Netfault.shape ~delay ~jitter nf
    in
    evs := (start + dur, Netfault.clear) :: (start, ev) :: !evs;
    t := start + dur + Sim.ms 500
  done;
  List.sort (fun (t1, _) (t2, _) -> compare t1 t2) !evs
  @ [ (!t + Sim.sec 5.0, Netfault.clear) ]

(* --- the run ----------------------------------------------------------- *)

let schedule_end evs = List.fold_left (fun acc (t, _) -> max acc t) 0 evs

(* The paced workload: one op per simulated second, each acked by a
   sync. Deterministic so same-seed runs replay identically. *)
let nops = 40

let run spec =
  let label, sim_seed, nf_seed =
    match spec with
    | Scripted name -> (name, 42, 42)
    | Random n -> (Printf.sprintf "random_%d" n, 1000 + n, n)
  in
  Sim.run ~seed:sim_seed ~until:(Sim.sec 3600.0) (fun () ->
      Faultpoint.reset ();
      let t = Testbed.build ~petal_servers:3 ~ndisks:2 ~ngroups:16 () in
      let a = Testbed.add_server t ~config:sweep_config ~name:"part-a" () in
      let roles =
        {
          cluster = Array.to_list t.lock_addrs;
          a_addr = Testbed.addr_of t a;
        }
      in
      let evs =
        match spec with
        | Scripted name -> scripted_schedule name roles
        | Random n -> random_schedule n roles
      in
      let nf = Netfault.create ~seed:nf_seed t.net in
      Netfault.schedule nf evs;
      let led = Invariants.ledger () and failed = ref 0 in
      let expired = ref false in
      let dir = Fs.mkdir a ~dir:Fs.root "part" in
      let wl_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          let stopped = ref false in
          for i = 0 to nops - 1 do
            if not !stopped then begin
              (try
                 (* Occasionally destroy the most recently acked file
                    first (exercises unlink + decommit under the
                    guard); it is dropped from the acked set before
                    the attempt, since we never assert absence. *)
                 if i mod 9 = 5 then
                   (match Invariants.pop_latest led with
                   | Some (path, _) ->
                     Fs.unlink a ~dir (List.nth path (List.length path - 1));
                     Fs.sync a
                   | None -> ());
                 let name = Printf.sprintf "f%02d" i in
                 let f = Fs.create a ~dir name in
                 let data = bytes_pat (512 * (1 + (i mod 4))) (100 + i) in
                 Fs.write a f ~off:0 data;
                 let final =
                   if i mod 5 = 2 then begin
                     Fs.rename a ~sdir:dir name ~ddir:dir (name ^ ".r");
                     name ^ ".r"
                   end
                   else name
                 in
                 Fs.sync a;
                 Invariants.ack led ~path:[ "part"; final ] data
               with ex ->
                incr failed;
                (match Invariants.classify a ex with
                | Invariants.Expired ->
                  expired := true;
                  stopped := true
                | Invariants.Failed -> ()));
              if not !stopped then Sim.sleep (Sim.sec 1.0)
            end
          done;
          Sim.Ivar.fill wl_done ());
      Sim.Ivar.read wl_done;
      (* Make sure the last heal has been applied, then give lease
         recovery (expiry + nag + replay) and resync time to settle. *)
      let horizon = schedule_end evs + Sim.sec 5.0 in
      if Sim.now () < horizon then Sim.sleep (horizon - Sim.now ());
      Sim.sleep (Sim.sec 90.0);
      let petal_servers = t.petal.Petal.Testbed.servers in
      let degraded_left = Invariants.drain_backlog petal_servers in
      let renew_misses = (Fs.lease_stats a).Locksvc.Clerk.renew_misses in
      let rpc_retries = (Fs.net_stats a).Rpc.retries in
      let clean_unmount =
        match Fs.unmount a with () -> not !expired | exception _ -> false
      in
      (* A fresh server sees the post-heal truth: every acked file
         must be there with its bytes, and the volume fsck-clean. *)
      let c = Testbed.add_server t ~name:"part-c" () in
      (* If [a]'s lease died, its log is replayed by the next live
         clerk with the table open — which is [c], just now: wait for
         the lock service's nag to reach it and the replay to finish
         before judging the volume. *)
      if not clean_unmount then Invariants.await_replay c;
      let lost = Invariants.verify led c in
      let fsck_findings = Invariants.fsck c in
      let sum f = Invariants.sum f petal_servers in
      {
        label;
        acked = Invariants.acked_count led;
        failed_ops = !failed;
        expired = !expired;
        stale_rejects = sum Petal.Server.stale_reject_count;
        stale_applied = sum Petal.Server.stale_applied_count;
        nf = Netfault.stats nf;
        lost;
        degraded_left;
        fsck_findings;
        renew_misses;
        rpc_retries;
        end_ns = Sim.now ();
      })

(** What an outcome violates; [] = all invariants held. *)
let failures o =
  let bad cond msg acc = if cond then msg :: acc else acc in
  []
  |> bad (o.lost <> [])
       (Printf.sprintf "acked ops lost: %s" (String.concat "; " o.lost))
  |> bad (o.fsck_findings <> [])
       (Printf.sprintf "fsck: %s" (String.concat "; " o.fsck_findings))
  |> bad (o.degraded_left <> 0)
       (Printf.sprintf "degraded backlog not drained: %d" o.degraded_left)
  |> bad (o.stale_applied <> 0)
       (Printf.sprintf "expired-stamp writes applied: %d" o.stale_applied)
  |> bad (o.acked = 0) "no op was ever acked"
  |> List.rev
