(** The shared invariant engine of the fault-injection harnesses.

    {!Crashsweep}, {!Partsweep}, {!Reconfsweep} and {!Soak} all argue
    the same §5–§7 guarantees from different fault families; this
    module holds the common teeth so every harness checks them the
    same way:

    - the {e acked-ops-survive} ledger: an operation whose op +
      [Fs.sync] both returned must be readable, bytes intact, from a
      fresh server after everything heals;
    - the settle loops: drain Petal's degraded/push backlog, wait out
      pending transfers and the post-cutover GC, await a log replay on
      a fresh server after an unclean unmount;
    - the §6 freshness probe (no lapsed-stamp write ever applied);
    - the fsck wrapper;
    - a counting check engine that timestamps every violation, so a
      long soak can report {e when} an invariant first broke and
      {!Soak}'s replay driver can dump it. *)

open Simkit
module Fs = Frangipani.Fs

let bytes_pat n seed = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) land 0xff))

(* Synchronous logging makes "op returned" mean "op is in the log",
   which is what the acked ledger asserts survives. *)
let sweep_config = { Frangipani.Ctx.default_config with synchronous_log = true }

let pp_findings fs = List.map (Format.asprintf "%a" Frangipani.Fsck.pp_finding) fs

let fsck fs = pp_findings (Frangipani.Fsck.check fs)

let sum f servers = Array.fold_left (fun acc s -> acc + f s) 0 servers

(* --- the check engine -------------------------------------------------- *)

(** Counts every invariant evaluation and records each violation with
    the simulated time it was observed. *)
type engine = {
  mutable checks : int;
  mutable viols : (int * string) list;  (* newest first *)
}

let engine () = { checks = 0; viols = [] }

let check e cond msg =
  e.checks <- e.checks + 1;
  if not cond then e.viols <- (Sim.now (), msg) :: e.viols

let checks_run e = e.checks
let violations e = List.rev e.viols
let first_violation e = match List.rev e.viols with v :: _ -> Some v | [] -> None

(* --- the acked-ops ledger ---------------------------------------------- *)

(** Operations the workload saw acked (op + sync both returned), each
    a root-relative path and the exact bytes that must survive. *)
type ledger = {
  mutable entries : (string list * bytes) list;  (* newest first *)
  mutable count : int;
}

let ledger () = { entries = []; count = 0 }

let ack l ~path data =
  l.entries <- (path, data) :: l.entries;
  l.count <- l.count + 1

(* Withdraw the most recently acked entry (the sweeps unlink it next,
   and the ledger never asserts absence). *)
let pop_latest l =
  match l.entries with
  | [] -> None
  | e :: rest ->
    l.entries <- rest;
    l.count <- l.count - 1;
    Some e

let acked_count l = l.count

let resolve fs path =
  List.fold_left (fun dir name -> Fs.lookup fs ~dir name) Fs.root path

let verify_entries entries fs =
  List.filter_map
    (fun (path, data) ->
      let name = String.concat "/" path in
      match Fs.read fs (resolve fs path) ~off:0 ~len:(Bytes.length data) with
      | got -> if Bytes.equal got data then None else Some (name ^ ": corrupt")
      | exception _ -> Some (name ^ ": missing"))
    entries

(* Every acked entry, read back through [fs]: the list of entries that
   are missing or corrupt ([] = the ledger invariant holds). Oldest
   first, so a failure report reads chronologically. *)
let verify l fs = verify_entries (List.rev l.entries) fs

(* A stable sample of the ledger: skip the [skip] newest entries (the
   only ones a workload may still unlink or rename) and return up to
   [n] of the next-newest. The soak's mid-flight spot checks — a
   quiesce checkpoint, a snapshot mount — verify these without paying
   for a full-ledger sweep, and without racing the workload's own
   pop-and-unlink moves. *)
let recent l ~skip ~n =
  let rec go sk nn = function
    | [] -> []
    | _ :: tl when sk > 0 -> go (sk - 1) nn tl
    | _ when nn = 0 -> []
    | e :: tl -> e :: go 0 (nn - 1) tl
  in
  go skip n l.entries

(* --- workload-exception classification --------------------------------- *)

(** How a workload op failed: the server's lease died (poisoned — the
    worker must stop), or a transient fault the worker rides out. *)
type op_error = Expired | Failed

let classify fs = function
  | Locksvc.Types.Lease_expired -> Expired
  | Frangipani.Errors.Error _ | Petal.Protocol.Unavailable _
  | Petal.Protocol.Stale_write _ | Cluster.Host.Crashed _ | Failure _ ->
    if Fs.is_poisoned fs then Expired else Failed
  | ex -> raise ex

(* A {!Vfs.t} whose every operation swallows workload failures
   (counting them in [failed]) instead of raising: ambient background
   traffic under an active nemesis must degrade, not kill the run.
   Failed creates/lookups return inum [-1]; later ops on it fail and
   are swallowed in turn. *)
let shield ?(failed = ref 0) (v : Vfs.t) =
  let swallow0 dflt f = try f () with _ -> incr failed; dflt in
  let swallow f = swallow0 () f in
  {
    v with
    Vfs.create = (fun ~dir name -> swallow0 (-1) (fun () -> v.Vfs.create ~dir name));
    mkdir = (fun ~dir name -> swallow0 (-1) (fun () -> v.Vfs.mkdir ~dir name));
    symlink =
      (fun ~dir name ~target ->
        swallow0 (-1) (fun () -> v.Vfs.symlink ~dir name ~target));
    lookup = (fun ~dir name -> swallow0 (-1) (fun () -> v.Vfs.lookup ~dir name));
    readdir = (fun d -> swallow0 [] (fun () -> v.Vfs.readdir d));
    readlink = (fun i -> swallow0 "" (fun () -> v.Vfs.readlink i));
    link = (fun ~dir name ~inum -> swallow (fun () -> v.Vfs.link ~dir name ~inum));
    unlink = (fun ~dir name -> swallow (fun () -> v.Vfs.unlink ~dir name));
    rmdir = (fun ~dir name -> swallow (fun () -> v.Vfs.rmdir ~dir name));
    rename =
      (fun ~sdir sname ~ddir dname ->
        swallow (fun () -> v.Vfs.rename ~sdir sname ~ddir dname));
    read =
      (fun i ~off ~len -> swallow0 (Bytes.create 0) (fun () -> v.Vfs.read i ~off ~len));
    write = (fun i ~off data -> swallow (fun () -> v.Vfs.write i ~off data));
    truncate = (fun i ~size -> swallow (fun () -> v.Vfs.truncate i ~size));
    size = (fun i -> swallow0 0 (fun () -> v.Vfs.size i));
    fsync = (fun i -> swallow (fun () -> v.Vfs.fsync i));
    sync = (fun () -> swallow (fun () -> v.Vfs.sync ()));
    drop_caches = (fun () -> swallow (fun () -> v.Vfs.drop_caches ()));
  }

(* --- settle loops ------------------------------------------------------- *)

(* Wait for Petal's degraded/push backlog to drain cluster-wide;
   returns what is left after [rounds] 5 s polls (0 = converged, the
   replica-convergence invariant). *)
let drain_backlog ?(rounds = 24) servers =
  let degraded () = sum Petal.Server.degraded_count servers in
  let rec go n =
    if degraded () = 0 || n = 0 then degraded ()
    else begin
      Sim.sleep (Sim.sec 5.0);
      go (n - 1)
    end
  in
  go rounds

(* Wait out any still-pending transfer and the post-cutover GC of
   chunks on non-owners; returns (pending_left, leftover_chunks) —
   (false, 0) is the reconfiguration-settles invariant. *)
let settle_transfers ?(rounds = 24) servers =
  let pending_any () = Array.exists Petal.Server.pending_transfer servers in
  let leftover () = sum Petal.Server.nonowned_chunk_count servers in
  let rec go n =
    if (pending_any () || leftover () > 0) && n > 0 then begin
      Sim.sleep (Sim.sec 5.0);
      go (n - 1)
    end
  in
  go rounds;
  (pending_any (), leftover ())

(* After an unclean unmount, wait until a fresh server [fs] has
   replayed the dead server's log (the lock service's nag has to
   reach it first), then give the replay time to finish. *)
let await_replay ?(rounds = 36) fs =
  let rec go n =
    if n > 0 && (Fs.recovery_stats fs).Fs.replays = 0 then begin
      Sim.sleep (Sim.sec 5.0);
      go (n - 1)
    end
  in
  go rounds;
  Sim.sleep (Sim.sec 30.0)
