(** Multi-tenant Zipf workload for the scale experiments.

    Each Frangipani server hosts a tenant directory worked by a crowd
    of simulated users; file popularity within a tenant follows a
    Zipf distribution over a large logical namespace (the full id
    space across a 128-server run is measured in millions of names),
    and only the files actually touched ever materialise. A small
    cluster-wide shared directory is read by every tenant, so the
    lock service and cache-coherence machinery see cross-server
    traffic, while the bulk of the load exhibits the
    little-write-sharing locality the paper's workloads assume (§9).

    All randomness is drawn from the simulation's seeded RNG — runs
    are bit-for-bit reproducible. *)

open Simkit

type result = {
  ops : int;  (** data + namespace operations completed *)
  bytes : int;  (** payload bytes moved (reads + writes) *)
  distinct_files : int;  (** files actually materialised *)
  seconds : float;  (** simulated elapsed time *)
  ops_per_sec : float;  (** aggregate, in simulated time *)
  mb_per_s : float;  (** aggregate payload throughput *)
}

(* Zipf(s) sampler over ranks [0, n): inverse-CDF lookup by binary
   search in a precomputed cumulative table. *)
let zipf_cdf ~n ~s =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let acc = ref 0.0 in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      w
  in
  let total = !acc in
  fun () ->
    let u = Sim.random_float total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

(* What a tenant knows about a logical file id. [Inflight] marks a
   create another user of the same tenant has issued but not finished;
   racing users fall back to a read elsewhere instead of colliding. *)
type file_state = Done of int | Inflight

let io_unit = 4096

let run vfss ?(users_per_server = 16) ?(ops_per_user = 24) ?(namespace = 16384)
    ?(zipf_s = 1.1) ?(write_frac = 0.3) ?(shared_frac = 0.05)
    ?(nshared = 8) ?(think = Sim.ms 2) () =
  let nservers = List.length vfss in
  if nservers = 0 then invalid_arg "Multitenant.run: no servers";
  let sample = zipf_cdf ~n:namespace ~s:zipf_s in
  let wbuf = Bytes.make io_unit 'm' in
  (* Server 0 sets up the cluster-wide shared read set. *)
  let v0 = List.hd vfss in
  let shared_dir = v0.Vfs.mkdir ~dir:v0.Vfs.root "shared" in
  let shared =
    Array.init nshared (fun i ->
        let inum = v0.Vfs.create ~dir:shared_dir (Printf.sprintf "s%d" i) in
        v0.Vfs.write inum ~off:0 wbuf;
        inum)
  in
  v0.Vfs.sync ();
  (* One tenant directory and file table per server. *)
  let tenants =
    List.mapi
      (fun i (v : Vfs.t) ->
        let dir = v.Vfs.mkdir ~dir:v.Vfs.root (Printf.sprintf "tenant%d" i) in
        (v, dir, Hashtbl.create 256))
      vfss
  in
  let ops = ref 0 and bytes = ref 0 and created = ref 0 in
  let left = ref (nservers * users_per_server) in
  let all_done = Sim.Ivar.create () in
  let t0 = Sim.now () in
  List.iter
    (fun (v, dir, files) ->
      for _u = 1 to users_per_server do
        Sim.spawn (fun () ->
            for _op = 1 to ops_per_user do
              Sim.sleep (Sim.random_int think);
              (if Sim.random_float 1.0 < shared_frac then begin
                 (* Cross-tenant traffic: read a shared hot file. *)
                 let inum = shared.(Sim.random_int nshared) in
                 ignore (v.Vfs.read inum ~off:0 ~len:io_unit);
                 bytes := !bytes + io_unit
               end
               else begin
                 let id = sample () in
                 match Hashtbl.find_opt files id with
                 | None ->
                   Hashtbl.replace files id Inflight;
                   let inum = v.Vfs.create ~dir (Printf.sprintf "f%d" id) in
                   v.Vfs.write inum ~off:0 wbuf;
                   Hashtbl.replace files id (Done inum);
                   incr created;
                   bytes := !bytes + io_unit
                 | Some Inflight ->
                   (* A same-tenant user is mid-create: touch the
                      namespace instead of racing it. *)
                   ignore (v.Vfs.readdir dir)
                 | Some (Done inum) ->
                   if Sim.random_float 1.0 < write_frac then begin
                     v.Vfs.write inum ~off:0 wbuf;
                     bytes := !bytes + io_unit
                   end
                   else begin
                     ignore (v.Vfs.read inum ~off:0 ~len:io_unit);
                     bytes := !bytes + io_unit
                   end
               end);
              incr ops
            done;
            decr left;
            if !left = 0 then Sim.Ivar.fill all_done ())
      done)
    tenants;
  Sim.Ivar.read all_done;
  List.iter (fun (v : Vfs.t) -> v.Vfs.sync ()) vfss;
  let seconds = Sim.to_sec (Sim.now () - t0) in
  {
    ops = !ops;
    bytes = !bytes;
    distinct_files = !created;
    seconds;
    ops_per_sec = (if seconds > 0.0 then float_of_int !ops /. seconds else 0.0);
    mb_per_s =
      (if seconds > 0.0 then float_of_int !bytes /. 1e6 /. seconds else 0.0);
  }
