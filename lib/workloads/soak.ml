(** Long-horizon soak harness: hours of simulated time on a full-size
    cluster with every fault family composed, and invariants checked
    continuously instead of only at the end.

    One [run] builds a 32-server Frangipani cluster over an 8-member
    Petal cluster (6 active), then lets a seeded orchestrator overlap,
    round after round:

    - the multi-tenant Zipf workload ({!Multitenant}) as ambient
      traffic on a rotating subset of servers, shielded so it degrades
      under faults instead of dying;
    - paced, ledger-acked workloads on a handful of tracked servers;
    - {!Cluster.Netfault} windows (isolation, link cuts, loss, delay);
    - Frangipani server crashes with a bounded-recovery monitor (some
      live server must replay the victim's log within 300 s);
    - Petal server crashes armed at {!Simkit.Faultpoint} sites;
    - Petal add/remove reconfigurations, including one round where a
      hot-chunk writer hammers moving chunks through the whole handoff
      — the soak asserts the cutover still commits within a bound,
      which is exactly what the drain-time write freeze
      ({!Petal.Server}) exists to guarantee;
    - §8 snapshot barriers: taken mid-flight, mounted read-only and
      spot-checked against the acked ledger, then deleted (snapshots
      pin reconfiguration, so the delete also re-enables it);
    - log-pressure phases: bursts of unsynced metadata churn that fill
      the 128 KB WAL and force reclaim stalls.

    Roughly every ten simulated minutes the orchestrator quiesces the
    workloads and runs a checkpoint: backlog drained, no transfer
    pending, no chunk left on a non-owner, no expired-stamp write
    applied, a sample of the acked ledger readable bytes-intact, and
    the volume fsck-clean. Violations are recorded with their
    simulated time ({!Invariants.engine}), so a failing seed reports
    {e when} an invariant first broke — and [debug_soak] replays it
    bit-identically from the label alone.

    Scripted schedules pin down the freeze protocol itself:
    ["hot_cutover"] (bounded cutover under a sustained hot writer),
    ["freeze_retry"] (a frozen raw writer rides through invisibly),
    ["snap_during_reconf"] / ["reconf_during_snap"] (the CoW-epoch vs
    transfer-epoch interlock composes in both orders), and
    ["composed_quick"] (one full random-style round). *)

open Simkit
open Cluster
module Fs = Frangipani.Fs

type spec = Scripted of string | Random of int

type reconf_op = Add of int | Remove of int

type crash_spec = {
  site : string;  (** faultpoint site to arm *)
  at_hit : int;  (** 1-based hit of that site (counted after enable) *)
  victim : int;  (** Petal member index whose host crashes *)
  restart_after : Sim.time;
}

type schedule = {
  duration : Sim.time;  (** workloads stop at this simulated offset *)
  reconfigs : (Sim.time * reconf_op) list;
  nemesis : (Sim.time * string * (Netfault.t -> unit)) list;
  fs_crashes : Sim.time list;  (** k-th entry crashes the k-th victim server *)
  petal_crashes : crash_spec list;
  snapshots : Sim.time list;  (** barrier + ro-mount check + delete *)
  pressure : Sim.time list;  (** WAL log-pressure burst start times *)
  hot : (Sim.time * Sim.time) option;  (** FS hot-chunk writer window *)
  raw_hot : (Sim.time * Sim.time) option;  (** raw-Petal hot writer window *)
  ambient : (Sim.time * int) list;  (** (start, round index) *)
  checkpoints : Sim.time list;
  cutover_bound : Sim.time;  (** max allowed pending->commit latency *)
}

type outcome = {
  label : string;
  sim_hours : float;
  acked : int;
  failed_ops : int;  (** tracked-worker ops that raised and were retried past *)
  expired_servers : int;  (** workers stopped by §6 lease expiry *)
  crashed_fs : int;  (** Frangipani servers crashed by the schedule *)
  requested : int;
  committed : int;
  reconf_rejected : int;  (** proposals refused (pending transfer / snapshot) *)
  snapshots_ok : int;
  snapshots_deleted : int;
  snap_rejected : int;  (** barrier snapshots refused mid-transfer *)
  freeze_rejects : int;  (** server-side drain-time write-freeze rejections *)
  freeze_waits : int;  (** client wait-and-retry rounds riding the freeze *)
  max_cutover_ns : int;  (** worst pending->commit latency observed *)
  cutover_bound_ns : int;
  raw_errors : int;  (** raw hot writer errors surfaced (-1: no raw writer) *)
  raw_ok : bool;  (** raw hot writer's last write read back intact *)
  raw_freeze_waits : int;
  hot_writes : int;
  log_pressure_stalls : int;
  wal_reclaims : int;  (** reclaim rounds (the pressure phases' footprint) *)
  replays : int;  (** recovery replays run cluster-wide *)
  ambient_ops : int;
  ambient_failed : int;  (** shielded ambient ops that failed under faults *)
  checks_run : int;
  violations : (Sim.time * string) list;  (** (when, what) — must be [] *)
  timeline : (Sim.time * string) list;  (** orchestrator event log *)
  lost : string list;
  fsck_findings : string list;
  stale_applied : int;
  degraded_left : int;
  pending_left : bool;
  leftover_chunks : int;
  final_active : int list;
  expected_active : int list;
  nf : Netfault.stats;
  end_ns : int;  (** the determinism fingerprint *)
}

let sweep_config = Invariants.sweep_config

(* Addresses the schedules play with. *)
type roles = { petal : Net.addr array; tracked : Net.addr array }

let s = Sim.sec

(* --- schedules --------------------------------------------------------- *)

(* Provisioned Petal members 0..7; 0..5 start active. *)
let initial_active = [ 0; 1; 2; 3; 4; 5 ]

let expected_active_of sched =
  List.fold_left
    (fun acc (_, op) ->
      match op with
      | Add i -> List.sort_uniq compare (i :: acc)
      | Remove i -> List.filter (( <> ) i) acc)
    initial_active sched.reconfigs

let no_schedule duration =
  {
    duration;
    reconfigs = [];
    nemesis = [];
    fs_crashes = [];
    petal_crashes = [];
    snapshots = [];
    pressure = [];
    hot = None;
    raw_hot = None;
    ambient = [];
    checkpoints = [];
    cutover_bound = s 60.0;
  }

let scripted_schedule name (r : roles) =
  match name with
  | "hot_cutover" ->
    (* A sustained hot-chunk writer spans the whole handoff of [Add 6].
       Without the drain-time freeze its re-marking defers the cutover
       forever; with it the cutover must commit within 30 s. *)
    {
      (no_schedule (s 140.0)) with
      reconfigs = [ (s 15.0, Add 6) ];
      hot = Some (s 8.0, s 68.0);
      ambient = [ (s 4.0, 0) ];
      checkpoints = [ s 110.0 ];
      cutover_bound = s 30.0;
    }
  | "freeze_retry" ->
    (* A raw Petal client hammers a chunk that provably changes owners
       under [Add 6]. The freeze must stay invisible to it: zero
       surfaced errors, its last write intact, and its driver's
       wait-and-retry counter proves it actually hit the freeze. *)
    {
      (no_schedule (s 120.0)) with
      reconfigs = [ (s 15.0, Add 6) ];
      raw_hot = Some (s 8.0, s 58.0);
      checkpoints = [ s 95.0 ];
      cutover_bound = s 40.0;
    }
  | "snap_during_reconf" ->
    (* The §8 barrier fires while the ownership transfer is pending:
       the snapshot must be refused (CoW version epochs cannot be
       grafted onto a moving chunk), then succeed on retry after the
       cutover. The hot writer holds the transfer open past the
       barrier's first attempt. *)
    {
      (no_schedule (s 170.0)) with
      reconfigs = [ (s 15.0, Add 6) ];
      hot = Some (s 8.0, s 55.0);
      snapshots = [ s 16.0 ];
      checkpoints = [ s 140.0 ];
      cutover_bound = s 30.0;
    }
  | "reconf_during_snap" ->
    (* The opposite order: a snapshot exists when [Add 6] is proposed,
       so the reconfiguration is refused until the snapshot is deleted
       — then the retried proposal commits. *)
    {
      (no_schedule (s 170.0)) with
      snapshots = [ s 8.0 ];
      reconfigs = [ (s 12.0, Add 6) ];
      checkpoints = [ s 140.0 ];
      cutover_bound = s 60.0;
    }
  | "composed_quick" ->
    (* One full random-style round in six minutes: ambient Zipf
       traffic, two nemesis windows, a reconfiguration each way, a
       Frangipani crash with its recovery monitor, a Petal faultpoint
       crash, a log-pressure burst and a snapshot, with two quiesce
       checkpoints. *)
    {
      duration = s 380.0;
      reconfigs = [ (s 40.0, Add 6); (s 200.0, Remove 2) ];
      nemesis =
        [
          ( s 50.0,
            "isolate joining petal member 6",
            fun nf -> Netfault.isolate nf r.petal.(6) );
          (s 65.0, "heal", fun nf -> Netfault.heal_all nf);
          (s 215.0, "10% loss", fun nf -> Netfault.shape ~drop:0.10 nf);
          (s 245.0, "clear shaping", fun nf -> Netfault.clear_shaping nf);
        ];
      fs_crashes = [ s 100.0 ];
      petal_crashes =
        [
          { site = "petal.resync_push"; at_hit = 4; victim = 1;
            restart_after = s 10.0 };
        ];
      snapshots = [ s 290.0 ];
      pressure = [ s 218.0 ];
      hot = None;
      raw_hot = None;
      ambient = [ (s 6.0, 0); (s 150.0, 1) ];
      checkpoints = [ s 180.0; s 350.0 ];
      cutover_bound = s 120.0;
    }
  | _ -> invalid_arg ("soak: unknown scripted schedule " ^ name)

let scripted_labels =
  [
    "hot_cutover"; "freeze_retry"; "snap_during_reconf"; "reconf_during_snap";
    "composed_quick";
  ]

(* Seed-generated schedules: the simulated horizon is divided into
   10-minute rounds; each round overlays ambient traffic, 1-2 nemesis
   windows, a probable reconfiguration (one round gets the hot-chunk
   writer on top), a probable server crash, snapshot and log-pressure
   burst, and ends with a quiesce checkpoint. A couple of Petal
   faultpoint crashes are armed for the whole run. *)
let round_len = s 600.0

let random_schedule seed ~duration (r : roles) =
  let rng = Random.State.make [| seed; 0x50ac; 0x5eed |] in
  let rounds = max 1 (duration / round_len) in
  let duration = rounds * round_len in
  let active = ref initial_active and standby = ref [ 6; 7 ] in
  let hot_round = Random.State.int rng rounds in
  let reconfigs = ref []
  and nemesis = ref []
  and fs_crashes = ref []
  and snapshots = ref []
  and pressure = ref []
  and ambient = ref []
  and checkpoints = ref []
  and hot = ref None in
  for round = 0 to rounds - 1 do
    let r0 = round * round_len in
    ambient := (r0 + s 5.0 + Sim.ms (Random.State.int rng 8000), round) :: !ambient;
    (* nemesis windows, sequential within the round's first half *)
    let wt = ref (r0 + s 30.0) in
    for _ = 1 to 1 + Random.State.int rng 2 do
      let start = !wt + Sim.ms (Random.State.int rng 30_000) in
      let dur = s 5.0 + Sim.ms (Random.State.int rng 15_000) in
      let desc, fault, heal =
        match Random.State.int rng 5 with
        | 0 ->
          let i = Random.State.int rng 8 in
          ( Printf.sprintf "isolate petal %d" i,
            (fun nf -> Netfault.isolate nf r.petal.(i)),
            Netfault.heal_all )
        | 1 ->
          let i = Random.State.int rng (Array.length r.tracked) in
          let j = Random.State.int rng 8 in
          ( Printf.sprintf "cut tracked %d <-> petal %d" i j,
            (fun nf -> Netfault.cut nf r.tracked.(i) r.petal.(j)),
            Netfault.heal_all )
        | 2 ->
          let i = Random.State.int rng 8 in
          let j = (i + 1 + Random.State.int rng 7) mod 8 in
          ( Printf.sprintf "cut petal %d <-> petal %d" i j,
            (fun nf -> Netfault.cut nf r.petal.(i) r.petal.(j)),
            Netfault.heal_all )
        | 3 ->
          let drop = 0.04 +. (float_of_int (Random.State.int rng 11) /. 100.0) in
          ( Printf.sprintf "%.0f%% loss" (drop *. 100.0),
            (fun nf -> Netfault.shape ~drop nf),
            Netfault.clear_shaping )
        | _ ->
          let delay = Sim.ms (5 + Random.State.int rng 25) in
          let jitter = Sim.ms (Random.State.int rng 15) in
          ( "delay/jitter",
            (fun nf -> Netfault.shape ~delay ~jitter nf),
            Netfault.clear_shaping )
      in
      nemesis :=
        (start + dur, "heal: " ^ desc, heal) :: (start, desc, fault) :: !nemesis;
      wt := start + dur + s 2.0
    done;
    (* a reconfiguration most rounds; the hot round always gets one *)
    if round = hot_round || Random.State.int rng 3 < 2 then begin
      let at = r0 + s 60.0 + Sim.ms (Random.State.int rng 120_000) in
      let op =
        let can_add = !standby <> [] and can_rm = List.length !active > 4 in
        if can_add && ((not can_rm) || Random.State.bool rng) then begin
          let l = !standby in
          let i = List.nth l (Random.State.int rng (List.length l)) in
          standby := List.filter (( <> ) i) l;
          active := List.sort_uniq compare (i :: !active);
          Add i
        end
        else begin
          let l = !active in
          let i = List.nth l (Random.State.int rng (List.length l)) in
          active := List.filter (( <> ) i) l;
          standby := List.sort_uniq compare (i :: !standby);
          Remove i
        end
      in
      reconfigs := (at, op) :: !reconfigs;
      if round = hot_round then hot := Some (at - s 5.0, at + s 55.0)
    end;
    if Random.State.int rng 2 = 0 then
      fs_crashes := (r0 + s 150.0 + Sim.ms (Random.State.int rng 250_000)) :: !fs_crashes;
    if Random.State.int rng 2 = 0 then
      snapshots := (r0 + s 380.0 + Sim.ms (Random.State.int rng 60_000)) :: !snapshots;
    if Random.State.int rng 2 = 0 then
      pressure := (r0 + s 60.0 + Sim.ms (Random.State.int rng 300_000)) :: !pressure;
    checkpoints := (r0 + s 560.0) :: !checkpoints
  done;
  let petal_crashes =
    let sites =
      [| "petal.resync_push"; "petal.chunk_write"; "petal.mgmt_propose";
         "petal.cutover_propose" |]
    in
    let n = Random.State.int rng 3 in
    List.init n (fun k ->
        { site = sites.((Random.State.int rng 4 + k) mod 4);
          at_hit = 2 + Random.State.int rng 40;
          victim = Random.State.int rng 8;
          restart_after = s 8.0 + Sim.ms (Random.State.int rng 8000) })
  in
  {
    duration;
    reconfigs = List.rev !reconfigs;
    nemesis = List.sort (fun (t1, _, _) (t2, _, _) -> compare t1 t2) !nemesis;
    fs_crashes = List.rev !fs_crashes;
    petal_crashes;
    snapshots = List.rev !snapshots;
    pressure = List.rev !pressure;
    hot = !hot;
    raw_hot = None;
    ambient = List.rev !ambient;
    checkpoints = List.rev !checkpoints;
    (* a transfer can be delayed by a nemesis window or a crashed
       member's restart on top of the drain itself, so the bound is
       looser than the scripted hot case's 30 s *)
    cutover_bound = s 180.0;
  }

(* --- the run ----------------------------------------------------------- *)

let run ?duration ?fs_servers spec =
  let label, sim_seed, nf_seed =
    match spec with
    | Scripted name -> (name, 42, 42)
    | Random n -> (Printf.sprintf "random_%d" n, 3000 + n, n)
  in
  let dur_req =
    match duration with Some d -> d | None -> Sim.sec 3600.0
  in
  let until =
    match spec with
    | Random _ -> dur_req + Sim.sec 3600.0
    | Scripted _ -> Sim.sec 7200.0
  in
  Sim.run ~seed:sim_seed ~until (fun () ->
      Faultpoint.reset ();
      let nfs =
        match fs_servers with
        | Some n -> max 5 n
        | None -> (
          match spec with
          | Random _ -> 32
          | Scripted "composed_quick" -> 8
          | Scripted _ -> 6)
      in
      let t =
        Testbed.build ~petal_servers:8 ~petal_active:6 ~ndisks:2
          ~disk_capacity:(256 * 1024 * 1024) ()
      in
      let servers =
        Array.init nfs (fun i ->
            Testbed.add_server t ~config:sweep_config
              ~name:(Printf.sprintf "soak%02d" i) ())
      in
      let roles =
        { petal = t.petal.Petal.Testbed.addrs;
          tracked = Array.map (Testbed.addr_of t) (Array.sub servers 0 3) }
      in
      let sched =
        match spec with
        | Scripted name -> scripted_schedule name roles
        | Random n -> random_schedule n ~duration:dur_req roles
      in
      let psrv = t.petal.Petal.Testbed.servers in
      let sum f = Invariants.sum f psrv in
      (* Role partition: 3 tracked workers, a few crash victims (also
         paced workers, so a crash always has acked state at stake),
         the rest ambient. *)
      let ntracked = 3 in
      let nvict = max 1 (min 7 (nfs / 4)) in
      let victims = Array.sub servers ntracked nvict in
      let ambient_pool =
        Array.sub servers (ntracked + nvict) (nfs - ntracked - nvict)
      in
      (* shared orchestrator state *)
      let eng = Invariants.engine () in
      let timeline = ref [] in
      let ev fmt =
        Printf.ksprintf
          (fun m -> timeline := (Sim.now (), m) :: !timeline)
          fmt
      in
      let paused = ref false and stop_all = ref false in
      let failed_ops = ref 0 and expired = ref 0 and crashed_fs = ref 0 in
      let aux_done = ref [] in
      let spawn_tracked f =
        let iv = Sim.Ivar.create () in
        aux_done := iv :: !aux_done;
        Sim.spawn (fun () ->
            f ();
            Sim.Ivar.fill iv ())
      in
      let total_replays () =
        Array.fold_left
          (fun acc fs ->
            acc + (try (Fs.recovery_stats fs).Fs.replays with _ -> 0))
          0 servers
      in
      (* nemesis + petal faultpoint crashes *)
      let nf = Netfault.create ~seed:nf_seed t.net in
      Netfault.schedule nf
        (List.map
           (fun (at, desc, fn) ->
             ( at,
               fun nf ->
                 ev "nemesis: %s" desc;
                 fn nf ))
           sched.nemesis
        @ [ (sched.duration, Netfault.clear) ]);
      List.iter
        (fun c ->
          Faultpoint.arm_site c.site ~at:c.at_hit
            (Faultpoint.Crash
               (fun _site ->
                 let h = t.petal.Petal.Testbed.hosts.(c.victim) in
                 if Host.is_alive h then begin
                   ev "petal member %d crashed (faultpoint %s)" c.victim c.site;
                   Host.crash h;
                   ignore
                     (Sim.Timer.after c.restart_after (fun () ->
                          ev "petal member %d restarted" c.victim;
                          Host.restart h))
                 end)))
        sched.petal_crashes;
      Faultpoint.enable ();
      (* --- tracked + victim workers --------------------------------- *)
      let nworkers = ntracked + nvict in
      let wservers = Array.sub servers 0 nworkers in
      let ledgers = Array.init nworkers (fun _ -> Invariants.ledger ()) in
      let hot_led = Invariants.ledger () in
      let all_ledgers () = hot_led :: Array.to_list ledgers in
      let idle = Array.make nworkers false in
      let wdone = Array.init nworkers (fun _ -> Sim.Ivar.create ()) in
      Array.iteri
        (fun i fs ->
          let dname = Printf.sprintf "w%d" i in
          let led = ledgers.(i) in
          let pace = if i < ntracked then s 2.0 else s 3.0 in
          Sim.spawn (fun () ->
              let dir = try Fs.mkdir fs ~dir:Fs.root dname with _ -> -1 in
              let seq = ref 0 and stopped = ref false in
              while not (!stop_all || !stopped) do
                if !paused then begin
                  idle.(i) <- true;
                  Sim.sleep (Sim.ms 500)
                end
                else begin
                  idle.(i) <- false;
                  (try
                     let k = !seq in
                     incr seq;
                     if k mod 9 = 5 then (
                       match Invariants.pop_latest led with
                       | Some (path, _) ->
                         Fs.unlink fs ~dir
                           (List.nth path (List.length path - 1));
                         Fs.sync fs
                       | None -> ());
                     let name = Printf.sprintf "f%05d" k in
                     let f = Fs.create fs ~dir name in
                     let data =
                       Invariants.bytes_pat
                         (512 * (1 + (k mod 4)))
                         ((i * 1000) + k)
                     in
                     Fs.write fs f ~off:0 data;
                     let final =
                       if k mod 5 = 2 then begin
                         Fs.rename fs ~sdir:dir name ~ddir:dir (name ^ ".r");
                         name ^ ".r"
                       end
                       else name
                     in
                     Fs.sync fs;
                     Invariants.ack led ~path:[ dname; final ] data
                   with ex -> (
                     incr failed_ops;
                     match Invariants.classify fs ex with
                     | Invariants.Expired ->
                       incr expired;
                       stopped := true;
                       ev "worker %d stopped: lease expired" i
                     | Invariants.Failed -> ()
                     | exception _ ->
                       stopped := true;
                       ev "worker %d stopped: unexpected error" i));
                  if not (Host.is_alive (Fs.host fs)) then stopped := true;
                  if not !stopped then Sim.sleep pace
                end
              done;
              idle.(i) <- true;
              Sim.Ivar.fill wdone.(i) ()))
        wservers;
      (* --- ambient multi-tenant rounds ------------------------------ *)
      let amb_ops = ref 0 and amb_failed = ref 0 in
      let amb_busy = ref false in
      let amb_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          List.iter
            (fun (at, ridx) ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              while !paused do
                Sim.sleep (s 1.0)
              done;
              if not !stop_all then begin
                amb_busy := true;
                let live =
                  Array.to_list ambient_pool
                  |> List.filter (fun fs ->
                         Host.is_alive (Fs.host fs)
                         && not (Fs.is_poisoned fs))
                in
                let n = List.length live in
                let take = min 7 n in
                let start = if n = 0 then 0 else ridx * take mod n in
                let picked =
                  List.filteri
                    (fun j _ -> (j - start + n) mod n < take)
                    live
                in
                if picked <> [] then begin
                  ev "ambient round %d on %d servers" ridx
                    (List.length picked);
                  (* Every picked server runs the round under one shared
                     per-round directory: the first mkdir wins, the rest
                     resolve it by lookup, so the tenants exercise
                     cross-server directory sharing without colliding
                     with earlier rounds. The setup uses the raw vfs —
                     [amb_failed] counts only real workload ops. *)
                  let vfss =
                    List.mapi
                      (fun j fs ->
                        let raw = Vfs.of_frangipani fs in
                        let name = Printf.sprintf "amb%d" ridx in
                        let root =
                          match raw.Vfs.mkdir ~dir:raw.Vfs.root name with
                          | inum -> inum
                          | exception _ -> (
                            try raw.Vfs.lookup ~dir:raw.Vfs.root name
                            with _ -> (
                              try
                                raw.Vfs.mkdir ~dir:raw.Vfs.root
                                  (Printf.sprintf "amb%d_s%d" ridx j)
                              with _ -> raw.Vfs.root))
                        in
                        let sh = Invariants.shield ~failed:amb_failed raw in
                        { sh with Vfs.root })
                      picked
                  in
                  let r =
                    Multitenant.run vfss ~users_per_server:4 ~ops_per_user:12
                      ~namespace:64 ~think:(Sim.ms 20) ()
                  in
                  amb_ops := !amb_ops + r.Multitenant.ops
                end;
                amb_busy := false
              end)
            sched.ambient;
          Sim.Ivar.fill amb_done ());
      (* --- reconfiguration driver ----------------------------------- *)
      let _, drv_rpc = Testbed.fresh_client t "soak-drv" in
      let pc = Petal.Testbed.client t.petal ~rpc:drv_rpc in
      let requested = ref 0
      and committed = ref 0
      and reconf_rejected = ref 0 in
      let reconf_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          List.iteri
            (fun idx (at, op) ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              incr requested;
              ev "reconfiguration %d proposed: %s" (idx + 1)
                (match op with
                | Add i -> Printf.sprintf "add %d" i
                | Remove i -> Printf.sprintf "remove %d" i);
              let propose () =
                match op with
                | Add i -> Petal.Client.add_server pc ~idx:i
                | Remove i -> Petal.Client.remove_server pc ~idx:i
              in
              let rec attempt n =
                match propose () with
                | () -> true
                | exception Failure _ when n > 0 ->
                  (* refused: a transfer is pending or a snapshot pins
                     the current map — retry until it clears *)
                  incr reconf_rejected;
                  Sim.sleep (s 2.0);
                  attempt (n - 1)
                | exception Petal.Protocol.Unavailable _ when n > 0 ->
                  Sim.sleep (s 2.0);
                  attempt (n - 1)
                | exception _ -> false
              in
              if attempt 200 then begin
                let want = idx + 1 in
                let rec await n =
                  match Petal.Client.fetch_map pc with
                  | ep, _ ->
                    committed := max !committed ep;
                    if ep < want && n > 0 then begin
                      Sim.sleep (s 2.0);
                      await (n - 1)
                    end
                  | exception _ ->
                    if n > 0 then begin
                      Sim.sleep (s 2.0);
                      await (n - 1)
                    end
                in
                await 240;
                ev "reconfiguration %d committed (map epoch %d)" (idx + 1)
                  !committed
              end
              else ev "reconfiguration %d abandoned" (idx + 1))
            sched.reconfigs;
          Sim.Ivar.fill reconf_done ());
      (* --- snapshot barriers ---------------------------------------- *)
      let snap_ok = ref 0 and snap_rej = ref 0 and snap_del = ref 0 in
      let snap_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          (if sched.snapshots <> [] then begin
             let _, brpc = Testbed.fresh_client t "soak-backup" in
             let bk =
               Frangipani.Backup.connect ~rpc:brpc
                 ~lock_servers:t.lock_addrs ~table:"fs0"
             in
             let vd_live = Testbed.open_vdisk t ~rpc:brpc t.vdisk_id in
             List.iter
               (fun at ->
                 if Sim.now () < at then Sim.sleep (at - Sim.now ());
                 (* sample the ledger before the barrier: everything
                    acked by now must be inside the snapshot (skip the
                    newest entries, the only ones a worker may still
                    unlink) *)
                 let pre =
                   List.concat_map
                     (fun l -> Invariants.recent l ~skip:12 ~n:3)
                     (all_ledgers ())
                 in
                 let rec attempt n =
                   match Frangipani.Backup.snapshot bk vd_live with
                   | id -> Some id
                   | exception Failure _ when n > 0 ->
                     incr snap_rej;
                     ev "snapshot refused (transfer pending), retrying";
                     Sim.sleep (s 2.0);
                     attempt (n - 1)
                   | exception Petal.Protocol.Unavailable _ when n > 0 ->
                     Sim.sleep (s 2.0);
                     attempt (n - 1)
                   | exception _ -> None
                 in
                 match attempt 150 with
                 | None ->
                   Invariants.check eng false
                     "snapshot barrier exhausted its retries"
                 | Some id ->
                   incr snap_ok;
                   ev "snapshot taken: vdisk %d" id;
                   (try
                      let mh, mrpc =
                        Testbed.fresh_client t
                          (Printf.sprintf "soak-snapm%d" id)
                      in
                      let vd_snap = Testbed.open_vdisk t ~rpc:mrpc id in
                      let sfs =
                        Fs.mount ~host:mh ~rpc:mrpc ~vd:vd_snap
                          ~lock_servers:t.lock_addrs
                          ~table:(Printf.sprintf "fs0@snap%d" id)
                          ~readonly:true ()
                      in
                      let missing = Invariants.verify_entries pre sfs in
                      Invariants.check eng (missing = [])
                        (Printf.sprintf
                           "snapshot %d misses pre-barrier acked data: %s" id
                           (String.concat "; " missing));
                      Fs.unmount sfs
                    with _ ->
                      Invariants.check eng false
                        (Printf.sprintf
                           "snapshot %d could not be mounted and checked" id));
                   Sim.sleep (s 20.0);
                   let rec del n =
                     match Petal.Client.delete_vdisk pc ~id with
                     | () ->
                       incr snap_del;
                       ev "snapshot %d deleted" id
                     | exception (Failure _ | Petal.Protocol.Unavailable _)
                       when n > 0 ->
                       Sim.sleep (s 2.0);
                       del (n - 1)
                     | exception _ ->
                       Invariants.check eng false
                         (Printf.sprintf "snapshot %d delete failed" id)
                   in
                   del 90)
               sched.snapshots
           end);
          Sim.Ivar.fill snap_done ());
      (* --- Frangipani crashes + bounded-recovery monitor ------------- *)
      List.iteri
        (fun k at ->
          spawn_tracked (fun () ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              if (not !stop_all) && k < Array.length victims then begin
                let vfs = victims.(k) in
                if Host.is_alive (Fs.host vfs) then begin
                  let before = total_replays () in
                  ev "fs server w%d crashed" (ntracked + k);
                  incr crashed_fs;
                  Fs.crash vfs;
                  (* some live server must replay the victim's log *)
                  let rec wait n =
                    if total_replays () > before then
                      ev "recovery replay observed for w%d" (ntracked + k)
                    else if n = 0 then
                      Invariants.check eng false
                        (Printf.sprintf
                           "w%d's log not replayed within 300 s of its crash"
                           (ntracked + k))
                    else begin
                      Sim.sleep (s 10.0);
                      wait (n - 1)
                    end
                  in
                  wait 30
                end
              end))
        sched.fs_crashes;
      (* --- WAL log-pressure bursts ----------------------------------- *)
      List.iteri
        (fun pi at ->
          spawn_tracked (fun () ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              let fs = servers.(2) in
              if
                (not !stop_all)
                && Host.is_alive (Fs.host fs)
                && not (Fs.is_poisoned fs)
              then begin
                ev "log-pressure burst %d" pi;
                try
                  let dir =
                    match Fs.lookup fs ~dir:Fs.root "press" with
                    | d -> d
                    | exception _ -> Fs.mkdir fs ~dir:Fs.root "press"
                  in
                  for j = 0 to 399 do
                    (try
                       let name = Printf.sprintf "p%d_%d" pi j in
                       let f = Fs.create fs ~dir name in
                       Fs.write fs f ~off:0 (Invariants.bytes_pat 2048 j);
                       if j mod 3 <> 0 then Fs.unlink fs ~dir name
                     with _ -> incr failed_ops);
                    if j mod 16 = 15 then Sim.sleep (Sim.ms 5)
                  done
                with _ -> ()
              end))
        sched.pressure;
      (* --- the FS-level hot-chunk writer ----------------------------- *)
      let hot_writes = ref 0 in
      (match sched.hot with
      | None -> ()
      | Some (hstart, hstop) ->
        spawn_tracked (fun () ->
            if Sim.now () < hstart then Sim.sleep (hstart - Sim.now ());
            let fs = servers.(1) in
            let cb = Petal.Protocol.chunk_bytes in
            try
              let dir = Fs.mkdir fs ~dir:Fs.root "hotd" in
              let f = Fs.create fs ~dir "hot" in
              (* preallocate 16 chunks' worth so the rotating writes
                 touch many chunks: under any ring change at least one
                 of them moves, so the writer provably collides with
                 the handoff *)
              Fs.write fs f ~off:0 (Invariants.bytes_pat (16 * cb) 7);
              Fs.sync fs;
              ev "hot-chunk writer started";
              let k = ref 0 in
              while
                Sim.now () < hstop
                && (not !stop_all)
                && Host.is_alive (Fs.host fs)
                && not (Fs.is_poisoned fs)
              do
                (try
                   Fs.write fs f
                     ~off:(!k mod 16 * cb)
                     (Invariants.bytes_pat 4096 (100 + !k));
                   Fs.sync fs;
                   incr hot_writes
                 with _ -> incr failed_ops);
                incr k;
                Sim.sleep (Sim.ms 40)
              done;
              ev "hot-chunk writer stopped after %d writes" !hot_writes;
              (* one acked write after the window: the post-freeze,
                 post-cutover write path must work and survive *)
              let rec final n =
                match
                  let g =
                    match Fs.lookup fs ~dir "hotfinal" with
                    | g -> g
                    | exception _ -> Fs.create fs ~dir "hotfinal"
                  in
                  let data = Invariants.bytes_pat 2048 9 in
                  Fs.write fs g ~off:0 data;
                  Fs.sync fs;
                  Invariants.ack hot_led ~path:[ "hotd"; "hotfinal" ] data
                with
                | () -> ()
                | exception _ when n > 0 ->
                  Sim.sleep (s 2.0);
                  final (n - 1)
                | exception _ -> ()
              in
              final 10
            with _ -> ev "hot-chunk writer failed to start"));
      (* --- the raw-Petal hot writer (freeze_retry) ------------------- *)
      let raw_errors = ref (-1)
      and raw_ok = ref true
      and raw_waits = ref 0 in
      (match sched.raw_hot with
      | None -> ()
      | Some (rstart, rstop) ->
        spawn_tracked (fun () ->
            if Sim.now () < rstart then Sim.sleep (rstart - Sim.now ());
            raw_errors := 0;
            let _, rrpc = Testbed.fresh_client t "soak-raw" in
            let rawc = Petal.Testbed.client t.petal ~rpc:rrpc in
            let aux_id = Petal.Client.create_vdisk rawc ~nrep:2 in
            let vd = Petal.Client.open_vdisk rawc aux_id in
            let cb = Petal.Protocol.chunk_bytes in
            (* mirror the servers' ring placement to pick a chunk whose
               owner pair provably changes when member 6 activates (the
               schedule's [Add 6]) — a non-moving chunk would never be
               frozen and the case would assert nothing *)
            let owners act chunk =
              let a = Array.of_list (List.sort compare act) in
              let n = Array.length a in
              let slot = (aux_id + chunk) mod n in
              List.sort compare [ a.(slot); a.((slot + 1) mod n) ]
            in
            let rec moving c =
              if owners initial_active c <> owners (initial_active @ [ 6 ]) c
              then c
              else moving (c + 1)
            in
            let off = moving 0 * cb in
            ev "raw hot writer started on aux vdisk %d" aux_id;
            let k = ref 0 and last = ref (-1) in
            while Sim.now () < rstop && not !stop_all do
              (try
                 Petal.Client.write vd ~off
                   (Invariants.bytes_pat 4096 (200 + !k));
                 last := !k
               with _ -> incr raw_errors);
              incr k;
              Sim.sleep (Sim.ms 20)
            done;
            (* the freeze must have been invisible: no surfaced error,
               and the last write's bytes are what a read returns *)
            (try
               let got = Petal.Client.read vd ~off ~len:4096 in
               raw_ok :=
                 !last >= 0
                 && Bytes.equal got (Invariants.bytes_pat 4096 (200 + !last))
             with _ -> raw_ok := false);
            raw_waits :=
              (Petal.Client.op_stats vd).Petal.Client.freeze_waits;
            ev "raw hot writer: %d writes, %d errors, %d freeze waits" !k
              !raw_errors !raw_waits));
      (* --- quiesce checkpoints --------------------------------------- *)
      let ck_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          List.iteri
            (fun ci at ->
              if Sim.now () < at then Sim.sleep (at - Sim.now ());
              if not !stop_all then begin
                ev "checkpoint %d: quiescing" ci;
                paused := true;
                let rec wait_idle n =
                  if Array.for_all (fun b -> b) idle || n = 0 then ()
                  else begin
                    Sim.sleep (Sim.ms 500);
                    wait_idle (n - 1)
                  end
                in
                wait_idle 720;
                let rec wait_amb n =
                  if (not !amb_busy) || n = 0 then ()
                  else begin
                    Sim.sleep (s 1.0);
                    wait_amb (n - 1)
                  end
                in
                wait_amb 180;
                Array.iter
                  (fun fs ->
                    if Host.is_alive (Fs.host fs) && not (Fs.is_poisoned fs)
                    then try Fs.sync fs with _ -> ())
                  servers;
                let degraded = Invariants.drain_backlog ~rounds:12 psrv in
                let pending_left, leftover =
                  Invariants.settle_transfers ~rounds:8 psrv
                in
                Invariants.check eng (degraded = 0)
                  (Printf.sprintf
                     "checkpoint %d: push backlog not drained (%d left)" ci
                     degraded);
                Invariants.check eng (not pending_left)
                  (Printf.sprintf "checkpoint %d: a transfer is still pending"
                     ci);
                Invariants.check eng (leftover = 0)
                  (Printf.sprintf
                     "checkpoint %d: %d chunks left on non-owning members" ci
                     leftover);
                Invariants.check eng
                  (sum Petal.Server.stale_applied_count = 0)
                  (Printf.sprintf
                     "checkpoint %d: an expired-stamp write was applied" ci);
                let checker =
                  Array.to_list servers
                  |> List.find_opt (fun fs ->
                         Host.is_alive (Fs.host fs)
                         && not (Fs.is_poisoned fs))
                in
                (match checker with
                | None ->
                  ev "checkpoint %d: no healthy server to verify through" ci
                | Some fs ->
                  let missing =
                    List.concat_map
                      (fun l ->
                        Invariants.verify_entries
                          (Invariants.recent l ~skip:0 ~n:80)
                          fs)
                      (all_ledgers ())
                  in
                  Invariants.check eng (missing = [])
                    (Printf.sprintf "checkpoint %d: acked data lost: %s" ci
                       (String.concat "; " missing));
                  let findings = Invariants.fsck fs in
                  Invariants.check eng (findings = [])
                    (Printf.sprintf "checkpoint %d: fsck: %s" ci
                       (String.concat "; " findings)));
                paused := false;
                ev "checkpoint %d: done (%d checks so far, %d violations)" ci
                  (Invariants.checks_run eng)
                  (List.length (Invariants.violations eng))
              end)
            sched.checkpoints;
          Sim.Ivar.fill ck_done ());
      (* --- run out the clock, settle, final verdict ------------------ *)
      if Sim.now () < sched.duration then
        Sim.sleep (sched.duration - Sim.now ());
      stop_all := true;
      Array.iter Sim.Ivar.read wdone;
      Sim.Ivar.read amb_done;
      Sim.Ivar.read reconf_done;
      Sim.Ivar.read snap_done;
      Sim.Ivar.read ck_done;
      List.iter Sim.Ivar.read !aux_done;
      Sim.sleep (s 60.0);
      let degraded_left = Invariants.drain_backlog psrv in
      let pending_left, leftover_chunks = Invariants.settle_transfers psrv in
      (* one post-run acked write through a surviving tracked server *)
      (try
         let fs = servers.(0) in
         if Host.is_alive (Fs.host fs) && not (Fs.is_poisoned fs) then begin
           let dir = Fs.lookup fs ~dir:Fs.root "w0" in
           let f = Fs.create fs ~dir "post" in
           let data = Invariants.bytes_pat 768 99 in
           Fs.write fs f ~off:0 data;
           Fs.sync fs;
           Invariants.ack ledgers.(0) ~path:[ "w0"; "post" ] data
         end
       with _ -> ());
      let final_active =
        match Petal.Client.fetch_map pc with
        | _, act -> act
        | exception _ -> []
      in
      (* the full-ledger verify and fsck go through a fresh server, so
         they also prove a newcomer converges on the final map *)
      let c = Testbed.add_server t ~name:"soak-fresh" () in
      let lost =
        List.concat_map (fun l -> Invariants.verify l c) (all_ledgers ())
      in
      let fsck_findings = Invariants.fsck c in
      let freeze_waits =
        Array.fold_left
          (fun acc fs ->
            acc
            + (Petal.Client.op_stats fs.Frangipani.Ctx.vd)
                .Petal.Client.freeze_waits)
          0 servers
        + !raw_waits
      in
      {
        label;
        sim_hours = Sim.to_sec (Sim.now ()) /. 3600.0;
        acked =
          List.fold_left
            (fun acc l -> acc + Invariants.acked_count l)
            0 (all_ledgers ());
        failed_ops = !failed_ops;
        expired_servers = !expired;
        crashed_fs = !crashed_fs;
        requested = !requested;
        committed = !committed;
        reconf_rejected = !reconf_rejected;
        snapshots_ok = !snap_ok;
        snapshots_deleted = !snap_del;
        snap_rejected = !snap_rej;
        freeze_rejects = sum Petal.Server.freeze_reject_count;
        freeze_waits;
        max_cutover_ns =
          Array.fold_left
            (fun acc srv -> max acc (Petal.Server.max_cutover_time srv))
            0 psrv;
        cutover_bound_ns = sched.cutover_bound;
        raw_errors = !raw_errors;
        raw_ok = !raw_ok;
        raw_freeze_waits = !raw_waits;
        hot_writes = !hot_writes;
        log_pressure_stalls =
          Array.fold_left
            (fun acc fs ->
              acc
              + (try (Fs.wal_stats fs).Frangipani.Wal.log_pressure_stalls
                 with _ -> 0))
            0 servers;
        wal_reclaims =
          Array.fold_left
            (fun acc fs ->
              acc
              + (try (Fs.wal_stats fs).Frangipani.Wal.reclaim_rounds
                 with _ -> 0))
            0 servers;
        replays = total_replays ();
        ambient_ops = !amb_ops;
        ambient_failed = !amb_failed;
        checks_run = Invariants.checks_run eng;
        violations = Invariants.violations eng;
        timeline = List.rev !timeline;
        lost;
        fsck_findings;
        stale_applied = sum Petal.Server.stale_applied_count;
        degraded_left;
        pending_left;
        leftover_chunks;
        final_active;
        expected_active = expected_active_of sched;
        nf = Netfault.stats nf;
        end_ns = Sim.now ();
      })

(** What an outcome violates; [] = every invariant held. The scripted
    labels add their scenario-specific teeth, so [debug_soak] reports
    them too. *)
let failures o =
  let bad cond msg acc = if cond then msg :: acc else acc in
  let set l = String.concat "," (List.map string_of_int l) in
  let generic =
    []
    |> bad (o.violations <> [])
         (Printf.sprintf "%d invariant violations (first at t=%.1fs: %s)"
            (List.length o.violations)
            (match o.violations with
            | (at, _) :: _ -> Sim.to_sec at
            | [] -> 0.0)
            (match o.violations with (_, m) :: _ -> m | [] -> ""))
    |> bad (o.lost <> [])
         (Printf.sprintf "acked ops lost: %s" (String.concat "; " o.lost))
    |> bad (o.fsck_findings <> [])
         (Printf.sprintf "fsck: %s" (String.concat "; " o.fsck_findings))
    |> bad (o.committed <> o.requested)
         (Printf.sprintf "reconfigurations requested %d but committed %d"
            o.requested o.committed)
    |> bad (o.final_active <> o.expected_active)
         (Printf.sprintf "final map {%s} but expected {%s}"
            (set o.final_active) (set o.expected_active))
    |> bad o.pending_left "a transfer never committed"
    |> bad (o.degraded_left <> 0)
         (Printf.sprintf "push backlog not drained: %d" o.degraded_left)
    |> bad (o.leftover_chunks <> 0)
         (Printf.sprintf "chunks left on non-owning members: %d"
            o.leftover_chunks)
    |> bad (o.stale_applied <> 0)
         (Printf.sprintf "expired-stamp writes applied: %d" o.stale_applied)
    |> bad
         (o.committed > 0 && o.max_cutover_ns > o.cutover_bound_ns)
         (Printf.sprintf "cutover took %.1f s (bound %.1f s)"
            (Sim.to_sec o.max_cutover_ns)
            (Sim.to_sec o.cutover_bound_ns))
    |> bad (o.snapshots_ok <> o.snapshots_deleted)
         (Printf.sprintf "%d snapshots taken but %d deleted" o.snapshots_ok
            o.snapshots_deleted)
    |> bad (o.acked = 0) "no op was ever acked"
  in
  let scenario =
    match o.label with
    | "hot_cutover" ->
      []
      |> bad (o.hot_writes = 0) "hot writer never wrote"
      |> bad
           (o.freeze_rejects = 0)
           "freeze never engaged: the hot writer was never rejected"
    | "freeze_retry" ->
      []
      |> bad (o.raw_errors <> 0)
           (Printf.sprintf "raw writer surfaced %d errors through the freeze"
              o.raw_errors)
      |> bad (not o.raw_ok) "raw writer's last write did not read back intact"
      |> bad (o.raw_freeze_waits = 0)
           "raw writer never hit the freeze (case asserts nothing)"
    | "snap_during_reconf" ->
      []
      |> bad (o.snap_rejected = 0)
           "snapshot was never refused mid-transfer (case asserts nothing)"
      |> bad (o.snapshots_ok <> 1) "snapshot retry never succeeded"
    | "reconf_during_snap" ->
      []
      |> bad (o.reconf_rejected = 0)
           "reconfiguration was never refused under the snapshot"
      |> bad (o.snapshots_deleted <> 1) "snapshot was never deleted"
    | "composed_quick" ->
      [] |> bad (o.crashed_fs <> 1) "the scheduled server crash never ran"
    | _ -> []
  in
  List.rev (scenario @ generic)
