open Cluster

type t = {
  net : Net.t;
  petal : Petal.Testbed.t;
  lock_servers : Locksvc.Server.t array;
  lock_addrs : Net.addr array;
  vdisk_id : int;
  mutable frangipani : Frangipani.Fs.t list;
  mutable addrs : (Frangipani.Fs.t * Net.addr) list;
  mutable rpcs : (Frangipani.Fs.t * Rpc.t) list;
}

let build ?(petal_servers = 7) ?petal_active ?(ndisks = 9) ?(nvram = false)
    ?(nrep = 2) ?(disk_capacity = 64 * 1024 * 1024) ?(ngroups = 100) () =
  let net = Net.create () in
  let petal =
    Petal.Testbed.build ~net ~nservers:petal_servers ?nactive:petal_active
      ~ndisks ~nvram ~disk_capacity ()
  in
  (* Lock servers run on the Petal machines (Figure 2). *)
  let lock_addrs = petal.Petal.Testbed.addrs in
  let lock_servers =
    Array.init petal_servers (fun i ->
        Locksvc.Server.create ~host:petal.Petal.Testbed.hosts.(i)
          ~rpc:petal.Petal.Testbed.rpcs.(i) ~peers:lock_addrs ~index:i ~ngroups
          ~stable:(Locksvc.Paxos_group.stable ()) ())
  in
  (* Create and format the shared virtual disk from a setup client. *)
  let setup_host = Host.create "setup" in
  let setup_rpc = Rpc.create (Net.attach net setup_host) in
  let pc = Petal.Testbed.client petal ~rpc:setup_rpc in
  let vdisk_id = Petal.Client.create_vdisk pc ~nrep in
  let vd = Petal.Client.open_vdisk pc vdisk_id in
  Frangipani.Fs.format vd;
  { net; petal; lock_servers; lock_addrs; vdisk_id; frangipani = []; addrs = [];
    rpcs = [] }

let fresh_client t name =
  let h = Host.create name in
  let rpc = Rpc.create (Net.attach t.net h) in
  (h, rpc)

let open_vdisk t ~rpc id =
  let pc = Petal.Testbed.client t.petal ~rpc in
  Petal.Client.open_vdisk pc id

let add_server t ?config ?name () =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "frangipani%d" (List.length t.frangipani)
  in
  let host, rpc = fresh_client t name in
  let vd = open_vdisk t ~rpc t.vdisk_id in
  let fs =
    Frangipani.Fs.mount ~host ~rpc ~vd ~lock_servers:t.lock_addrs ?config ()
  in
  t.frangipani <- t.frangipani @ [ fs ];
  t.addrs <- (fs, Rpc.addr rpc) :: t.addrs;
  t.rpcs <- (fs, rpc) :: t.rpcs;
  fs

let addr_of t fs = List.assq fs t.addrs
let rpc_of t fs = List.assq fs t.rpcs
