(** Deterministic crash-point sweep harness.

    One [run] is one complete simulation: a two-server Frangipani
    cluster runs a fixed metadata-heavy workload on server [a] with
    {!Simkit.Faultpoint} sites enabled at every durability boundary
    (disk and NVRAM writes, Petal chunk mutations, WAL append/commit,
    cache write-back, recovery replay). A counting run ([crash_at =
    0]) tallies how many times the faultpoints fire; an armed run
    crashes [a] at exactly the k-th hit, waits out the lease, lets
    the surviving server [b] recover the dead log, and checks the
    §4/§6 guarantees:

    - the file system is fsck-clean,
    - data synced before the faults were enabled survives,
    - replaying the dead log a second time is a byte-level no-op.

    Because the simulation is seeded and the faultpoint schedule is
    part of it, the k-th hit of an armed run is the same program
    point as the k-th hit of the counting run — sweeping k over
    [1..N] crashes the server at every durability boundary the
    workload crosses. *)

open Simkit
module Fs = Frangipani.Fs

type outcome = {
  crash_at : int;  (** 0 = counting run (no crash) *)
  total_hits : int;  (** faultpoint hits up to workload end / crash+recovery *)
  sites : (string * int) list;  (** per-site hit counts *)
  crashed : bool;
  fsck_findings : string list;  (** pretty-printed; [] = clean *)
  survivor_ok : bool;  (** synced checkpoint data readable from the peer *)
  replay_idempotent : bool;  (** second replay left the disk image unchanged *)
  recoveries : int;  (** replays the peer ran (before our manual one) *)
  diffs_applied : int;
  torn_tails : int;  (** replays that found a torn log tail *)
}

let bytes_pat n seed = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) land 0xff))

(* Files made durable (synced) before any fault can fire: whatever
   the crash point, these must survive. *)
let checkpoint_spec = [ ("alpha", 3000, 11); ("beta", 9000, 12); ("gamma", 300, 13) ]

let sweep_config =
  { Frangipani.Ctx.default_config with synchronous_log = true }

let write_checkpoint fs =
  let ck = Fs.mkdir fs ~dir:Fs.root "ck" in
  List.iter
    (fun (name, size, seed) ->
      let f = Fs.create fs ~dir:ck name in
      Fs.write fs f ~off:0 (bytes_pat size seed))
    checkpoint_spec;
  Fs.sync fs

(* The churn phase: a fixed mix of creates, writes, renames, unlinks,
   truncates and fsyncs. With [synchronous_log] every metadata op is
   a group commit, so this crosses well over 50 durability
   boundaries. Must be deterministic — the sweep relies on hit k
   meaning the same instant in every run. *)
let churn fs =
  let d = Fs.mkdir fs ~dir:Fs.root "churn" in
  let live = ref [] in
  for i = 0 to 11 do
    let name = Printf.sprintf "f%02d" i in
    let f = Fs.create fs ~dir:d name in
    Fs.write fs f ~off:0 (bytes_pat (512 * (1 + (i mod 5))) i);
    live := name :: !live;
    (match i mod 4 with
    | 1 ->
      Fs.rename fs ~sdir:d name ~ddir:d (name ^ ".r");
      live := (name ^ ".r") :: List.tl !live
    | 3 -> (
      match List.rev !live with
      | oldest :: _ ->
        Fs.unlink fs ~dir:d oldest;
        live := List.filter (fun x -> x <> oldest) !live
      | [] -> ())
    | _ -> ());
    if i mod 5 = 2 then Fs.fsync fs f;
    if i mod 6 = 4 then Fs.truncate fs f ~size:100
  done;
  Fs.sync fs

let snapshot_sectors vd addrs =
  List.map
    (fun addr -> Petal.Client.read vd ~off:addr ~len:Frangipani.Layout.sector)
    addrs

let pp_findings fs =
  List.map (Format.asprintf "%a" Frangipani.Fsck.pp_finding) fs

let run ?(crash_at = 0) ?(nvram = false) () =
  Sim.run ~until:(Sim.sec 3600.0) (fun () ->
      Faultpoint.reset ();
      let t = Testbed.build ~petal_servers:3 ~ndisks:2 ~nvram ~ngroups:16 () in
      let a = Testbed.add_server t ~config:sweep_config ~name:"sweep-a" () in
      let b = Testbed.add_server t ~name:"sweep-b" () in
      write_checkpoint a;
      let crashed = Sim.Ivar.create () in
      if crash_at > 0 then
        Faultpoint.arm ~at:crash_at
          (Faultpoint.Crash
             (fun _site ->
               Cluster.Host.crash (Fs.host a);
               Sim.Ivar.fill crashed ()));
      Faultpoint.enable ();
      let wl_done = Sim.Ivar.create () in
      Sim.spawn (fun () ->
          (try churn a with
          | Cluster.Host.Crashed _ | Locksvc.Types.Lease_expired
          | Frangipani.Errors.Error _ | Petal.Protocol.Unavailable _
          -> ());
          Sim.Ivar.fill wl_done ());
      if crash_at = 0 then begin
        (* Counting run: no crash; the workload must leave a clean,
           intact file system, and its hit total bounds the sweep. *)
        Sim.Ivar.read wl_done;
        let survivor_ok =
          List.for_all
            (fun (name, size, seed) ->
              let ck = Fs.lookup a ~dir:Fs.root "ck" in
              let f = Fs.lookup a ~dir:ck name in
              Bytes.equal (Fs.read a f ~off:0 ~len:size) (bytes_pat size seed))
            checkpoint_spec
        in
        {
          crash_at;
          total_hits = Faultpoint.total ();
          sites = Faultpoint.counts ();
          crashed = false;
          fsck_findings = pp_findings (Frangipani.Fsck.check a);
          survivor_ok;
          replay_idempotent = true;
          recoveries = 0;
          diffs_applied = 0;
          torn_tails = 0;
        }
      end
      else begin
        Sim.Ivar.read crashed;
        (* Lease expiry (30 s) plus nag retries: by now the lock
           service has had [b] replay the dead log. *)
        Sim.sleep (Sim.sec 90.0);
        let stats = Fs.recovery_stats b in
        (* Replay-idempotence: run the dead server's log once more
           from [b] by hand and require the disk image over every
           sector the log addresses to be byte-identical. *)
        let slot = Fs.log_slot a in
        let vd = b.Frangipani.Ctx.vd in
        let report = Frangipani.Wal.scan_report vd ~slot in
        let addrs =
          List.sort_uniq compare
            (List.map
               (fun (d : Frangipani.Wal.diff) -> d.addr)
               report.Frangipani.Wal.diffs)
        in
        let before = snapshot_sectors vd addrs in
        Frangipani.Recovery.run b ~dead_lease:slot;
        let after = snapshot_sectors vd addrs in
        let replay_idempotent = List.for_all2 Bytes.equal before after in
        let survivor_ok =
          try
            let ck = Fs.lookup b ~dir:Fs.root "ck" in
            List.for_all
              (fun (name, size, seed) ->
                let f = Fs.lookup b ~dir:ck name in
                Bytes.equal (Fs.read b f ~off:0 ~len:size) (bytes_pat size seed))
              checkpoint_spec
          with _ -> false
        in
        {
          crash_at;
          total_hits = Faultpoint.total ();
          sites = Faultpoint.counts ();
          crashed = true;
          fsck_findings = pp_findings (Frangipani.Fsck.check b);
          survivor_ok;
          replay_idempotent;
          recoveries = stats.Fs.replays;
          diffs_applied = stats.Fs.diffs_applied;
          torn_tails = stats.Fs.torn_tails;
        }
      end)

(** What an outcome violates; [] = all invariants held. *)
let failures o =
  let bad cond msg acc = if cond then msg :: acc else acc in
  []
  |> bad (o.fsck_findings <> [])
       (Printf.sprintf "fsck: %s" (String.concat "; " o.fsck_findings))
  |> bad (not o.survivor_ok) "synced checkpoint data lost"
  |> bad (not o.replay_idempotent) "second replay changed the disk image"
  |> bad (o.crash_at > 0 && not o.crashed) "crash point never fired"
  |> bad (o.crash_at > 0 && o.recoveries < 1) "no recovery replay happened"
  |> List.rev
