(** Whole-cluster assembly: Petal servers (with lock servers
    co-located on the same machines, as in the paper's Figure 2), a
    formatted virtual disk, and helpers to add Frangipani server
    machines. Used by the tests, the examples and the benchmark
    harness. *)

type t = {
  net : Cluster.Net.t;
  petal : Petal.Testbed.t;
  lock_servers : Locksvc.Server.t array;
  lock_addrs : Cluster.Net.addr array;
  vdisk_id : int;
  mutable frangipani : Frangipani.Fs.t list;
  mutable addrs : (Frangipani.Fs.t * Cluster.Net.addr) list;
  mutable rpcs : (Frangipani.Fs.t * Cluster.Rpc.t) list;
}

val build :
  ?petal_servers:int ->
  ?petal_active:int ->
  ?ndisks:int ->
  ?nvram:bool ->
  ?nrep:int ->
  ?disk_capacity:int ->
  ?ngroups:int ->
  unit ->
  t
(** Defaults: 7 Petal servers × 9 disks (the paper's testbed), no
    NVRAM, 2-way replicated virtual disk, 64 MB per simulated disk.
    The virtual disk is created and formatted. [petal_active] makes
    only the first so-many Petal members serve data initially; the
    rest are standbys the reconfiguration sweep activates mid-flight
    (lock servers still run on all Petal machines). *)

val add_server :
  t ->
  ?config:Frangipani.Ctx.config ->
  ?name:string ->
  unit ->
  Frangipani.Fs.t
(** Add a Frangipani server machine (§7: it only needs the virtual
    disk and the lock service) and mount the shared file system. *)

val open_vdisk : t -> rpc:Cluster.Rpc.t -> int -> Petal.Client.vdisk

val fresh_client : t -> string -> Cluster.Host.t * Cluster.Rpc.t
(** A new machine attached to the cluster network (for backup
    programs, snapshot mounts, etc.). *)

val addr_of : t -> Frangipani.Fs.t -> Cluster.Net.addr
(** Network address of a Frangipani server added with
    {!add_server} — used to inject partitions. *)

val rpc_of : t -> Frangipani.Fs.t -> Cluster.Rpc.t
(** The server's own RPC endpoint — used to run co-located services
    such as the §2.2 protocol export on the same machine. *)
